"""Unit tests for ColumnStats: synthetic construction, fractions, ANALYZE."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.stats import ColumnStats, Distribution, analyze_values


class TestSyntheticUniform:
    def setup_method(self):
        dist = Distribution(kind="uniform", low=0.0, high=100.0)
        self.stats = ColumnStats.synthetic(10_000, dist, avg_width=8)

    def test_range_fraction_matches_uniform(self):
        assert self.stats.range_fraction(10, 20) == pytest.approx(0.1, abs=0.02)

    def test_fraction_below_endpoints(self):
        assert self.stats.fraction_below(0) == pytest.approx(0.0, abs=0.01)
        assert self.stats.fraction_below(100) == pytest.approx(1.0, abs=0.01)

    def test_out_of_range_value_has_zero_eq_fraction(self):
        assert self.stats.eq_fraction(500.0) == 0.0

    def test_eq_fraction_is_one_over_distinct(self):
        expected = 1.0 / self.stats.n_distinct
        assert self.stats.eq_fraction(50.0) == pytest.approx(expected, rel=0.01)


class TestSyntheticNormal:
    def setup_method(self):
        dist = Distribution(kind="normal", mu=20.0, sigma=2.0)
        self.stats = ColumnStats.synthetic(100_000, dist, avg_width=4)

    def test_median_splits_mass(self):
        assert self.stats.fraction_below(20.0) == pytest.approx(0.5, abs=0.02)

    def test_one_sigma_below(self):
        # P(X < mu - sigma) = 0.1587
        assert self.stats.fraction_below(18.0) == pytest.approx(0.1587, abs=0.02)


class TestSyntheticZipf:
    def setup_method(self):
        dist = Distribution(kind="zipf", n_values=100, s=1.2)
        self.stats = ColumnStats.synthetic(1_000_000, dist, avg_width=4)

    def test_top_value_dominates(self):
        assert self.stats.eq_fraction(1) > self.stats.eq_fraction(2) > self.stats.eq_fraction(3)

    def test_frequencies_sum_below_one(self):
        total = sum(self.stats.eq_fraction(v) for v in range(1, 101))
        assert total <= 1.0 + 1e-6

    def test_mcvs_populated(self):
        assert len(self.stats.mcv_values) == 10


class TestSyntheticSequence:
    def test_sequence_is_perfectly_correlated(self):
        stats = ColumnStats.synthetic(5000, Distribution(kind="sequence"), avg_width=8)
        assert stats.correlation == 1.0
        assert stats.n_distinct == 5000

    def test_sequence_range_fraction(self):
        stats = ColumnStats.synthetic(1000, Distribution(kind="sequence"), avg_width=8)
        assert stats.range_fraction(100, 200) == pytest.approx(0.1, abs=0.02)


class TestSyntheticCategorical:
    def test_categorical_mcvs(self):
        dist = Distribution(
            kind="categorical", values=("a", "b", "c"), probs=(0.7, 0.2, 0.1)
        )
        stats = ColumnStats.synthetic(1000, dist, avg_width=2)
        assert stats.eq_fraction("a") == pytest.approx(0.7)
        assert stats.eq_fraction("b") == pytest.approx(0.2)
        assert stats.n_distinct == 3


class TestAnalyzeValues:
    def test_basic_counts(self):
        stats = analyze_values([1, 2, 2, 3, 3, 3, None, None])
        assert stats.null_frac == pytest.approx(0.25)
        assert stats.n_distinct == 3
        assert stats.min_value == 1
        assert stats.max_value == 3

    def test_sorted_input_has_high_correlation(self):
        stats = analyze_values(list(range(1000)))
        assert stats.correlation == pytest.approx(1.0, abs=1e-6)

    def test_reversed_input_has_negative_correlation(self):
        stats = analyze_values(list(range(1000, 0, -1)))
        assert stats.correlation == pytest.approx(-1.0, abs=1e-6)

    def test_mcv_detection(self):
        values = [7] * 500 + list(range(1000))
        stats = analyze_values(values)
        assert 7 in stats.mcv_values
        assert stats.eq_fraction(7) == pytest.approx(500 / 1500, rel=0.05)

    def test_range_fraction_tracks_data(self):
        values = list(range(1000))
        stats = analyze_values(values)
        actual = sum(1 for v in values if 100 <= v <= 300) / len(values)
        assert stats.range_fraction(100, 300) == pytest.approx(actual, abs=0.03)

    def test_empty_and_all_null(self):
        assert analyze_values([]).n_distinct == 1.0
        stats = analyze_values([None, None])
        assert stats.null_frac == 1.0

    def test_string_values(self):
        stats = analyze_values(["apple", "banana", "cherry", "apple"])
        assert stats.min_value == "apple"
        assert stats.max_value == "cherry"


class TestStatsInvariants:
    @given(
        low=st.floats(-1e6, 1e6),
        span=st.floats(0.001, 1e6),
        a=st.floats(0, 1),
        b=st.floats(0, 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_below_is_monotone(self, low, span, a, b):
        stats = ColumnStats.synthetic(
            10_000, Distribution(kind="uniform", low=low, high=low + span), avg_width=8
        )
        va, vb = low + a * span, low + b * span
        if va > vb:
            va, vb = vb, va
        assert stats.fraction_below(va) <= stats.fraction_below(vb) + 1e-9

    @given(st.lists(st.one_of(st.integers(-50, 50), st.none()), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_analyze_never_produces_invalid_fractions(self, values):
        stats = analyze_values(values)
        assert 0.0 <= stats.null_frac <= 1.0
        assert -1.0 <= stats.correlation <= 1.0
        assert stats.n_distinct >= 1.0
        for probe in (-100, 0, 100):
            assert 0.0 <= stats.eq_fraction(probe) <= 1.0
            assert 0.0 <= stats.fraction_below(probe) <= 1.0

    @given(st.lists(st.integers(-1000, 1000), min_size=50, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_analyzed_range_fraction_close_to_truth(self, values):
        stats = analyze_values(values)
        lo, hi = -200, 200
        actual = sum(1 for v in values if lo <= v <= hi) / len(values)
        assert stats.range_fraction(lo, hi) == pytest.approx(actual, abs=0.25)


class TestDistributionValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Distribution(kind="bogus")

    def test_null_frac_range_enforced(self):
        with pytest.raises(ValueError):
            Distribution(kind="uniform", null_frac=1.5)

    def test_mcv_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnStats(mcv_values=[1], mcv_freqs=[])
