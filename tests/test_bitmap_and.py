"""Tests for BitmapAnd: multi-index intersection scans."""

import pytest

from repro.catalog import Catalog, Column, DataType, Distribution, Index, Table
from repro.data import generate_database
from repro.executor import run_query
from repro.inum import InumCostModel
from repro.interaction import InteractionAnalyzer
from repro.optimizer import CostService, PlannerSettings
from repro.whatif import Configuration


def node_types(plan):
    return [n.node_type for n in plan.walk()]


@pytest.fixture
def two_index_catalog(sdss_catalog):
    catalog = sdss_catalog.clone()
    catalog.add_index(Index("photoobj", ("dec",)))
    catalog.add_index(Index("photoobj", ("rmag",)))
    return catalog


AND_SQL = "SELECT ra FROM photoobj WHERE dec BETWEEN 0 AND 3 AND rmag < 15.5"


class TestPlanChoice:
    def test_two_medium_predicates_pick_bitmap_and(self, two_index_catalog):
        plan = CostService(two_index_catalog).plan(AND_SQL)
        assert plan.node_type == "BitmapAndScan"
        assert len(plan.indexes) == 2

    def test_and_beats_single_index(self, sdss_catalog, two_index_catalog):
        single = sdss_catalog.clone()
        single.add_index(Index("photoobj", ("dec",)))
        assert (
            CostService(two_index_catalog).cost(AND_SQL)
            < CostService(single).cost(AND_SQL)
        )

    def test_disable_bitmapscan_disables_and(self, two_index_catalog):
        svc = CostService(two_index_catalog, PlannerSettings(enable_bitmapscan=False))
        assert svc.plan(AND_SQL).node_type != "BitmapAndScan"

    def test_same_column_indexes_do_not_combine(self, sdss_catalog):
        catalog = sdss_catalog.clone()
        catalog.add_index(Index("photoobj", ("dec",)))
        catalog.add_index(Index("photoobj", ("dec", "rmag")))
        plan = CostService(catalog).plan(
            "SELECT ra FROM photoobj WHERE dec BETWEEN 0 AND 10"
        )
        assert plan.node_type != "BitmapAndScan"

    def test_indexes_used_reports_both_arms(self, two_index_catalog):
        plan = CostService(two_index_catalog).plan(AND_SQL)
        assert len(plan.indexes_used()) == 2


class TestInumWithBitmapAnd:
    def test_exactness_preserved(self, sdss_catalog):
        config = Configuration.of(
            Index("photoobj", ("dec",)), Index("photoobj", ("rmag",))
        )
        inum = InumCostModel(sdss_catalog)
        real = CostService(config.apply(sdss_catalog)).cost(AND_SQL)
        assert inum.cost(AND_SQL, config) == pytest.approx(real, rel=0.01)

    def test_usage_reports_both(self, sdss_catalog):
        config = Configuration.of(
            Index("photoobj", ("dec",)), Index("photoobj", ("rmag",))
        )
        inum = InumCostModel(sdss_catalog)
        __, used = inum.cost_with_usage(AND_SQL, config)
        assert used == config.indexes


class TestSynergyInteraction:
    def test_and_arms_interact_positively(self, sdss_catalog):
        """Two single-column indexes that only pay off together produce a
        nonzero degree of interaction — synergy, not just subsumption."""
        inum = InumCostModel(sdss_catalog)
        workload = [(AND_SQL, 1.0)]
        analyzer = InteractionAnalyzer(inum, workload)
        dec_ix = Index("photoobj", ("dec",))
        rmag_ix = Index("photoobj", ("rmag",))
        doi = analyzer.doi(dec_ix, rmag_ix, [dec_ix, rmag_ix])
        assert doi > 0.01


class TestExecutorBitmapAnd:
    @pytest.fixture
    def env(self):
        catalog = Catalog()
        catalog.add_table(
            Table(
                "t",
                [
                    Column("id", DataType.INT, Distribution(kind="sequence")),
                    Column("x", DataType.INT,
                           Distribution(kind="uniform_int", low=0, high=19)),
                    Column("y", DataType.INT,
                           Distribution(kind="uniform_int", low=0, high=19)),
                    Column("z", DataType.DOUBLE,
                           Distribution(kind="uniform", low=0.0, high=1.0)),
                ],
                row_count=4000,
            ).build_stats()
        )
        database = generate_database(catalog, seed=4)
        indexed = catalog.clone()
        indexed.add_index(Index("t", ("x",)))
        indexed.add_index(Index("t", ("y",)))
        return catalog, indexed, database

    def test_results_match_seqscan(self, env):
        catalog, indexed, database = env
        sql = "SELECT id FROM t WHERE x BETWEEN 2 AND 5 AND y BETWEEN 3 AND 6"
        plan, rows = run_query(sql, indexed, database)
        __, expected = run_query(sql, catalog, database)
        assert sorted(rows) == sorted(expected)

    def test_residual_filters_applied(self, env):
        catalog, indexed, database = env
        sql = (
            "SELECT id FROM t WHERE x BETWEEN 2 AND 5 AND y BETWEEN 3 AND 6 "
            "AND z < 0.5"
        )
        __, rows = run_query(sql, indexed, database)
        __, expected = run_query(sql, catalog, database)
        assert sorted(rows) == sorted(expected)
