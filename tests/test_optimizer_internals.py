"""White-box tests for optimizer internals: matching, costing, pruning."""

import math

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, DataType, Distribution, Index, Table
from repro.optimizer import PlannerSettings
from repro.optimizer import joins as J
from repro.optimizer import paths as P
from repro.optimizer import selectivity as S
from repro.optimizer.planner import _PathSet
from repro.optimizer.plan import Plan
from repro.sql import bind_sql

SETTINGS = PlannerSettings()


@pytest.fixture
def table():
    return Table(
        "t",
        [
            Column("a", DataType.INT, Distribution(kind="uniform_int", low=0, high=99)),
            Column("b", DataType.DOUBLE, Distribution(kind="uniform", low=0, high=1)),
            Column("c", DataType.INT, Distribution(kind="zipf", n_values=10, s=1.0)),
            Column("d", DataType.INT, Distribution(kind="uniform_int", low=0, high=9,
                                                   null_frac=0.2)),
        ],
        row_count=100_000,
    ).build_stats()


@pytest.fixture
def catalog(table):
    cat = Catalog()
    cat.add_table(table)
    return cat


def filters_for(catalog, where):
    bq = bind_sql("SELECT a FROM t WHERE " + where, catalog)
    return bq, bq.filters_for("t")


class TestSelectivity:
    def test_eq_uniform(self, catalog, table):
        __, [f] = filters_for(catalog, "a = 5")
        assert S.filter_selectivity(f, table) == pytest.approx(0.01, rel=0.05)

    def test_ne_complements_eq(self, catalog, table):
        __, [f] = filters_for(catalog, "a <> 5")
        assert S.filter_selectivity(f, table) == pytest.approx(0.99, rel=0.05)

    def test_range(self, catalog, table):
        __, [f] = filters_for(catalog, "a BETWEEN 10 AND 29")
        assert S.filter_selectivity(f, table) == pytest.approx(0.2, rel=0.15)

    def test_in_sums_eq(self, catalog, table):
        __, [f] = filters_for(catalog, "a IN (1, 2, 3)")
        assert S.filter_selectivity(f, table) == pytest.approx(0.03, rel=0.15)

    def test_null_fractions(self, catalog, table):
        __, [f] = filters_for(catalog, "d IS NULL")
        assert S.filter_selectivity(f, table) == pytest.approx(0.2, rel=0.01)
        __, [f] = filters_for(catalog, "d IS NOT NULL")
        assert S.filter_selectivity(f, table) == pytest.approx(0.8, rel=0.01)

    def test_conjunction_multiplies(self, catalog, table):
        __, fs = filters_for(catalog, "a = 5 AND b < 0.5")
        combined = S.conjunction_selectivity(fs, table)
        product = S.filter_selectivity(fs[0], table) * S.filter_selectivity(
            fs[1], table
        )
        assert combined == pytest.approx(product)

    def test_equality_fraction_join_probe(self, table):
        assert S.equality_fraction(table, "a") == pytest.approx(1.0 / 100, rel=0.05)

    @given(lo=st.integers(0, 99), hi=st.integers(0, 99))
    @hsettings(max_examples=40, deadline=None)
    def test_selectivity_always_in_unit_interval(self, lo, hi):
        cat = Catalog()
        t = Table(
            "t",
            [Column("a", DataType.INT, Distribution(kind="uniform_int", low=0, high=99))],
            row_count=1000,
        ).build_stats()
        cat.add_table(t)
        __, [f] = filters_for(cat, "a BETWEEN %d AND %d" % (lo, hi))
        assert 0.0 <= S.filter_selectivity(f, t) <= 1.0


class TestIndexMatching:
    def test_eq_prefix_then_range(self, catalog, table):
        __, fs = filters_for(catalog, "a = 5 AND b < 0.2")
        match = P.match_index(Index("t", ("a", "b")), fs, table)
        assert len(match.boundary_filters) == 2
        assert match.eq_prefix == 1
        assert match.residual_filters == ()

    def test_range_closes_prefix(self, catalog, table):
        __, fs = filters_for(catalog, "a < 50 AND b < 0.2")
        match = P.match_index(Index("t", ("a", "b")), fs, table)
        assert len(match.boundary_filters) == 1  # only the range on a
        assert [f.column for f in match.residual_filters] == ["b"]

    def test_wrong_leading_column_matches_nothing(self, catalog, table):
        __, fs = filters_for(catalog, "b < 0.2")
        match = P.match_index(Index("t", ("a", "b")), fs, table)
        assert not match.boundary_filters
        assert match.boundary_selectivity == 1.0

    def test_param_column_extends_prefix(self, catalog, table):
        __, fs = filters_for(catalog, "b < 0.2")
        match = P.match_index(
            Index("t", ("a", "b")), fs, table, param_columns=("a",)
        )
        assert match.param_columns == ("a",)
        assert match.eq_prefix == 1
        assert len(match.boundary_filters) == 1  # the range on b

    def test_ordering_columns_drop_eq_prefix(self, catalog, table):
        __, fs = filters_for(catalog, "a = 5")
        match = P.match_index(Index("t", ("a", "b", "c")), fs, table)
        assert match.ordering_columns == ("b", "c")


class TestMackertLohman:
    def test_never_exceeds_pages(self):
        for pages in (1, 10, 1000):
            for tuples in (0, 1, 50, 10**7):
                assert P.mackert_lohman_pages(pages, tuples) <= pages

    def test_monotone_in_tuples(self):
        values = [P.mackert_lohman_pages(500, n) for n in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_single_tuple_about_one_page(self):
        assert P.mackert_lohman_pages(10_000, 1) == pytest.approx(1.0, rel=0.01)


class TestSortCosting:
    def make_input(self, rows, width=16):
        return Plan(total_cost=100.0, rows=rows, width=width)

    def test_in_memory_vs_external(self):
        small = J.sort_path(self.make_input(1000), (("t", "a", True),), SETTINGS)
        big = J.sort_path(self.make_input(10_000_000), (("t", "a", True),), SETTINGS)
        assert not small.external
        assert big.external

    def test_cost_superlinear(self):
        # Subtract the constant child cost: the sort itself grows ~ n log n.
        costs = [
            J.sort_path(self.make_input(n), (("t", "a", True),), SETTINGS).total_cost
            - 100.0
            for n in (1000, 10_000, 100_000)
        ]
        assert costs[1] / costs[0] > 10
        assert costs[2] / costs[1] > 10

    def test_sort_provides_ordering(self):
        keys = (("t", "a", True), ("t", "b", False))
        sort = J.sort_path(self.make_input(100), keys, SETTINGS)
        assert sort.ordering == keys


class TestOrderingSatisfies:
    def test_prefix_rule(self):
        provided = (("t", "a", True), ("t", "b", True))
        assert J.ordering_satisfies(provided, (("t", "a", True),))
        assert J.ordering_satisfies(provided, provided)
        assert not J.ordering_satisfies(provided, (("t", "b", True),))
        assert not J.ordering_satisfies((), (("t", "a", True),))

    def test_empty_requirement_always_satisfied(self):
        assert J.ordering_satisfies((), ())
        assert J.ordering_satisfies((("t", "a", True),), ())

    def test_direction_matters(self):
        assert not J.ordering_satisfies(
            (("t", "a", True),), (("t", "a", False),)
        )


class TestHashJoinCosting:
    def outer(self, rows):
        return Plan(total_cost=1000.0, rows=rows, width=16)

    def test_batching_kicks_in(self, catalog):
        bq = bind_sql("SELECT a FROM t", catalog)
        clause_stub = bq.joins  # empty; fabricate via binder below
        from repro.sql.binder import BoundJoin

        clause = BoundJoin("x", "t", "a", "y", "t", "a")
        small = J.hashjoin_path(
            self.outer(1000), Plan(total_cost=500, rows=1000, width=16),
            (clause,), 1000, SETTINGS,
        )
        huge = J.hashjoin_path(
            self.outer(1000), Plan(total_cost=500, rows=10_000_000, width=64),
            (clause,), 1000, SETTINGS,
        )
        assert small.batches == 1
        assert huge.batches > 1

    def test_no_clauses_returns_none(self):
        assert J.hashjoin_path(self.outer(10), self.outer(10), (), 100, SETTINGS) is None


class TestPathSetPruning:
    def path(self, cost, ordering=()):
        return Plan(total_cost=cost, rows=10, ordering=ordering)

    def test_dominated_path_dropped(self):
        ps = _PathSet()
        ps.add(self.path(10.0))
        ps.add(self.path(20.0))  # same (empty) ordering, more expensive
        assert len(ps) == 1
        assert ps.cheapest().total_cost == 10.0

    def test_better_ordered_path_kept_despite_cost(self):
        ps = _PathSet()
        ps.add(self.path(10.0))
        ps.add(self.path(50.0, ordering=(("t", "a", True),)))
        assert len(ps) == 2

    def test_cheaper_and_better_ordered_dominates(self):
        ps = _PathSet()
        ps.add(self.path(50.0))
        ps.add(self.path(10.0, ordering=(("t", "a", True),)))
        assert len(ps) == 1
        assert ps.cheapest().ordering

    def test_capacity_cap(self):
        ps = _PathSet()
        for i in range(40):
            ps.add(self.path(float(i), ordering=(("t", "c%d" % i, True),)))
        assert len(ps) <= 12


class TestScanPathGeneration:
    def test_no_boundary_no_interest_no_index_path(self, catalog, table):
        catalog.add_index(Index("t", ("a",)))
        bq = bind_sql("SELECT a FROM t WHERE b < 0.5", catalog)
        paths = P.scan_paths(bq, "t", catalog, SETTINGS)
        kinds = {p.node_type for p in paths}
        assert kinds == {"SeqScan"}

    def test_interesting_column_generates_ordered_scan(self, catalog, table):
        catalog.add_index(Index("t", ("a",)))
        bq = bind_sql("SELECT a FROM t WHERE b < 0.5", catalog)
        paths = P.scan_paths(bq, "t", catalog, SETTINGS, interesting_columns={"a"})
        assert any(p.node_type in ("IndexScan", "IndexOnlyScan") for p in paths)

    def test_boundary_generates_index_and_bitmap(self, catalog, table):
        catalog.add_index(Index("t", ("a",)))
        bq = bind_sql("SELECT a, b FROM t WHERE a = 3", catalog)
        kinds = {p.node_type for p in P.scan_paths(bq, "t", catalog, SETTINGS)}
        assert "IndexScan" in kinds and "BitmapHeapScan" in kinds

    def test_index_only_when_covered(self, catalog, table):
        catalog.add_index(Index("t", ("a",), include=("b",)))
        bq = bind_sql("SELECT a, b FROM t WHERE a = 3", catalog)
        assert any(
            p.node_type == "IndexOnlyScan"
            for p in P.scan_paths(bq, "t", catalog, SETTINGS)
        )

    def test_parameterized_paths_per_probe_rows(self, catalog, table):
        catalog.add_index(Index("t", ("a",)))
        bq = bind_sql("SELECT a FROM t", catalog)
        [path] = P.parameterized_paths(bq, "t", catalog, SETTINGS, ("a",))
        assert path.is_parameterized
        assert path.rows == pytest.approx(1000.0, rel=0.1)  # 100k rows / 100 values

    def test_rows_identical_across_access_paths(self, catalog, table):
        catalog.add_index(Index("t", ("a",)))
        bq = bind_sql("SELECT a, b FROM t WHERE a = 3 AND b < 0.7", catalog)
        rows = {round(p.rows, 6) for p in P.scan_paths(bq, "t", catalog, SETTINGS)}
        assert len(rows) == 1
