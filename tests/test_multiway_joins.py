"""Stress tests: 3- and 4-way join planning and execution."""

import math

import pytest

from repro.catalog import Catalog, Column, DataType, Distribution, Index, Table
from repro.data import generate_database
from repro.executor import run_query
from repro.optimizer import CostService, PlannerSettings
from repro.workloads import tpch_catalog


def star_catalog(rows=800):
    """A small star schema: fact + three dimensions."""
    catalog = Catalog()
    catalog.add_table(
        Table(
            "fact",
            [
                Column("fid", DataType.INT, Distribution(kind="sequence")),
                Column("d1", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=19)),
                Column("d2", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=14)),
                Column("d3", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=9)),
                Column("m", DataType.DOUBLE,
                       Distribution(kind="uniform", low=0.0, high=100.0)),
            ],
            row_count=rows,
        ).build_stats()
    )
    for name, n in (("dim1", 20), ("dim2", 15), ("dim3", 10)):
        catalog.add_table(
            Table(
                name,
                [
                    Column("id", DataType.INT, Distribution(kind="sequence")),
                    Column("attr", DataType.INT,
                           Distribution(kind="uniform_int", low=0, high=4)),
                ],
                row_count=n,
            ).build_stats()
        )
    return catalog


FOUR_WAY = (
    "SELECT f.fid, a.attr, b.attr, c.attr "
    "FROM fact f, dim1 a, dim2 b, dim3 c "
    "WHERE f.d1 = a.id AND f.d2 = b.id AND f.d3 = c.id AND f.m < 25"
)


class TestPlanning:
    def test_four_way_join_plans(self):
        catalog = star_catalog()
        plan = CostService(catalog).plan(FOUR_WAY)
        joins = [n for n in plan.walk() if "Join" in n.node_type or n.node_type == "NestLoop"]
        assert len(joins) == 3
        assert math.isfinite(plan.total_cost)

    def test_four_way_with_indexes_not_worse(self):
        catalog = star_catalog()
        indexed = catalog.clone()
        for name in ("dim1", "dim2", "dim3"):
            indexed.add_index(Index(name, ("id",)))
        indexed.add_index(Index("fact", ("d1",)))
        assert CostService(indexed).cost(FOUR_WAY) <= CostService(catalog).cost(
            FOUR_WAY
        ) + 1e-6

    def test_tpch_three_way_join(self):
        catalog = tpch_catalog(scale=0.01)
        sql = (
            "SELECT c.c_custkey, o.o_orderkey, l.l_quantity "
            "FROM customer c, orders o, lineitem l "
            "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
            "AND c.c_mktsegment = 2 AND l.l_shipdate < 500"
        )
        plan = CostService(catalog).plan(sql)
        assert math.isfinite(plan.total_cost)

    def test_join_order_independent_of_from_order(self):
        """The DP must find the same best cost however FROM is written."""
        catalog = star_catalog()
        svc = CostService(catalog)
        a = svc.cost(
            "SELECT f.fid FROM fact f, dim1 a, dim2 b "
            "WHERE f.d1 = a.id AND f.d2 = b.id"
        )
        b = svc.cost(
            "SELECT f.fid FROM dim2 b, fact f, dim1 a "
            "WHERE f.d2 = b.id AND f.d1 = a.id"
        )
        assert a == pytest.approx(b, rel=1e-9)


class TestExecution:
    @pytest.fixture(scope="class")
    def env(self):
        catalog = star_catalog(rows=400)
        return catalog, generate_database(catalog, seed=2)

    def test_four_way_results_match_across_designs(self, env):
        catalog, database = env
        indexed = catalog.clone()
        for name in ("dim1", "dim2", "dim3"):
            indexed.add_index(Index(name, ("id",)))
        __, base = run_query(FOUR_WAY, catalog, database)
        __, tuned = run_query(FOUR_WAY, indexed, database)
        assert sorted(map(repr, base)) == sorted(map(repr, tuned))
        assert base  # the join actually produces rows

    def test_four_way_matches_forced_join_methods(self, env):
        catalog, database = env
        __, expected = run_query(FOUR_WAY, catalog, database)
        for settings in (
            PlannerSettings(enable_hashjoin=False),
            PlannerSettings(enable_mergejoin=False, enable_nestloop=False),
        ):
            __, actual = run_query(FOUR_WAY, catalog, database, settings)
            assert sorted(map(repr, actual)) == sorted(map(repr, expected))

    def test_aggregate_over_four_way(self, env):
        catalog, database = env
        sql = (
            "SELECT a.attr, COUNT(*) FROM fact f, dim1 a, dim2 b, dim3 c "
            "WHERE f.d1 = a.id AND f.d2 = b.id AND f.d3 = c.id "
            "GROUP BY a.attr ORDER BY a.attr"
        )
        __, rows = run_query(sql, catalog, database)
        total = sum(count for __, count in rows)
        __, flat = run_query(FOUR_WAY.replace(" AND f.m < 25", ""), catalog, database)
        assert total == len(flat)


class TestConfigurationSerialization:
    def test_round_trip(self, sdss_catalog):
        from repro.catalog.serialize import (
            configuration_from_dict,
            configuration_to_dict,
        )
        from repro.catalog import VerticalFragment, VerticalLayout
        from repro.whatif import Configuration

        config = Configuration(
            indexes=frozenset([Index("photoobj", ("ra", "dec"))]),
            layouts=(
                VerticalLayout(
                    "specobj",
                    (
                        VerticalFragment("specobj", ("specid", "z")),
                        VerticalFragment(
                            "specobj", ("objid", "zerr", "class")
                        ),
                    ),
                ),
            ),
        )
        restored = configuration_from_dict(configuration_to_dict(config))
        assert restored == config

    def test_version_check(self):
        from repro.catalog.serialize import configuration_from_dict
        from repro.util import CatalogError

        with pytest.raises(CatalogError):
            configuration_from_dict({"version": 0})
