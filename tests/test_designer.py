"""Tests for the Designer facade: the three demo scenarios end to end."""

import pytest

from repro.catalog import Index, VerticalFragment, VerticalLayout
from repro.colt import ColtSettings
from repro.designer import Designer
from repro.optimizer import CostService
from repro.util import DesignError
from repro.workloads.drift import DriftPhase, drifting_stream
from repro.workloads import sdss

WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0),
    ("SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1", 1.0),
    ("SELECT p.ra, s.z FROM photoobj p, specobj s "
     "WHERE p.objid = s.objid AND s.z > 6.5", 1.0),
    ("SELECT ra, dec FROM photoobj WHERE dec > 80", 1.0),
]


@pytest.fixture
def designer(sdss_catalog):
    return Designer(sdss_catalog)


class TestScenario1:
    def test_evaluate_user_design(self, designer):
        evaluation = designer.evaluate_design(
            WORKLOAD,
            indexes=[Index("photoobj", ("ra",)), Index("photoobj", ("ra", "dec"))],
        )
        assert evaluation.report.average_improvement_pct > 0
        assert evaluation.interaction_graph is not None
        assert "What-if evaluation" in evaluation.to_text()

    def test_single_index_skips_graph(self, designer):
        evaluation = designer.evaluate_design(
            WORKLOAD, indexes=[Index("photoobj", ("ra",))]
        )
        assert evaluation.interaction_graph is None

    def test_partition_design_produces_rewrites(self, designer):
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj",
                    ("rmag", "gmag", "type", "flags", "status"),
                ),
            ),
        )
        evaluation = designer.evaluate_design(WORKLOAD, layouts=[layout])
        assert evaluation.rewritten_queries
        assert any("photoobj__" in sql for sql in evaluation.rewritten_queries)

    def test_empty_workload_rejected(self, designer):
        with pytest.raises(DesignError):
            designer.evaluate_design([], indexes=[Index("photoobj", ("ra",))])


class TestScenario2:
    def test_recommendation_improves_workload(self, designer):
        rec = designer.recommend(WORKLOAD, storage_budget_pages=20_000)
        assert rec.combined_workload_cost < rec.base_workload_cost
        assert rec.improvement_pct > 0

    def test_budget_respected(self, designer, sdss_catalog):
        rec = designer.recommend(WORKLOAD, storage_budget_pages=8_000)
        assert rec.index_recommendation.size_pages <= 8_000

    def test_schedule_present_for_multi_index(self, designer):
        rec = designer.recommend(WORKLOAD, storage_budget_pages=30_000)
        if len(rec.index_recommendation.indexes) >= 2:
            assert rec.schedule is not None
            assert rec.naive_schedule is not None
            assert rec.schedule.area <= rec.naive_schedule.area + 1e-6

    def test_combined_cost_verified_by_optimizer(self, designer, sdss_catalog):
        rec = designer.recommend(
            WORKLOAD, storage_budget_pages=20_000, partitions=False
        )
        real = CostService(
            rec.combined_configuration.apply(sdss_catalog)
        ).workload_cost(WORKLOAD)
        assert rec.combined_workload_cost == pytest.approx(real, rel=0.05)

    def test_seed_indexes_steer_search(self, designer):
        seed = Index("photoobj", ("dec",))
        rec = designer.recommend(
            WORKLOAD, storage_budget_pages=100_000, seed_indexes=[seed]
        )
        assert rec is not None  # seed accepted without error

    def test_to_text_sections(self, designer):
        rec = designer.recommend(WORKLOAD, storage_budget_pages=20_000)
        text = rec.to_text()
        assert "Recommended indexes" in text
        assert "combined design" in text


class TestScenario3:
    def test_continuous_tuning_reports(self, designer):
        phases = (DriftPhase("pos", 30, ((sdss.template("cone_search"), 1.0),)),)
        report = designer.continuous(
            drifting_stream(phases, seed=3),
            ColtSettings(epoch_length=10, space_budget_pages=100_000),
        )
        assert len(report.epochs) == 3
        assert report.alerts >= 1

    def test_manual_tuner_keeps_alert_pending(self, designer):
        tuner = designer.continuous_tuner(
            ColtSettings(epoch_length=10, auto_adopt=False)
        )
        phases = (DriftPhase("pos", 20, ((sdss.template("cone_search"), 1.0),)),)
        for __, sql in drifting_stream(phases, seed=3):
            tuner.observe(sql)
        tuner.flush()
        assert tuner.pending_alert is not None


class TestMaterialize:
    def test_materialize_returns_new_catalog(self, designer, sdss_catalog):
        rec = designer.recommend(WORKLOAD, storage_budget_pages=20_000,
                                 partitions=False)
        new_catalog, build_cost = designer.materialize(rec.combined_configuration)
        assert build_cost > 0
        for ix in rec.index_recommendation.indexes:
            assert new_catalog.has_index(ix)
        assert not sdss_catalog.has_index(rec.index_recommendation.indexes[0])
