"""Golden regression tests: each ``benchmarks/bench_claim_*.py`` scenario
in miniature.

The full benchmarks print tables and assert on wall-clock; these tests
re-run each scenario on the small shared SDSS catalog and pin the
*paper-direction invariants* — the qualitative claims the benchmarks
exist to demonstrate — so a regression shows up in pytest rather than in
someone eyeballing benchmark JSON.
"""

import random

import pytest

from repro.catalog import Index
from repro.cophy import CoPhyAdvisor, candidate_indexes
from repro.evaluation import WorkloadEvaluator
from repro.inum import InumCostModel
from repro.interaction import schedule_naive, schedule_optimal
from repro.optimizer import CostService
from repro.whatif import Configuration, WhatIfSession

WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0),
    ("SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1", 1.0),
    ("SELECT p.ra, s.z FROM photoobj p, specobj s "
     "WHERE p.objid = s.objid AND s.z > 6.5", 1.0),
    ("SELECT type, COUNT(*) FROM photoobj WHERE gmag < 18 GROUP BY type", 1.0),
    ("SELECT ra FROM photoobj WHERE dec > 85 ORDER BY ra LIMIT 5", 1.0),
]

CANDIDATES = [
    Index("photoobj", ("ra",)),
    Index("photoobj", ("rmag", "type")),
    Index("photoobj", ("objid",)),
    Index("specobj", ("z",), include=("objid",)),
    Index("photoobj", ("gmag",)),
    Index("photoobj", ("dec",)),
]


def make_configs(n, seed=0, max_size=4):
    rng = random.Random(seed)
    return [
        Configuration(
            indexes=frozenset(rng.sample(CANDIDATES, rng.randint(0, max_size)))
        )
        for __ in range(n)
    ]


class TestClaimInumSpeedup:
    """bench_claim_inum_speedup: INUM pays optimizer calls once, per
    interesting-order vector — not per configuration."""

    def test_fewer_optimizer_calls_than_reoptimization(self, sdss_catalog):
        configs = make_configs(12, seed=1)

        naive_calls = 0
        naive_costs = []
        for config in configs:
            service = CostService(config.apply(sdss_catalog))
            naive_costs.append(service.workload_cost(WORKLOAD))
            naive_calls += service.optimizer_calls

        model = InumCostModel(sdss_catalog)
        warm_calls = model.warm(WORKLOAD)
        inum_costs = [model.workload_cost(WORKLOAD, c) for c in configs]

        assert warm_calls < naive_calls / 2  # one-off investment, amortized
        assert model.precompute_calls == warm_calls  # zero calls while evaluating
        for estimate, real in zip(inum_costs, naive_costs):
            assert estimate == pytest.approx(real, rel=0.05)


class TestClaimWhatIfOverhead:
    """bench_claim_whatif_overhead: simulating a design costs a couple of
    optimizer calls per query, not a physical build, and never leaks into
    the real catalog."""

    def test_call_budget_and_isolation(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        config = Configuration(indexes=frozenset(CANDIDATES[:3]))
        before = {ix.name for ix in sdss_catalog.indexes}
        report = session.evaluate(WORKLOAD, config)
        assert session.optimizer_calls <= 2 * len(WORKLOAD) + 5
        assert report.average_improvement_pct > 0
        assert {ix.name for ix in sdss_catalog.indexes} == before


class TestClaimZeroSizeWhatIf:
    """bench_claim_zero_size_whatif: honest size accounting keeps the
    recommendation within budget (ignoring sizes is what misleads)."""

    def test_recommendation_respects_budget(self, sdss_catalog):
        advisor = CoPhyAdvisor(sdss_catalog)
        total = sum(
            ix.size_pages(sdss_catalog.table(ix.table_name)) for ix in CANDIDATES
        )
        budget = total // 3  # cannot fit everything
        rec = advisor.recommend(
            WORKLOAD, budget, candidates=list(CANDIDATES), solver="greedy"
        )
        assert rec.size_pages <= budget
        # Predicted impact agrees with the cost model's own account.
        assert rec.predicted_workload_cost == pytest.approx(
            advisor.cost_model.workload_cost(WORKLOAD, rec.configuration),
            rel=1e-6,
        )


class TestClaimCophyVsGreedy:
    """bench_claim_cophy_vs_greedy: the exact solver is never worse than
    the greedy heuristic on the same problem."""

    @pytest.mark.parametrize("budget_divisor", [2, 4])
    def test_milp_dominates_greedy(self, sdss_catalog, budget_divisor):
        total = sum(
            ix.size_pages(sdss_catalog.table(ix.table_name)) for ix in CANDIDATES
        )
        budget = total // budget_divisor
        advisor = CoPhyAdvisor(sdss_catalog)
        milp = advisor.recommend(
            WORKLOAD, budget, candidates=list(CANDIDATES), solver="milp"
        )
        greedy = advisor.recommend(
            WORKLOAD, budget, candidates=list(CANDIDATES), solver="greedy"
        )
        assert milp.predicted_workload_cost \
            <= greedy.predicted_workload_cost + 1e-6


class TestClaimSchedule:
    """bench_claim_schedule: interaction-aware ordering beats naive
    benefit ordering, and benefit only accumulates."""

    def test_optimal_beats_naive_and_is_monotone(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        chosen = [CANDIDATES[0], CANDIDATES[3], CANDIDATES[5]]

        def cost_fn(index_set):
            return evaluator.workload_cost(
                WORKLOAD, Configuration(indexes=frozenset(index_set))
            )

        optimal = schedule_optimal(chosen, cost_fn, sdss_catalog)
        naive = schedule_naive(chosen, cost_fn, sdss_catalog)
        assert optimal.area <= naive.area + 1e-6
        costs = [cost for __, cost in optimal.timeline]
        assert all(b <= a + 1e-6 for a, b in zip(costs, costs[1:]))


class TestClaimBatchedEval:
    """bench_claim_batched_eval: the batched evaluator prices a sweep
    with zero optimizer calls and exactly the per-call numbers."""

    def test_batched_matches_per_call_with_zero_calls(self, sdss_catalog):
        configs = make_configs(10, seed=4)
        per_call = InumCostModel(sdss_catalog)
        evaluator = WorkloadEvaluator(sdss_catalog)
        evaluator.warm(WORKLOAD)
        before = evaluator.precompute_calls
        totals = evaluator.workload_costs(WORKLOAD, configs)
        assert evaluator.precompute_calls == before
        for config, total in zip(configs, totals):
            assert total == pytest.approx(
                per_call.workload_cost(WORKLOAD, config), rel=1e-12
            )

    def test_pool_is_shared_across_designer_components(self, sdss_catalog):
        """The backplane property the tentpole exists for: one pool, many
        consumers, no duplicate cache builds."""
        from repro.designer import Designer

        designer = Designer(sdss_catalog)
        designer.evaluator.warm(WORKLOAD)
        built = designer.evaluator.precompute_calls
        designer.evaluate_design(WORKLOAD, indexes=[CANDIDATES[0], CANDIDATES[5]])
        rec = designer.recommend(
            WORKLOAD, storage_budget_pages=50_000, solver="greedy",
            partitions=False, schedule=False,
        )
        assert rec is not None
        # No designer component rebuilt a cache the pool already had.
        assert designer.evaluator.precompute_calls == built
        assert designer.evaluator.pool.stats.hits > 0


class TestClaimServiceThroughput:
    """bench_claim_service_throughput: the multi-tenant service dedupes
    cross-tenant work through the shared sharded backplane — fewer total
    cache builds than running each tenant alone — without changing any
    tenant's recommendations.  (The 2x wall-clock claim is asserted on
    quiet hardware by the full benchmark; here we pin its direction via
    exact build accounting.)"""

    def _fleet(self):
        from repro.workloads import sdss_catalog as make_sdss
        from repro.workloads import tpch_catalog as make_tpch
        from repro.workloads.drift import (
            default_phases,
            drifting_stream,
            tpch_phases,
        )

        catalogs = {"sdss": make_sdss(scale=0.01), "tpch": make_tpch(scale=0.01)}
        mixes = {"sdss": (default_phases, 11), "tpch": (tpch_phases, 7)}

        def stream(key):
            phases_fn, seed = mixes[key]
            return drifting_stream(phases_fn(8), seed=seed)

        tenants = [
            ("astro-1", "sdss"), ("astro-2", "sdss"),
            ("dss-1", "tpch"), ("dss-2", "tpch"),
        ]
        return catalogs, tenants, stream

    @staticmethod
    def _options():
        from repro.colt import ColtSettings

        return dict(
            colt_settings=ColtSettings(
                epoch_length=6, space_budget_pages=50_000
            ),
            recommend_every=10,
            window=12,
        )

    @staticmethod
    def _outcome(session):
        return (
            session.status()["configuration"],
            [(r.trigger, r.indexes) for r in session.recommendations],
        )

    def test_service_dedupes_builds_with_identical_recommendations(self):
        from repro.evaluation import WorkloadEvaluator
        from repro.service import TenantSession, TuningService

        catalogs, tenants, stream = self._fleet()

        alone, alone_builds = {}, 0
        for name, key in tenants:
            evaluator = WorkloadEvaluator(catalogs[key])
            evaluator.warm_up([sql for __, sql in stream(key)])
            session = TenantSession(
                name, catalogs[key], evaluator, **self._options()
            )
            session.drain(stream(key))
            alone[name] = session
            alone_builds += evaluator.pool.stats.optimizer_calls

        service = TuningService(shards=4, warm_threads=4)
        for key, catalog in catalogs.items():
            service.add_backplane(key, catalog)
        for name, key in tenants:
            service.add_tenant(name, key, **self._options())
        for key in catalogs:
            service.warm_up(key, [sql for __, sql in stream(key)])
        service.run_streams({name: stream(key) for name, key in tenants})

        # Identical per-tenant outcomes: sharing never changes results.
        for name, __ in tenants:
            assert self._outcome(service.tenant(name)) == \
                self._outcome(alone[name]), name

        # Two tenants per stream -> the fleet builds each cache once,
        # i.e. exactly half the alone total, and warm-up did all of it.
        service_builds = sum(
            service.backplane(key).pool.stats.optimizer_calls
            for key in catalogs
        )
        assert service_builds * 2 == alone_builds

    def test_concurrent_warm_up_is_bit_identical_to_sequential(self):
        from repro.evaluation import ShardedInumCachePool, WorkloadEvaluator
        from repro.workloads import sdss_workload

        catalogs, __, ___ = self._fleet()
        workload = sdss_workload(n_queries=16, seed=5, write_fraction=0.2)
        sequential = WorkloadEvaluator(catalogs["sdss"])
        concurrent = WorkloadEvaluator(
            catalogs["sdss"], pool=ShardedInumCachePool(shards=4)
        )
        calls_seq = sequential.warm_up(workload)
        calls_par = concurrent.warm_up(workload, threads=4)
        assert calls_seq == calls_par
        configs = [
            Configuration.empty(),
            Configuration(indexes=frozenset({Index("photoobj", ("ra",))})),
            Configuration(
                indexes=frozenset(
                    {Index("photoobj", ("type",)),
                     Index("specobj", ("bestobjid",))}
                )
            ),
        ]
        for config in configs:
            assert sequential.workload_cost(workload, config) == \
                concurrent.workload_cost(workload, config)
