"""Backward index scans, plus property-based tests of the BIP solvers on
randomly generated problem instances."""

import math

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.catalog import Index
from repro.cophy.bip import BipProblem, PlanTerm, QueryTerm, SlotOptions
from repro.cophy.greedy import greedy_select
from repro.cophy.solvers import solve_bip, solve_branch_and_bound, solve_lp_rounding
from repro.data import generate_database
from repro.executor import run_query
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.whatif import Configuration


class TestBackwardScans:
    DESC_SQL = "SELECT ra FROM photoobj WHERE ra < 300 ORDER BY ra DESC LIMIT 5"

    def test_desc_order_uses_backward_scan(self, sdss_with_indexes):
        plan = CostService(sdss_with_indexes).plan(self.DESC_SQL)
        kinds = [n.node_type for n in plan.walk()]
        assert "Sort" not in kinds
        assert any(getattr(n, "backward", False) for n in plan.walk())

    def test_backward_beats_sort_for_limit(self, sdss_catalog, sdss_with_indexes):
        with_ix = CostService(sdss_with_indexes).cost(self.DESC_SQL)
        without = CostService(sdss_catalog).cost(self.DESC_SQL)
        assert with_ix < without / 100

    def test_inum_exact_on_desc_queries(self, sdss_catalog):
        config = Configuration.of(Index("photoobj", ("ra",)))
        inum = InumCostModel(sdss_catalog)
        real = CostService(config.apply(sdss_catalog)).cost(self.DESC_SQL)
        assert inum.cost(self.DESC_SQL, config) == pytest.approx(real, rel=0.02)

    def test_executor_returns_descending_rows(self):
        from tests.test_executor import exec_catalog

        catalog = exec_catalog(rows=1500)
        indexed = catalog.clone()
        indexed.add_index(Index("t", ("a",)))
        database = generate_database(catalog, seed=6)
        sql = "SELECT a FROM t WHERE a > 5 ORDER BY a DESC"
        plan, rows = run_query(sql, indexed, database)
        values = [r[0] for r in rows]
        assert values == sorted(values, reverse=True)
        __, expected = run_query(sql, catalog, database)
        assert sorted(map(repr, rows)) == sorted(map(repr, expected))


# ----------------------------------------------------------------------
# Random BIP instances.
# ----------------------------------------------------------------------


@st.composite
def bip_instances(draw):
    n_candidates = draw(st.integers(1, 5))
    candidates = [Index("t", ("c%d" % i,)) for i in range(n_candidates)]
    sizes = [float(draw(st.integers(1, 20))) for __ in range(n_candidates)]
    budget = float(draw(st.integers(0, 40)))
    problem = BipProblem(
        candidates=candidates,
        sizes=sizes,
        budget_pages=budget,
        index_penalties=[
            float(draw(st.integers(0, 30))) for __ in range(n_candidates)
        ],
    )
    n_queries = draw(st.integers(1, 4))
    for __ in range(n_queries):
        n_plans = draw(st.integers(1, 2))
        term = QueryTerm(weight=float(draw(st.integers(1, 3))), plans=[])
        for __ in range(n_plans):
            plan = PlanTerm(
                internal_cost=float(draw(st.integers(0, 50))), slots=[]
            )
            n_slots = draw(st.integers(1, 2))
            for __ in range(n_slots):
                options = [(-1, float(draw(st.integers(50, 200))))]
                for pos in range(n_candidates):
                    if draw(st.booleans()):
                        options.append((pos, float(draw(st.integers(1, 100)))))
                plan.slots.append(SlotOptions(options=options))
            term.plans.append(plan)
        problem.queries.append(term)
    return problem


class TestSolverProperties:
    @given(problem=bip_instances())
    @hsettings(max_examples=40, deadline=None)
    def test_milp_feasible_and_dominates_greedy(self, problem):
        milp = solve_bip(problem)
        greedy = greedy_select(problem)
        assert problem.config_size(milp.chosen_positions) <= problem.budget_pages
        assert milp.objective <= greedy.objective + 1e-6
        assert milp.objective <= problem.config_cost(()) + 1e-6

    @given(problem=bip_instances())
    @hsettings(max_examples=25, deadline=None)
    def test_branch_and_bound_matches_milp(self, problem):
        milp = solve_bip(problem)
        bnb = solve_branch_and_bound(problem, max_nodes=600)
        assert bnb.objective == pytest.approx(milp.objective, rel=1e-6, abs=1e-6)

    @given(problem=bip_instances())
    @hsettings(max_examples=25, deadline=None)
    def test_lp_rounding_feasible(self, problem):
        rounded = solve_lp_rounding(problem)
        assert problem.config_size(rounded.chosen_positions) <= problem.budget_pages
        assert math.isfinite(rounded.objective)

    @given(problem=bip_instances())
    @hsettings(max_examples=25, deadline=None)
    def test_lower_bound_sound(self, problem):
        milp = solve_bip(problem)
        assert milp.lower_bound <= milp.objective + 1e-6

    @given(problem=bip_instances(), data=st.data())
    @hsettings(max_examples=25, deadline=None)
    def test_config_cost_monotone_in_options(self, problem, data):
        """Adding an index to a chosen set never increases config_cost
        beyond its own penalty."""
        n = problem.n_candidates
        chosen = [
            pos for pos in range(n) if data.draw(st.booleans())
        ]
        base = problem.config_cost(chosen)
        for extra in range(n):
            if extra in chosen:
                continue
            enlarged = problem.config_cost(chosen + [extra])
            penalty = problem.index_penalties[extra]
            assert enlarged <= base + penalty + 1e-6
