"""Tests for COLT continuous tuning."""

import pytest

from repro.colt import ColtSettings, ColtTuner
from repro.workloads.drift import DriftPhase, drifting_stream
from repro.workloads import sdss


def small_settings(**overrides):
    defaults = dict(
        epoch_length=10,
        space_budget_pages=100_000,
        whatif_budget=20,
        amortization_epochs=8,
    )
    defaults.update(overrides)
    return ColtSettings(**defaults)


def positional_stream(n, seed=5):
    phases = (DriftPhase("pos", n, ((sdss.template("cone_search"), 1.0),)),)
    return drifting_stream(phases, seed=seed)


class TestEpochMechanics:
    def test_epoch_boundaries(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(positional_stream(35))
        assert [e.queries for e in report.epochs] == [10, 10, 10, 5]

    def test_flush_idempotent(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        for __, sql in positional_stream(12):
            tuner.observe(sql)
        tuner.flush()
        tuner.flush()
        assert len(tuner.report.epochs) == 2

    def test_probe_budget_respected(self, sdss_catalog):
        settings = small_settings(whatif_budget=5, min_whatif_budget=2)
        tuner = ColtTuner(sdss_catalog, settings)
        report = tuner.run(positional_stream(30))
        assert all(e.whatif_probes <= 5 for e in report.epochs)


class TestAdaptation:
    def test_steady_workload_adopts_helpful_index(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(positional_stream(40))
        assert report.adoptions >= 1
        final = report.epochs[-1].configuration
        assert any("ra" in name or "dec" in name for name in final)

    def test_adopted_design_reduces_observed_cost(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(positional_stream(60))
        first, last = report.epochs[0], report.epochs[-1]
        assert last.observed_cost < first.observed_cost

    def test_drift_triggers_new_alerts(self, sdss_catalog):
        # The test catalog only has r/g magnitudes, so phase 2 uses a
        # template pinned to rmag rather than a random band.
        def rmag_cut(rng):
            return (
                "SELECT objid, rmag FROM photoobj WHERE rmag < %.2f AND type = %d"
                % (rng.uniform(14.0, 16.0), rng.randint(1, 3))
            )

        phases = (
            DriftPhase("pos", 30, ((sdss.template("cone_search"), 1.0),)),
            DriftPhase("mag", 30, ((rmag_cut, 1.0),)),
        )
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(drifting_stream(phases, seed=5))
        adopted_epochs = [e.epoch for e in report.epochs if e.adopted]
        # Adoption must happen both before and after the phase switch.
        assert any(e < 3 for e in adopted_epochs)
        assert any(e >= 3 for e in adopted_epochs)

    def test_space_budget_limits_configuration(self, sdss_catalog):
        settings = small_settings(space_budget_pages=10)
        tuner = ColtTuner(sdss_catalog, settings)
        report = tuner.run(positional_stream(30))
        assert report.adoptions == 0
        assert report.epochs[-1].configuration == ()

    def test_build_cost_charged_on_adoption(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(positional_stream(40))
        adopted = [e for e in report.epochs if e.adopted]
        assert adopted and all(e.build_cost > 0 for e in adopted)


class TestAlertingMode:
    def test_manual_mode_raises_alert_without_adopting(self, sdss_catalog):
        settings = small_settings(auto_adopt=False)
        tuner = ColtTuner(sdss_catalog, settings)
        report = tuner.run(positional_stream(40))
        assert report.alerts >= 1
        assert report.adoptions == 0
        assert tuner.pending_alert is not None
        assert tuner.current.is_empty

    def test_candidates_are_single_column(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        tuner.run(positional_stream(20))
        assert all(len(ix.columns) == 1 for ix in tuner.candidates)


class TestWritesInStream:
    def mixed_stream(self, n=30, seed=5):
        """Cone searches interleaved with status-update storms."""
        import random

        rng = random.Random(seed)
        for i in range(n):
            if i % 3 == 2:
                yield ("write",
                       "UPDATE photoobj SET status = %d WHERE objid = %d"
                       % (rng.randint(0, 255), rng.randint(0, 10**5)))
            else:
                yield ("read", sdss.template("cone_search")(rng))

    def test_writes_observed_and_charged(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(self.mixed_stream(30))
        assert report.observed_cost > 0
        assert len(report.epochs) == 3

    def test_maintenance_suppresses_hot_write_column_index(self, sdss_catalog):
        """A candidate on the constantly-updated column must be vetoed by
        its maintenance estimate even if reads would like it a little."""
        import random

        rng = random.Random(9)

        def stream():
            for i in range(60):
                if i % 2 == 0:
                    # Cheap read that mildly benefits from a status index.
                    yield ("read",
                           "SELECT objid FROM photoobj WHERE status = %d"
                           % rng.randint(0, 100))
                else:
                    # Bulk reprocessing: each update rewrites ~10% of the
                    # table, so a status index would churn massively.
                    lo = rng.uniform(0.0, 320.0)
                    yield ("write",
                           "UPDATE photoobj SET status = %d "
                           "WHERE ra BETWEEN %.1f AND %.1f"
                           % (rng.randint(0, 255), lo, lo + 36.0))

        tuner = ColtTuner(sdss_catalog, small_settings())
        tuner.run(stream())
        from repro.catalog import Index

        status_ix = Index("photoobj", ("status",))
        state = tuner.candidates.get(status_ix)
        assert state is not None
        assert state.ewma_maintenance > 0
        assert status_ix not in tuner.current.indexes


class TestSelfRegulation:
    def test_budget_decays_when_stable(self, sdss_catalog):
        settings = small_settings(whatif_budget=16, min_whatif_budget=2)
        tuner = ColtTuner(sdss_catalog, settings)
        tuner.run(positional_stream(200))
        # Long steady stream: probing should have throttled down.
        late = tuner.report.epochs[-1]
        assert late.whatif_probes < 16

    def test_report_totals_consistent(self, sdss_catalog):
        tuner = ColtTuner(sdss_catalog, small_settings())
        report = tuner.run(positional_stream(30))
        assert report.total_cost == pytest.approx(
            report.observed_cost + report.build_cost
        )
        assert "totals:" in report.to_text()
