"""Column-generation CoPhy and sparse slot-block kernels.

Two exactness pins, zero tolerance throughout:

* :func:`repro.cophy.colgen.solve_colgen` must return the identical
  design and objective as greedy over the exhaustively materialized BIP
  (``greedy_select(build_bip(...))``) — on every SDSS and TPC-H
  template, across budgets and ranking modes, on fuzzed environments,
  and while activating only a fraction of the candidate space.  Its
  building blocks are pinned too: the slot pricer against the INUM
  memo's ``slot_cost``, the restricted master (all candidates active)
  against ``build_bip``.

* ``sparse=True`` pricing must be bit-identical to dense everywhere it
  is offered — ``evaluate_many``, delta evaluation, usage batches, and
  ``BipProblem.config_costs`` — including across pool evictions that
  drop and recompile the sparse state.
"""

import random

import pytest

from repro.catalog import Index
from repro.cophy import (
    CandidateGenerator,
    CoPhyAdvisor,
    build_bip,
    candidate_indexes,
    greedy_select,
    solve_colgen,
)
from repro.cophy.colgen import CandidatePricer, _Master
from repro.evaluation import InumCachePool, WorkloadEvaluator
from repro.inum import InumCostModel
from repro.inum.cache import _DesignView
from repro.optimizer.writecost import locate_query
from repro.sql.binder import BoundWrite
from repro.util import workload_pairs
from repro.whatif import Configuration
from repro.workloads import sdss, sdss_catalog, tpch, tpch_catalog

from test_evaluator_equivalence import make_env, random_write

WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0),
    ("SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1", 1.0),
    ("SELECT p.ra, s.z FROM photoobj p, specobj s "
     "WHERE p.objid = s.objid AND s.z > 6.5", 1.0),
    ("SELECT ra FROM photoobj WHERE dec > 85 ORDER BY ra LIMIT 5", 1.0),
]

WRITES = [
    ("UPDATE photoobj SET status = 3 WHERE rmag < 14", 0.5),
    ("INSERT INTO specobj VALUES (1)", 0.25),
]

TEMPLATE_ENVS = [
    (sdss.TEMPLATE_REGISTRY, lambda: sdss_catalog(scale=0.05)),
    (tpch.TEMPLATE_REGISTRY, lambda: tpch_catalog(scale=0.05)),
]


def template_workload(registry, seed=23):
    rng = random.Random(seed)
    return [
        (maker(rng), rng.choice([1.0, 2.0, 0.25]))
        for name, maker in sorted(registry.items())
    ]


def assert_same_solve(catalog, workload, candidates, budget, **kwargs):
    """The headline pin: colgen == greedy-over-exhaustive-BIP, exactly.

    Fresh models on each side so neither solve can warm the other's
    memos into a different (it could never be different — but the test
    should not even share the machinery it compares).
    """
    problem = build_bip(
        InumCostModel(catalog), workload, candidates, budget,
        max_indexes=kwargs.get("max_indexes"),
    )
    reference = greedy_select(
        problem, by_ratio=kwargs.get("by_ratio", True)
    )
    result = solve_colgen(
        InumCostModel(catalog), workload, candidates, budget, **kwargs
    )
    assert result.chosen_positions == reference.chosen_positions
    assert result.objective == reference.objective
    assert result.extra["certificate"] == "no-inactive-candidate-improves"
    return reference, result


class TestPricer:
    """CandidatePricer == slot_cost over single-index views, pair by pair."""

    @pytest.mark.parametrize("with_base", [False, True], ids=["bare", "base-ix"])
    def test_price_matches_slot_cost(self, sdss_catalog, with_base):
        catalog = sdss_catalog
        if with_base:
            catalog = catalog.clone()
            catalog.add_index(Index("photoobj", ("ra",)))
            catalog.add_index(Index("specobj", ("z",)))
        workload = WORKLOAD + WRITES
        model = InumCostModel(catalog)
        candidates = candidate_indexes(catalog, workload, max_candidates=20)
        pricer = CandidatePricer(model)
        checked = 0
        for sql, __ in workload_pairs(workload):
            bound = model.bound(sql)
            if isinstance(bound, BoundWrite):
                if bound.kind not in ("update", "delete"):
                    continue
                bound = locate_query(bound)
            cache = model.cache_for(bound)
            bq = cache.bound_query
            for plan in cache.plans:
                for slot in plan.slots:
                    for ix in candidates:
                        if ix.table_name != slot.table_name:
                            continue
                        view = _DesignView(catalog, Configuration.of(ix))
                        assert pricer.price(bq, slot, ix) == \
                            model.slot_cost(bq, slot, view)
                        checked += 1
        assert checked > 50

    def test_restricted_master_equals_build_bip(self, sdss_catalog):
        """With every candidate active, the restricted problem is the
        exhaustive one — same structure, same floats, term by term."""
        workload = WORKLOAD + WRITES
        candidates = candidate_indexes(
            sdss_catalog, workload, max_candidates=14
        )
        budget = 40_000
        full = build_bip(
            InumCostModel(sdss_catalog), workload, candidates, budget
        )
        master = _Master(
            InumCostModel(sdss_catalog), workload, candidates, budget, None
        )
        restricted = master.build_restricted(set(range(len(candidates))))
        assert restricted.sizes == full.sizes
        assert restricted.write_base_cost == full.write_base_cost
        assert restricted.index_penalties == full.index_penalties
        assert len(restricted.queries) == len(full.queries)
        for mine, ref in zip(restricted.queries, full.queries):
            assert (mine.weight, mine.sql) == (ref.weight, ref.sql)
            assert len(mine.plans) == len(ref.plans)
            for pm, pr in zip(mine.plans, ref.plans):
                assert pm.internal_cost == pr.internal_cost
                assert [s.options for s in pm.slots] == \
                    [s.options for s in pr.slots]


class TestSolveColgen:
    @pytest.mark.parametrize("divisor", [2, 3, 5, 10, 100])
    def test_matches_greedy_across_budgets(self, sdss_catalog, divisor):
        workload = WORKLOAD + WRITES
        candidates = candidate_indexes(
            sdss_catalog, workload, max_candidates=14
        )
        total = sum(
            ix.size_pages(sdss_catalog.table(ix.table_name))
            for ix in candidates
        )
        assert_same_solve(
            sdss_catalog, workload, candidates, total // divisor
        )

    def test_matches_greedy_by_benefit(self, sdss_catalog):
        candidates = candidate_indexes(
            sdss_catalog, WORKLOAD, max_candidates=14
        )
        assert_same_solve(
            sdss_catalog, WORKLOAD, candidates, 40_000, by_ratio=False
        )

    def test_matches_greedy_with_max_indexes(self, sdss_catalog):
        candidates = candidate_indexes(
            sdss_catalog, WORKLOAD, max_candidates=14
        )
        assert_same_solve(
            sdss_catalog, WORKLOAD, candidates, 200_000, max_indexes=2
        )

    def test_matches_greedy_with_base_indexes(self, sdss_with_indexes):
        workload = WORKLOAD + WRITES
        candidates = candidate_indexes(
            sdss_with_indexes, workload, max_candidates=20
        )
        assert_same_solve(sdss_with_indexes, workload, candidates, 50_000)

    @pytest.mark.parametrize(
        "registry, make_catalog", TEMPLATE_ENVS, ids=["sdss", "tpch"]
    )
    def test_every_template_solves_identically(self, registry, make_catalog):
        """The acceptance pin: identical design and objective on every
        SDSS and TPC-H template mix, activating only part of the space."""
        catalog = make_catalog()
        workload = template_workload(registry)
        candidates = candidate_indexes(catalog, workload, max_candidates=40)
        total = sum(
            ix.size_pages(catalog.table(ix.table_name)) for ix in candidates
        )
        for divisor in (2, 4):
            __, result = assert_same_solve(
                catalog, workload, candidates, total // divisor
            )
            assert result.extra["activated"] <= len(candidates)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fuzzed_catalogs(self, seed):
        catalog, workload, __ = make_env(seed, write_fraction=0.2)
        candidates = candidate_indexes(catalog, workload, max_candidates=16)
        if not candidates:
            pytest.skip("fuzzed workload produced no candidates")
        total = sum(
            ix.size_pages(catalog.table(ix.table_name)) for ix in candidates
        )
        rng = random.Random(seed + 99)
        budget = total // rng.choice([2, 3, 5])
        assert_same_solve(catalog, workload, candidates, budget)

    def test_activates_a_fraction_at_scale(self, sdss_catalog):
        """With many near-duplicate candidates the bound must keep most
        of them out of the master (the acceptance criterion's shape —
        the full 5k-candidate version runs in the claim benchmark)."""
        gen = CandidateGenerator(sdss_catalog, WORKLOAD)
        mined = gen.take(gen.n_candidates)
        extra = []
        for ix in mined:
            table = sdss_catalog.table(ix.table_name)
            names = [c.name for c in table.columns]
            for other in names:
                if other not in ix.columns and len(extra) < 60:
                    extra.append(
                        Index(ix.table_name, ix.columns, include=(other,))
                    )
        candidates = mined + [ix for ix in extra if ix not in mined]
        assert len(candidates) >= 40
        total = sum(
            ix.size_pages(sdss_catalog.table(ix.table_name))
            for ix in candidates
        )
        __, result = assert_same_solve(
            sdss_catalog, WORKLOAD, candidates, total // 4
        )
        assert result.extra["activated"] < len(candidates)

    def test_advisor_colgen_equals_greedy(self, sdss_catalog):
        greedy = CoPhyAdvisor(sdss_catalog).recommend(
            WORKLOAD + WRITES, budget_pages=40_000, solver="greedy",
            max_candidates=14,
        )
        colgen = CoPhyAdvisor(sdss_catalog).recommend(
            WORKLOAD + WRITES, budget_pages=40_000, solver="colgen",
            max_candidates=14,
        )
        assert [ix.name for ix in colgen.indexes] == \
            [ix.name for ix in greedy.indexes]
        assert colgen.predicted_workload_cost == \
            greedy.predicted_workload_cost
        assert colgen.base_workload_cost == greedy.base_workload_cost
        assert colgen.size_pages == greedy.size_pages
        assert colgen.stats["solve_extra"]["rounds"] >= 1

    def test_counters_and_span_recorded(self, sdss_catalog):
        from repro import obs

        candidates = candidate_indexes(
            sdss_catalog, WORKLOAD, max_candidates=10
        )
        solve_colgen(
            InumCostModel(sdss_catalog), WORKLOAD, candidates, 40_000
        )
        names = set(obs.metrics().snapshot()["counters"])
        assert "repro_colgen_rounds_total" in names
        assert "repro_colgen_activated_total" in names
        assert "repro_colgen_priced_total" in names


class TestCandidateGenerator:
    def test_take_is_a_prefix_stream(self, sdss_catalog):
        gen = CandidateGenerator(sdss_catalog, WORKLOAD)
        first = gen.take(3)
        assert gen.take(7)[:3] == first
        assert candidate_indexes(
            sdss_catalog, WORKLOAD, max_candidates=7
        ) == gen.take(7)

    def test_iteration_never_materializes_more_than_asked(self, sdss_catalog):
        gen = CandidateGenerator(sdss_catalog, WORKLOAD)
        for count, ix in enumerate(gen):
            if count >= 2:
                break
        assert len(gen.take(2)) == 2

    def test_emitted_names_match_index_autonames(self, sdss_catalog):
        for ix in CandidateGenerator(sdss_catalog, WORKLOAD).take(10):
            rebuilt = Index(
                ix.table_name, ix.columns, include=ix.include
            )
            assert ix == rebuilt and ix.name == rebuilt.name


class TestSparseBitIdentity:
    """sparse=True == dense everywhere, including across pool eviction."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_evaluate_many(self, seed):
        catalog, workload, configs = make_env(seed, write_fraction=0.2)
        dense = WorkloadEvaluator(catalog).evaluate_many(workload, configs)
        sparse = WorkloadEvaluator(catalog).evaluate_many(
            workload, configs, sparse=True
        )
        assert dense.matrix == sparse.matrix
        assert dense.totals == sparse.totals

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_evaluate_deltas(self, seed):
        catalog, workload, configs = make_env(seed, write_fraction=0.2)
        parent = configs[0]
        dense = WorkloadEvaluator(catalog).evaluate_deltas(
            workload, parent, configs
        )
        sparse = WorkloadEvaluator(catalog).evaluate_deltas(
            workload, parent, configs, sparse=True
        )
        assert dense.matrix == sparse.matrix
        assert dense.totals == sparse.totals

    @pytest.mark.parametrize("seed", [0, 1])
    def test_usage_batches(self, seed):
        catalog, workload, configs = make_env(seed, write_fraction=0.2)
        ev_dense = WorkloadEvaluator(catalog)
        ev_sparse = WorkloadEvaluator(catalog)
        for parent in (None, configs[0]):
            dense = ev_dense.workload_cost_with_usage_batch(
                workload, configs, parent=parent
            )
            sparse = ev_sparse.workload_cost_with_usage_batch(
                workload, configs, parent=parent, sparse=True
            )
            assert [total for total, __ in dense] == \
                [total for total, __ in sparse]
            assert [used for __, used in dense] == \
                [used for __, used in sparse]

    def test_bip_kernel_sparse(self, sdss_catalog):
        workload = WORKLOAD + WRITES
        candidates = candidate_indexes(
            sdss_catalog, workload, max_candidates=14
        )
        problem = build_bip(
            InumCostModel(sdss_catalog), workload, candidates, 40_000
        )
        rng = random.Random(5)
        batch = [()] + [
            tuple(rng.sample(range(len(candidates)), rng.randint(1, 5)))
            for __ in range(12)
        ] + [(2, 2, 4)]
        assert problem.config_costs(batch) == \
            problem.config_costs(batch, sparse=True)

    def test_sparse_survives_pool_eviction(self):
        """Evicting cache entries drops compiled kernels and their
        sparse state; recompiled sparse pricing stays bit-identical."""
        catalog, workload, configs = make_env(1, write_fraction=0.2)
        reference = WorkloadEvaluator(catalog).evaluate_many(
            workload, configs
        )
        evaluator = WorkloadEvaluator(catalog, pool=InumCachePool(capacity=2))
        for __ in range(3):
            sparse = evaluator.evaluate_many(workload, configs, sparse=True)
            assert sparse.matrix == reference.matrix
            assert sparse.totals == reference.totals
            # Touch other statements so the pool cycles our entries out.
            for sql, __w in workload:
                evaluator.cost(sql, configs[1])
        assert evaluator.pool.stats.evictions > 0

    def test_sparse_counters_surface(self):
        from repro import obs

        catalog, workload, configs = make_env(0)
        evaluator = WorkloadEvaluator(catalog)
        evaluator.evaluate_many(workload, configs, sparse=True)
        counters = obs.metrics().snapshot()["counters"]
        assert "repro_sparse_cells_total" in counters
        assert "repro_sparse_dense_equiv_cells_total" in counters
