"""Tests for the what-if component: configurations, sessions, join control."""

import pytest

from repro.catalog import (
    HorizontalPartitioning,
    Index,
    VerticalFragment,
    VerticalLayout,
)
from repro.util import DesignError
from repro.whatif import Configuration, WhatIfSession


def ra_index():
    return Index("photoobj", ("ra",))


def z_index():
    return Index("specobj", ("z",))


class TestConfiguration:
    def test_empty(self):
        assert Configuration.empty().is_empty

    def test_value_semantics(self):
        a = Configuration.of(ra_index(), z_index())
        b = Configuration.of(z_index(), ra_index())
        assert a == b
        assert hash(a) == hash(b)

    def test_with_and_without_indexes(self):
        cfg = Configuration.empty().with_indexes(ra_index())
        assert ra_index() in cfg.indexes
        assert cfg.without_indexes(ra_index()).is_empty

    def test_union_merges_layouts(self):
        layout = VerticalLayout(
            "specobj",
            (VerticalFragment("specobj", ("specid", "bestobjid", "z", "zerr", "class")),),
        )
        a = Configuration.of(ra_index())
        b = Configuration(layouts=(layout,))
        merged = a.union(b)
        assert merged.indexes == a.indexes
        assert merged.layouts == (layout,)

    def test_duplicate_layout_rejected(self):
        layout = VerticalLayout(
            "specobj", (VerticalFragment("specobj", ("specid",)),)
        )
        with pytest.raises(DesignError):
            Configuration(layouts=(layout, layout))

    def test_apply_adds_objects(self, sdss_catalog):
        cfg = Configuration.of(ra_index())
        overlay = cfg.apply(sdss_catalog)
        assert overlay.has_index(ra_index())
        assert not sdss_catalog.has_index(ra_index())  # base untouched

    def test_size_pages_skips_existing(self, sdss_with_indexes):
        cfg = Configuration.of(Index("photoobj", ("ra",)))
        assert cfg.size_pages(sdss_with_indexes) == 0  # already built

    def test_build_cost_positive(self, sdss_catalog):
        cfg = Configuration.of(ra_index(), z_index())
        assert cfg.build_cost(sdss_catalog) > 0

    def test_describe_mentions_objects(self, sdss_catalog):
        text = Configuration.of(ra_index()).describe()
        assert "CREATE INDEX" in text and "photoobj" in text


class TestWhatIfSession:
    def test_index_benefit_positive(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11", 1.0)]
        assert session.benefit(wl, Configuration.of(ra_index())) > 0

    def test_config_never_hurts(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [
            ("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11", 1.0),
            ("SELECT dec FROM photoobj WHERE dec > 80", 1.0),
        ]
        config = Configuration.of(ra_index(), z_index())
        assert session.benefit(wl, config) >= -1e-6

    def test_evaluate_report_fields(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11", 2.0)]
        report = session.evaluate(wl, Configuration.of(ra_index()))
        [qb] = report.per_query
        assert qb.weight == 2.0
        assert qb.new_cost < qb.base_cost
        assert report.average_improvement_pct > 0
        assert "workload" in report.to_text()

    def test_service_cache_reused(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        cfg = Configuration.of(ra_index())
        assert session.service_for(cfg) is session.service_for(cfg)

    def test_join_control_changes_plan(self, sdss_catalog):
        sql = (
            "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid"
        )
        base = WhatIfSession(sdss_catalog)
        no_hash = base.with_join_methods(enable_hashjoin=False)
        assert base.plan(sql).node_type == "HashJoin"
        assert no_hash.plan(sql).node_type != "HashJoin"

    def test_partition_whatif(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj", ("rmag", "gmag", "type", "flags", "status")
                ),
            ),
        )
        config = Configuration(layouts=(layout,))
        wl = [("SELECT ra, dec FROM photoobj WHERE ra < 100", 1.0)]
        assert session.benefit(wl, config) > 0

    def test_horizontal_whatif(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        horizontal = HorizontalPartitioning(
            "photoobj", "ra", tuple(float(b) for b in range(40, 360, 40))
        )
        config = Configuration(horizontals=(horizontal,))
        wl = [("SELECT rmag FROM photoobj WHERE ra BETWEEN 100 AND 105", 1.0)]
        assert session.benefit(wl, config) > 0

    def test_bad_workload_entries_rejected(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        with pytest.raises(TypeError):
            session.cost(12345)


class TestQueryBenefitDegenerateCosts:
    """improvement_pct must mirror speedup's degenerate-cost convention:
    a zero/negative base cost with a *different* new cost is a real
    change, not a 0.0% no-op."""

    def _benefit(self, base, new):
        from repro.whatif import QueryBenefit

        return QueryBenefit(sql="SELECT 1", base_cost=base, new_cost=new)

    def test_zero_base_zero_new_is_flat(self):
        assert self._benefit(0.0, 0.0).improvement_pct == 0.0

    def test_zero_base_with_regression_is_minus_inf(self):
        b = self._benefit(0.0, 10.0)
        assert b.improvement_pct == float("-inf")
        assert b.benefit < 0  # consistent direction

    def test_negative_base_with_improvement_is_inf(self):
        b = self._benefit(-5.0, -10.0)
        assert b.improvement_pct == float("inf")
        assert b.benefit > 0

    def test_positive_base_unchanged(self):
        b = self._benefit(200.0, 100.0)
        assert b.improvement_pct == pytest.approx(50.0)
        assert b.speedup == pytest.approx(2.0)

    def test_speedup_consistency_on_zero_new_cost(self):
        b = self._benefit(100.0, 0.0)
        assert b.speedup == float("inf")
        assert b.improvement_pct == pytest.approx(100.0)


class TestSessionBackplane:
    """The session draws exact services from the shared evaluator."""

    def test_services_come_from_evaluator(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        config = Configuration.of(ra_index())
        svc = session.service_for(config)
        assert svc is session.evaluator.exact_service(config)
        assert session.base_service is session.evaluator.exact_service()

    def test_shared_evaluator_shares_exact_services(self, sdss_catalog):
        from repro.evaluation import WorkloadEvaluator

        evaluator = WorkloadEvaluator(sdss_catalog)
        one = WhatIfSession(sdss_catalog, evaluator=evaluator)
        two = WhatIfSession(sdss_catalog, evaluator=evaluator)
        config = Configuration.of(ra_index())
        assert one.service_for(config) is two.service_for(config)

    def test_estimate_many_matches_per_config_costs(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0)]
        configs = [Configuration.empty(), Configuration.of(ra_index())]
        batch = session.estimate_many(wl, configs)
        per_call = [
            session.evaluator.workload_cost(wl, config) for config in configs
        ]
        assert batch.totals == pytest.approx(per_call)

    def test_conflicting_settings_with_evaluator_rejected(self, sdss_catalog):
        from repro.evaluation import WorkloadEvaluator
        from repro.optimizer.settings import DEFAULT_SETTINGS
        from repro.util import DesignError

        evaluator = WorkloadEvaluator(sdss_catalog)
        changed = DEFAULT_SETTINGS.with_changes(enable_hashjoin=False)
        with pytest.raises(DesignError):
            WhatIfSession(sdss_catalog, changed, evaluator=evaluator)
        # Equal settings (or None) are fine.
        WhatIfSession(sdss_catalog, DEFAULT_SETTINGS, evaluator=evaluator)
        WhatIfSession(sdss_catalog, evaluator=evaluator)

    def test_report_average_matches_query_convention(self):
        from repro.whatif import QueryBenefit, WhatIfReport

        report = WhatIfReport(configuration=Configuration.empty())
        report.per_query.append(
            QueryBenefit(sql="SELECT 1", base_cost=0.0, new_cost=10.0)
        )
        assert report.average_improvement_pct == float("-inf")
        report.per_query[0] = QueryBenefit(
            sql="SELECT 1", base_cost=0.0, new_cost=0.0
        )
        assert report.average_improvement_pct == 0.0

    def test_mismatched_catalog_with_evaluator_rejected(self, sdss_catalog):
        from repro.evaluation import WorkloadEvaluator
        from repro.util import DesignError

        other = sdss_catalog.clone()
        evaluator = WorkloadEvaluator(other)
        with pytest.raises(DesignError):
            WhatIfSession(sdss_catalog, evaluator=evaluator)
