"""Tests for the what-if component: configurations, sessions, join control."""

import pytest

from repro.catalog import (
    HorizontalPartitioning,
    Index,
    VerticalFragment,
    VerticalLayout,
)
from repro.util import DesignError
from repro.whatif import Configuration, WhatIfSession


def ra_index():
    return Index("photoobj", ("ra",))


def z_index():
    return Index("specobj", ("z",))


class TestConfiguration:
    def test_empty(self):
        assert Configuration.empty().is_empty

    def test_value_semantics(self):
        a = Configuration.of(ra_index(), z_index())
        b = Configuration.of(z_index(), ra_index())
        assert a == b
        assert hash(a) == hash(b)

    def test_with_and_without_indexes(self):
        cfg = Configuration.empty().with_indexes(ra_index())
        assert ra_index() in cfg.indexes
        assert cfg.without_indexes(ra_index()).is_empty

    def test_union_merges_layouts(self):
        layout = VerticalLayout(
            "specobj",
            (VerticalFragment("specobj", ("specid", "bestobjid", "z", "zerr", "class")),),
        )
        a = Configuration.of(ra_index())
        b = Configuration(layouts=(layout,))
        merged = a.union(b)
        assert merged.indexes == a.indexes
        assert merged.layouts == (layout,)

    def test_duplicate_layout_rejected(self):
        layout = VerticalLayout(
            "specobj", (VerticalFragment("specobj", ("specid",)),)
        )
        with pytest.raises(DesignError):
            Configuration(layouts=(layout, layout))

    def test_apply_adds_objects(self, sdss_catalog):
        cfg = Configuration.of(ra_index())
        overlay = cfg.apply(sdss_catalog)
        assert overlay.has_index(ra_index())
        assert not sdss_catalog.has_index(ra_index())  # base untouched

    def test_size_pages_skips_existing(self, sdss_with_indexes):
        cfg = Configuration.of(Index("photoobj", ("ra",)))
        assert cfg.size_pages(sdss_with_indexes) == 0  # already built

    def test_build_cost_positive(self, sdss_catalog):
        cfg = Configuration.of(ra_index(), z_index())
        assert cfg.build_cost(sdss_catalog) > 0

    def test_describe_mentions_objects(self, sdss_catalog):
        text = Configuration.of(ra_index()).describe()
        assert "CREATE INDEX" in text and "photoobj" in text


class TestWhatIfSession:
    def test_index_benefit_positive(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11", 1.0)]
        assert session.benefit(wl, Configuration.of(ra_index())) > 0

    def test_config_never_hurts(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [
            ("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11", 1.0),
            ("SELECT dec FROM photoobj WHERE dec > 80", 1.0),
        ]
        config = Configuration.of(ra_index(), z_index())
        assert session.benefit(wl, config) >= -1e-6

    def test_evaluate_report_fields(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        wl = [("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11", 2.0)]
        report = session.evaluate(wl, Configuration.of(ra_index()))
        [qb] = report.per_query
        assert qb.weight == 2.0
        assert qb.new_cost < qb.base_cost
        assert report.average_improvement_pct > 0
        assert "workload" in report.to_text()

    def test_service_cache_reused(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        cfg = Configuration.of(ra_index())
        assert session.service_for(cfg) is session.service_for(cfg)

    def test_join_control_changes_plan(self, sdss_catalog):
        sql = (
            "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid"
        )
        base = WhatIfSession(sdss_catalog)
        no_hash = base.with_join_methods(enable_hashjoin=False)
        assert base.plan(sql).node_type == "HashJoin"
        assert no_hash.plan(sql).node_type != "HashJoin"

    def test_partition_whatif(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj", ("rmag", "gmag", "type", "flags", "status")
                ),
            ),
        )
        config = Configuration(layouts=(layout,))
        wl = [("SELECT ra, dec FROM photoobj WHERE ra < 100", 1.0)]
        assert session.benefit(wl, config) > 0

    def test_horizontal_whatif(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        horizontal = HorizontalPartitioning(
            "photoobj", "ra", tuple(float(b) for b in range(40, 360, 40))
        )
        config = Configuration(horizontals=(horizontal,))
        wl = [("SELECT rmag FROM photoobj WHERE ra BETWEEN 100 AND 105", 1.0)]
        assert session.benefit(wl, config) > 0

    def test_bad_workload_entries_rejected(self, sdss_catalog):
        session = WhatIfSession(sdss_catalog)
        with pytest.raises(TypeError):
            session.cost(12345)
