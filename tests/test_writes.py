"""Tests for write statements: parsing, binding, costing, and the
index-maintenance tradeoff through the whole designer stack."""

import pytest

from repro.catalog import Index
from repro.cophy import CoPhyAdvisor
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.optimizer.writecost import (
    affected_rows,
    index_maintenance_cost_per_row,
    locate_query,
)
from repro.sql import bind_statement, parse_statement
from repro.sql.astnodes import DeleteStatement, InsertStatement, UpdateStatement
from repro.sql.binder import BoundWrite
from repro.util import BindError, ParseError, PlanningError
from repro.whatif import Configuration


class TestParsing:
    def test_update(self):
        stmt = parse_statement(
            "UPDATE photoobj SET status = 5, flags = 0 WHERE run = 99"
        )
        assert isinstance(stmt, UpdateStatement)
        assert [c for c, __ in stmt.assignments] == ["status", "flags"]
        assert len(stmt.predicates) == 1

    def test_update_without_where(self):
        stmt = parse_statement("UPDATE photoobj SET status = 5")
        assert stmt.predicates == ()

    def test_insert_counts_rows(self):
        stmt = parse_statement("INSERT INTO neighbors VALUES (1, 2, 0.5), (3, 4, 0.1)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.n_rows == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM specobj WHERE z < 0.01")
        assert isinstance(stmt, DeleteStatement)

    def test_select_still_parses(self):
        from repro.sql.astnodes import Query

        assert isinstance(parse_statement("SELECT ra FROM photoobj"), Query)

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_statement("DROP TABLE t")

    def test_update_unparse_round_trip(self):
        stmt = parse_statement("UPDATE photoobj SET status = 5 WHERE run = 99")
        assert parse_statement(stmt.unparse()) == stmt


class TestBinding:
    def test_update_binds(self, sdss_catalog):
        bw = bind_statement(
            "UPDATE photoobj SET status = 5 WHERE rmag < 15", sdss_catalog
        )
        assert isinstance(bw, BoundWrite)
        assert bw.kind == "update"
        assert bw.set_columns == ("status",)
        assert bw.filters[0].column == "rmag"
        assert bw.is_write

    def test_unknown_set_column_rejected(self, sdss_catalog):
        with pytest.raises(BindError):
            bind_statement("UPDATE photoobj SET nope = 5", sdss_catalog)

    def test_touches_index_update(self, sdss_catalog):
        bw = bind_statement("UPDATE photoobj SET status = 5", sdss_catalog)
        assert bw.touches_index(Index("photoobj", ("status",)))
        assert bw.touches_index(Index("photoobj", ("ra",), include=("status",)))
        assert not bw.touches_index(Index("photoobj", ("ra",)))
        assert not bw.touches_index(Index("specobj", ("z",)))

    def test_touches_index_insert_and_delete(self, sdss_catalog):
        ins = bind_statement("INSERT INTO specobj VALUES (1, 2, 0.5, 0, 1)", sdss_catalog)
        dele = bind_statement("DELETE FROM specobj WHERE z > 6", sdss_catalog)
        any_index = Index("specobj", ("zerr",))
        assert ins.touches_index(any_index)
        assert dele.touches_index(any_index)

    def test_affected_rows(self, sdss_catalog):
        bw = bind_statement(
            "UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 36",
            sdss_catalog,
        )
        assert affected_rows(bw) == pytest.approx(100_000, rel=0.1)
        ins = bind_statement("INSERT INTO specobj VALUES (1,2,3,4,5)", sdss_catalog)
        assert affected_rows(ins) == 1.0


class TestWriteCosting:
    def test_more_indexes_cost_more(self, sdss_catalog):
        sql = "UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 3"
        bare = CostService(sdss_catalog).cost(sql)
        indexed = sdss_catalog.clone()
        indexed.add_index(Index("photoobj", ("status",)))
        indexed.add_index(Index("photoobj", ("status", "flags")))
        with_ix = CostService(indexed).cost(sql)
        assert with_ix > bare

    def test_untouched_index_is_free_for_updates(self, sdss_catalog):
        sql = "UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 3"
        indexed = sdss_catalog.clone()
        indexed.add_index(Index("specobj", ("z",)))  # different table
        # An index helping the locate step may *reduce* the cost; an
        # unrelated-table index must change nothing.
        assert CostService(indexed).cost(sql) == pytest.approx(
            CostService(sdss_catalog).cost(sql)
        )

    def test_index_helps_locate_step(self, sdss_catalog):
        sql = "DELETE FROM photoobj WHERE ra BETWEEN 10 AND 10.2"
        indexed = sdss_catalog.clone()
        indexed.add_index(Index("photoobj", ("ra",)))
        assert CostService(indexed).cost(sql) < CostService(sdss_catalog).cost(sql)

    def test_plan_raises_for_writes(self, sdss_catalog):
        with pytest.raises(PlanningError):
            CostService(sdss_catalog).plan("DELETE FROM specobj WHERE z > 1")

    def test_maintenance_grows_with_index_height(self, sdss_catalog):
        table = sdss_catalog.table("photoobj")
        narrow = Index("photoobj", ("type",))
        wide = Index(
            "photoobj", ("ra", "dec"), include=("rmag", "gmag", "flags")
        )
        from repro.optimizer import PlannerSettings

        settings = PlannerSettings()
        assert index_maintenance_cost_per_row(
            wide, table, settings
        ) >= index_maintenance_cost_per_row(narrow, table, settings)

    def test_locate_query_shape(self, sdss_catalog):
        bw = bind_statement(
            "UPDATE photoobj SET status = 1 WHERE rmag < 15", sdss_catalog
        )
        locate = locate_query(bw)
        assert locate.filters_for("photoobj")[0].column == "rmag"
        assert ("photoobj", "status") in locate.select_columns


class TestInumWrites:
    def test_inum_matches_cost_service(self, sdss_catalog):
        statements = [
            "UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 3",
            "INSERT INTO specobj VALUES (1, 2, 0.5, 0.01, 1)",
            "DELETE FROM specobj WHERE z > 6.9",
        ]
        config = Configuration.of(
            Index("photoobj", ("ra",)), Index("specobj", ("z",))
        )
        inum = InumCostModel(sdss_catalog)
        svc = CostService(config.apply(sdss_catalog))
        for sql in statements:
            assert inum.cost(sql, config) == pytest.approx(svc.cost(sql), rel=0.01)

    def test_write_usage_reports_maintained_indexes(self, sdss_catalog):
        config = Configuration.of(
            Index("photoobj", ("status",)), Index("photoobj", ("ra",))
        )
        inum = InumCostModel(sdss_catalog)
        __, used = inum.cost_with_usage(
            "UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 1", config
        )
        assert Index("photoobj", ("status",)) in used  # maintained
        assert Index("photoobj", ("ra",)) in used  # locates the rows


class TestAdvisorWriteTradeoff:
    def test_write_heavy_workload_gets_fewer_indexes(self, sdss_catalog):
        reads = [
            ("SELECT objid FROM photoobj WHERE status = 17", 1.0),
            ("SELECT objid FROM photoobj WHERE flags = 12345", 1.0),
            ("SELECT ra FROM photoobj WHERE ra BETWEEN 5 AND 6", 1.0),
        ]
        writes = [
            ("UPDATE photoobj SET status = 1, flags = 2 WHERE objid = 7", 50_000.0),
        ]
        advisor = CoPhyAdvisor(sdss_catalog)
        budget = 10**6
        read_only = advisor.recommend(reads, budget)
        mixed = advisor.recommend(reads + writes, budget)
        read_only_names = {ix.name for ix in read_only.indexes}
        mixed_names = {ix.name for ix in mixed.indexes}
        # The status/flags indexes pay for themselves only without the
        # update storm; the positional index survives either way.
        assert any("status" in n or "flags" in n for n in read_only_names)
        assert not any("status" in n or "flags" in n for n in mixed_names)
        assert any("objid" in n or "ra" in n for n in mixed_names)

    def test_bip_penalties_populated(self, sdss_catalog):
        from repro.cophy import build_bip, candidate_indexes

        workload = [
            ("SELECT objid FROM photoobj WHERE status = 17", 1.0),
            ("UPDATE photoobj SET status = 1 WHERE objid = 7", 100.0),
        ]
        inum = InumCostModel(sdss_catalog)
        candidates = candidate_indexes(sdss_catalog, workload, max_candidates=8)
        problem = build_bip(inum, workload, candidates, budget_pages=10**6)
        assert problem.write_base_cost > 0
        status_pos = [
            pos for pos, ix in enumerate(candidates) if "status" in ix.name
        ]
        assert status_pos and all(
            problem.index_penalties[pos] > 0 for pos in status_pos
        )

    def test_config_cost_includes_penalties(self, sdss_catalog):
        from repro.cophy import build_bip, candidate_indexes

        workload = [
            ("SELECT objid FROM photoobj WHERE status = 17", 1.0),
            ("UPDATE photoobj SET status = 1 WHERE objid = 7", 100.0),
        ]
        inum = InumCostModel(sdss_catalog)
        candidates = candidate_indexes(sdss_catalog, workload, max_candidates=8)
        problem = build_bip(inum, workload, candidates, budget_pages=10**6)
        target = next(
            pos for pos, ix in enumerate(candidates) if "status" in ix.name
        )
        with_pen = problem.config_cost((target,))
        # Under INUM the same configuration must cost about the same —
        # the BIP's conservative write handling may only overestimate.
        config = Configuration.of(candidates[target])
        exact = inum.workload_cost(workload, config)
        assert with_pen >= exact - 1e-6


class TestBipInumEquivalence:
    """The BIP's objective must coincide with INUM's exact cost for any
    configuration of candidates — including mixed read/write workloads.
    This is CoPhy's quality guarantee carried over to writes."""

    def test_random_configs_match(self, sdss_catalog):
        import random

        from repro.cophy import build_bip, candidate_indexes

        workload = [
            ("SELECT objid FROM photoobj WHERE status = 17", 1.0),
            ("SELECT ra FROM photoobj WHERE ra BETWEEN 5 AND 6", 2.0),
            ("SELECT p.ra, s.z FROM photoobj p, specobj s "
             "WHERE p.objid = s.objid AND s.z > 6.8", 1.0),
            ("UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 2", 40.0),
            ("DELETE FROM specobj WHERE z > 6.99", 10.0),
            ("INSERT INTO specobj VALUES (1, 2, 0.5, 0.01, 1)", 25.0),
        ]
        inum = InumCostModel(sdss_catalog)
        candidates = candidate_indexes(sdss_catalog, workload, max_candidates=10)
        problem = build_bip(inum, workload, candidates, budget_pages=10**7)

        rng = random.Random(3)
        for __ in range(6):
            chosen = tuple(
                sorted(rng.sample(range(len(candidates)), rng.randint(0, 4)))
            )
            config = Configuration.of(*(candidates[p] for p in chosen))
            assert problem.config_cost(chosen) == pytest.approx(
                inum.workload_cost(workload, config), rel=1e-6
            ), chosen

    def test_advisor_prediction_matches_optimizer_with_writes(self, sdss_catalog):
        workload = [
            ("SELECT objid FROM photoobj WHERE status = 17", 1.0),
            ("UPDATE photoobj SET status = 1 WHERE ra BETWEEN 0 AND 2", 40.0),
        ]
        advisor = CoPhyAdvisor(sdss_catalog)
        rec = advisor.recommend(workload, budget_pages=10**6)
        real = CostService(rec.configuration.apply(sdss_catalog)).workload_cost(
            workload
        )
        assert rec.predicted_workload_cost == pytest.approx(real, rel=0.02)


class TestGeneratorWrites:
    """These use the full SDSS generator schema (the write templates touch
    columns the slim test fixture does not have)."""

    def test_write_fraction_produces_writes(self):
        from repro.workloads import sdss_catalog as full_catalog, sdss_workload

        catalog = full_catalog(scale=0.01)
        wl = sdss_workload(n_queries=40, seed=3, write_fraction=0.5)
        kinds = [bind_statement(sql, catalog).is_write for sql, __ in wl]
        assert any(kinds) and not all(kinds)

    def test_zero_fraction_is_read_only(self):
        from repro.workloads import sdss_workload

        wl = sdss_workload(n_queries=30, seed=3, write_fraction=0.0)
        assert all(sql.startswith("SELECT") for sql, __ in wl)

    def test_writes_cost_through_workload(self):
        from repro.workloads import sdss_catalog as full_catalog, sdss_workload

        catalog = full_catalog(scale=0.01)
        wl = sdss_workload(n_queries=20, seed=3, write_fraction=0.4, write_weight=10.0)
        assert CostService(catalog).workload_cost(wl) > 0
