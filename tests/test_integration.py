"""Cross-module integration tests: the full pipeline, verified end to end.

The chain under test: workload generator -> binder -> optimizer -> INUM ->
CoPhy -> interaction scheduling -> what-if materialization, with the
executor double-checking semantics on generated data where feasible.
"""

import pytest

from repro.catalog import Catalog, Column, DataType, Distribution, Index, Table
from repro.cophy import CoPhyAdvisor
from repro.data import generate_database
from repro.designer import Designer
from repro.executor import run_query
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.util import DesignError
from repro.whatif import Configuration
from repro.workloads import Workload, sdss_catalog, sdss_workload, tpch_catalog, tpch_workload


class TestSdssPipeline:
    @pytest.fixture(scope="class")
    def env(self):
        catalog = sdss_catalog(scale=0.05)
        workload = sdss_workload(n_queries=15, seed=42)
        return catalog, workload

    def test_recommend_then_materialize_then_costs_drop(self, env):
        catalog, workload = env
        designer = Designer(catalog)
        budget = sum(t.pages for t in catalog.tables) // 3
        rec = designer.recommend(workload, storage_budget_pages=budget,
                                 partitions=False)
        new_catalog, build_cost = designer.materialize(
            rec.combined_configuration
        )
        before = CostService(catalog).workload_cost(workload)
        after = CostService(new_catalog).workload_cost(workload)
        assert after < before
        assert after == pytest.approx(rec.combined_workload_cost, rel=0.05)
        assert build_cost > 0

    def test_recommended_indexes_actually_used_by_plans(self, env):
        catalog, workload = env
        designer = Designer(catalog)
        budget = sum(t.pages for t in catalog.tables) // 3
        rec = designer.recommend(workload, storage_budget_pages=budget,
                                 partitions=False)
        service = CostService(rec.combined_configuration.apply(catalog))
        used = set()
        for sql, __ in workload:
            used |= {ix.name for ix in service.plan(sql).indexes_used()}
        recommended = {ix.name for ix in rec.index_recommendation.indexes}
        assert recommended & used, "at least some recommended indexes in plans"

    def test_suggest_drops_flags_unused_index(self, env):
        catalog, workload = env
        cluttered = catalog.clone()
        useless = Index("photoobj", ("skyversion", "camcol"))
        cluttered.add_index(useless)
        designer = Designer(cluttered)
        drops = designer.suggest_drops(workload)
        assert useless in [ix for ix, __ in drops]

    def test_suggest_drops_keeps_used_index(self, env):
        catalog, workload = env
        useful_catalog = catalog.clone()
        useful = Index("photoobj", ("ra",))
        useful_catalog.add_index(useful)
        designer = Designer(useful_catalog)
        drops = designer.suggest_drops(workload)
        assert useful not in [ix for ix, __ in drops]

    def test_suggest_drops_requires_workload(self, env):
        catalog, __ = env
        with pytest.raises(DesignError):
            Designer(catalog).suggest_drops([])


class TestTpchPipeline:
    def test_full_designer_flow(self):
        catalog = tpch_catalog(scale=0.02)
        workload = tpch_workload(n_queries=10, seed=7)
        designer = Designer(catalog)
        budget = sum(t.pages for t in catalog.tables) // 2
        rec = designer.recommend(workload, storage_budget_pages=budget)
        assert rec.combined_workload_cost <= rec.base_workload_cost
        evaluation = designer.evaluate_design(
            workload, indexes=rec.index_recommendation.indexes
        )
        assert evaluation.report.average_improvement_pct >= 0


class TestExecutorBackedRecommendation:
    """Recommend on a small executable catalog and verify the recommended
    configuration changes plans but never changes results."""

    @pytest.fixture(scope="class")
    def env(self):
        catalog = Catalog()
        catalog.add_table(
            Table(
                "events",
                [
                    Column("id", DataType.INT, Distribution(kind="sequence")),
                    Column("kind", DataType.INT,
                           Distribution(kind="uniform_int", low=0, high=19)),
                    Column("value", DataType.DOUBLE,
                           Distribution(kind="uniform", low=0.0, high=1000.0)),
                    Column("day", DataType.INT,
                           Distribution(kind="uniform_int", low=0, high=364,
                                        correlation=0.95)),
                ],
                row_count=4000,
            ).build_stats()
        )
        workload = Workload(
            [
                "SELECT id, value FROM events WHERE kind = 3 AND value < 100",
                "SELECT id FROM events WHERE day BETWEEN 100 AND 110",
                "SELECT kind, COUNT(*) FROM events WHERE day > 300 GROUP BY kind",
                "SELECT id FROM events WHERE kind = 7",
            ]
        )
        database = generate_database(catalog, seed=11)
        return catalog, workload, database

    def test_recommendation_preserves_results(self, env):
        catalog, workload, database = env
        advisor = CoPhyAdvisor(catalog)
        rec = advisor.recommend(workload, budget_pages=10_000)
        assert rec.indexes, "this workload clearly wants indexes"
        tuned = rec.configuration.apply(catalog)
        for sql, __ in workload:
            __, base_rows = run_query(sql, catalog, database)
            plan, tuned_rows = run_query(sql, tuned, database)
            assert sorted(map(repr, base_rows)) == sorted(map(repr, tuned_rows))

    def test_plans_change_shape_under_recommendation(self, env):
        catalog, workload, database = env
        advisor = CoPhyAdvisor(catalog)
        rec = advisor.recommend(workload, budget_pages=10_000)
        tuned = rec.configuration.apply(catalog)
        base_kinds = [
            run_query(sql, catalog, database)[0].node_type for sql, __ in workload
        ]
        tuned_kinds = [
            run_query(sql, tuned, database)[0].node_type for sql, __ in workload
        ]
        assert base_kinds != tuned_kinds

    def test_inum_agrees_with_optimizer_on_recommended_config(self, env):
        catalog, workload, __ = env
        inum = InumCostModel(catalog)
        advisor = CoPhyAdvisor(catalog, cost_model=inum)
        rec = advisor.recommend(workload, budget_pages=10_000)
        real = CostService(rec.configuration.apply(catalog)).workload_cost(workload)
        assert inum.workload_cost(workload, rec.configuration) == pytest.approx(
            real, rel=0.02
        )


class TestConfigurationRoundTrips:
    def test_apply_then_size_accounting(self):
        catalog = sdss_catalog(scale=0.02)
        config = Configuration.of(
            Index("photoobj", ("ra",)), Index("specobj", ("z",))
        )
        overlay = config.apply(catalog)
        assert overlay.design_size_pages() == config.size_pages(catalog)

    def test_double_apply_is_idempotent(self):
        catalog = sdss_catalog(scale=0.02)
        config = Configuration.of(Index("photoobj", ("ra",)))
        once = config.apply(catalog)
        twice = config.apply(once)
        assert len(twice.indexes) == len(once.indexes)
