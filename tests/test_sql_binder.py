"""Unit tests for the binder: resolution, normalization, error reporting."""

import pytest

from repro.sql import bind_sql
from repro.util import BindError


class TestResolution:
    def test_qualified_and_unqualified(self, sdss_catalog):
        q = bind_sql(
            "SELECT p.ra, rmag FROM photoobj p WHERE dec > 0", sdss_catalog
        )
        assert q.select_columns == (("p", "ra"), ("p", "rmag"))
        assert q.filters_for("p")[0].column == "dec"

    def test_ambiguous_column_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="ambiguous"):
            bind_sql("SELECT objid FROM photoobj, specobj", sdss_catalog)

    def test_unknown_column_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="unknown column"):
            bind_sql("SELECT nonexistent FROM photoobj", sdss_catalog)

    def test_unknown_alias_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="alias"):
            bind_sql("SELECT zz.ra FROM photoobj p", sdss_catalog)

    def test_duplicate_alias_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="duplicate"):
            bind_sql("SELECT p.ra FROM photoobj p, specobj p", sdss_catalog)

    def test_unknown_table_rejected(self, sdss_catalog):
        with pytest.raises(Exception, match="no table"):
            bind_sql("SELECT * FROM nope", sdss_catalog)


class TestJoinExtraction:
    def test_equality_join_detected(self, sdss_catalog):
        q = bind_sql(
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.objid",
            sdss_catalog,
        )
        assert len(q.joins) == 1
        join = q.joins[0]
        assert {join.left_alias, join.right_alias} == {"p", "s"}

    def test_side_for(self, sdss_catalog):
        q = bind_sql(
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.objid",
            sdss_catalog,
        )
        col, other, other_col = q.joins[0].side_for("p")
        assert col == "objid" and other == "s" and other_col == "objid"

    def test_non_equality_join_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="equality"):
            bind_sql(
                "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid < s.objid",
                sdss_catalog,
            )


class TestFilterNormalization:
    def test_between_becomes_range(self, sdss_catalog):
        q = bind_sql(
            "SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 20", sdss_catalog
        )
        f = q.filters_for("photoobj")[0]
        assert f.kind == "range" and (f.low, f.high) == (10, 20)

    def test_two_ranges_merged(self, sdss_catalog):
        q = bind_sql(
            "SELECT ra FROM photoobj WHERE ra > 10 AND ra <= 20", sdss_catalog
        )
        filters = q.filters_for("photoobj")
        assert len(filters) == 1
        f = filters[0]
        assert (f.low, f.low_inclusive, f.high, f.high_inclusive) == (10, False, 20, True)

    def test_contradictory_ranges_keep_tightest(self, sdss_catalog):
        q = bind_sql(
            "SELECT ra FROM photoobj WHERE ra > 100 AND ra < 50", sdss_catalog
        )
        f = q.filters_for("photoobj")[0]
        assert f.low == 100 and f.high == 50  # empty range, estimator yields ~0

    def test_null_comparison_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="IS NULL"):
            bind_sql("SELECT ra FROM photoobj WHERE ra = NULL", sdss_catalog)

    def test_empty_in_rejected(self, sdss_catalog):
        with pytest.raises(Exception):
            bind_sql("SELECT ra FROM photoobj WHERE type IN ()", sdss_catalog)


class TestReferencedColumns:
    def test_all_sources_counted(self, sdss_catalog):
        q = bind_sql(
            "SELECT p.ra FROM photoobj p, specobj s "
            "WHERE p.objid = s.objid AND p.rmag < 20 "
            "GROUP BY p.ra ORDER BY p.ra",
            sdss_catalog,
        )
        assert q.referenced_columns("p") == {"ra", "objid", "rmag"}
        assert q.referenced_columns("s") == {"objid"}

    def test_star_references_everything(self, sdss_catalog):
        q = bind_sql("SELECT * FROM specobj", sdss_catalog)
        assert q.referenced_columns("specobj") == {
            "specid", "objid", "z", "zerr", "class",
        }

    def test_aggregate_arg_referenced(self, sdss_catalog):
        q = bind_sql("SELECT avg(rmag) FROM photoobj", sdss_catalog)
        assert q.referenced_columns("photoobj") == {"rmag"}


class TestAggregateValidation:
    def test_plain_column_without_group_by_rejected(self, sdss_catalog):
        with pytest.raises(BindError, match="GROUP BY"):
            bind_sql("SELECT type, count(*) FROM photoobj", sdss_catalog)

    def test_grouped_column_accepted(self, sdss_catalog):
        q = bind_sql(
            "SELECT type, count(*) FROM photoobj GROUP BY type", sdss_catalog
        )
        assert q.is_aggregate
        assert q.group_by == (("photoobj", "type"),)
