"""Smoke-run every example script: the documented user journeys must not
rot.  Each runs in a subprocess exactly as a user would invoke it."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their walkthrough"


def test_all_examples_covered():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum, comfortably exceeded
