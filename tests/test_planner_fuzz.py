"""Property-based fuzzing of the whole planning + execution stack.

Hypothesis drives three generators — a random schema, a random conjunctive
query against it, and a random physical design — and asserts the two core
invariants of the substrate:

1. the planner always produces a finite, positive-cost plan, and
2. the physical design never changes query *results* (executor check).

These are exactly the properties every designer component silently
assumes, so a counterexample here would invalidate everything above.
"""

import math

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.catalog import (
    Catalog,
    Column,
    DataType,
    Distribution,
    HorizontalPartitioning,
    Index,
    Table,
    VerticalFragment,
    VerticalLayout,
)
from repro.data import generate_database
from repro.executor import run_query
from repro.optimizer import CostService, PlannerSettings
from repro.optimizer.settings import DISABLE_COST

COLUMN_POOL = [
    ("k", DataType.INT, Distribution(kind="sequence")),
    ("a", DataType.INT, Distribution(kind="uniform_int", low=0, high=30)),
    ("b", DataType.DOUBLE, Distribution(kind="uniform", low=-10.0, high=10.0)),
    ("c", DataType.INT, Distribution(kind="zipf", n_values=6, s=1.1)),
    ("d", DataType.INT, Distribution(kind="uniform_int", low=0, high=5, null_frac=0.15)),
    ("e", DataType.DOUBLE, Distribution(kind="normal", mu=0.0, sigma=3.0)),
]


def build_catalog(n_cols, rows):
    cols = [
        Column(name, dtype, dist) for name, dtype, dist in COLUMN_POOL[:n_cols]
    ]
    catalog = Catalog()
    catalog.add_table(Table("t", cols, row_count=rows).build_stats())
    return catalog


@st.composite
def query_strategy(draw, column_names):
    """A random conjunctive single-table query over *column_names*."""
    preds = []
    n_preds = draw(st.integers(0, 3))
    for __ in range(n_preds):
        col = draw(st.sampled_from(column_names))
        kind = draw(st.sampled_from(["eq", "lt", "gt", "between", "in", "null"]))
        v1 = draw(st.integers(-12, 32))
        v2 = draw(st.integers(-12, 32))
        lo, hi = min(v1, v2), max(v1, v2)
        if kind == "eq":
            preds.append("%s = %d" % (col, v1))
        elif kind == "lt":
            preds.append("%s < %d" % (col, v1))
        elif kind == "gt":
            preds.append("%s > %d" % (col, v1))
        elif kind == "between":
            preds.append("%s BETWEEN %d AND %d" % (col, lo, hi))
        elif kind == "in":
            preds.append("%s IN (%d, %d)" % (col, v1, v2))
        else:
            preds.append("%s IS NOT NULL" % col)
    select = draw(st.sampled_from(["k", "k, " + column_names[-1], "*"]))
    sql = "SELECT %s FROM t" % select
    if preds:
        sql += " WHERE " + " AND ".join(preds)
    if draw(st.booleans()):
        sql += " ORDER BY k"
        if draw(st.booleans()):
            sql += " LIMIT %d" % draw(st.integers(1, 20))
    return sql


@st.composite
def design_strategy(draw, column_names):
    """A random physical design: indexes and maybe partitions."""
    indexes = []
    for __ in range(draw(st.integers(0, 3))):
        width = draw(st.integers(1, min(2, len(column_names))))
        cols = draw(
            st.lists(
                st.sampled_from(column_names),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        indexes.append(Index("t", tuple(cols)))
    layout = None
    if draw(st.booleans()) and len(column_names) >= 3:
        split = draw(st.integers(1, len(column_names) - 1))
        layout = VerticalLayout(
            "t",
            (
                VerticalFragment("t", tuple(column_names[:split])),
                VerticalFragment("t", tuple(column_names[split:])),
            ),
        )
    horizontal = None
    if draw(st.booleans()):
        horizontal = HorizontalPartitioning("t", "a", (8, 16, 24))
    return indexes, layout, horizontal


def apply_design(catalog, design):
    indexes, layout, horizontal = design
    out = catalog.clone()
    for ix in indexes:
        if not out.has_index(ix):
            out.add_index(ix)
    if layout is not None:
        out.set_vertical_layout(layout)
    if horizontal is not None:
        out.set_horizontal_partitioning(horizontal)
    return out


class TestPlannerNeverBreaks:
    @given(data=st.data(), n_cols=st.integers(3, 6))
    @hsettings(max_examples=80, deadline=None)
    def test_any_query_any_design_plans(self, data, n_cols):
        catalog = build_catalog(n_cols, rows=20_000)
        names = catalog.table("t").column_names
        sql = data.draw(query_strategy(names))
        design = data.draw(design_strategy(names))
        service = CostService(apply_design(catalog, design))
        plan = service.plan(sql)
        assert math.isfinite(plan.total_cost)
        assert plan.total_cost > 0
        assert plan.total_cost < DISABLE_COST / 2  # nothing disabled here
        assert plan.rows >= 0

    @given(data=st.data())
    @hsettings(max_examples=30, deadline=None)
    def test_disabled_planners_still_plan(self, data):
        catalog = build_catalog(4, rows=5_000)
        names = catalog.table("t").column_names
        sql = data.draw(query_strategy(names))
        settings = PlannerSettings(
            enable_seqscan=data.draw(st.booleans()),
            enable_indexscan=data.draw(st.booleans()),
            enable_bitmapscan=data.draw(st.booleans()),
            enable_sort=data.draw(st.booleans()),
        )
        plan = CostService(catalog, settings).plan(sql)
        assert math.isfinite(plan.total_cost)


class TestDesignInvariance:
    """The golden rule: physical design never changes results."""

    @given(data=st.data())
    @hsettings(max_examples=40, deadline=None)
    def test_results_invariant_under_design(self, data):
        catalog = build_catalog(5, rows=600)
        database = generate_database(catalog, seed=9)
        names = catalog.table("t").column_names
        sql = data.draw(query_strategy(names))
        design = data.draw(design_strategy(names))
        __, base_rows = run_query(sql, catalog, database)
        __, designed_rows = run_query(sql, apply_design(catalog, design), database)
        if " LIMIT " in sql:
            # LIMIT without a total order is nondeterministic; compare sizes.
            assert len(base_rows) == len(designed_rows)
        else:
            assert sorted(map(repr, base_rows)) == sorted(map(repr, designed_rows))

    @given(data=st.data())
    @hsettings(max_examples=25, deadline=None)
    def test_estimates_bounded_by_table_size(self, data):
        catalog = build_catalog(5, rows=10_000)
        names = catalog.table("t").column_names
        sql = data.draw(query_strategy(names))
        plan = CostService(catalog).plan(sql)
        if "LIMIT" not in sql and "GROUP" not in sql:
            assert plan.rows <= 10_000 * 1.01
