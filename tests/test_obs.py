"""Tests for the telemetry backplane (ISSUE 7).

Covers the registry/tracer core, the Prometheus rendering, worker-delta
merging, and the observability satellites the issue pins:

* ``TuningService.status()`` / ``status_text()`` field-by-field;
* scheduler queue-depth reporting (``queue_depths()`` and the scrape
  mirror gauge agree with the task state);
* merged registry snapshots stay consistent under concurrent updates
  (fuzz: a snapshot must never tear a histogram's sum/count pair).
"""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.colt import ColtSettings
from repro.evaluation import wire
from repro.obs import MetricsRegistry, MetricsServer, Tracer
from repro.runtime import Scheduler
from repro.service import TuningService
from repro.workloads import DriftPhase, drifting_stream, sdss
from repro.workloads import sdss_catalog as make_sdss

SDSS_PHASES = (
    DriftPhase("positional", 6, ((sdss.template("cone_search"), 1.0),)),
    DriftPhase("photometric", 6, ((sdss.template("magnitude_cut"), 1.0),)),
)

COLT = ColtSettings(epoch_length=5, space_budget_pages=50_000)


@pytest.fixture(scope="module")
def astro_catalog():
    return make_sdss(scale=0.01)


@pytest.fixture
def fresh_registry():
    """An empty process-wide registry/tracer for tests asserting exact
    global counts.  (Not autouse: the class-scoped service fixture below
    records into the registry once for several tests.)"""
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# Registry core.
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc()
        reg.counter("c_total").inc(2)
        reg.gauge("g", "a gauge").set(7)
        reg.gauge("g").dec(2)
        hist = reg.histogram("h_seconds", "a histogram")
        hist.observe(0.001)
        hist.observe(0.001)
        assert reg.value("c_total") == 3
        assert reg.value("g") == 5
        snap = reg.snapshot()
        sample = snap["histograms"]["h_seconds"]["samples"][0]
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(0.002)
        assert sum(sample["bucket_counts"]) == 2

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", "", labelnames=("mode",))
        fam.labels(mode="a").inc()
        fam.labels(mode="b").inc(5)
        assert reg.value("x_total", mode="a") == 1
        assert reg.value("x_total", mode="b") == 5
        assert reg.value("x_total", mode="absent") == 0

    def test_redeclare_with_different_shape_raises(self):
        reg = MetricsRegistry()
        reg.counter("dup_total", "", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.gauge("dup_total")
        with pytest.raises(ValueError):
            reg.counter("dup_total", "", labelnames=("b",))
        with pytest.raises(ValueError):
            reg.counter("dup_total", "", labelnames=("a",)).labels(b=1)

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("r_total", "requests", labelnames=("code",)) \
            .labels(code=200).inc(3)
        reg.histogram("l_seconds", "latency").observe(0.5)
        text = reg.render_prometheus()
        assert '# TYPE r_total counter' in text
        assert 'r_total{code="200"} 3' in text
        assert '# TYPE l_seconds histogram' in text
        # Cumulative buckets: every bound >= 0.5 reports the one
        # observation, and +Inf/_count/_sum close the family.
        assert 'l_seconds_bucket{le="+Inf"} 1' in text
        assert 'l_seconds_count 1' in text
        assert 'l_seconds_sum 0.5' in text

    def test_collector_weakref_dies_with_owner(self):
        reg = MetricsRegistry()

        class Owner:
            def mirror(self, registry):
                registry.counter("mirrored_total").set_total(42)

        owner = Owner()
        reg.add_collector(owner.mirror)
        assert reg.snapshot()["counters"]["mirrored_total"]
        assert reg.value("mirrored_total") == 42
        del owner
        # The dead collector drops off; the last mirrored value stays.
        reg.snapshot()
        assert reg.value("mirrored_total") == 42

    def test_drain_deltas_ship_only_movement(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "", labelnames=("k",)).labels(k="x").inc(3)
        reg.histogram("h_seconds").observe(0.25)
        first = reg.drain_deltas()
        assert first["counters"][0]["samples"] == [[["x"], 3]]
        assert first["histograms"][0]["samples"][0][3] == 1
        # No movement since the drain: the next payload is empty.
        empty = reg.drain_deltas()
        assert empty["counters"] == [] and empty["histograms"] == []
        # Folding into a fresh registry reproduces the totals.
        target = MetricsRegistry()
        target.apply_deltas(first)
        assert target.value("c_total", k="x") == 3
        snap = target.snapshot()["histograms"]["h_seconds"]["samples"][0]
        assert snap["count"] == 1 and snap["sum"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Tracer.
# ----------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_tags(self):
        tr = Tracer()
        with tr.span("outer", who="me") as outer:
            with tr.span("inner") as inner:
                inner.set_tag("late", True)
                assert tr.current_context() == (inner.trace_id,
                                                inner.span_id)
        spans = tr.export()
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["tags"] == {"late": True}
        assert by_name["outer"]["duration"] >= 0

    def test_remote_parent_stitches_across_drain(self):
        parent, worker = Tracer(), Tracer()
        with parent.span("dispatch") as dispatch:
            ctx = parent.current_context()
        with worker.span("work", remote_parent=ctx):
            pass
        parent.ingest(worker.drain())
        assert worker.export() == []  # drain pops
        spans = parent.export()
        work = [s for s in spans if s["name"] == "work"][0]
        assert work["trace_id"] == dispatch.trace_id
        assert work["parent_id"] == dispatch.span_id

    def test_error_recorded_and_buffer_bounded(self):
        tr = Tracer(limit=4)
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("nope")
        assert "RuntimeError: nope" in tr.export()[-1]["error"]
        for i in range(10):
            with tr.span("s%d" % i):
                pass
        assert len(tr.export()) == 4  # ring buffer, newest win

    def test_obs_wire_roundtrip(self):
        obs.reset()
        obs.metrics().counter("shipped_total").inc(2)
        with obs.tracer().span("worker.step"):
            pass
        text = wire.dumps(wire.obs_to_wire(obs.drain_deltas()))
        obs.reset()
        obs.ingest_deltas(wire.loads(text))
        assert obs.metrics().value("shipped_total") == 2
        assert obs.tracer().export()[-1]["name"] == "worker.step"


# ----------------------------------------------------------------------
# Disabled mode.
# ----------------------------------------------------------------------


class TestDisabled:
    def test_disabled_records_nothing_and_restores(self, fresh_registry):
        reg = obs.metrics()
        assert obs.enabled()
        with obs.disabled():
            assert not obs.enabled()
            obs.metrics().counter("ghost_total").inc()
            with obs.tracer().span("ghost") as span:
                span.set_tag("k", 1)  # must be a no-op, not an error
            assert obs.tracer().export() == []
            assert obs.metrics().render_prometheus() == ""
        assert obs.metrics() is reg
        assert reg.value("ghost_total") == 0


# ----------------------------------------------------------------------
# Satellite: scheduler queue-depth reporting.
# ----------------------------------------------------------------------


class TestSchedulerQueueDepth:
    def _session(self, service, name):
        return service.add_tenant(
            name, "sdss", colt_settings=COLT, recommend_every=0,
        )

    def test_queue_depths_track_intake_and_scrape_mirror(
            self, astro_catalog, fresh_registry):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        scheduler = Scheduler()
        scheduler.add("push", self._session(service, "push"),
                      max_pending=3, finish=False)
        events = [sql for __, sql in drifting_stream(SDSS_PHASES, seed=2)]
        assert scheduler.queue_depths() == {"push": 0}
        for sql in events[:3]:
            assert scheduler.submit("push", sql)
        assert scheduler.queue_depths() == {"push": 3}
        # Buffer full: admission refused and counted as backpressure.
        assert not scheduler.submit("push", events[3])
        assert scheduler.queue_depths() == {"push": 3}
        assert obs.metrics().value(
            "repro_scheduler_backpressure_total", tenant="push") == 1
        # The scrape-time gauge mirrors the same number, exactly.
        snap = obs.metrics().snapshot()
        depth = snap["gauges"]["repro_scheduler_queue_depth"]["samples"]
        assert depth == [{"labels": {"tenant": "push"}, "value": 3}]
        # Run drains the buffer; both surfaces drop to zero together.
        scheduler.run()
        assert scheduler.queue_depths() == {"push": 0}
        assert scheduler.stats()["tenants"]["push"]["queue_depth"] == 0
        snap = obs.metrics().snapshot()
        depth = snap["gauges"]["repro_scheduler_queue_depth"]["samples"]
        assert depth == [{"labels": {"tenant": "push"}, "value": 0}]

    def test_steps_counter_matches_stats(self, astro_catalog,
                                         fresh_registry):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        scheduler = Scheduler()
        scheduler.add("t", self._session(service, "t"),
                      drifting_stream(SDSS_PHASES, seed=2))
        stats = scheduler.run()
        reg = obs.metrics()
        snap = reg.snapshot()
        steps = snap["counters"]["repro_scheduler_steps_total"]["samples"]
        assert sum(s["value"] for s in steps) == stats["steps"]
        assert reg.value("repro_scheduler_events_started") \
            == stats["events"]


# ----------------------------------------------------------------------
# Satellite: TuningService.status() / status_text() field by field.
# ----------------------------------------------------------------------


class TestServiceStatus:
    @pytest.fixture(scope="class")
    def served(self, astro_catalog):
        obs.reset()
        service = TuningService(shards=2)
        service.add_backplane("sdss", astro_catalog)
        for name in ("alpha", "beta"):
            service.add_tenant(name, "sdss", colt_settings=COLT,
                               recommend_every=0)
        streams = {
            "alpha": drifting_stream(SDSS_PHASES, seed=2),
            "beta": drifting_stream(SDSS_PHASES, seed=3),
        }
        status = service.run_scheduled(streams)
        return service, status

    def test_status_tenant_fields(self, served):
        service, status = served
        assert set(status["tenants"]) == {"alpha", "beta"}
        for name, tenant in status["tenants"].items():
            session = service.tenant(name)
            assert tenant["tenant"] == name
            assert tenant["queries"] == session.queries == 12
            assert tenant["phase"] == "photometric"
            assert tenant["phases_seen"] == ["positional", "photometric"]
            assert tenant["epochs"] == len(session.tuner.report.epochs)
            assert tenant["alerts"] == session.tuner.report.alerts
            assert tenant["adoptions"] == session.tuner.report.adoptions
            assert tenant["drift_events"] == len(session.drift_events)
            assert tenant["observed_cost"] == pytest.approx(
                session.tuner.report.observed_cost)
            assert tenant["build_cost"] == pytest.approx(
                session.tuner.report.build_cost)
            assert tenant["whatif_probes"] \
                == session.tuner.report.whatif_probes
            assert tenant["configuration"] == tuple(
                sorted(ix.name for ix in session.tuner.current.indexes))
            assert tenant["recommendations"] == len(session.recommendations)
            assert isinstance(tenant["pending_alert"], bool)
            assert tenant["finished"] is True

    def test_status_backplane_and_runtime_fields(self, served):
        service, status = served
        plane = status["backplanes"]["sdss"]
        pool = service.backplane("sdss").pool
        assert sorted(plane["tenants"]) == ["alpha", "beta"]
        assert plane["shards"] == 2
        assert plane["pool_size"] == len(pool)
        assert plane["kernels"] == pool.kernel_count
        stats = pool.stats
        assert plane["hits"] == stats.hits
        assert plane["misses"] == stats.misses
        assert plane["evictions"] == stats.evictions
        assert plane["optimizer_calls"] == stats.optimizer_calls
        runtime = status["runtime"]
        assert runtime["active"] is False
        assert runtime["queue_depths"] == {"alpha": 0, "beta": 0}
        assert runtime["snapshots"] == 0
        assert runtime["last_snapshot_age"] is None

    def test_status_merges_obs_snapshot(self, served):
        service, __ = served
        snap = service.status()["obs"]
        # The collector mirror keeps the scraped pool counters equal to
        # the PoolStats the backplane itself reports.
        stats = service.backplane("sdss").pool.stats
        hits = snap["counters"]["repro_pool_hits_total"]["samples"]
        assert hits == [
            {"labels": {"backplane": "sdss"}, "value": stats.hits}
        ]
        queries = snap["counters"]["repro_tenant_queries_total"]["samples"]
        assert {s["labels"]["tenant"]: s["value"] for s in queries} \
            == {"alpha": 12, "beta": 12}
        assert "repro_evaluate_seconds" in snap["histograms"]

    def test_status_text_renders_every_surface(self, served):
        service, status = served
        text = service.status_text()
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["tenant", "phase", "queries"]
        for name in ("alpha", "beta"):
            row = [l for l in lines if l.startswith(name)][0]
            tenant = status["tenants"][name]
            fields = row.split()
            assert fields[1] == tenant["phase"]
            assert int(fields[2]) == tenant["queries"]
            assert int(fields[3]) == tenant["epochs"]
            assert int(fields[4]) == tenant["drift_events"]
            assert fields[-1] == (",".join(tenant["configuration"])
                                  or "(none)")
        plane_row = [l for l in lines if l.startswith("backplane")][0]
        assert "tenants=2" in plane_row and "shards=2" in plane_row
        runtime_row = [l for l in lines if l.startswith("runtime:")][0]
        assert "idle" in runtime_row and "queued=0" in runtime_row

    def test_metrics_server_serves_status(self, served):
        service, __ = served
        server = MetricsServer(status_fn=service.status).start()
        try:
            def fetch(path):
                with urllib.request.urlopen(server.url + path, timeout=10) \
                        as response:
                    return response.read().decode("utf-8")

            scraped = fetch("/metrics")
            assert "repro_pool_hits_total" in scraped
            assert "repro_evaluate_seconds_bucket" in scraped
            status = json.loads(fetch("/status"))
            assert status["tenants"]["alpha"]["queries"] == 12
            trace = json.loads(fetch("/trace"))
            names = {s["name"] for s in trace["spans"]}
            # Scheduled runs dispatch steps (not ingest() calls): the
            # step spans and their evaluate children must be present.
            assert "scheduler.step" in names
            assert "evaluate.batch" in names
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Satellite: merged snapshots stay consistent under concurrent updates.
# ----------------------------------------------------------------------


class TestConcurrentSnapshots:
    def test_snapshot_never_tears_under_fuzz(self):
        reg = MetricsRegistry()
        n_threads, n_ops = 4, 1500
        counter = reg.counter("fuzz_total", "", labelnames=("t",))
        hist = reg.histogram("fuzz_seconds", "", labelnames=("t",))
        start = threading.Barrier(n_threads + 1)

        def hammer(tid):
            c = counter.labels(t=tid)
            h = hist.labels(t=tid)
            start.wait()
            for __ in range(n_ops):
                c.inc()
                h.observe(1.0)  # every observation adds exactly 1.0

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        start.wait()
        # Snapshot continuously while the writers run: each view must be
        # internally consistent even though it races the increments.
        for __ in range(200):
            snap = reg.snapshot()
            for sample in snap["histograms"].get(
                    "fuzz_seconds", {"samples": ()})["samples"]:
                # sum == count exactly (all observations are 1.0) and
                # the bucket counts account for every observation: a
                # torn read would break one of these.
                assert sample["sum"] == sample["count"]
                assert sum(sample["bucket_counts"]) == sample["count"]
        for t in threads:
            t.join()
        for tid in range(n_threads):
            assert reg.value("fuzz_total", t=tid) == n_ops
        final = reg.snapshot()["histograms"]["fuzz_seconds"]["samples"]
        assert sum(s["count"] for s in final) == n_threads * n_ops

    def test_concurrent_drains_merge_exactly(self):
        """Worker-style drain/apply under concurrency loses nothing:
        the merged registry ends at the exact total."""
        source, target = MetricsRegistry(), MetricsRegistry()
        n_ops = 2000
        done = threading.Event()

        def writer():
            c = source.counter("moved_total")
            for __ in range(n_ops):
                c.inc()
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        while not done.is_set():
            target.apply_deltas(source.drain_deltas())
        thread.join()
        target.apply_deltas(source.drain_deltas())
        assert target.value("moved_total") == n_ops
