"""Equivalence and lifetime suite for delta (seminaïve) kernel
evaluation and argmin-witness usage extraction.

Delta mode and the vectorized usage batch are *compilations* of the
existing paths, never different cost models: over fuzzed environments
and every SDSS/TPC-H template, ``evaluate_deltas`` must equal
``evaluate_many`` bit-exactly, the vectorized
``workload_cost_with_usage_batch`` must equal the serial reference walk
exactly (costs and used sets), BIP delta pricing must equal the full
batch, and delta-mode greedy must reproduce the non-delta run decision
for decision.  Lifetime tests pin that captured parent states die with
their compiled workloads on pool eviction, and the concurrency fuzz
pins the evaluator cache-race fixes (compiled-workload LRU and
exact-service locking).
"""

import random
import threading

import pytest

from repro.cophy import candidate_indexes
from repro.cophy.bip import build_bip
from repro.cophy.greedy import greedy_select
from repro.evaluation import InumCachePool, WorkloadEvaluator
from repro.evaluation.evaluator import _MAX_COMPILED
from repro.whatif import Configuration
from repro.workloads import sdss, sdss_catalog, tpch, tpch_catalog

from test_evaluator_equivalence import make_env

SEEDS = [0, 1, 2, 3, 4]


def delta_family(rng, configs):
    """A parent plus children that are near edits of it (single adds
    and removals), the exact parent itself, unrelated configurations,
    and the empty configuration — the shapes chain sweeps produce."""
    parent = configs[rng.randrange(len(configs))]
    children = list(configs) + [parent, Configuration.empty()]
    pool = sorted(
        {ix for config in configs for ix in config.indexes},
        key=lambda ix: ix.name,
    )
    for ix in pool[:3]:
        children.append(parent.with_indexes(ix))
        children.append(parent.without_indexes(ix))
    return parent, children


# ----------------------------------------------------------------------
# Delta grids == full grids, bit-exactly.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_equals_full_grid(seed):
    catalog, workload, configs = make_env(seed, write_fraction=0.2)
    rng = random.Random(seed * 17 + 5)
    parent, children = delta_family(rng, configs)
    evaluator = WorkloadEvaluator(catalog)
    full = evaluator.evaluate_many(workload, children)
    delta = evaluator.evaluate_deltas(workload, parent, children)
    assert delta.matrix == full.matrix
    assert delta.totals == full.totals
    # A second pass answers from the memoized parent state, identically.
    again = evaluator.evaluate_deltas(workload, parent, children)
    assert again.matrix == full.matrix


@pytest.mark.parametrize(
    "registry, make_catalog",
    [
        (sdss.TEMPLATE_REGISTRY, lambda: sdss_catalog(scale=0.05)),
        (tpch.TEMPLATE_REGISTRY, lambda: tpch_catalog(scale=0.05)),
    ],
    ids=["sdss", "tpch"],
)
def test_every_template_delta_and_usage_identical(registry, make_catalog):
    """Delta grids and the vectorized usage batch match the full grid
    and the serial usage walk exactly on every SDSS/TPC-H template."""
    catalog = make_catalog()
    rng = random.Random(41)
    workload = [
        (maker(rng), rng.choice([1.0, 2.0, 0.25]))
        for name, maker in sorted(registry.items())
    ]
    candidates = candidate_indexes(catalog, workload, max_candidates=10)
    configs = [Configuration.empty()] + [
        Configuration(indexes=frozenset(
            rng.sample(candidates, rng.randint(1, min(4, len(candidates))))
        ))
        for __ in range(5)
    ]
    parent, children = delta_family(rng, configs)
    evaluator = WorkloadEvaluator(catalog)

    full = evaluator.evaluate_many(workload, children)
    delta = evaluator.evaluate_deltas(workload, parent, children)
    assert delta.matrix == full.matrix

    serial = evaluator.workload_cost_with_usage_batch(
        workload, children, vectorized=False
    )
    vectorized = evaluator.workload_cost_with_usage_batch(workload, children)
    assert vectorized == serial
    as_deltas = evaluator.workload_cost_with_usage_batch(
        workload, children, parent=parent
    )
    assert as_deltas == serial


@pytest.mark.parametrize("seed", SEEDS)
def test_usage_batch_vectorized_equals_serial(seed):
    catalog, workload, configs = make_env(seed, write_fraction=0.3)
    rng = random.Random(seed + 99)
    parent, children = delta_family(rng, configs)
    evaluator = WorkloadEvaluator(catalog)
    serial = evaluator.workload_cost_with_usage_batch(
        workload, children, vectorized=False
    )
    vectorized = evaluator.workload_cost_with_usage_batch(workload, children)
    assert vectorized == serial  # exact: costs and used frozensets
    as_deltas = evaluator.workload_cost_with_usage_batch(
        workload, children, parent=parent
    )
    assert as_deltas == serial


def test_usage_batch_matches_per_call_walk():
    """The batch agrees with the one-configuration public method, which
    is itself the inherited scalar walk."""
    catalog, workload, configs = make_env(2, write_fraction=0.25)
    evaluator = WorkloadEvaluator(catalog)
    batch = evaluator.workload_cost_with_usage_batch(workload, configs)
    for config, (cost, used) in zip(configs, batch):
        ref_cost, ref_used = evaluator.workload_cost_with_usage(
            workload, config
        )
        assert cost == ref_cost
        assert used == ref_used


def test_ibg_identical_with_and_without_delta_oracle():
    """IBG graphs built through the delta-parent oracle equal graphs
    built on the serial oracle node for node."""
    from repro.interaction.doi import InteractionAnalyzer

    catalog, workload, configs = make_env(3)
    candidates = sorted(
        {ix for config in configs for ix in config.indexes},
        key=lambda ix: ix.name,
    )[:5]
    fast = InteractionAnalyzer(
        WorkloadEvaluator(catalog), workload, method="ibg"
    )
    from repro.inum import InumCostModel

    slow = InteractionAnalyzer(InumCostModel(catalog), workload, method="ibg")
    a = fast.ibg(candidates)
    b = slow.ibg(candidates)
    assert set(a.nodes) == set(b.nodes)
    for subset, node in a.nodes.items():
        assert node.cost == b.nodes[subset].cost
        assert node.used == b.nodes[subset].used


# ----------------------------------------------------------------------
# BIP delta pricing and delta-mode greedy.
# ----------------------------------------------------------------------


class TestBipDelta:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_delta_equals_full_batch_exactly(self, seed):
        catalog, workload, __ = make_env(seed, write_fraction=0.25)
        evaluator = WorkloadEvaluator(catalog)
        candidates = candidate_indexes(catalog, workload, max_candidates=8)
        problem = build_bip(
            evaluator, workload, candidates, budget_pages=10**6
        )
        rng = random.Random(seed * 7 + 1)
        n = len(candidates)
        for __ in range(6):
            chosen = rng.sample(range(n), rng.randint(0, n - 1))
            extensions = list(range(n))
            full = problem.config_costs(
                [chosen + [pos] for pos in extensions]
            )
            delta = problem.config_costs_delta(chosen, extensions)
            assert delta == full
            scalar = problem.config_costs_scalar(
                [chosen + [pos] for pos in extensions]
            )
            assert delta == scalar

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("by_ratio", [True, False])
    def test_greedy_delta_reproduces_full_run(self, seed, by_ratio):
        catalog, workload, __ = make_env(seed, write_fraction=0.2)
        evaluator = WorkloadEvaluator(catalog)
        candidates = candidate_indexes(catalog, workload, max_candidates=8)
        sizes = sum(
            ix.size_pages(catalog.table(ix.table_name)) for ix in candidates
        )
        problem = build_bip(
            evaluator, workload, candidates, budget_pages=sizes // 2
        )
        with_delta = greedy_select(problem, by_ratio=by_ratio)
        without = greedy_select(problem, by_ratio=by_ratio, delta=False)
        assert with_delta.chosen_positions == without.chosen_positions
        assert with_delta.objective == without.objective
        assert with_delta.nodes_explored == without.nodes_explored


# ----------------------------------------------------------------------
# Delta-state lifetime: pool-owned, dropped on eviction.
# ----------------------------------------------------------------------


class TestDeltaStateLifetime:
    def test_states_are_memoized_on_the_compiled_kernel(self):
        catalog, workload, configs = make_env(1)
        evaluator = WorkloadEvaluator(catalog)
        parent = configs[1]
        evaluator.evaluate_deltas(workload, parent, configs)
        compiled = evaluator._compile(workload, kernel=True)
        assert len(compiled.kernel._delta_states) == 1
        evaluator.evaluate_deltas(workload, parent, configs)
        assert len(compiled.kernel._delta_states) == 1  # memo hit

    def test_eviction_drops_compiled_workload_and_delta_state(self):
        catalog, workload, configs = make_env(1)
        pool = InumCachePool(capacity=2)
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        parent = configs[0]
        short = workload[:2]
        reference = evaluator.evaluate_many(short, configs).matrix
        evaluator.evaluate_deltas(workload[:2], parent, configs)
        with evaluator._lock:
            assert evaluator._compiled
        # Evicting every member signature sweeps the compiled workload
        # (and the delta states captured on its kernel) transitively.
        for sql, __ in workload[2:]:
            evaluator.cache_for(sql)
        for sql, __ in short:
            if evaluator.signature(sql) not in pool:
                break
        else:
            pytest.skip("capacity did not force an eviction")
        with evaluator._lock:
            live_sigs = {
                sig
                for compiled in evaluator._compiled.values()
                for sig in compiled.signatures
            }
        assert all(sig in pool for sig in live_sigs)
        # Pricing again recompiles and recaptures, identically.
        assert evaluator.evaluate_deltas(
            short, parent, configs
        ).matrix == reference

    def test_clear_caches_resets_delta_state(self):
        catalog, workload, configs = make_env(2)
        evaluator = WorkloadEvaluator(catalog)
        parent = configs[0]
        reference = evaluator.evaluate_deltas(workload, parent, configs)
        evaluator.clear_caches()
        with evaluator._lock:
            assert not evaluator._compiled
            assert not evaluator._compiled_by_sig
        again = evaluator.evaluate_deltas(workload, parent, configs)
        assert again.matrix == reference.matrix


# ----------------------------------------------------------------------
# Concurrency fuzz: the evaluator cache-race fixes.
# ----------------------------------------------------------------------


class TestEvaluatorConcurrency:
    def test_parallel_evaluation_against_concurrent_evictions(self):
        """Parallel evaluate_configurations while a tiny pool constantly
        evicts: no lost updates, the compiled LRU never exceeds its
        bound, and the signature index stays consistent with the memo."""
        catalog, workload, configs = make_env(0)
        reference = WorkloadEvaluator(catalog)
        slices = [workload[i:i + 2] for i in range(len(workload) - 1)]
        expected = [
            reference.evaluate_many(sl, configs).matrix for sl in slices
        ]

        pool = InumCachePool(capacity=2)  # constant eviction pressure
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        errors = []
        barrier = threading.Barrier(len(slices))

        def worker(i):
            try:
                barrier.wait(timeout=30)
                for round_ in range(8):
                    kernel = (round_ + i) % 2 == 0
                    got = evaluator.evaluate_configurations(
                        slices[i], configs, kernel=kernel
                    ).matrix
                    assert got == expected[i]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(slices))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        with evaluator._lock:
            assert len(evaluator._compiled) <= _MAX_COMPILED
            for key, compiled in evaluator._compiled.items():
                for sig in compiled.signatures:
                    assert key in evaluator._compiled_by_sig[sig]
            for sig, keys in evaluator._compiled_by_sig.items():
                assert keys <= set(evaluator._compiled)

    def test_exact_service_counter_under_concurrent_lookups(self):
        """exact_optimizer_calls is read while tenant threads churn the
        exact-service LRU; locked reads never crash or lose the pinned
        base service."""
        catalog, workload, configs = make_env(1)
        evaluator = WorkloadEvaluator(catalog)
        sql = workload[0][0]
        errors = []

        def churn():
            try:
                for config in configs * 5:
                    evaluator.exact_cost(sql, config)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def read():
            try:
                for __ in range(200):
                    assert evaluator.exact_optimizer_calls >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn) for __ in range(3)]
        threads += [threading.Thread(target=read) for __ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert evaluator.exact_optimizer_calls > 0

    def test_clear_caches_races_with_evaluation(self):
        """clear_caches takes the pool first (outside the evaluator
        lock), so concurrent evaluations cannot deadlock against the
        pool → evaluator eviction order — and results stay exact."""
        catalog, workload, configs = make_env(2)
        reference = WorkloadEvaluator(catalog)
        expected = reference.evaluate_many(workload, configs).matrix
        evaluator = WorkloadEvaluator(catalog)
        errors = []

        def evaluate():
            try:
                for __ in range(6):
                    got = evaluator.evaluate_many(workload, configs).matrix
                    assert got == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def clear():
            try:
                for __ in range(6):
                    evaluator.clear_caches()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=evaluate) for __ in range(3)]
        threads.append(threading.Thread(target=clear))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
