"""Tests for the sharded cache pool and pool-level build single-flight:
routing stability, the global budget split, merged statistics, and the
one-build-per-entry guarantee under concurrency."""

import threading
import time

import pytest

from repro.evaluation import (
    InumCachePool,
    PoolStats,
    ShardedInumCachePool,
    WorkloadEvaluator,
)
from repro.whatif import Configuration

Q_RA = "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12"
Q_RMAG = "SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1"
Q_GROUP = "SELECT type, COUNT(*) FROM photoobj WHERE gmag < 18 GROUP BY type"
Q_JOIN = (
    "SELECT p.ra, s.z FROM photoobj p, specobj s "
    "WHERE p.objid = s.objid AND s.z > 6.5"
)
QUERIES = [Q_RA, Q_RMAG, Q_GROUP, Q_JOIN]


class TestSingleFlight:
    def test_concurrent_probes_build_once(self):
        pool = InumCachePool()
        built = []

        def slow_builder():
            # Publish only after every prober has registered its miss, so
            # the stats assertions below are deterministic, not a race.
            deadline = time.monotonic() + 5
            while pool.stats.misses < 8 and time.monotonic() < deadline:
                time.sleep(0.01)
            built.append(object())
            return _FakeCache()

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    pool.get_or_build("sig", slow_builder)
                )
            )
            for __ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(built) == 1  # one leader, seven waiters
        assert len(set(map(id, results))) == 1  # everyone got the same cache
        # Stats stay exact: every prober missed once; nothing double-hits.
        assert pool.stats.misses == 8
        assert pool.stats.hits == 0

    def test_failed_build_propagates_and_next_prober_retries(self):
        pool = InumCachePool()

        def exploding():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            pool.get_or_build("sig", exploding)
        cache = pool.get_or_build("sig", _FakeCache)
        assert isinstance(cache, _FakeCache)
        assert "sig" in pool

    def test_resident_entry_is_a_plain_hit(self):
        pool = InumCachePool()
        first = pool.get_or_build("sig", _FakeCache)
        again = pool.get_or_build(
            "sig", lambda: pytest.fail("must not rebuild")
        )
        assert again is first
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_evaluators_sharing_a_pool_never_double_build(self, sdss_catalog):
        """The documented race this PR closes: two evaluators, one pool,
        same query from many threads — one build total."""
        pool = InumCachePool()
        a = WorkloadEvaluator(sdss_catalog, pool=pool)
        b = WorkloadEvaluator(sdss_catalog, pool=pool)
        gate = threading.Event()

        def probe(evaluator):
            gate.wait(timeout=5)
            evaluator.cache_for(Q_JOIN)

        threads = [
            threading.Thread(target=probe, args=(ev,))
            for ev in (a, b, a, b, a, b)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(pool) == 1
        built = pool.get(pool.signatures()[0]).build_optimizer_calls
        assert pool.stats.optimizer_calls == built  # paid exactly once


class _FakeCache:
    build_optimizer_calls = 0


class TestShardedRouting:
    def test_routing_is_stable_and_total(self):
        pool = ShardedInumCachePool(shards=4)
        for i in range(40):
            sig = ("sig", i)
            assert pool.shard_index(sig) == pool.shard_index(sig)
            assert 0 <= pool.shard_index(sig) < 4
            pool.put(sig, _FakeCache())
        assert len(pool) == 40
        assert sum(size for size, __ in pool.shard_stats()) == 40
        assert sorted(pool.signatures()) == sorted(
            ("sig", i) for i in range(40)
        )

    def test_get_put_contains_route_to_one_shard(self):
        pool = ShardedInumCachePool(shards=4)
        cache = _FakeCache()
        pool.put("sig", cache)
        assert "sig" in pool
        assert pool.get("sig") is cache
        assert len(pool.shard_for("sig")) == 1

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ShardedInumCachePool(shards=0)
        with pytest.raises(ValueError):
            ShardedInumCachePool(shards=4, capacity=0)
        with pytest.raises(ValueError):
            # A bounded pool must give each shard at least one entry.
            ShardedInumCachePool(shards=4, capacity=3)

    def test_global_capacity_splits_across_shards(self):
        pool = ShardedInumCachePool(shards=4, capacity=10)
        per_shard = [shard.capacity for shard in pool._shards]
        assert sum(per_shard) == 10
        assert max(per_shard) - min(per_shard) <= 1

    def test_eviction_is_per_shard_lru(self):
        pool = ShardedInumCachePool(shards=2, capacity=2)
        sigs = [("sig", i) for i in range(8)]
        for sig in sigs:
            pool.put(sig, _FakeCache())
        assert len(pool) == 2  # one resident entry per shard
        assert pool.stats.evictions == 6


class TestShardedStats:
    def test_merged_stats_sum_shard_counters(self):
        pool = ShardedInumCachePool(shards=3)
        for i in range(9):
            pool.get(("sig", i))  # 9 misses spread over shards
        for i in range(9):
            pool.put(("sig", i), _FakeCache())
        for i in range(9):
            pool.get(("sig", i))  # 9 hits
        merged = pool.stats
        assert merged.misses == 9 and merged.hits == 9
        assert merged.hit_rate == pytest.approx(0.5)
        by_shard = [PoolStats(**stats) for __, stats in pool.shard_stats()]
        assert PoolStats.merged(by_shard).as_dict() == merged.as_dict()

    def test_merged_is_a_snapshot_not_a_live_object(self):
        pool = ShardedInumCachePool(shards=2)
        before = pool.stats
        pool.get("sig")
        assert before.misses == 0
        assert pool.stats.misses == 1

    def test_stats_deterministic_under_concurrent_eviction(self):
        """Deflake pin: per-shard counters are copied under the shard
        lock and merged in fixed shard order, so a stats read racing
        builders/evictors on other threads still sums to exactly the
        work done once those threads join."""
        import threading

        pool = ShardedInumCachePool(shards=4, capacity=8)
        stop = threading.Event()
        reads = []

        def reader():
            while not stop.is_set():
                reads.append(pool.stats)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            workers = []
            for lane in range(4):
                def work(lane=lane):
                    for i in range(200):
                        signature = ("sig", lane, i)
                        if pool.get(signature) is None:
                            pool.put(signature, _FakeCache())
                workers = workers + [threading.Thread(target=work)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        finally:
            stop.set()
            thread.join()
        final = pool.stats
        # 800 distinct probes, all misses; every counter internally
        # consistent and reproducible read-over-read on the quiet pool.
        assert final.misses == 800 and final.hits == 0
        assert final.evictions == 800 - len(pool)
        assert pool.stats.as_dict() == final.as_dict()
        for snapshot in reads:
            assert snapshot.misses >= snapshot.evictions


class TestShardedAsEvaluatorPool:
    """A WorkloadEvaluator takes the sharded pool interchangeably."""

    def _evaluators(self, catalog):
        flat = WorkloadEvaluator(catalog, pool=InumCachePool())
        sharded = WorkloadEvaluator(
            catalog, pool=ShardedInumCachePool(shards=4)
        )
        return flat, sharded

    def test_costs_identical_to_flat_pool(self, sdss_catalog):
        flat, sharded = self._evaluators(sdss_catalog)
        workload = [(q, 1.0) for q in QUERIES]
        for config in (Configuration.empty(),):
            assert flat.workload_cost(workload, config) == \
                sharded.workload_cost(workload, config)
        assert flat.pool.stats.optimizer_calls == \
            sharded.pool.stats.optimizer_calls

    def test_ownership_check_applies(self, sdss_catalog):
        pool = ShardedInumCachePool(shards=2)
        WorkloadEvaluator(sdss_catalog, pool=pool)
        with pytest.raises(ValueError):
            # A clone is a *different* catalog object; signatures carry
            # no catalog identity, so the pool must refuse it.
            WorkloadEvaluator(sdss_catalog.clone(), pool=pool)

    def test_warm_up_concurrent_equals_sequential(self, sdss_catalog):
        flat, sharded = self._evaluators(sdss_catalog)
        workload = [(q, 1.0) for q in QUERIES]
        calls_seq = flat.warm_up(workload)
        calls_par = sharded.warm_up(workload, threads=4)
        assert calls_seq == calls_par
        assert len(flat.pool) == len(sharded.pool)
        assert set(flat.pool.signatures()) == set(sharded.pool.signatures())
        assert flat.workload_cost(workload) == sharded.workload_cost(workload)

    def test_eviction_broadcast_prunes_evaluator_memos(self, sdss_catalog):
        pool = ShardedInumCachePool(shards=2, capacity=2)
        evaluator = WorkloadEvaluator(sdss_catalog, pool=pool)
        for q in QUERIES:
            evaluator.workload_cost([(q, 1.0)])
        # Memos derived from evicted caches are gone: at most one
        # slot-cost bucket per resident entry.
        assert len(evaluator._slot_costs) <= len(pool)
