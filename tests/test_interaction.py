"""Tests for index interaction analysis and materialization scheduling."""

import pytest

from repro.catalog import Index
from repro.inum import InumCostModel
from repro.interaction import (
    InteractionAnalyzer,
    evaluate_schedule,
    schedule_greedy,
    schedule_naive,
    schedule_optimal,
)

WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0),
    ("SELECT ra, dec, rmag FROM photoobj WHERE ra BETWEEN 50 AND 51 AND dec > 0", 1.0),
    ("SELECT p.ra, s.z FROM photoobj p, specobj s "
     "WHERE p.objid = s.objid AND s.z > 6.8", 1.0),
]

RA = Index("photoobj", ("ra",))
RA_DEC = Index("photoobj", ("ra", "dec"))
Z = Index("specobj", ("z",))
OBJID = Index("photoobj", ("objid",))


@pytest.fixture
def analyzer(sdss_catalog):
    return InteractionAnalyzer(InumCostModel(sdss_catalog), WORKLOAD)


class TestDegreeOfInteraction:
    def test_self_interaction_is_zero(self, analyzer):
        assert analyzer.doi(RA, RA, [RA, Z]) == 0.0

    def test_doi_nonnegative(self, analyzer):
        assert analyzer.doi(RA, Z, [RA, Z, RA_DEC]) >= 0.0

    def test_subsuming_indexes_interact(self, analyzer):
        """ra and (ra,dec) serve the same queries: strong interaction."""
        doi = analyzer.doi(RA, RA_DEC, [RA, RA_DEC])
        assert doi > 0.05

    def test_unrelated_indexes_do_not_interact(self, analyzer):
        """Indexes serving disjoint queries have ~zero interaction."""
        doi = analyzer.doi(RA, Z, [RA, Z])
        assert doi < 0.01

    def test_doi_symmetric_enough(self, analyzer):
        ab = analyzer.doi(RA, RA_DEC, [RA, RA_DEC])
        ba = analyzer.doi(RA_DEC, RA, [RA, RA_DEC])
        assert ab == pytest.approx(ba, rel=0.5)  # same order of magnitude

    def test_benefit_definition(self, analyzer):
        empty_cost = analyzer.cost(frozenset())
        with_ra = analyzer.cost(frozenset([RA]))
        assert analyzer.benefit(RA, ()) == pytest.approx(empty_cost - with_ra)


class TestInteractionGraph:
    def test_nodes_and_benefits(self, analyzer):
        graph = analyzer.interaction_graph([RA, RA_DEC, Z])
        assert set(graph.graph.nodes) == {RA.name, RA_DEC.name, Z.name}
        assert graph.graph.nodes[RA.name]["benefit"] > 0

    def test_edge_between_interacting_pair(self, analyzer):
        graph = analyzer.interaction_graph([RA, RA_DEC, Z])
        assert graph.graph.has_edge(RA.name, RA_DEC.name)

    def test_top_edges_filter(self, analyzer):
        graph = analyzer.interaction_graph([RA, RA_DEC, Z])
        assert len(graph.top_edges(1)) <= 1

    def test_text_and_dot_render(self, analyzer):
        graph = analyzer.interaction_graph([RA, RA_DEC])
        assert "doi" in graph.to_text()
        dot = graph.to_dot()
        assert dot.startswith("graph interactions {") and dot.endswith("}")

    def test_stable_partition_separates_non_interacting(self, analyzer):
        parts = analyzer.stable_partition([RA, RA_DEC, Z], threshold=0.02)
        by_member = {ix.name: i for i, part in enumerate(parts) for ix in part}
        assert by_member[RA.name] == by_member[RA_DEC.name]
        assert by_member[Z.name] != by_member[RA.name]


class TestScheduling:
    INDEXES = [RA, RA_DEC, Z, OBJID]

    def test_schedules_cover_all_indexes(self, analyzer, sdss_catalog):
        for scheduler in (schedule_naive, schedule_greedy, schedule_optimal):
            schedule = scheduler(self.INDEXES, analyzer.cost, sdss_catalog)
            assert sorted(ix.name for ix in schedule.order) == sorted(
                ix.name for ix in self.INDEXES
            )

    def test_optimal_no_worse_than_heuristics(self, analyzer, sdss_catalog):
        optimal = schedule_optimal(self.INDEXES, analyzer.cost, sdss_catalog)
        naive = schedule_naive(self.INDEXES, analyzer.cost, sdss_catalog)
        greedy = schedule_greedy(self.INDEXES, analyzer.cost, sdss_catalog)
        assert optimal.area <= naive.area + 1e-6
        assert optimal.area <= greedy.area + 1e-6

    def test_timeline_monotone_in_time(self, analyzer, sdss_catalog):
        schedule = schedule_greedy(self.INDEXES, analyzer.cost, sdss_catalog)
        times = [t for t, __ in schedule.timeline]
        assert times == sorted(times)
        assert len(schedule.timeline) == len(self.INDEXES) + 1

    def test_final_cost_independent_of_order(self, analyzer, sdss_catalog):
        naive = schedule_naive(self.INDEXES, analyzer.cost, sdss_catalog)
        greedy = schedule_greedy(self.INDEXES, analyzer.cost, sdss_catalog)
        assert naive.timeline[-1][1] == pytest.approx(greedy.timeline[-1][1])

    def test_area_formula(self, analyzer, sdss_catalog):
        """area == sum over steps of (cost before step) * build time."""
        schedule = evaluate_schedule([RA, Z], analyzer.cost, sdss_catalog)
        c0 = analyzer.cost(frozenset())
        c1 = analyzer.cost(frozenset([RA]))
        t_ra = RA.build_cost(sdss_catalog.table("photoobj"))
        t_z = Z.build_cost(sdss_catalog.table("specobj"))
        assert schedule.area == pytest.approx(c0 * t_ra + c1 * t_z, rel=1e-6)

    def test_empty_schedule(self, analyzer, sdss_catalog):
        schedule = schedule_optimal([], analyzer.cost, sdss_catalog)
        assert schedule.order == [] and schedule.area == 0.0

    def test_single_index_trivial(self, analyzer, sdss_catalog):
        schedule = schedule_optimal([RA], analyzer.cost, sdss_catalog)
        assert schedule.order == [RA]

    def test_text_rendering(self, analyzer, sdss_catalog):
        schedule = schedule_greedy([RA, Z], analyzer.cost, sdss_catalog)
        text = schedule.to_text()
        assert "area=" in text and "1." in text
