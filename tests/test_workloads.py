"""Tests for workload generators: schemas bind, queries plan, seeds repeat."""

import pytest

from repro.optimizer import CostService
from repro.sql import bind_sql
from repro.util import DesignError
from repro.workloads import (
    Workload,
    drifting_stream,
    sdss_catalog,
    sdss_workload,
    tpch_catalog,
    tpch_workload,
)
from repro.workloads import sdss, tpch
from repro.workloads.drift import default_phases, tpch_phases


class TestWorkloadContainer:
    def test_iteration_yields_pairs(self):
        wl = Workload([("SELECT a FROM t", 2.0), "SELECT b FROM t"])
        entries = list(wl)
        assert entries == [("SELECT a FROM t", 2.0), ("SELECT b FROM t", 1.0)]

    def test_rejects_bad_entries(self):
        with pytest.raises(DesignError):
            Workload(["  "])
        with pytest.raises(DesignError):
            Workload([("SELECT a FROM t", 0.0)])

    def test_subset_and_merge(self):
        wl = Workload(["SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t"])
        sub = wl.subset([0, 2])
        assert sub.statements == ["SELECT a FROM t", "SELECT c FROM t"]
        merged = sub.merged(Workload(["SELECT d FROM t"]))
        assert len(merged) == 3

    def test_total_weight(self):
        wl = Workload([("SELECT a FROM t", 2.0), ("SELECT b FROM t", 3.0)])
        assert wl.total_weight == 5.0


class TestSdssGenerator:
    def test_catalog_shape(self):
        catalog = sdss_catalog(scale=0.01)
        assert set(catalog.table_names) == {
            "photoobj", "specobj", "field", "neighbors",
        }
        assert len(catalog.table("photoobj").columns) == 30

    def test_scale_controls_rows(self):
        small = sdss_catalog(scale=0.01)
        large = sdss_catalog(scale=0.05)
        assert large.table("photoobj").row_count > small.table("photoobj").row_count

    def test_workload_binds_and_plans(self):
        catalog = sdss_catalog(scale=0.01)
        service = CostService(catalog)
        workload = sdss_workload(n_queries=30, seed=1)
        for sql, __ in workload:
            bind_sql(sql, catalog)  # no BindError
            assert service.cost(sql) > 0

    def test_seed_determinism(self):
        a = sdss_workload(n_queries=15, seed=9).statements
        b = sdss_workload(n_queries=15, seed=9).statements
        c = sdss_workload(n_queries=15, seed=10).statements
        assert a == b
        assert a != c

    def test_mix_has_joins_and_aggregates(self):
        statements = sdss_workload(n_queries=60, seed=2).statements
        assert any("," in s.split("FROM")[1] for s in statements)  # a join
        assert any("GROUP BY" in s for s in statements)


class TestTpchGenerator:
    def test_catalog_shape(self):
        catalog = tpch_catalog(scale=0.01)
        assert set(catalog.table_names) == {
            "lineitem", "orders", "customer", "part", "supplier",
        }

    def test_workload_binds_and_plans(self):
        catalog = tpch_catalog(scale=0.01)
        service = CostService(catalog)
        for sql, __ in tpch_workload(n_queries=20, seed=3):
            assert service.cost(sql) > 0

    def test_seed_determinism(self):
        assert (
            tpch_workload(n_queries=10, seed=4).statements
            == tpch_workload(n_queries=10, seed=4).statements
        )


class TestDriftStream:
    def test_phases_in_order(self):
        phases = default_phases(length=5)
        stream = list(drifting_stream(phases, seed=1))
        assert len(stream) == 15
        names = [name for name, __ in stream]
        assert names == ["positional"] * 5 + ["photometric"] * 5 + ["spectral"] * 5

    def test_stream_queries_bind(self):
        catalog = sdss_catalog(scale=0.01)
        for __, sql in drifting_stream(default_phases(length=4), seed=2):
            bind_sql(sql, catalog)

    def test_phases_emphasize_different_columns(self):
        phases = default_phases(length=30)
        stream = list(drifting_stream(phases, seed=1))
        positional = " ".join(sql for name, sql in stream if name == "positional")
        photometric = " ".join(sql for name, sql in stream if name == "photometric")
        assert "ra BETWEEN" in positional
        assert "ra BETWEEN" not in photometric

    def test_seed_determinism(self):
        a = list(drifting_stream(default_phases(length=12), seed=5))
        b = list(drifting_stream(default_phases(length=12), seed=5))
        c = list(drifting_stream(default_phases(length=12), seed=6))
        assert a == b
        assert a != c

    @pytest.mark.parametrize("length", [1, 7, 40])
    def test_exact_phase_boundary_lengths(self, length):
        stream = list(drifting_stream(default_phases(length=length), seed=3))
        phases = default_phases(length=length)
        assert len(stream) == sum(p.length for p in phases)
        position = 0
        for phase in phases:
            chunk = stream[position:position + phase.length]
            assert [name for name, __ in chunk] == [phase.name] * phase.length
            position += phase.length

    def test_weight_mix_sanity_per_phase(self):
        """With many samples each phase's dominant template dominates,
        and only that phase's templates ever appear."""
        phases = default_phases(length=400)
        stream = list(drifting_stream(phases, seed=8))
        markers = {
            # template -> a substring unique to it within its phase
            "positional": [("ra BETWEEN", 0.8), ("n.distance <", 0.2)],
            "photometric": [
                ("err FROM photoobj", 0.55),  # magnitude_cut projects %serr
                ("mode = 1", 0.30),
                ("GROUP BY type", 0.15),
            ],
            "spectral": [
                ("s.z BETWEEN", 0.5),
                ("sn_median >", 0.3),
                ("plate, COUNT(*)", 0.2),
            ],
        }
        for phase in phases:
            sqls = [sql for name, sql in stream if name == phase.name]
            assert len(sqls) == phase.length
            shares = {
                marker: sum(marker in s for s in sqls) / len(sqls)
                for marker, __ in markers[phase.name]
            }
            for marker, expected in markers[phase.name]:
                assert shares[marker] == pytest.approx(expected, abs=0.1), (
                    phase.name, marker, shares)
            # Weighted draws only: the whole phase is covered by its
            # declared templates.
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    def test_tpch_phases_bind_and_have_exact_lengths(self):
        catalog = tpch_catalog(scale=0.01)
        stream = list(drifting_stream(tpch_phases(length=6), seed=2))
        assert len(stream) == 18
        names = [name for name, __ in stream]
        assert names == ["pricing"] * 6 + ["customers"] * 6 + ["supply"] * 6
        for __, sql in stream:
            bind_sql(sql, catalog)


class TestTemplateRegistries:
    """The public registries are the supported way to address template
    makers — drift streams and tests never touch the privates."""

    def test_sdss_registry_covers_all_weighted_mixes(self):
        registered = set(sdss.TEMPLATE_REGISTRY.values())
        for maker, __ in sdss.TEMPLATES + sdss.WRITE_TEMPLATES:
            assert maker in registered

    def test_tpch_registry_covers_all_weighted_mixes(self):
        registered = set(tpch.TEMPLATE_REGISTRY.values())
        for maker, __ in tpch.TEMPLATES:
            assert maker in registered

    def test_lookup_and_unknown_name(self):
        import random

        maker = sdss.template("cone_search")
        assert "FROM photoobj" in maker(random.Random(1))
        with pytest.raises(KeyError, match="cone_search"):
            sdss.template("nope")
        with pytest.raises(KeyError, match="shipping_window"):
            tpch.template("nope")

    def test_registered_makers_produce_binding_sql(self):
        import random

        from repro.sql.binder import bind_statement

        catalog = sdss_catalog(scale=0.01)
        rng = random.Random(4)
        # bind_statement handles the write templates too (updates,
        # inserts), which plain SELECT binding would reject.
        for name, maker in sorted(sdss.TEMPLATE_REGISTRY.items()):
            bind_statement(maker(rng), catalog)
