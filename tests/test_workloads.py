"""Tests for workload generators: schemas bind, queries plan, seeds repeat."""

import pytest

from repro.optimizer import CostService
from repro.sql import bind_sql
from repro.util import DesignError
from repro.workloads import (
    Workload,
    drifting_stream,
    sdss_catalog,
    sdss_workload,
    tpch_catalog,
    tpch_workload,
)
from repro.workloads.drift import default_phases


class TestWorkloadContainer:
    def test_iteration_yields_pairs(self):
        wl = Workload([("SELECT a FROM t", 2.0), "SELECT b FROM t"])
        entries = list(wl)
        assert entries == [("SELECT a FROM t", 2.0), ("SELECT b FROM t", 1.0)]

    def test_rejects_bad_entries(self):
        with pytest.raises(DesignError):
            Workload(["  "])
        with pytest.raises(DesignError):
            Workload([("SELECT a FROM t", 0.0)])

    def test_subset_and_merge(self):
        wl = Workload(["SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t"])
        sub = wl.subset([0, 2])
        assert sub.statements == ["SELECT a FROM t", "SELECT c FROM t"]
        merged = sub.merged(Workload(["SELECT d FROM t"]))
        assert len(merged) == 3

    def test_total_weight(self):
        wl = Workload([("SELECT a FROM t", 2.0), ("SELECT b FROM t", 3.0)])
        assert wl.total_weight == 5.0


class TestSdssGenerator:
    def test_catalog_shape(self):
        catalog = sdss_catalog(scale=0.01)
        assert set(catalog.table_names) == {
            "photoobj", "specobj", "field", "neighbors",
        }
        assert len(catalog.table("photoobj").columns) == 30

    def test_scale_controls_rows(self):
        small = sdss_catalog(scale=0.01)
        large = sdss_catalog(scale=0.05)
        assert large.table("photoobj").row_count > small.table("photoobj").row_count

    def test_workload_binds_and_plans(self):
        catalog = sdss_catalog(scale=0.01)
        service = CostService(catalog)
        workload = sdss_workload(n_queries=30, seed=1)
        for sql, __ in workload:
            bind_sql(sql, catalog)  # no BindError
            assert service.cost(sql) > 0

    def test_seed_determinism(self):
        a = sdss_workload(n_queries=15, seed=9).statements
        b = sdss_workload(n_queries=15, seed=9).statements
        c = sdss_workload(n_queries=15, seed=10).statements
        assert a == b
        assert a != c

    def test_mix_has_joins_and_aggregates(self):
        statements = sdss_workload(n_queries=60, seed=2).statements
        assert any("," in s.split("FROM")[1] for s in statements)  # a join
        assert any("GROUP BY" in s for s in statements)


class TestTpchGenerator:
    def test_catalog_shape(self):
        catalog = tpch_catalog(scale=0.01)
        assert set(catalog.table_names) == {
            "lineitem", "orders", "customer", "part", "supplier",
        }

    def test_workload_binds_and_plans(self):
        catalog = tpch_catalog(scale=0.01)
        service = CostService(catalog)
        for sql, __ in tpch_workload(n_queries=20, seed=3):
            assert service.cost(sql) > 0

    def test_seed_determinism(self):
        assert (
            tpch_workload(n_queries=10, seed=4).statements
            == tpch_workload(n_queries=10, seed=4).statements
        )


class TestDriftStream:
    def test_phases_in_order(self):
        phases = default_phases(length=5)
        stream = list(drifting_stream(phases, seed=1))
        assert len(stream) == 15
        names = [name for name, __ in stream]
        assert names == ["positional"] * 5 + ["photometric"] * 5 + ["spectral"] * 5

    def test_stream_queries_bind(self):
        catalog = sdss_catalog(scale=0.01)
        for __, sql in drifting_stream(default_phases(length=4), seed=2):
            bind_sql(sql, catalog)

    def test_phases_emphasize_different_columns(self):
        phases = default_phases(length=30)
        stream = list(drifting_stream(phases, seed=1))
        positional = " ".join(sql for name, sql in stream if name == "positional")
        photometric = " ".join(sql for name, sql in stream if name == "photometric")
        assert "ra BETWEEN" in positional
        assert "ra BETWEEN" not in photometric
