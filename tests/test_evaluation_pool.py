"""Cache-behavior tests for the shared INUM pool: LRU order, signature
collisions for alias-renamed queries, and exact statistics counters."""

import pytest

from repro.evaluation import InumCachePool, WorkloadEvaluator, query_signature
from repro.sql.binder import bind_statement
from repro.whatif import Configuration

Q_RA = "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12"
Q_RMAG = "SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1"
Q_GROUP = "SELECT type, COUNT(*) FROM photoobj WHERE gmag < 18 GROUP BY type"
Q_JOIN = (
    "SELECT p.ra, s.z FROM photoobj p, specobj s "
    "WHERE p.objid = s.objid AND s.z > 6.5"
)
Q_JOIN_RENAMED = (
    "SELECT alpha.ra, beta.z FROM photoobj alpha, specobj beta "
    "WHERE alpha.objid = beta.objid AND beta.z > 6.5"
)
Q_JOIN_SWAPPED = (
    "SELECT b.ra, a.z FROM specobj a, photoobj b "
    "WHERE b.objid = a.objid AND a.z > 6.5"
)


class TestSignatures:
    def test_alias_renaming_collides(self, sdss_catalog):
        a = query_signature(bind_statement(Q_JOIN, sdss_catalog))
        b = query_signature(bind_statement(Q_JOIN_RENAMED, sdss_catalog))
        assert a == b

    def test_table_order_is_canonicalized(self, sdss_catalog):
        a = query_signature(bind_statement(Q_JOIN, sdss_catalog))
        b = query_signature(bind_statement(Q_JOIN_SWAPPED, sdss_catalog))
        assert a == b

    def test_different_constants_do_not_collide(self, sdss_catalog):
        a = query_signature(
            bind_statement("SELECT ra FROM photoobj WHERE ra < 10", sdss_catalog)
        )
        b = query_signature(
            bind_statement("SELECT ra FROM photoobj WHERE ra < 20", sdss_catalog)
        )
        assert a != b

    def test_different_projections_do_not_collide(self, sdss_catalog):
        a = query_signature(
            bind_statement("SELECT ra FROM photoobj WHERE ra < 10", sdss_catalog)
        )
        b = query_signature(
            bind_statement(
                "SELECT ra, dec FROM photoobj WHERE ra < 10", sdss_catalog
            )
        )
        assert a != b

    def test_limit_and_order_matter(self, sdss_catalog):
        base = "SELECT ra FROM photoobj WHERE dec > 85"
        a = query_signature(bind_statement(base, sdss_catalog))
        b = query_signature(
            bind_statement(base + " ORDER BY ra LIMIT 5", sdss_catalog)
        )
        assert a != b


class TestAliasRenamedSharing:
    def test_renamed_query_hits_shared_entry(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        first = evaluator.cache_for(Q_JOIN)
        calls_after_first = evaluator.precompute_calls
        second = evaluator.cache_for(Q_JOIN_RENAMED)
        assert second is first  # one shared pool entry
        assert evaluator.precompute_calls == calls_after_first
        assert len(evaluator.pool) == 1
        assert evaluator.pool.stats.hits == 1
        assert evaluator.pool.stats.misses == 1

    def test_renamed_queries_cost_identically(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        from repro.catalog import Index

        config = Configuration.of(Index("specobj", ("z",)))
        assert evaluator.cost(Q_JOIN, config) == pytest.approx(
            evaluator.cost(Q_JOIN_RENAMED, config), rel=1e-12
        )


class TestLru:
    def _evaluator(self, catalog, capacity):
        return WorkloadEvaluator(catalog, pool=InumCachePool(capacity=capacity))

    def test_eviction_order_is_least_recently_used(self, sdss_catalog):
        evaluator = self._evaluator(sdss_catalog, capacity=2)
        evaluator.cache_for(Q_RA)
        evaluator.cache_for(Q_RMAG)
        sig_ra = evaluator.signature(Q_RA)
        sig_rmag = evaluator.signature(Q_RMAG)
        assert evaluator.pool.signatures() == [sig_ra, sig_rmag]

        evaluator.cache_for(Q_GROUP)  # evicts Q_RA (oldest)
        assert evaluator.pool.stats.evictions == 1
        assert sig_ra not in evaluator.pool
        assert sig_rmag in evaluator.pool

    def test_access_refreshes_recency(self, sdss_catalog):
        evaluator = self._evaluator(sdss_catalog, capacity=2)
        evaluator.cache_for(Q_RA)
        evaluator.cache_for(Q_RMAG)
        evaluator.cache_for(Q_RA)  # Q_RA becomes most recent
        evaluator.cache_for(Q_GROUP)  # now Q_RMAG is the LRU victim
        assert evaluator.signature(Q_RA) in evaluator.pool
        assert evaluator.signature(Q_RMAG) not in evaluator.pool

    def test_evicted_entry_is_rebuilt_and_costs_are_stable(self, sdss_catalog):
        evaluator = self._evaluator(sdss_catalog, capacity=1)
        first = evaluator.cost(Q_RA)
        evaluator.cost(Q_RMAG)  # evicts Q_RA's cache
        assert evaluator.cost(Q_RA) == pytest.approx(first, rel=1e-12)
        assert evaluator.pool.stats.evictions >= 2

    def test_eviction_does_not_lose_call_accounting(self, sdss_catalog):
        evaluator = self._evaluator(sdss_catalog, capacity=1)
        evaluator.cache_for(Q_RA)
        calls = evaluator.precompute_calls
        evaluator.cache_for(Q_RMAG)
        assert evaluator.precompute_calls > calls  # cumulative, not resident

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            InumCachePool(capacity=0)


class TestStatsExactness:
    def test_scripted_sequence(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        stats = evaluator.pool.stats
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)

        cache = evaluator.cache_for(Q_RA)  # miss + build
        assert (stats.hits, stats.misses) == (0, 1)
        assert stats.optimizer_calls == cache.build_optimizer_calls
        assert evaluator.precompute_calls == stats.optimizer_calls

        evaluator.cache_for(Q_RA)  # hit
        evaluator.cache_for(Q_RA)  # hit
        assert (stats.hits, stats.misses) == (2, 1)

        build_calls = stats.optimizer_calls
        evaluator.cost(Q_RA)  # evaluation: one pool hit, zero new builds
        assert (stats.hits, stats.misses) == (3, 1)
        assert stats.optimizer_calls == build_calls
        assert evaluator.evaluations == 1
        assert stats.hit_rate == pytest.approx(0.75)

    def test_stats_surface_merges_pool_and_evaluator(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        evaluator.cost(Q_RA, Configuration.empty())
        merged = evaluator.stats
        assert merged["pool_size"] == 1
        assert merged["misses"] == 1
        assert merged["evaluations"] == 1
        assert merged["optimizer_calls"] == evaluator.precompute_calls
        assert merged["exact_optimizer_calls"] == 0

    def test_empty_pool_hit_rate(self):
        assert InumCachePool().stats.hit_rate == 0.0


class TestClearCaches:
    def test_clear_resets_pool_and_memos(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        evaluator.cost(Q_RA, Configuration.empty())
        workload = [(Q_RA, 1.0), (Q_RMAG, 1.0)]
        evaluator.workload_costs(workload, [Configuration.empty()])
        # The scalar reference path still populates the statement memo.
        evaluator.evaluate_configurations(
            workload, [Configuration.empty()], kernel=False
        )
        assert len(evaluator.pool) > 0
        assert evaluator.pool.kernel_count > 0
        assert evaluator._slot_costs and evaluator._stmt_costs
        assert evaluator._compiled
        before = evaluator.cost(Q_RA)

        evaluator.clear_caches()
        assert len(evaluator.pool) == 0
        assert evaluator.pool.kernel_count == 0
        assert not evaluator._slot_costs
        assert not evaluator._stmt_costs
        assert not evaluator._compiled
        # Costs are rebuilt identically after a clear.
        assert evaluator.cost(Q_RA) == pytest.approx(before, rel=1e-12)

    def test_pool_clear_returns_dropped_entries(self, sdss_catalog):
        evaluator = WorkloadEvaluator(sdss_catalog)
        evaluator.cache_for(Q_RA)
        evaluator.cache_for(Q_RMAG)
        dropped = evaluator.pool.clear()
        assert len(dropped) == 2
        assert evaluator.pool.stats.evictions == 0


class TestPoolOwnership:
    def test_shared_pool_rejects_different_catalog(self, sdss_catalog):
        pool = InumCachePool()
        WorkloadEvaluator(sdss_catalog, pool=pool)
        with pytest.raises(ValueError):
            WorkloadEvaluator(sdss_catalog.clone(), pool=pool)

    def test_shared_pool_accepts_same_catalog_and_settings(self, sdss_catalog):
        pool = InumCachePool()
        a = WorkloadEvaluator(sdss_catalog, pool=pool)
        b = WorkloadEvaluator(sdss_catalog, pool=pool)
        a.cache_for(Q_RA)
        assert b.cache_for(Q_RA) is a.cache_for(Q_RA)  # shared entry


class TestExactServiceBound:
    def test_exact_services_are_lru_bounded_with_pinned_base(self, sdss_catalog):
        from repro.catalog import Index
        from repro.evaluation.evaluator import _MAX_EXACT_SERVICES

        evaluator = WorkloadEvaluator(sdss_catalog)
        base = evaluator.exact_service()
        for i in range(_MAX_EXACT_SERVICES + 20):
            config = Configuration.of(
                Index("photoobj", ("ra",), name="ix_tmp_%d" % i)
            )
            evaluator.exact_service(config)
        assert len(evaluator._exact_services) <= _MAX_EXACT_SERVICES
        assert evaluator.exact_service() is base  # base never evicted

    def test_clear_caches_keeps_base_service(self, sdss_catalog):
        from repro.catalog import Index

        evaluator = WorkloadEvaluator(sdss_catalog)
        base = evaluator.exact_service()
        evaluator.exact_service(Configuration.of(Index("photoobj", ("ra",))))
        evaluator.clear_caches()
        assert evaluator.exact_service() is base
        assert len(evaluator._exact_services) == 1

    def test_eviction_prunes_memos_of_all_sharing_evaluators(self, sdss_catalog):
        """One evaluator's eviction must bound the memos of every
        evaluator sharing the pool, not just its own."""
        pool = InumCachePool(capacity=2)
        a = WorkloadEvaluator(sdss_catalog, pool=pool)
        b = WorkloadEvaluator(sdss_catalog, pool=pool)
        a.cost(Q_RA)  # A holds slot memo for Q_RA
        b.cost(Q_RA)  # B too, via the shared entry
        sql = a.cache_for(Q_RA).bound_query.sql
        assert sql in a._slot_costs and sql in b._slot_costs
        b.cache_for(Q_RMAG)
        b.cache_for(Q_GROUP)  # B evicts Q_RA from the shared pool
        assert a.signature(Q_RA) not in pool
        assert sql not in a._slot_costs  # A was notified and pruned
        assert sql not in b._slot_costs

    def test_clear_caches_broadcasts_to_sharing_evaluators(self, sdss_catalog):
        pool = InumCachePool()
        a = WorkloadEvaluator(sdss_catalog, pool=pool)
        b = WorkloadEvaluator(sdss_catalog, pool=pool)
        a.cost(Q_RA)
        b.cost(Q_RA)
        sql = a.cache_for(Q_RA).bound_query.sql
        assert sql in b._slot_costs
        a.clear_caches()
        assert len(pool) == 0
        assert sql not in b._slot_costs  # B pruned via the clear broadcast
