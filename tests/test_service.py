"""Tests for the multi-tenant TuningService: registration, streaming
ingest, drift detection, status snapshots, and the load-bearing
equivalence — shared backplanes dedupe work but never change any
tenant's outcome."""

import pytest

from repro.colt import ColtSettings
from repro.evaluation import WorkloadEvaluator
from repro.service import TenantSession, TuningService
from repro.util import DesignError
from repro.workloads import DriftPhase, drifting_stream, sdss, tpch

SDSS_PHASES = (
    DriftPhase("positional", 10, ((sdss.template("cone_search"), 1.0),)),
    DriftPhase("photometric", 10, ((sdss.template("magnitude_cut"), 1.0),)),
)
TPCH_PHASES = (
    DriftPhase("pricing", 10, ((tpch.template("shipping_window"), 1.0),)),
    DriftPhase("customers", 10, ((tpch.template("customer_orders"), 1.0),)),
)

COLT = ColtSettings(epoch_length=5, space_budget_pages=50_000)


@pytest.fixture(scope="module")
def astro_catalog():
    from repro.workloads import sdss_catalog

    return sdss_catalog(scale=0.01)


@pytest.fixture(scope="module")
def dss_catalog():
    from repro.workloads import tpch_catalog

    return tpch_catalog(scale=0.01)


def options():
    return dict(colt_settings=COLT, recommend_every=8, window=10)


def outcome(session):
    """The per-tenant result surface the equivalence claim covers."""
    status = session.status()
    return (
        status["configuration"],
        [(r.trigger, r.indexes) for r in session.recommendations],
        [(e.from_phase, e.to_phase, e.at_query) for e in session.drift_events],
        status["epochs"],
        status["adoptions"],
    )


class TestRegistration:
    def test_duplicate_backplane_rejected(self, astro_catalog):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        with pytest.raises(DesignError):
            service.add_backplane("sdss", astro_catalog)

    def test_duplicate_tenant_rejected(self, astro_catalog):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        service.add_tenant("t", "sdss")
        with pytest.raises(DesignError):
            service.add_tenant("t", "sdss")

    def test_unknown_backplane_and_tenant_rejected(self, astro_catalog):
        service = TuningService()
        with pytest.raises(DesignError):
            service.add_tenant("t", "ghost")
        with pytest.raises(DesignError):
            service.tenant("ghost")

    def test_tenants_share_their_backplane_evaluator(self, astro_catalog):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        a = service.add_tenant("a", "sdss")
        b = service.add_tenant("b", "sdss")
        assert a.evaluator is b.evaluator
        assert service.backplane("sdss").tenants == ["a", "b"]


class TestTenantSession:
    def test_drift_events_fire_at_phase_boundaries(self, astro_catalog):
        session = TenantSession(
            "t", astro_catalog, WorkloadEvaluator(astro_catalog), **options()
        )
        session.drain(drifting_stream(SDSS_PHASES, seed=2))
        assert [(e.from_phase, e.to_phase) for e in session.drift_events] == [
            ("positional", "photometric")
        ]
        assert session.drift_events[0].at_query == 10  # exactly the boundary
        assert session.status()["phases_seen"] == ["positional", "photometric"]

    def test_drift_restores_colt_probe_budget(self, astro_catalog):
        session = TenantSession(
            "t", astro_catalog, WorkloadEvaluator(astro_catalog),
            colt_settings=ColtSettings(
                epoch_length=2, whatif_budget=16, min_whatif_budget=2,
                space_budget_pages=50_000,
            ),
        )
        # One template, many epochs: the stable design throttles probing.
        for __, sql in drifting_stream((SDSS_PHASES[0],), seed=2):
            session.ingest(("positional", sql))
        assert session.tuner._budget < 16
        session.ingest(("photometric", sdss.template("magnitude_cut")(
            __import__("random").Random(5))))
        assert session.tuner._budget == 16  # restored at the boundary

    def test_refresh_triggers(self, astro_catalog):
        session = TenantSession(
            "t", astro_catalog, WorkloadEvaluator(astro_catalog), **options()
        )
        session.drain(drifting_stream(SDSS_PHASES, seed=2))
        triggers = [r.trigger for r in session.recommendations]
        # 20 events, refresh every 8, one drift boundary, one final.
        assert triggers == ["interval", "drift", "interval", "final"]
        assert all(
            r.at_query <= session.queries for r in session.recommendations
        )

    def test_plain_sql_events_have_no_phase(self, astro_catalog):
        session = TenantSession(
            "t", astro_catalog, WorkloadEvaluator(astro_catalog),
            colt_settings=COLT,
        )
        session.ingest("SELECT ra FROM photoobj WHERE ra < 5")
        assert session.status()["phase"] is None
        assert session.drift_events == []

    def test_finish_is_idempotent(self, astro_catalog):
        session = TenantSession(
            "t", astro_catalog, WorkloadEvaluator(astro_catalog), **options()
        )
        session.drain(drifting_stream((SDSS_PHASES[0],), seed=2))
        recs = len(session.recommendations)
        session.finish()
        assert len(session.recommendations) == recs
        assert session.status()["finished"]

    def test_status_snapshot_shape(self, astro_catalog):
        session = TenantSession(
            "t", astro_catalog, WorkloadEvaluator(astro_catalog), **options()
        )
        session.drain(drifting_stream(SDSS_PHASES, seed=2))
        status = session.status()
        assert status["queries"] == 20
        assert status["epochs"] == 4
        assert status["tenant"] == "t"
        assert status["recommendations"] == len(session.recommendations)
        assert status["last_recommendation"] == \
            session.recommendations[-1].indexes
        assert isinstance(status["observed_cost"], float)


class TestServiceEquivalence:
    """The acceptance-pinned property: hosting tenants together changes
    throughput accounting, never results."""

    def test_shared_tenants_match_alone_runs(self, astro_catalog, dss_catalog):
        specs = [
            ("astro-1", "sdss", SDSS_PHASES, 4),
            ("astro-2", "sdss", SDSS_PHASES, 4),  # fan-in: same stream
            ("astro-3", "sdss", SDSS_PHASES, 9),  # distinct stream
            ("dss-1", "tpch", TPCH_PHASES, 6),
            ("dss-2", "tpch", TPCH_PHASES, 6),
        ]
        catalogs = {"sdss": astro_catalog, "tpch": dss_catalog}

        alone = {}
        for name, key, phases, seed in specs:
            session = TenantSession(
                name, catalogs[key], WorkloadEvaluator(catalogs[key]),
                **options()
            )
            session.drain(drifting_stream(phases, seed=seed))
            alone[name] = session

        service = TuningService(shards=4, warm_threads=4)
        service.add_backplane("sdss", astro_catalog)
        service.add_backplane("tpch", dss_catalog)
        for name, key, __, ___ in specs:
            service.add_tenant(name, key, **options())
        service.run_streams(
            {
                name: drifting_stream(phases, seed=seed)
                for name, __, phases, seed in specs
            }
        )

        for name, __, ___, ____ in specs:
            assert outcome(service.tenant(name)) == outcome(alone[name]), name

        # And the dedupe actually happened: the sdss backplane built the
        # shared astro stream once, not once per tenant.
        shared_builds = service.backplane("sdss").pool.stats.optimizer_calls
        alone_builds = sum(
            alone[n].evaluator.pool.stats.optimizer_calls
            for n, k, __, ___ in specs if k == "sdss"
        )
        assert shared_builds < alone_builds

    def test_concurrent_ingest_matches_sequential(self, astro_catalog):
        def build_and_run(concurrency):
            service = TuningService(shards=2)
            service.add_backplane("sdss", astro_catalog)
            for name in ("a", "b", "c"):
                service.add_tenant(name, "sdss", **options())
            service.run_streams(
                {
                    name: drifting_stream(SDSS_PHASES, seed=i)
                    for i, name in enumerate(("a", "b", "c"))
                },
                concurrency=concurrency,
            )
            return {
                name: outcome(service.tenant(name))
                for name in ("a", "b", "c")
            }

        assert build_and_run(1) == build_and_run(3)


class TestServiceSurface:
    def test_run_streams_unknown_tenant(self, astro_catalog):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        with pytest.raises(DesignError):
            service.run_streams({"ghost": []})

    def test_warm_up_counts_and_is_hit_by_ingest(self, astro_catalog):
        service = TuningService(shards=2, warm_threads=2)
        service.add_backplane("sdss", astro_catalog)
        service.add_tenant("t", "sdss", **options())
        queries = [sql for __, sql in drifting_stream(SDSS_PHASES, seed=2)]
        calls = service.warm_up("sdss", queries)
        assert calls > 0
        assert service.warm_up("sdss", queries) == 0  # already resident
        before = service.backplane("sdss").pool.stats.optimizer_calls
        service.run_streams(
            {"t": drifting_stream(SDSS_PHASES, seed=2)}
        )
        after = service.backplane("sdss").pool.stats.optimizer_calls
        assert after == before  # ingest needed no new INUM builds

    def test_status_text_lists_every_tenant_and_backplane(self, astro_catalog):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        service.add_tenant("alpha", "sdss", **options())
        service.ingest("alpha", ("positional", "SELECT ra FROM photoobj"))
        text = service.status_text()
        assert "alpha" in text
        assert "backplane sdss" in text

    def test_ingest_routes_to_tenant(self, astro_catalog):
        service = TuningService()
        service.add_backplane("sdss", astro_catalog)
        service.add_tenant("t", "sdss", **options())
        service.ingest("t", ("positional", "SELECT ra FROM photoobj"))
        assert service.tenant("t").queries == 1
