"""Tests for the command-line interface."""

import io

import pytest

from repro.designer.cli import main, parse_index_spec
from repro.util import ReproError

FAST = ["--scale", "0.01", "--queries", "6", "--seed", "1"]


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestIndexSpecParsing:
    def test_single_column(self):
        ix = parse_index_spec("photoobj:ra")
        assert ix.table_name == "photoobj" and ix.columns == ("ra",)

    def test_multi_column(self):
        ix = parse_index_spec("photoobj:ra,dec")
        assert ix.columns == ("ra", "dec")

    def test_whitespace_tolerated(self):
        ix = parse_index_spec(" photoobj : ra , dec ")
        assert ix.table_name == "photoobj" and ix.columns == ("ra", "dec")

    @pytest.mark.parametrize("bad", ["photoobj", "photoobj:", ":ra", "a:,,"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_index_spec(bad)


class TestCommands:
    def test_describe(self):
        code, text = run_cli(FAST + ["describe"])
        assert code == 0
        assert "photoobj" in text and "Workload" in text

    def test_describe_tpch(self):
        code, text = run_cli(["--workload", "tpch"] + FAST[0:4] + ["describe"])
        assert code == 0
        assert "lineitem" in text

    def test_evaluate(self):
        code, text = run_cli(
            FAST + ["evaluate", "--indexes", "photoobj:ra,dec", "photoobj:ra"]
        )
        assert code == 0
        assert "What-if evaluation" in text
        assert "interaction" in text.lower()

    def test_evaluate_bad_spec_is_reported(self):
        code, text = run_cli(FAST + ["evaluate", "--indexes", "nope"])
        assert code == 2
        assert "error:" in text

    def test_evaluate_unknown_table_is_reported(self):
        code, text = run_cli(FAST + ["evaluate", "--indexes", "ghost:ra"])
        assert code == 2
        assert "error:" in text

    def test_recommend(self):
        code, text = run_cli(
            FAST + ["recommend", "--budget-frac", "0.2", "--solver", "greedy",
                    "--no-partitions"]
        )
        assert code == 0
        assert "Recommended indexes" in text
        assert "storage budget" in text

    def test_explain(self):
        code, text = run_cli(
            FAST + ["explain", "--sql", "SELECT ra FROM photoobj WHERE ra < 5"]
        )
        assert code == 0
        assert "cost=" in text

    def test_online(self):
        code, text = run_cli(
            FAST + ["online", "--phase-length", "10", "--epoch", "5"]
        )
        assert code == 0
        assert "epoch" in text and "saved" in text

    def test_online_alert_only(self):
        code, text = run_cli(
            FAST + ["online", "--phase-length", "10", "--epoch", "5",
                    "--no-adopt"]
        )
        assert code == 0

    def test_stream(self):
        code, text = run_cli(
            FAST + ["stream", "--phase-length", "8", "--epoch", "5",
                    "--refresh-every", "10", "--window", "10"]
        )
        assert code == 0
        assert "epoch" in text  # the COLT panel
        assert "refresh@" in text  # recommendation refreshes
        assert "backplane sdss" in text  # pool status line

    def test_stream_tpch(self):
        code, text = run_cli(
            ["--workload", "tpch"] + FAST
            + ["stream", "--phase-length", "6", "--epoch", "5",
               "--refresh-every", "10"]
        )
        assert code == 0
        assert "backplane tpch" in text

    def test_serve(self):
        code, text = run_cli(
            FAST + ["serve", "--tenants", "2", "--shards", "2",
                    "--phase-length", "6", "--epoch", "5",
                    "--refresh-every", "10"]
        )
        assert code == 0
        # One SDSS and one TPC-H tenant, plus both backplane lines.
        assert "sdss-0" in text and "tpch-1" in text
        assert "backplane sdss" in text and "backplane tpch" in text

    def test_serve_state_dir_kill_restore_cycle(self, tmp_path):
        """--state-dir + --max-events simulates a shutdown mid-stream;
        the next invocation restores the tenant and finishes it."""
        state = str(tmp_path / "state")
        args = FAST + ["serve", "--tenants", "1", "--shards", "2",
                       "--phase-length", "5", "--epoch", "5",
                       "--refresh-every", "0", "--state-dir", state]
        code, text = run_cli(args + ["--max-events", "8"])
        assert code == 0
        assert "state saved to" in text
        assert "       8 " in text  # 8 of 15 events ingested
        code, text = run_cli(args)
        assert code == 0
        assert "restored 1 tenant(s)" in text
        assert "      15 " in text  # resumed to the end of the stream

    def test_serve_snapshot_interval_periodic_and_restorable(self, tmp_path):
        """--snapshot-interval writes consistent snapshots at scheduler
        pause points without stopping ingest; the state dir restores."""
        import re

        state = str(tmp_path / "state")
        args = FAST + ["serve", "--tenants", "1", "--shards", "2",
                       "--phase-length", "5", "--epoch", "5",
                       "--refresh-every", "0", "--state-dir", state,
                       "--snapshot-interval", "3"]
        code, text = run_cli(args + ["--max-events", "8"])
        assert code == 0
        assert "state saved to" in text
        count = int(re.search(r"snapshots=(\d+)", text).group(1))
        assert count >= 3  # periodic pause-point snapshots + final save
        code, text = run_cli(args)
        assert code == 0
        assert "restored 1 tenant(s)" in text
        assert "      15 " in text

    def test_serve_snapshot_interval_requires_state_dir(self):
        code, text = run_cli(
            FAST + ["serve", "--tenants", "1", "--snapshot-interval", "3"]
        )
        assert code == 2
        assert "--state-dir" in text
