"""Tests for CoPhy: candidates, BIP construction, solvers, advisor."""

import pytest

from repro.catalog import Index
from repro.cophy import (
    CoPhyAdvisor,
    build_bip,
    candidate_indexes,
    greedy_select,
    solve_bip,
    solve_branch_and_bound,
    solve_lp_rounding,
)
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.util import DesignError

WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0),
    ("SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1", 1.0),
    ("SELECT p.ra, s.z FROM photoobj p, specobj s "
     "WHERE p.objid = s.objid AND s.z > 6.5", 1.0),
    ("SELECT ra FROM photoobj WHERE dec > 85 ORDER BY ra LIMIT 5", 1.0),
]


@pytest.fixture
def inum(sdss_catalog):
    return InumCostModel(sdss_catalog)


@pytest.fixture
def problem(sdss_catalog, inum):
    candidates = candidate_indexes(sdss_catalog, WORKLOAD, max_candidates=14)
    budget = sum(
        ix.size_pages(sdss_catalog.table(ix.table_name)) for ix in candidates
    ) // 3
    return build_bip(inum, WORKLOAD, candidates, budget)


class TestCandidateGeneration:
    def test_filter_columns_become_candidates(self, sdss_catalog):
        cands = candidate_indexes(sdss_catalog, WORKLOAD)
        assert Index("photoobj", ("ra",)) in cands
        assert Index("specobj", ("z",)) in cands

    def test_join_columns_become_candidates(self, sdss_catalog):
        cands = candidate_indexes(sdss_catalog, WORKLOAD)
        assert Index("photoobj", ("objid",)) in cands
        assert Index("specobj", ("objid",)) in cands

    def test_composites_for_eq_plus_range(self, sdss_catalog):
        cands = candidate_indexes(sdss_catalog, WORKLOAD)
        assert Index("photoobj", ("type", "rmag")) in cands

    def test_cap_respected(self, sdss_catalog):
        assert len(candidate_indexes(sdss_catalog, WORKLOAD, max_candidates=5)) == 5

    def test_weights_affect_ranking(self, sdss_catalog):
        heavy = [("SELECT zerr FROM specobj WHERE zerr < 0.001", 100.0)]
        cands = candidate_indexes(sdss_catalog, heavy + WORKLOAD, max_candidates=3)
        assert any(ix.columns[0] == "zerr" for ix in cands)


class TestBipProblem:
    def test_empty_config_cost_is_base(self, problem, inum):
        base = inum.workload_cost(WORKLOAD)
        assert problem.config_cost(()) == pytest.approx(base, rel=1e-6)

    def test_config_cost_matches_inum(self, problem, inum):
        from repro.whatif import Configuration

        chosen = (0, 1)
        config = Configuration.of(*(problem.candidates[p] for p in chosen))
        assert problem.config_cost(chosen) == pytest.approx(
            inum.workload_cost(WORKLOAD, config), rel=1e-6
        )

    def test_config_size_sums_pages(self, problem):
        assert problem.config_size((0,)) == problem.sizes[0]
        assert problem.config_size(()) == 0

    def test_more_indexes_never_worse(self, problem):
        all_pos = tuple(range(problem.n_candidates))
        assert problem.config_cost(all_pos) <= problem.config_cost(()) + 1e-6


class TestSolvers:
    def test_milp_respects_budget(self, problem):
        result = solve_bip(problem)
        assert problem.config_size(result.chosen_positions) <= problem.budget_pages

    def test_milp_no_worse_than_greedy(self, problem):
        milp = solve_bip(problem)
        greedy = greedy_select(problem)
        assert milp.objective <= greedy.objective + 1e-6

    def test_milp_objective_is_true_cost(self, problem):
        result = solve_bip(problem)
        assert result.objective == pytest.approx(
            problem.config_cost(result.chosen_positions)
        )

    def test_lower_bound_sound(self, problem):
        result = solve_bip(problem)
        assert result.lower_bound <= result.objective + 1e-6

    def test_branch_and_bound_matches_milp(self, problem):
        milp = solve_bip(problem)
        bnb = solve_branch_and_bound(problem, max_nodes=800)
        assert bnb.objective == pytest.approx(milp.objective, rel=0.01)

    def test_lp_rounding_feasible(self, problem):
        result = solve_lp_rounding(problem)
        assert problem.config_size(result.chosen_positions) <= problem.budget_pages
        assert result.objective <= problem.config_cost(()) + 1e-6

    def test_greedy_improves_over_empty(self, problem):
        result = greedy_select(problem)
        assert result.objective <= problem.config_cost(()) + 1e-6

    def test_zero_budget_selects_nothing(self, sdss_catalog, inum):
        cands = candidate_indexes(sdss_catalog, WORKLOAD, max_candidates=8)
        problem = build_bip(inum, WORKLOAD, cands, budget_pages=0)
        for solver in (solve_bip, greedy_select, solve_lp_rounding):
            assert solver(problem).chosen_positions == ()


class TestAdvisor:
    def test_recommendation_fields(self, sdss_catalog):
        advisor = CoPhyAdvisor(sdss_catalog)
        rec = advisor.recommend(WORKLOAD, budget_pages=20_000, solver="milp")
        assert rec.predicted_workload_cost <= rec.base_workload_cost
        assert rec.size_pages <= rec.budget_pages
        assert rec.improvement_pct >= 0
        assert "CREATE INDEX" in rec.to_text() or "none" in rec.to_text()

    def test_predicted_cost_matches_real_optimizer(self, sdss_catalog):
        advisor = CoPhyAdvisor(sdss_catalog)
        rec = advisor.recommend(WORKLOAD, budget_pages=20_000, solver="milp")
        real = CostService(rec.configuration.apply(sdss_catalog)).workload_cost(
            WORKLOAD
        )
        assert rec.predicted_workload_cost == pytest.approx(real, rel=0.02)

    def test_unknown_solver_rejected(self, sdss_catalog):
        with pytest.raises(DesignError, match="solver"):
            CoPhyAdvisor(sdss_catalog).recommend(WORKLOAD, 1000, solver="magic")

    def test_empty_workload_rejected(self, sdss_catalog):
        with pytest.raises(DesignError, match="empty"):
            CoPhyAdvisor(sdss_catalog).recommend([], 1000)

    def test_negative_budget_rejected(self, sdss_catalog):
        with pytest.raises(DesignError, match="budget"):
            CoPhyAdvisor(sdss_catalog).recommend(WORKLOAD, -5)

    def test_budget_sweep_monotone(self, sdss_catalog):
        """Bigger budgets can only help — the CL-ILP experiment's backbone."""
        advisor = CoPhyAdvisor(sdss_catalog)
        costs = [
            advisor.recommend(WORKLOAD, budget_pages=b, solver="milp"
                              ).predicted_workload_cost
            for b in (0, 2_000, 10_000, 50_000)
        ]
        for tighter, looser in zip(costs, costs[1:]):
            assert looser <= tighter + 1e-6

    def test_seeded_candidates_used(self, sdss_catalog):
        designer_seed = Index("photoobj", ("dec", "ra"))
        advisor = CoPhyAdvisor(sdss_catalog)
        rec = advisor.recommend(
            WORKLOAD, budget_pages=50_000, candidates=[designer_seed], solver="milp"
        )
        assert set(rec.indexes) <= {designer_seed}
