"""Tests for the cooperative tenant-scheduler runtime.

The ISSUE-4 acceptance pins live here:

* scheduler-driven ``run_streams`` produces **bit-identical** per-tenant
  results to the PR-2 thread-loop path (``run_streams_threaded``) on the
  SDSS and TPC-H drift streams;
* a mid-ingest pause-point snapshot restores to the same subsequent
  recommendations as an uninterrupted run;
* fairness: no tenant starves under a skewed stream, and priorities
  weight dispatch without changing any result;
* backpressure: push-mode intake refuses events beyond ``max_pending``;
* the process-offload executor changes wall-clock placement only, never
  results; a closed :class:`ProcessPoolBackplane` fails loudly.
"""

import itertools

import pytest

from repro.colt import ColtSettings
from repro.evaluation import ProcessPoolBackplane, WorkloadEvaluator, wire
from repro.runtime import ProcessStepExecutor, Scheduler, StepExecutor
from repro.service import TenantSession, TuningService
from repro.util import DesignError
from repro.workloads import DriftPhase, drifting_stream, sdss, tpch
from repro.workloads import sdss_catalog as make_sdss
from repro.workloads.drift import default_phases

SDSS_PHASES = (
    DriftPhase("positional", 10, ((sdss.template("cone_search"), 1.0),)),
    DriftPhase("photometric", 10, ((sdss.template("magnitude_cut"), 1.0),)),
)
TPCH_PHASES = (
    DriftPhase("pricing", 10, ((tpch.template("shipping_window"), 1.0),)),
    DriftPhase("customers", 10, ((tpch.template("customer_orders"), 1.0),)),
)

COLT = ColtSettings(epoch_length=5, space_budget_pages=50_000)


@pytest.fixture(scope="module")
def astro_catalog():
    return make_sdss(scale=0.01)


@pytest.fixture(scope="module")
def dss_catalog():
    from repro.workloads import tpch_catalog

    return tpch_catalog(scale=0.01)


def options():
    return dict(colt_settings=COLT, recommend_every=8, window=10)


def outcome(session):
    """The per-tenant result surface the equivalence pins cover."""
    status = session.status()
    return (
        status["configuration"],
        [(r.at_query, r.trigger, r.indexes) for r in session.recommendations],
        [(e.from_phase, e.to_phase, e.at_query) for e in session.drift_events],
        [(e.epoch, e.queries, e.observed_cost, e.build_cost, e.whatif_probes)
         for e in session.report.epochs],
        status["adoptions"],
    )


def session_for(catalog, name="t", **overrides):
    opts = options()
    opts.update(overrides)
    return TenantSession(name, catalog, WorkloadEvaluator(catalog), **opts)


class TestStepDecomposition:
    """ingest()/finish() and the step generators are the same machine."""

    def test_step_driven_ingest_equals_drain(self, astro_catalog):
        loop = session_for(astro_catalog)
        loop.drain(drifting_stream(SDSS_PHASES, seed=2))

        stepped = session_for(astro_catalog)
        for event in drifting_stream(SDSS_PHASES, seed=2):
            for step in stepped.ingest_steps(event):
                step.run()
        for step in stepped.finish_steps():
            step.run()

        assert outcome(stepped) == outcome(loop)
        assert stepped.status()["finished"]

    def test_step_kinds_and_prewarm(self, astro_catalog):
        session = session_for(astro_catalog, recommend_every=2)
        kinds = []
        for event in itertools.islice(drifting_stream(SDSS_PHASES, seed=2), 12):
            for step in session.ingest_steps(event):
                kinds.append(step.kind)
                if step.kind == "observe":
                    assert step.heavy and step.prewarm[0] == event[1]
                step.run()
        # First event carries the phase tag -> a (light) drift step;
        # every 2nd event triggers an interval refresh; the boundary at
        # event 11 triggers a heavy drift step.
        assert kinds[0] == "drift"
        assert kinds.count("refresh") == 6
        heavy_drifts = [k for k in kinds if k == "drift"]
        assert len(heavy_drifts) == 2  # first phase tag + one boundary
        final = list(session.finish_steps())
        assert [s.kind for s in final] == ["flush", "final"]

    def test_finish_steps_idempotent(self, astro_catalog):
        session = session_for(astro_catalog)
        session.drain(drifting_stream((SDSS_PHASES[0],), seed=2))
        assert list(session.finish_steps()) == []


class TestRunStreamsEquivalence:
    """The acceptance pin: the scheduler shim is bit-identical to the
    PR-2 thread-per-tenant loop on the SDSS and TPC-H drift streams."""

    def test_scheduler_matches_thread_loop(self, astro_catalog, dss_catalog):
        specs = [
            ("astro-1", "sdss", SDSS_PHASES, 4),
            ("astro-2", "sdss", SDSS_PHASES, 9),
            ("dss-1", "tpch", TPCH_PHASES, 6),
        ]
        catalogs = {"sdss": astro_catalog, "tpch": dss_catalog}

        def build():
            service = TuningService(shards=2)
            for key, catalog in catalogs.items():
                service.add_backplane(key, catalog)
            for name, key, __, ___ in specs:
                service.add_tenant(name, key, **options())
            return service

        def streams():
            return {
                name: drifting_stream(phases, seed=seed)
                for name, __, phases, seed in specs
            }

        threaded = build()
        threaded.run_streams_threaded(streams())
        scheduled = build()
        scheduled.run_streams(streams())

        for name, __, ___, ____ in specs:
            assert outcome(scheduled.tenant(name)) == \
                outcome(threaded.tenant(name)), name

    def test_priorities_change_order_not_results(self, astro_catalog):
        def run(priorities):
            service = TuningService(shards=2)
            service.add_backplane("sdss", astro_catalog)
            for name in ("a", "b"):
                service.add_tenant(name, "sdss", **options())
            service.run_scheduled(
                {
                    name: drifting_stream(SDSS_PHASES, seed=i)
                    for i, name in enumerate(("a", "b"))
                },
                priorities=priorities,
            )
            return {n: outcome(service.tenant(n)) for n in ("a", "b")}

        assert run(None) == run({"a": 3.0, "b": 0.5})


class TestSchedulerFairness:
    def _make(self, catalog, names, **session_overrides):
        scheduler = Scheduler(trace=True, lookahead=2)
        sessions = {}
        for name in names:
            sessions[name] = session_for(
                catalog, name, recommend_every=0, **session_overrides
            )
        return scheduler, sessions

    def test_skewed_stream_does_not_starve(self, astro_catalog):
        """Tenant a's stream is 10x tenant b's; b still interleaves
        throughout instead of waiting for a to drain."""
        scheduler, sessions = self._make(astro_catalog, ("a", "b"))
        scheduler.add(
            "a", sessions["a"],
            itertools.islice(drifting_stream(SDSS_PHASES, seed=1), 0, None, 1),
        )
        scheduler.add(
            "b", sessions["b"],
            itertools.islice(drifting_stream(SDSS_PHASES, seed=2), 6),
        )
        scheduler.run()
        log = scheduler.dispatch_log
        assert sessions["a"].queries == 20 and sessions["b"].queries == 6
        b_positions = [i for i, (n, __) in enumerate(log) if n == "b"]
        b_total = len(b_positions)
        a_before_b_done = sum(
            1 for n, __ in log[: b_positions[-1]] if n == "a"
        )
        # Stride scheduling at equal priority alternates: while b is
        # runnable, a cannot run more than a step or two ahead of it.
        assert a_before_b_done <= b_total + 2, (a_before_b_done, b_total)

    def test_priority_weights_dispatch(self, astro_catalog):
        scheduler, sessions = self._make(astro_catalog, ("fast", "slow"))
        scheduler.add(
            "fast", sessions["fast"],
            itertools.islice(drifting_stream(SDSS_PHASES, seed=3), 16),
            priority=2.0,
        )
        scheduler.add(
            "slow", sessions["slow"],
            itertools.islice(drifting_stream(SDSS_PHASES, seed=4), 16),
            priority=1.0,
        )
        scheduler.run()
        log = scheduler.dispatch_log
        # While both are runnable, fast gets ~2 steps per slow step:
        # by slow's 5th dispatch, fast has had roughly twice as many.
        fifth_slow = [i for i, (n, __) in enumerate(log) if n == "slow"][4]
        fast_so_far = sum(1 for n, __ in log[:fifth_slow] if n == "fast")
        assert 8 <= fast_so_far <= 12, fast_so_far

    def test_bad_priority_rejected(self, astro_catalog):
        scheduler = Scheduler()
        with pytest.raises(DesignError):
            scheduler.add(
                "t", session_for(astro_catalog), [], priority=0
            )

    def test_duplicate_task_rejected(self, astro_catalog):
        scheduler = Scheduler()
        scheduler.add("t", session_for(astro_catalog), [])
        with pytest.raises(DesignError):
            scheduler.add("t", session_for(astro_catalog), [])


class TestBackpressure:
    def test_push_mode_admission_control(self, astro_catalog):
        scheduler = Scheduler()
        session = session_for(astro_catalog, recommend_every=0)
        scheduler.add("t", session, stream=None, max_pending=3)
        events = list(itertools.islice(drifting_stream(SDSS_PHASES, seed=5), 4))
        assert all(scheduler.submit("t", e) for e in events[:3])
        assert scheduler.queue_depths() == {"t": 3}
        assert scheduler.submit("t", events[3]) is False  # buffer full
        scheduler.run()  # drains the 3, then parks the idle intake
        assert session.queries == 3
        assert scheduler.queue_depths() == {"t": 0}
        assert scheduler.submit("t", events[3]) is True  # room again
        scheduler.close_intake("t")
        scheduler.run()
        assert session.queries == 4
        assert session.status()["finished"]

    def test_submit_after_close_rejected(self, astro_catalog):
        scheduler = Scheduler()
        scheduler.add("t", session_for(astro_catalog), stream=None)
        scheduler.close_intake("t")
        with pytest.raises(DesignError):
            scheduler.submit("t", "SELECT ra FROM photoobj")

    def test_pull_refill_respects_max_pending(self, astro_catalog):
        scheduler = Scheduler(lookahead=8)
        session = session_for(astro_catalog, recommend_every=0)
        task = scheduler.add(
            "t", session, drifting_stream(SDSS_PHASES, seed=6),
            max_pending=2,
        )
        pulled = task.refill(8)
        assert len(pulled) == 2 and task.queue_depth == 2


class TestPausePointSnapshots:
    """Snapshots taken mid-ingest at pause points are consistent: the
    restored service emits the same subsequent recommendations as an
    uninterrupted run (with pending buffered events carried in the
    wire payload and re-queued on resume)."""

    OPTIONS = dict(recommend_every=15, window=20)

    @staticmethod
    def make_service():
        service = TuningService(shards=2)
        service.add_backplane("sdss", make_sdss(scale=0.02))
        return service

    @staticmethod
    def stream():
        return drifting_stream(default_phases(12), seed=5)

    @staticmethod
    def fingerprint(session):
        return (
            [
                (r.at_query, r.phase, r.trigger, r.indexes)
                for r in session.recommendations
            ],
            session.status()["configuration"],
            [
                (e.at_query, e.from_phase, e.to_phase)
                for e in session.drift_events
            ],
            [
                (e.epoch, e.queries, e.observed_cost, e.configuration)
                for e in session.report.epochs
            ],
        )

    def test_mid_ingest_snapshot_restores_identically(self):
        uninterrupted = self.make_service()
        uninterrupted.add_tenant("t0", "sdss", **self.OPTIONS)
        uninterrupted.run_scheduled({"t0": self.stream()})

        captured = []
        live = self.make_service()
        live.add_tenant("t0", "sdss", **self.OPTIONS)
        live.run_scheduled(
            {"t0": self.stream()},
            snapshot_interval=7,
            lookahead=5,
            on_snapshot=captured.append,
        )
        assert len(captured) >= 3
        # Pick a payload from the middle of the stream, and prefer one
        # whose scheduler buffers were non-empty — the interesting case.
        with_pending = [
            p for p in captured
            if p["scheduler"]["pending"].get("t0")
        ]
        assert with_pending, "lookahead never left events buffered"
        payload = with_pending[0]
        payload = wire.loads(wire.dumps(payload))  # full wire round trip

        resumed = self.make_service()
        restored = resumed.restore(payload)
        assert set(restored) == {"t0"}
        session = resumed.tenant("t0")
        ingested = payload["tenants"][0]["session"]["queries"]
        buffered = len(payload["scheduler"]["pending"]["t0"])
        assert session.queries == ingested
        assert resumed.stream_offset("t0") == ingested + buffered
        resumed.run_scheduled(
            {"t0": itertools.islice(self.stream(), ingested + buffered, None)}
        )
        assert self.fingerprint(session) == self.fingerprint(
            uninterrupted.tenant("t0")
        )

    def test_snapshot_pauses_at_event_boundaries(self):
        """Every periodic snapshot sees whole events only: a session
        mid-epoch is fine, a session mid-event never happens."""
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        seen = []

        def check(payload):
            session_payload = payload["tenants"][0]["session"]
            buffered = payload["scheduler"]["pending"].get("t0", ())
            # queries counts only fully ingested events; window and
            # epoch state can never disagree with it at a pause point.
            seen.append(
                (session_payload["queries"], len(buffered))
            )
            assert len(session_payload["window_queries"]) == min(
                session_payload["queries"], self.OPTIONS["window"]
            )

        service.run_scheduled(
            {"t0": self.stream()}, snapshot_interval=5, on_snapshot=check
        )
        assert seen and all(q > 0 for q, __ in seen)

    def test_direct_snapshot_mid_run_refused(self):
        """Only the scheduler's own pause-point hook may snapshot while
        a run is active; a direct call (e.g. a monitoring thread) would
        capture sessions mid-event, so it raises instead."""
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        caught = []

        class Prober(StepExecutor):
            def prepare(self, session, step):
                if not caught:
                    with pytest.raises(DesignError, match="pause point"):
                        service.snapshot()
                    caught.append(True)

        service.run_scheduled(
            {"t0": itertools.islice(self.stream(), 4)},
            executor=Prober(), finish=False,
        )
        assert caught
        service.snapshot()  # fine again once the run is over

    def test_run_exception_preserves_buffered_events(self):
        """A run that dies mid-stream leaves pulled-but-not-ingested
        events re-captured in the service's pending state, so a later
        snapshot still carries them."""
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)

        class Bomb(StepExecutor):
            def __init__(self):
                self.steps = 0

            def prepare(self, session, step):
                self.steps += 1
                if self.steps == 6:
                    raise RuntimeError("worker died")

        with pytest.raises(RuntimeError, match="worker died"):
            service.run_scheduled(
                {"t0": self.stream()}, executor=Bomb(), lookahead=5,
            )
        buffered = service.queue_depths()["t0"]
        assert buffered > 0
        payload = service.snapshot()
        assert len(payload["scheduler"]["pending"]["t0"]) == buffered
        assert service.stream_offset("t0") == \
            service.tenant("t0").queries + buffered

    def test_status_reports_snapshot_age_and_queues(self, tmp_path):
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        service.run_scheduled(
            {"t0": itertools.islice(self.stream(), 10)},
            finish=False,
            snapshot_interval=4,
            state_dir=str(tmp_path),
        )
        status = service.status()
        assert status["runtime"]["snapshots"] >= 2
        assert status["runtime"]["last_snapshot_age"] is not None
        assert status["runtime"]["queue_depths"] == {"t0": 0}
        assert "runtime:" in service.status_text()
        # The periodic writes landed in the state dir and are loadable.
        fresh = self.make_service()
        assert set(fresh.load_state(tmp_path)) == {"t0"}


class TestProcessOffload:
    """The executor seam moves cache builds across processes; results
    stay bit-identical to inline execution."""

    def test_offloaded_run_matches_inline(self):
        catalog = make_sdss(scale=0.01)

        def run(executor):
            service = TuningService(shards=2)
            service.add_backplane("sdss", catalog)
            for name, seed in (("a", 4), ("b", 9)):
                service.add_tenant(
                    name, "sdss", colt_settings=COLT,
                    recommend_every=8, window=10,
                )
            service.run_scheduled(
                {
                    name: drifting_stream(SDSS_PHASES, seed=seed)
                    for name, seed in (("a", 4), ("b", 9))
                },
                executor=executor,
                lookahead=6,
            )
            return {n: outcome(service.tenant(n)) for n in ("a", "b")}

        inline = run(StepExecutor())
        with ProcessStepExecutor(processes=2) as offload:
            pooled = run(offload)
        assert pooled == inline

    def test_offload_prewarms_ahead_of_steps(self):
        """After an offloaded run, the evaluator's pool was fed by wire
        entries built in workers — the same signatures the inline path
        builds locally."""
        catalog = make_sdss(scale=0.01)
        inline_service = TuningService(shards=1)
        inline_service.add_backplane("sdss", catalog)
        inline_service.add_tenant("t", "sdss", colt_settings=COLT)
        inline_service.run_scheduled(
            {"t": drifting_stream(SDSS_PHASES, seed=3)}
        )

        pooled_service = TuningService(shards=1)
        pooled_service.add_backplane("sdss", catalog)
        pooled_service.add_tenant("t", "sdss", colt_settings=COLT)
        with ProcessStepExecutor(processes=2) as executor:
            pooled_service.run_scheduled(
                {"t": drifting_stream(SDSS_PHASES, seed=3)},
                executor=executor, lookahead=6,
            )
        assert set(pooled_service.backplane("sdss").pool.signatures()) == \
            set(inline_service.backplane("sdss").pool.signatures())


class TestBackplaneClose:
    def test_use_after_close_raises_design_error(self):
        catalog = make_sdss(scale=0.01)
        evaluator = WorkloadEvaluator(catalog)
        backplane = ProcessPoolBackplane(evaluator, processes=2)
        backplane.warm_up(["SELECT ra FROM photoobj WHERE ra < 5"])
        backplane.close()
        assert backplane.closed
        with pytest.raises(DesignError, match="closed"):
            backplane.warm_up(["SELECT dec FROM photoobj WHERE dec < 1"])
        with pytest.raises(DesignError, match="closed"):
            backplane.evaluate_configurations(
                ["SELECT ra FROM photoobj", "SELECT dec FROM photoobj"],
                [None],
            )

    def test_close_is_idempotent(self):
        catalog = make_sdss(scale=0.01)
        backplane = ProcessPoolBackplane(
            WorkloadEvaluator(catalog), processes=2
        )
        backplane.close()
        backplane.close()

    def test_executor_close_closes_backplanes(self):
        catalog = make_sdss(scale=0.01)
        evaluator = WorkloadEvaluator(catalog)
        executor = ProcessStepExecutor(processes=2)
        executor.refill(evaluator, ["SELECT ra FROM photoobj WHERE ra < 5"])
        inner = executor._backplanes[id(evaluator)]
        executor.close()
        assert inner.closed
        assert executor._backplanes == {}
