"""Optimizer tests: plan shapes, cost-model behaviour, GUC toggles."""

import pytest

from repro.catalog import HorizontalPartitioning, Index, VerticalFragment, VerticalLayout
from repro.optimizer import CostService, PlannerSettings
from repro.optimizer.paths import mackert_lohman_pages
from repro.sql import bind_sql


@pytest.fixture
def svc(sdss_catalog):
    return CostService(sdss_catalog)


@pytest.fixture
def svc_ix(sdss_with_indexes):
    return CostService(sdss_with_indexes)


def node_types(plan):
    return [n.node_type for n in plan.walk()]


class TestScanChoice:
    def test_no_index_means_seqscan(self, svc):
        plan = svc.plan("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11")
        assert plan.node_type == "SeqScan"

    def test_selective_predicate_uses_index(self, svc_ix):
        plan = svc_ix.plan("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 10.5")
        assert "IndexScan" in node_types(plan) or "IndexOnlyScan" in node_types(plan)

    def test_wide_predicate_prefers_seqscan(self, svc_ix):
        plan = svc_ix.plan("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 0 AND 350")
        assert plan.node_type == "SeqScan"

    def test_index_only_scan_when_covered(self, svc_ix):
        plan = svc_ix.plan("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11")
        assert plan.node_type == "IndexOnlyScan"

    def test_uncorrelated_medium_selectivity_prefers_bitmap(self, sdss_catalog):
        catalog = sdss_catalog.clone()
        catalog.add_index(Index("photoobj", ("dec",)))  # dec has correlation 0
        svc = CostService(catalog)
        plan = svc.plan("SELECT ra, dec FROM photoobj WHERE dec BETWEEN 0 AND 4")
        assert plan.node_type == "BitmapHeapScan"

    def test_equality_on_indexed_column(self, svc_ix):
        plan = svc_ix.plan("SELECT ra, rmag FROM photoobj WHERE objid = 123")
        assert plan.node_type in ("IndexScan", "BitmapHeapScan")
        assert plan.rows == pytest.approx(1.0, abs=1.0)


class TestCostMonotonicity:
    def test_adding_index_never_increases_cost(self, sdss_catalog):
        queries = [
            "SELECT ra FROM photoobj WHERE ra BETWEEN 5 AND 6",
            "SELECT ra, rmag FROM photoobj WHERE rmag < 14",
            "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid AND s.z > 6.9",
        ]
        base = CostService(sdss_catalog)
        richer = sdss_catalog.clone()
        richer.add_index(Index("photoobj", ("ra",)))
        richer.add_index(Index("photoobj", ("objid",)))
        richer.add_index(Index("specobj", ("z",)))
        with_ix = CostService(richer)
        for q in queries:
            assert with_ix.cost(q) <= base.cost(q) + 1e-6

    def test_narrower_range_is_cheaper_with_index(self, svc_ix):
        narrow = svc_ix.cost("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11")
        wide = svc_ix.cost("SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 60")
        assert narrow < wide

    def test_mackert_lohman_bounds(self):
        assert mackert_lohman_pages(100, 0) == 0
        assert mackert_lohman_pages(100, 10**9) == 100
        assert 0 < mackert_lohman_pages(100, 50) <= 50


class TestJoinPlanning:
    def test_join_produces_two_scans(self, svc):
        plan = svc.plan(
            "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid"
        )
        kinds = node_types(plan)
        assert kinds[0] in ("HashJoin", "MergeJoin", "NestLoop")
        assert kinds.count("SeqScan") == 2

    def test_selective_outer_prefers_index_nestloop(self, sdss_catalog):
        catalog = sdss_catalog.clone()
        catalog.add_index(Index("photoobj", ("objid",)))
        catalog.add_index(Index("specobj", ("z",)))
        svc = CostService(catalog)
        plan = svc.plan(
            "SELECT p.ra, s.z FROM photoobj p, specobj s "
            "WHERE p.objid = s.objid AND s.z > 6.99"
        )
        kinds = node_types(plan)
        assert "NestLoop" in kinds
        assert any(
            n.node_type in ("IndexScan", "IndexOnlyScan") and n.is_parameterized
            for n in plan.walk()
        )

    def test_three_way_join_plans(self, sdss_catalog):
        svc = CostService(sdss_catalog)
        plan = svc.plan(
            "SELECT p.ra FROM photoobj p, specobj s, specobj s2 "
            "WHERE p.objid = s.objid AND s.specid = s2.specid"
        )
        assert sum(1 for k in node_types(plan) if "Join" in k or k == "NestLoop") == 2

    def test_cartesian_fallback(self, svc):
        plan = svc.plan("SELECT p.ra, s.z FROM photoobj p, specobj s LIMIT 1")
        assert plan is not None  # no join clause: planner must still succeed


class TestJoinControl:
    """The what-if join component: GUC toggles steer the join method."""

    JOIN_SQL = (
        "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid"
    )

    def test_disable_hashjoin_switches_method(self, sdss_catalog):
        base = CostService(sdss_catalog)
        assert base.plan(self.JOIN_SQL).node_type == "HashJoin"
        no_hash = CostService(
            sdss_catalog, PlannerSettings(enable_hashjoin=False)
        )
        assert no_hash.plan(self.JOIN_SQL).node_type != "HashJoin"

    def test_disabling_everything_still_plans(self, sdss_catalog):
        settings = PlannerSettings(
            enable_hashjoin=False, enable_mergejoin=False, enable_nestloop=False
        )
        plan = CostService(sdss_catalog, settings).plan(self.JOIN_SQL)
        assert plan is not None

    def test_disable_seqscan_prefers_index(self, sdss_with_indexes):
        settings = PlannerSettings(enable_seqscan=False)
        svc = CostService(sdss_with_indexes, settings)
        plan = svc.plan("SELECT ra FROM photoobj WHERE ra BETWEEN 0 AND 350")
        assert plan.node_type != "SeqScan"

    def test_force_mergejoin(self, sdss_catalog):
        settings = PlannerSettings(enable_hashjoin=False, enable_nestloop=False)
        plan = CostService(sdss_catalog, settings).plan(self.JOIN_SQL)
        assert "MergeJoin" in node_types(plan)


class TestGroupingAndOrdering:
    def test_group_by_adds_aggregate(self, svc):
        plan = svc.plan("SELECT type, count(*) FROM photoobj GROUP BY type")
        assert plan.node_type == "Aggregate"

    def test_order_by_satisfied_by_index_avoids_sort(self, svc_ix):
        plan = svc_ix.plan("SELECT ra FROM photoobj WHERE ra > 359 ORDER BY ra")
        assert "Sort" not in node_types(plan)

    def test_order_by_without_index_sorts(self, svc):
        plan = svc.plan("SELECT ra FROM photoobj WHERE ra > 359 ORDER BY ra")
        assert "Sort" in node_types(plan)

    def test_limit_reduces_total_cost(self, svc):
        full = svc.plan("SELECT ra FROM photoobj")
        limited = svc.plan("SELECT ra FROM photoobj LIMIT 10")
        assert limited.total_cost < full.total_cost

    def test_plain_aggregate_single_row(self, svc):
        plan = svc.plan("SELECT count(*) FROM photoobj")
        assert plan.rows == 1.0


class TestPartitionAwarePlanning:
    def test_horizontal_pruning_cuts_cost(self, sdss_catalog):
        catalog = sdss_catalog.clone()
        catalog.set_horizontal_partitioning(
            HorizontalPartitioning("photoobj", "ra", tuple(float(x) for x in range(30, 360, 30)))
        )
        svc_part = CostService(catalog)
        svc_base = CostService(sdss_catalog)
        sql = "SELECT rmag FROM photoobj WHERE ra BETWEEN 100 AND 110"
        assert svc_part.cost(sql) < svc_base.cost(sql)
        plan = svc_part.plan(sql)
        assert plan.node_type == "AppendScan"
        assert plan.partitions_scanned < plan.partitions_total

    def test_vertical_layout_cuts_narrow_scan_cost(self, sdss_catalog):
        catalog = sdss_catalog.clone()
        table = catalog.table("photoobj")
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj", ("rmag", "gmag", "type", "flags", "status")
                ),
            ),
        )
        catalog.set_vertical_layout(layout)
        svc_part = CostService(catalog)
        svc_base = CostService(sdss_catalog)
        sql = "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 0 AND 300"
        assert svc_part.cost(sql) < svc_base.cost(sql)
        assert svc_part.plan(sql).node_type == "FragmentScan"

    def test_vertical_scan_spanning_fragments_stitches(self, sdss_catalog):
        catalog = sdss_catalog.clone()
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra")),
                VerticalFragment(
                    "photoobj", ("dec", "rmag", "gmag", "type", "flags", "status")
                ),
            ),
        )
        catalog.set_vertical_layout(layout)
        plan = CostService(catalog).plan("SELECT ra, rmag FROM photoobj")
        assert plan.node_type == "FragmentScan"
        assert len(plan.fragments) == 2


class TestServicePlumbing:
    def test_plan_cache_counts_once(self, svc):
        svc.reset_counter()
        svc.cost("SELECT ra FROM photoobj")
        svc.cost("SELECT ra FROM photoobj")
        assert svc.optimizer_calls == 1

    def test_with_catalog_shares_counter(self, sdss_catalog):
        svc = CostService(sdss_catalog)
        other = svc.with_catalog(sdss_catalog.clone())
        svc.cost("SELECT ra FROM photoobj")
        other.cost("SELECT dec FROM photoobj")
        assert svc.optimizer_calls == 2

    def test_workload_cost_weighted(self, svc):
        q = "SELECT ra FROM photoobj"
        single = svc.cost(q)
        assert svc.workload_cost([(q, 3.0)]) == pytest.approx(3 * single)

    def test_explain_renders(self, svc_ix):
        text = svc_ix.explain("SELECT ra FROM photoobj WHERE ra BETWEEN 1 AND 2")
        assert "cost=" in text and "rows=" in text
