"""Tests for catalog serialization: round trips and compatibility."""

import json

import pytest

from repro.catalog import (
    HorizontalPartitioning,
    Index,
    VerticalFragment,
    VerticalLayout,
)
from repro.catalog.serialize import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.optimizer import CostService
from repro.util import CatalogError
from repro.workloads import sdss_catalog, sdss_workload, tpch_catalog


def rich_catalog():
    catalog = sdss_catalog(scale=0.02)
    catalog.add_index(Index("photoobj", ("ra", "dec")))
    catalog.add_index(Index("specobj", ("z",), include=("bestobjid",)))
    catalog.set_vertical_layout(
        VerticalLayout(
            "specobj",
            (
                VerticalFragment("specobj", ("specid", "bestobjid", "z")),
                VerticalFragment(
                    "specobj",
                    ("zerr", "zconf", "specclass", "plate", "mjd", "sn_median"),
                ),
            ),
        )
    )
    catalog.set_horizontal_partitioning(
        HorizontalPartitioning("photoobj", "ra", (90.0, 180.0, 270.0))
    )
    return catalog


class TestRoundTrip:
    def test_schema_preserved(self):
        original = rich_catalog()
        restored = catalog_from_dict(catalog_to_dict(original))
        assert restored.table_names == original.table_names
        for name in original.table_names:
            a, b = original.table(name), restored.table(name)
            assert a.row_count == b.row_count
            assert a.column_names == b.column_names
            assert a.row_width() == b.row_width()

    def test_design_preserved(self):
        original = rich_catalog()
        restored = catalog_from_dict(catalog_to_dict(original))
        assert set(ix.name for ix in restored.indexes) == set(
            ix.name for ix in original.indexes
        )
        assert restored.vertical_layout("specobj") is not None
        horizontal = restored.horizontal_partitioning("photoobj")
        assert horizontal.bounds == (90.0, 180.0, 270.0)

    def test_costs_identical_after_round_trip(self):
        """The real contract: the optimizer sees the same database."""
        original = rich_catalog()
        restored = catalog_from_dict(catalog_to_dict(original))
        workload = sdss_workload(n_queries=10, seed=4)
        a = CostService(original).workload_cost(workload)
        b = CostService(restored).workload_cost(workload)
        assert a == pytest.approx(b, rel=1e-9)

    def test_tpch_round_trip(self):
        original = tpch_catalog(scale=0.01)
        restored = catalog_from_dict(catalog_to_dict(original))
        assert restored.table_names == original.table_names

    def test_json_serializable(self):
        payload = catalog_to_dict(rich_catalog())
        text = json.dumps(payload)
        assert catalog_from_dict(json.loads(text)).table_names

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(rich_catalog(), path)
        restored = load_catalog(path)
        assert restored.has_table("photoobj")
        assert len(restored.indexes) == 2


class TestValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(CatalogError, match="version"):
            catalog_from_dict({"version": 99})

    def test_missing_version_rejected(self):
        with pytest.raises(CatalogError):
            catalog_from_dict({})

    def test_stats_rebuilt_on_load(self):
        restored = catalog_from_dict(catalog_to_dict(rich_catalog()))
        stats = restored.table("photoobj").stats("ra")
        assert stats.n_distinct > 1
        assert stats.histogram


class TestStableIds:
    """Indexes and fragments carry stable integer ids (canonical-order
    positions), so wire-format references survive round-trips even when
    index names collide across tables."""

    def test_catalog_indexes_carry_unique_sequential_ids(self):
        payload = catalog_to_dict(rich_catalog())
        ids = [entry["id"] for entry in payload["indexes"]]
        assert ids == list(range(len(ids)))

    def test_fragments_carry_ids(self):
        payload = catalog_to_dict(rich_catalog())
        for layout in payload["vertical_layouts"]:
            ids = [f["id"] for f in layout["fragments"]]
            assert ids == list(range(len(ids)))

    def test_dump_is_stable_across_round_trips(self):
        """dump(load(dump(c))) == dump(c): ids and ordering are a
        function of the content, not of insertion order."""
        first = catalog_to_dict(rich_catalog())
        second = catalog_to_dict(catalog_from_dict(first))
        assert first == second

    def test_dump_is_insertion_order_invariant(self):
        from repro.workloads import sdss_catalog as make_sdss

        a = make_sdss(scale=0.02)
        b = make_sdss(scale=0.02)
        a.add_index(Index("photoobj", ("ra",)))
        a.add_index(Index("specobj", ("z",)))
        b.add_index(Index("specobj", ("z",)))
        b.add_index(Index("photoobj", ("ra",)))
        assert catalog_to_dict(a) == catalog_to_dict(b)

    def test_colliding_names_across_tables_round_trip(self):
        """Regression: a configuration may hold same-named indexes on
        different tables; the dump must keep both, deterministically."""
        from repro.catalog.serialize import (
            configuration_from_dict,
            configuration_to_dict,
        )
        from repro.whatif import Configuration

        collide_a = Index("photoobj", ("ra",), name="k")
        collide_b = Index("specobj", ("z",), name="k")
        config = Configuration.of(collide_a, collide_b)
        payload = configuration_to_dict(config)
        ids = [entry["id"] for entry in payload["indexes"]]
        assert sorted(ids) == [0, 1]
        restored = configuration_from_dict(payload)
        assert restored.indexes == config.indexes
        assert configuration_to_dict(restored) == payload

    def test_stable_index_ids_iteration_order_invariant(self):
        from repro.catalog.serialize import stable_index_ids

        one = Index("photoobj", ("ra",), name="k")
        two = Index("specobj", ("z",), name="k")
        three = Index("photoobj", ("dec",))
        forward = stable_index_ids([one, two, three])
        backward = stable_index_ids([three, two, one])
        assert forward == backward
        assert sorted(forward.values()) == [0, 1, 2]
