"""Shared fixtures: a small SDSS-like catalog used across the test suite."""

import pytest

from repro.catalog import Catalog, Column, DataType, Distribution, Index, Table


def make_sdss_catalog(photo_rows=1_000_000, spec_rows=80_000):
    """A two-table astronomy catalog with realistic shapes: one wide,
    clustered-on-ra fact table and a smaller spectroscopic table."""
    catalog = Catalog()
    photoobj = Table(
        "photoobj",
        [
            Column("objid", DataType.BIGINT, Distribution(kind="sequence")),
            Column(
                "ra",
                DataType.DOUBLE,
                Distribution(kind="uniform", low=0.0, high=360.0, correlation=0.95),
            ),
            Column("dec", DataType.DOUBLE, Distribution(kind="uniform", low=-90.0, high=90.0)),
            Column("rmag", DataType.FLOAT, Distribution(kind="normal", mu=20.0, sigma=2.0)),
            Column("gmag", DataType.FLOAT, Distribution(kind="normal", mu=21.0, sigma=2.0)),
            Column("type", DataType.INT, Distribution(kind="zipf", n_values=6, s=1.2)),
            Column("flags", DataType.BIGINT, Distribution(kind="uniform_int", low=0, high=2**20)),
            Column("status", DataType.INT, Distribution(kind="uniform_int", low=0, high=100)),
        ],
        row_count=photo_rows,
    ).build_stats()
    catalog.add_table(photoobj)
    specobj = Table(
        "specobj",
        [
            Column("specid", DataType.BIGINT, Distribution(kind="sequence")),
            Column(
                "objid",
                DataType.BIGINT,
                Distribution(kind="uniform_int", low=0, high=photo_rows - 1),
            ),
            Column("z", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=7.0)),
            Column("zerr", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=0.1)),
            Column("class", DataType.INT, Distribution(kind="zipf", n_values=3, s=1.0)),
        ],
        row_count=spec_rows,
    ).build_stats()
    catalog.add_table(specobj)
    return catalog


@pytest.fixture
def sdss_catalog():
    return make_sdss_catalog()


@pytest.fixture
def sdss_with_indexes(sdss_catalog):
    catalog = sdss_catalog.clone()
    catalog.add_index(Index("photoobj", ("ra",)))
    catalog.add_index(Index("photoobj", ("objid",)))
    catalog.add_index(Index("specobj", ("z",)))
    return catalog
