"""Property/fuzz suite for the columnar plan-term kernel.

The kernel (:mod:`repro.evaluation.kernel`) is a *compilation* of the
scalar plan-term walks, never a different cost model: over fuzzed
catalogs, configurations, and weights — and over every SDSS and TPC-H
template — kernel ``evaluate_many`` must equal the scalar batched
evaluator and the per-call :class:`InumCostModel` **bit-exactly**
(max/min witnesses, zero tolerance).  The same holds for CoPhy's
:class:`BipKernel` against the scalar ``config_costs_scalar``, and for
COLT's kernel-scored epochs against per-query INUM costs.
"""

import random

import pytest

from repro.cophy import candidate_indexes
from repro.cophy.bip import build_bip
from repro.evaluation import (
    InumCachePool,
    ShardedInumCachePool,
    WorkloadEvaluator,
    compile_statement,
    wire,
)
from repro.inum import InumCostModel
from repro.inum.cache import evaluate_terms
from repro.whatif import Configuration
from repro.workloads import sdss, sdss_catalog, tpch, tpch_catalog

from test_evaluator_equivalence import make_env, random_write

SEEDS = [0, 1, 2, 3, 4]


def assert_grids_identical(kernel_grid, reference_grid):
    """Exact equality pinned via max/min witnesses: the largest absolute
    deviation is exactly zero and the grid extrema coincide."""
    deviations = [
        abs(a - b)
        for row_a, row_b in zip(kernel_grid.matrix, reference_grid.matrix)
        for a, b in zip(row_a, row_b)
    ]
    assert deviations, "empty grid compared"
    assert max(deviations) == 0.0
    flat = [c for row in kernel_grid.matrix for c in row]
    ref = [c for row in reference_grid.matrix for c in row]
    assert (max(flat), min(flat)) == (max(ref), min(ref))
    assert kernel_grid.totals == reference_grid.totals


# ----------------------------------------------------------------------
# Fuzzed environments: kernel == scalar batch == per-call, exactly.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_kernel_equals_scalar_batch_and_per_call(seed):
    catalog, workload, configs = make_env(seed)
    rng = random.Random(seed * 31 + 7)
    workload = [(sql, rng.choice([0.5, 1.0, 2.0, 3.5])) for sql, __ in workload]
    evaluator = WorkloadEvaluator(catalog)
    kernel_grid = evaluator.evaluate_many(workload, configs)
    scalar_grid = evaluator.evaluate_configurations(
        workload, configs, kernel=False
    )
    assert_grids_identical(kernel_grid, scalar_grid)
    per_call = InumCostModel(catalog)
    for c, config in enumerate(configs):
        for s, (sql, __) in enumerate(workload):
            assert kernel_grid.matrix[c][s] == per_call.cost(sql, config)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_kernel_handles_writes_exactly(seed):
    catalog, workload, configs = make_env(seed, write_fraction=0.4)
    workload = list(workload) + [(random_write(random.Random(seed), catalog), 2.0)]
    evaluator = WorkloadEvaluator(catalog)
    kernel_grid = evaluator.evaluate_many(workload, configs)
    scalar_grid = evaluator.evaluate_configurations(
        workload, configs, kernel=False
    )
    assert_grids_identical(kernel_grid, scalar_grid)
    per_call = InumCostModel(catalog)
    for config, total in zip(configs, kernel_grid.totals):
        assert total == per_call.workload_cost(workload, config)


@pytest.mark.parametrize(
    "registry, make_catalog",
    [
        (sdss.TEMPLATE_REGISTRY, lambda: sdss_catalog(scale=0.05)),
        (tpch.TEMPLATE_REGISTRY, lambda: tpch_catalog(scale=0.05)),
    ],
    ids=["sdss", "tpch"],
)
def test_every_template_prices_identically(registry, make_catalog):
    """Kernel == scalar batch == per-call for every SDSS/TPC-H template,
    random weights and random configurations included."""
    catalog = make_catalog()
    rng = random.Random(23)
    workload = [
        (maker(rng), rng.choice([1.0, 2.0, 0.25]))
        for name, maker in sorted(registry.items())
    ]
    candidates = candidate_indexes(catalog, workload, max_candidates=10)
    configs = [Configuration.empty()] + [
        Configuration(indexes=frozenset(
            rng.sample(candidates, rng.randint(1, min(4, len(candidates))))
        ))
        for __ in range(6)
    ]
    evaluator = WorkloadEvaluator(catalog)
    kernel_grid = evaluator.evaluate_many(workload, configs)
    scalar_grid = evaluator.evaluate_configurations(
        workload, configs, kernel=False
    )
    assert_grids_identical(kernel_grid, scalar_grid)
    per_call = InumCostModel(catalog)
    for c, config in enumerate(configs):
        for s, (sql, __) in enumerate(workload):
            assert kernel_grid.matrix[c][s] == per_call.cost(sql, config)


def test_kernel_respects_duplicate_statements():
    """Repeated statements share one read block but keep per-position
    weights; alias renames share the block too (one cache entry)."""
    catalog, workload, configs = make_env(2)
    sql = workload[0][0]
    repeated = [(sql, 1.0), (sql, 3.0), (sql, 0.5)]
    evaluator = WorkloadEvaluator(catalog)
    grid = evaluator.evaluate_many(repeated, configs)
    assert grid.weights == [1.0, 3.0, 0.5]
    for row in grid.matrix:
        assert row[0] == row[1] == row[2]
    compiled = evaluator._compile(repeated, kernel=True)
    assert compiled.kernel.n_reads == 1


def test_evaluate_terms_is_the_reference_walk():
    """The shared scalar walk prices exactly like the model's public
    cost path and surfaces the winning plan's slot payloads."""
    catalog, workload, configs = make_env(4)
    model = InumCostModel(catalog)
    sql = workload[0][0]
    config = configs[1]
    cache = model.cache_for(sql)
    from repro.inum.cache import _DesignView

    view = _DesignView(catalog, config)

    def price(bq, slot):
        cost = model.slot_cost(bq, slot, view)
        return None if cost is None else (cost, slot.alias)

    best, payloads = evaluate_terms(cache, price)
    assert best == model.cost(sql, config)
    assert all(isinstance(alias, str) for alias in payloads)


# ----------------------------------------------------------------------
# Pool-owned kernel lifetime.
# ----------------------------------------------------------------------


class TestKernelLifetime:
    def test_pool_compiles_once_and_serves_shared(self):
        catalog, workload, __ = make_env(0)
        pool = InumCachePool()
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        sql = workload[0][0]
        signature = evaluator.signature(sql)
        assert pool.kernel_for(signature) is None  # not resident yet
        evaluator.cache_for(sql)
        kernel = pool.kernel_for(signature)
        assert kernel is not None
        assert pool.kernel_for(signature) is kernel  # memoized
        assert pool.kernel_count == 1

    def test_eviction_invalidates_kernel(self):
        catalog, workload, __ = make_env(1)
        pool = InumCachePool(capacity=1)
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        first, second = workload[0][0], workload[1][0]
        evaluator.cache_for(first)
        sig_first = evaluator.signature(first)
        assert pool.kernel_for(sig_first) is not None
        evaluator.cache_for(second)  # evicts the first entry
        assert sig_first not in pool
        assert pool.kernel_for(sig_first) is None
        assert pool.kernel_count <= 1

    def test_overwrite_drops_stale_kernel(self):
        catalog, workload, __ = make_env(2)
        pool = InumCachePool()
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        sql = workload[0][0]
        cache = evaluator.cache_for(sql)
        signature = evaluator.signature(sql)
        stale = pool.kernel_for(signature)
        pool.put(signature, cache)  # reinstall: compiled form must renew
        fresh = pool.kernel_for(signature)
        assert fresh is not stale
        assert fresh.internal.tolist() == stale.internal.tolist()

    def test_clear_drops_all_kernels(self):
        catalog, workload, __ = make_env(3)
        pool = InumCachePool()
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        evaluator.warm_up([sql for sql, __ in workload])
        assert pool.kernel_count > 0  # warm-up prewarms compiled kernels
        pool.clear()
        assert pool.kernel_count == 0

    def test_sharded_pool_routes_kernels(self):
        catalog, workload, __ = make_env(0)
        pool = ShardedInumCachePool(shards=3)
        evaluator = WorkloadEvaluator(catalog, pool=pool)
        built = evaluator.warm_up([sql for sql, __ in workload])
        assert built > 0
        for sql, __ in workload:
            assert pool.kernel_for(evaluator.signature(sql)) is not None
        assert pool.kernel_count == len(pool)


# ----------------------------------------------------------------------
# Wire: kernels rebuild from plan terms on load.
# ----------------------------------------------------------------------


class TestWireRebuild:
    def test_loads_with_pool_installs_and_compiles(self):
        catalog, workload, configs = make_env(1)
        source = WorkloadEvaluator(catalog)
        sql = workload[0][0]
        cache = source.cache_for(sql)
        signature = source.signature(sql)
        text = wire.dumps(wire.entry_to_wire(signature, cache))

        receiver = WorkloadEvaluator(catalog.clone(), pool=InumCachePool())
        loaded_sig, loaded = wire.loads(
            text, receiver.catalog, pool=receiver.pool
        )
        assert loaded_sig == signature
        assert loaded_sig in receiver.pool
        assert receiver.pool.kernel_for(loaded_sig) is not None
        # The rebuilt kernel prices identically to the source's.
        grid = receiver.evaluate_many([(sql, 1.0)], configs)
        reference = source.evaluate_many([(sql, 1.0)], configs)
        assert grid.matrix == reference.matrix

    def test_loads_without_pool_unchanged(self):
        catalog, workload, __ = make_env(1)
        source = WorkloadEvaluator(catalog)
        sql = workload[0][0]
        cache = source.cache_for(sql)
        signature = source.signature(sql)
        text = wire.dumps(wire.entry_to_wire(signature, cache))
        loaded_sig, loaded = wire.loads(text, catalog.clone())
        assert loaded_sig == signature
        assert len(loaded.plans) == len(cache.plans)

    def test_compile_statement_pure_function_of_terms(self):
        catalog, workload, __ = make_env(2)
        source = WorkloadEvaluator(catalog)
        sql = workload[0][0]
        cache = source.cache_for(sql)
        signature = source.signature(sql)
        text = wire.dumps(wire.entry_to_wire(signature, cache))
        __, loaded = wire.loads(text, catalog.clone())
        a = compile_statement(cache)
        b = compile_statement(loaded)
        assert a.internal.tolist() == b.internal.tolist()
        assert a.slot_idx.tolist() == b.slot_idx.tolist()
        assert a.slots == b.slots


# ----------------------------------------------------------------------
# CoPhy's BIP kernel.
# ----------------------------------------------------------------------


class TestBipKernel:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_config_costs_match_scalar_exactly(self, seed):
        catalog, workload, __ = make_env(seed, write_fraction=0.25)
        evaluator = WorkloadEvaluator(catalog)
        candidates = candidate_indexes(catalog, workload, max_candidates=8)
        problem = build_bip(evaluator, workload, candidates, budget_pages=10**6)
        rng = random.Random(seed)
        batch = [()]
        batch.append(tuple(range(len(candidates))))
        batch.extend(
            tuple(rng.sample(range(len(candidates)),
                             rng.randint(0, len(candidates))))
            for __ in range(25)
        )
        vectorized = problem.config_costs(batch)
        scalar = problem.config_costs_scalar(batch)
        deviations = [abs(a - b) for a, b in zip(vectorized, scalar)]
        assert max(deviations) == 0.0
        assert (max(vectorized), min(vectorized)) == (max(scalar), min(scalar))

    def test_solvers_price_through_the_kernel(self):
        """Greedy and exact solvers share the kernelized oracle, so
        objective values still match the evaluator's own account."""
        catalog, workload, __ = make_env(1)
        evaluator = WorkloadEvaluator(catalog)
        candidates = candidate_indexes(catalog, workload, max_candidates=6)
        problem = build_bip(evaluator, workload, candidates, budget_pages=10**6)
        from repro.cophy.greedy import greedy_select

        result = greedy_select(problem)
        chosen = [candidates[pos] for pos in result.chosen_positions]
        config = Configuration(indexes=frozenset(chosen))
        assert result.objective == problem.config_cost(result.chosen_positions)
        assert result.objective == pytest.approx(
            evaluator.workload_cost(workload, config), rel=1e-9
        )

    def test_empty_batch(self):
        catalog, workload, __ = make_env(0)
        evaluator = WorkloadEvaluator(catalog)
        candidates = candidate_indexes(catalog, workload, max_candidates=4)
        problem = build_bip(evaluator, workload, candidates, budget_pages=10**6)
        assert problem.config_costs([]) == []


# ----------------------------------------------------------------------
# COLT epoch scoring routes through the kernel.
# ----------------------------------------------------------------------


class TestColtEpochScoring:
    def test_epoch_cost_equals_per_query_inum(self):
        from repro.colt import ColtSettings, ColtTuner

        catalog = sdss_catalog(scale=0.05)
        tuner = ColtTuner(
            catalog,
            ColtSettings(epoch_length=8, whatif_budget=4,
                         space_budget_pages=100_000),
        )
        rng = random.Random(11)
        queries = [sdss.template("cone_search")(rng) for __ in range(6)]
        scored = tuner._epoch_cost(queries)
        reference = sum(
            tuner.evaluator.cost(sql, tuner.current) for sql in queries
        )
        assert scored == reference
        assert tuner._epoch_cost([]) == 0.0

    def test_epoch_report_scored_by_kernel(self):
        from repro.colt import ColtSettings, ColtTuner

        catalog = sdss_catalog(scale=0.05)
        settings = ColtSettings(epoch_length=5, whatif_budget=4,
                                space_budget_pages=100_000)
        tuner = ColtTuner(catalog, settings)
        rng = random.Random(3)
        stream = [sdss.template("magnitude_cut")(rng) for __ in range(5)]
        for sql in stream:
            tuner.observe(sql)
        assert len(tuner.report.epochs) == 1
        # The epoch was scored under the pre-adoption configuration
        # (empty), one kernel pass over the epoch's queries.
        fresh = WorkloadEvaluator(catalog)
        baseline = fresh.evaluate_many(
            [(sql, 1.0) for sql in stream], [Configuration.empty()]
        )
        assert tuner.report.epochs[-1].observed_cost == baseline.totals[0]
