"""Tests for the INUM cost model: exactness, caching, partition extension."""

import random

import pytest

from repro.catalog import Index, VerticalFragment, VerticalLayout
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.whatif import Configuration

QUERIES = [
    "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12",
    "SELECT rmag FROM photoobj WHERE rmag < 15 AND type = 1",
    "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid AND s.z > 6.5",
    "SELECT type, COUNT(*) FROM photoobj WHERE gmag < 18 GROUP BY type",
    "SELECT ra FROM photoobj WHERE dec > 85 ORDER BY ra LIMIT 5",
]

CANDIDATES = [
    Index("photoobj", ("ra",)),
    Index("photoobj", ("rmag", "type")),
    Index("photoobj", ("objid",)),
    Index("specobj", ("z",)),
    Index("specobj", ("z",), include=("objid",)),
    Index("photoobj", ("gmag",)),
]


@pytest.fixture
def inum(sdss_catalog):
    return InumCostModel(sdss_catalog)


class TestBuildPhase:
    def test_warm_counts_calls(self, inum):
        calls = inum.warm([(q, 1.0) for q in QUERIES])
        assert calls > 0
        # Warming again costs nothing.
        assert inum.warm([(q, 1.0) for q in QUERIES]) == 0

    def test_cache_has_plans(self, inum):
        cache = inum.cache_for(QUERIES[2])
        assert len(cache.plans) >= 2  # at least unordered + one ordered vector
        for cached in cache.plans:
            assert cached.internal_cost >= 0
            assert {s.alias for s in cached.slots} == {"p", "s"}

    def test_single_table_has_single_slot(self, inum):
        cache = inum.cache_for(QUERIES[0])
        for cached in cache.plans:
            assert len(cached.slots) == 1


class TestExactness:
    """INUM's core promise: configuration costs match the real optimizer."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_optimizer_on_random_configs(self, sdss_catalog, inum, seed):
        rng = random.Random(seed)
        workload = [(q, 1.0) for q in QUERIES]
        for __ in range(4):
            config = Configuration(
                indexes=frozenset(rng.sample(CANDIDATES, rng.randint(0, 4)))
            )
            real = CostService(config.apply(sdss_catalog)).workload_cost(workload)
            estimate = inum.workload_cost(workload, config)
            assert estimate == pytest.approx(real, rel=0.02)

    def test_empty_config_matches_base(self, sdss_catalog, inum):
        workload = [(q, 1.0) for q in QUERIES]
        real = CostService(sdss_catalog).workload_cost(workload)
        assert inum.workload_cost(workload) == pytest.approx(real, rel=0.02)

    def test_no_optimizer_calls_during_evaluation(self, sdss_catalog, inum):
        workload = [(q, 1.0) for q in QUERIES]
        inum.warm(workload)
        before = inum.precompute_calls
        for ix in CANDIDATES:
            inum.workload_cost(workload, Configuration.of(ix))
        assert inum.precompute_calls == before


class TestMonotonicity:
    def test_more_indexes_never_cost_more(self, inum):
        workload = [(q, 1.0) for q in QUERIES]
        small = Configuration.of(CANDIDATES[0])
        large = Configuration(indexes=frozenset(CANDIDATES))
        assert inum.workload_cost(workload, large) <= inum.workload_cost(
            workload, small
        ) + 1e-6

    def test_irrelevant_index_changes_nothing(self, inum):
        sql = "SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 11"
        base = inum.cost(sql)
        with_z = inum.cost(sql, Configuration.of(Index("specobj", ("z",))))
        assert with_z == pytest.approx(base)


class TestPartitionExtension:
    """The paper's extension: INUM prices partitions without re-planning."""

    def test_vertical_layout_priced(self, sdss_catalog, inum):
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj", ("rmag", "gmag", "type", "flags", "status")
                ),
            ),
        )
        config = Configuration(layouts=(layout,))
        sql = "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 0 AND 200"
        inum.cache_for(sql)
        before = inum.precompute_calls
        cheaper = inum.cost(sql, config)
        assert inum.precompute_calls == before  # no new optimizer calls
        assert cheaper < inum.cost(sql)

    def test_layout_cost_close_to_optimizer(self, sdss_catalog, inum):
        layout = VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj", ("rmag", "gmag", "type", "flags", "status")
                ),
            ),
        )
        config = Configuration(layouts=(layout,))
        workload = [(QUERIES[0], 1.0)]
        real = CostService(config.apply(sdss_catalog)).workload_cost(workload)
        assert inum.workload_cost(workload, config) == pytest.approx(real, rel=0.05)


class TestSlotCacheConsistency:
    def test_repeated_evaluations_are_stable(self, inum):
        config = Configuration.of(*CANDIDATES[:3])
        workload = [(q, 1.0) for q in QUERIES]
        first = inum.workload_cost(workload, config)
        for __ in range(3):
            assert inum.workload_cost(workload, config) == first

    def test_evaluation_counter(self, inum):
        inum.cost(QUERIES[0])
        inum.cost(QUERIES[0], Configuration.of(CANDIDATES[0]))
        assert inum.evaluations == 2
