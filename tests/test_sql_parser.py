"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.sql import parse
from repro.sql.astnodes import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    FuncCall,
    InPredicate,
    IsNullPredicate,
    Literal,
    Star,
)
from repro.sql.lexer import Lexer
from repro.util import ParseError


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = Lexer("SeLeCt FROM").tokens()
        assert [t.kind for t in toks] == ["keyword", "keyword", "eof"]

    def test_numbers(self):
        toks = Lexer("1 2.5 3e4 .5").tokens()
        assert [t.value for t in toks[:-1]] == [1, 2.5, 3e4, 0.5]

    def test_string_with_escaped_quote(self):
        toks = Lexer("'it''s'").tokens()
        assert toks[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            Lexer("'oops").tokens()

    def test_comments_skipped(self):
        toks = Lexer("select -- comment\n x").tokens()
        assert [t.kind for t in toks] == ["keyword", "ident", "eof"]

    def test_operators(self):
        toks = Lexer("<= >= <> != = < >").tokens()
        assert [t.value for t in toks[:-1]] == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            Lexer("select $").tokens()


class TestParserBasics:
    def test_star(self):
        q = parse("SELECT * FROM t")
        assert isinstance(q.select_items[0].expr, Star)
        assert q.tables[0].name == "t"

    def test_columns_and_aliases(self):
        q = parse("SELECT a.x AS foo, y bar FROM t a")
        assert q.select_items[0].alias == "foo"
        assert q.select_items[1].alias == "bar"
        assert q.tables[0].alias == "a"

    def test_aggregates(self):
        q = parse("SELECT count(*), sum(x), avg(t.y) FROM t")
        names = [item.expr.name for item in q.select_items]
        assert names == ["count", "sum", "avg"]
        assert isinstance(q.select_items[0].expr.arg, Star)

    def test_count_distinct(self):
        q = parse("SELECT count(DISTINCT x) FROM t")
        assert q.select_items[0].expr.distinct

    def test_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse("SELECT sum(*) FROM t")

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 5").limit == 5

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t LIMIT x")


class TestParserPredicates:
    def test_comparison_kinds(self):
        q = parse("SELECT * FROM t WHERE a = 1 AND b < 2 AND c >= 'x' AND d <> 4")
        ops = [p.op for p in q.predicates]
        assert ops == ["=", "<", ">=", "<>"]

    def test_bang_equals_normalized(self):
        q = parse("SELECT * FROM t WHERE a != 1")
        assert q.predicates[0].op == "<>"

    def test_between(self):
        q = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10")
        pred = q.predicates[0]
        assert isinstance(pred, BetweenPredicate)
        assert (pred.low.value, pred.high.value) == (1, 10)

    def test_in_list(self):
        q = parse("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(q.predicates[0], InPredicate)
        assert q.predicates[0].values == (1, 2, 3)

    def test_is_null_and_not_null(self):
        q = parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert not q.predicates[0].negated
        assert q.predicates[1].negated

    def test_join_predicate(self):
        q = parse("SELECT * FROM t1, t2 WHERE t1.a = t2.b")
        pred = q.predicates[0]
        assert isinstance(pred.right, ColumnRef)

    def test_or_rejected_with_clear_error(self):
        with pytest.raises(ParseError, match="OR"):
            parse("SELECT * FROM t WHERE a = 1 OR b = 2")


class TestParserClauses:
    def test_group_order_limit(self):
        q = parse(
            "SELECT type, count(*) FROM t WHERE x > 0 "
            "GROUP BY type ORDER BY type DESC LIMIT 7"
        )
        assert q.group_by[0].column == "type"
        assert not q.order_by[0].ascending
        assert q.limit == 7

    def test_order_by_multiple(self):
        q = parse("SELECT * FROM t ORDER BY a, b DESC, c ASC")
        flags = [o.ascending for o in q.order_by]
        assert flags == [True, False, True]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t WHERE a = 1 banana nonsense(")


class TestUnparse:
    ROUNDTRIP = [
        "SELECT * FROM t",
        "SELECT a, b FROM t WHERE a = 1 AND b BETWEEN 2 AND 3",
        "SELECT COUNT(*) FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.c",
        "SELECT a FROM t WHERE a IN (1, 2) ORDER BY a DESC LIMIT 3",
        "SELECT a FROM t WHERE b IS NOT NULL",
    ]

    @pytest.mark.parametrize("sql", ROUNDTRIP)
    def test_unparse_reparses_to_same_ast(self, sql):
        first = parse(sql)
        second = parse(first.unparse())
        assert first == second

    def test_string_literal_escaping(self):
        q = parse("SELECT a FROM t WHERE b = 'it''s'")
        assert parse(q.unparse()) == q
