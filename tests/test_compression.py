"""Tests for workload compression."""

import pytest

from repro.cophy import CoPhyAdvisor
from repro.cophy.compression import compress_workload, query_signature
from repro.sql.binder import bind_sql
from repro.workloads import Workload


class TestSignature:
    def test_literal_changes_share_signature(self, sdss_catalog):
        a = bind_sql("SELECT ra FROM photoobj WHERE ra BETWEEN 1 AND 2", sdss_catalog)
        b = bind_sql("SELECT ra FROM photoobj WHERE ra BETWEEN 7 AND 9", sdss_catalog)
        assert query_signature(a) == query_signature(b)

    def test_different_columns_differ(self, sdss_catalog):
        a = bind_sql("SELECT ra FROM photoobj WHERE ra < 2", sdss_catalog)
        b = bind_sql("SELECT ra FROM photoobj WHERE dec < 2", sdss_catalog)
        assert query_signature(a) != query_signature(b)

    def test_predicate_kind_differs(self, sdss_catalog):
        a = bind_sql("SELECT ra FROM photoobj WHERE type = 1", sdss_catalog)
        b = bind_sql("SELECT ra FROM photoobj WHERE type < 1", sdss_catalog)
        assert query_signature(a) != query_signature(b)

    def test_join_vs_single_table_differ(self, sdss_catalog):
        a = bind_sql("SELECT p.ra FROM photoobj p WHERE p.ra < 2", sdss_catalog)
        b = bind_sql(
            "SELECT p.ra FROM photoobj p, specobj s "
            "WHERE p.objid = s.objid AND p.ra < 2",
            sdss_catalog,
        )
        assert query_signature(a) != query_signature(b)

    def test_projection_matters(self, sdss_catalog):
        a = bind_sql("SELECT ra FROM photoobj WHERE ra < 2", sdss_catalog)
        b = bind_sql("SELECT ra, rmag FROM photoobj WHERE ra < 2", sdss_catalog)
        assert query_signature(a) != query_signature(b)


class TestCompression:
    def make_workload(self):
        entries = []
        for i in range(10):
            entries.append(
                ("SELECT ra FROM photoobj WHERE ra BETWEEN %d AND %d" % (i, i + 1), 1.0)
            )
        for i in range(5):
            entries.append(("SELECT dec FROM photoobj WHERE dec > %d" % i, 2.0))
        return Workload(entries)

    def test_clusters_by_shape(self, sdss_catalog):
        compressed, stats = compress_workload(sdss_catalog, self.make_workload())
        assert stats.original_statements == 15
        assert stats.compressed_statements == 2
        assert stats.ratio == pytest.approx(7.5)

    def test_weight_preserved(self, sdss_catalog):
        workload = self.make_workload()
        compressed, __ = compress_workload(sdss_catalog, workload)
        assert compressed.total_weight == pytest.approx(workload.total_weight)

    def test_max_statements_keeps_heaviest(self, sdss_catalog):
        compressed, stats = compress_workload(
            sdss_catalog, self.make_workload(), max_statements=1
        )
        assert len(compressed) == 1
        # dec cluster weighs 10, ra cluster weighs 10: tie broken by weight
        # ordering; total weight is still preserved via scaling.
        assert compressed.total_weight == pytest.approx(20.0)

    def test_compressed_recommendation_close_to_full(self, sdss_catalog):
        workload = self.make_workload()
        advisor = CoPhyAdvisor(sdss_catalog)
        full = advisor.recommend(workload, budget_pages=50_000)
        compressed = advisor.recommend(workload, budget_pages=50_000, compress=True)
        # The chosen index set should coincide for literal-only variation.
        assert set(full.indexes) == set(compressed.indexes)
        assert compressed.stats["compression"].ratio > 5

    def test_empty_like_workload(self, sdss_catalog):
        compressed, stats = compress_workload(
            sdss_catalog, Workload([("SELECT ra FROM photoobj", 1.0)])
        )
        assert len(compressed) == 1 and stats.ratio == 1.0


class TestMaxIndexesConstraint:
    def test_cap_enforced_by_all_solvers(self, sdss_catalog):
        workload = [
            ("SELECT ra FROM photoobj WHERE ra BETWEEN 1 AND 2", 1.0),
            ("SELECT dec FROM photoobj WHERE dec > 80", 1.0),
            ("SELECT rmag FROM photoobj WHERE rmag < 14", 1.0),
        ]
        advisor = CoPhyAdvisor(sdss_catalog)
        for solver in ("milp", "greedy", "lp-rounding"):
            rec = advisor.recommend(
                workload, budget_pages=10**6, solver=solver, max_indexes=1
            )
            assert len(rec.indexes) <= 1, solver

    def test_cap_of_zero_selects_nothing(self, sdss_catalog):
        workload = [("SELECT ra FROM photoobj WHERE ra BETWEEN 1 AND 2", 1.0)]
        rec = CoPhyAdvisor(sdss_catalog).recommend(
            workload, budget_pages=10**6, max_indexes=0
        )
        assert rec.indexes == []
