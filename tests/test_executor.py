"""Executor-backed validation: plans of every shape return identical rows,
and cost-model estimates track measured cardinalities."""

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.catalog import (
    Catalog,
    Column,
    DataType,
    Distribution,
    HorizontalPartitioning,
    Index,
    Table,
    VerticalFragment,
    VerticalLayout,
)
from repro.data import generate_database, generate_table
from repro.executor import run_query
from repro.optimizer import PlannerSettings


def exec_catalog(rows=3000):
    catalog = Catalog()
    catalog.add_table(
        Table(
            "t",
            [
                Column("id", DataType.INT, Distribution(kind="sequence")),
                Column("a", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=49, correlation=0.9)),
                Column("b", DataType.DOUBLE,
                       Distribution(kind="uniform", low=0.0, high=100.0)),
                Column("c", DataType.INT,
                       Distribution(kind="zipf", n_values=5, s=1.0)),
            ],
            row_count=rows,
        ).build_stats()
    )
    catalog.add_table(
        Table(
            "u",
            [
                Column("uid", DataType.INT, Distribution(kind="sequence")),
                Column("tid", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=rows - 1)),
                Column("v", DataType.DOUBLE,
                       Distribution(kind="uniform", low=0.0, high=1.0)),
            ],
            row_count=max(50, rows // 8),
        ).build_stats()
    )
    return catalog


@pytest.fixture(scope="module")
def env():
    catalog = exec_catalog()
    database = generate_database(catalog, seed=3)
    indexed = catalog.clone()
    indexed.add_index(Index("t", ("a", "b")))
    indexed.add_index(Index("t", ("id",)))
    indexed.add_index(Index("u", ("v",)))
    indexed.add_index(Index("u", ("tid",)))
    return catalog, indexed, database


QUERIES = [
    "SELECT id, b FROM t WHERE a = 7 AND b < 50",
    "SELECT id FROM t WHERE a BETWEEN 10 AND 12",
    "SELECT id FROM t WHERE a IN (1, 5, 9)",
    "SELECT c, COUNT(*), AVG(b) FROM t WHERE b > 20 GROUP BY c ORDER BY c",
    "SELECT t.id, u.v FROM t, u WHERE t.id = u.tid AND u.v < 0.05",
    "SELECT COUNT(*) FROM t, u WHERE t.id = u.tid AND t.a = 3",
    "SELECT id, a FROM t WHERE b < 5 ORDER BY a, id LIMIT 10",
    "SELECT MIN(b), MAX(b), SUM(a) FROM t WHERE c = 1",
    "SELECT id FROM t WHERE a = 7 AND b BETWEEN 10 AND 90",
]


def rows_equal(r1, r2):
    return sorted(map(repr, r1)) == sorted(map(repr, r2))


class TestPlanEquivalence:
    """The core validation: physical design never changes query results."""

    @pytest.mark.parametrize("sql", QUERIES)
    def test_indexed_plan_matches_base_plan(self, env, sql):
        base_catalog, indexed_catalog, database = env
        __, base_rows = run_query(sql, base_catalog, database)
        plan, indexed_rows = run_query(sql, indexed_catalog, database)
        assert rows_equal(base_rows, indexed_rows)

    @pytest.mark.parametrize(
        "settings",
        [
            PlannerSettings(enable_hashjoin=False),
            PlannerSettings(enable_nestloop=False),
            PlannerSettings(enable_hashjoin=False, enable_nestloop=False),
            PlannerSettings(enable_seqscan=False),
            PlannerSettings(enable_bitmapscan=False, enable_indexscan=False),
        ],
    )
    def test_join_method_toggles_preserve_results(self, env, settings):
        __, indexed_catalog, database = env
        sql = "SELECT t.id, u.v FROM t, u WHERE t.id = u.tid AND u.v < 0.1"
        __, expected = run_query(sql, indexed_catalog, database)
        __, actual = run_query(sql, indexed_catalog, database, settings)
        assert rows_equal(expected, actual)

    def test_partitioned_layouts_preserve_results(self, env):
        base_catalog, __, database = env
        partitioned = base_catalog.clone()
        partitioned.set_vertical_layout(
            VerticalLayout(
                "t",
                (
                    VerticalFragment("t", ("id", "a")),
                    VerticalFragment("t", ("b", "c")),
                ),
            )
        )
        partitioned.set_horizontal_partitioning(
            HorizontalPartitioning("t", "a", (10, 20, 30, 40))
        )
        for sql in QUERIES:
            __, expected = run_query(sql, base_catalog, database)
            __, actual = run_query(sql, partitioned, database)
            assert rows_equal(expected, actual), sql


class TestOrderingAndLimit:
    def test_order_by_honored(self, env):
        base_catalog, indexed_catalog, database = env
        sql = "SELECT a, id FROM t WHERE b < 30 ORDER BY a"
        for catalog in (base_catalog, indexed_catalog):
            __, rows = run_query(sql, catalog, database)
            values = [r[0] for r in rows]
            assert values == sorted(values)

    def test_order_by_desc(self, env):
        base_catalog, __, database = env
        __, rows = run_query(
            "SELECT b FROM t WHERE a = 3 ORDER BY b DESC", base_catalog, database
        )
        values = [r[0] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_limit_truncates(self, env):
        base_catalog, __, database = env
        __, rows = run_query("SELECT id FROM t LIMIT 7", base_catalog, database)
        assert len(rows) == 7


class TestEstimateAccuracy:
    def test_range_cardinality_close(self, env):
        base_catalog, __, database = env
        plan, rows = run_query(
            "SELECT id FROM t WHERE a BETWEEN 10 AND 12", base_catalog, database
        )
        assert plan.rows == pytest.approx(len(rows), rel=0.5)

    def test_equality_cardinality_close(self, env):
        base_catalog, __, database = env
        plan, rows = run_query(
            "SELECT id FROM t WHERE a = 25", base_catalog, database
        )
        assert plan.rows == pytest.approx(len(rows), rel=0.6)

    def test_join_cardinality_close(self, env):
        base_catalog, __, database = env
        plan, rows = run_query(
            "SELECT t.id FROM t, u WHERE t.id = u.tid", base_catalog, database
        )
        assert plan.rows == pytest.approx(len(rows), rel=0.5)


class TestDataGenerator:
    def test_sequence_is_identity(self):
        catalog = exec_catalog(rows=100)
        data = generate_table(catalog.table("t"), seed=0)
        assert data.columns["id"] == list(range(100))

    def test_seed_determinism(self):
        catalog = exec_catalog(rows=500)
        a = generate_table(catalog.table("t"), seed=5)
        b = generate_table(catalog.table("t"), seed=5)
        c = generate_table(catalog.table("t"), seed=6)
        assert a.columns == b.columns
        assert a.columns != c.columns

    def test_correlation_target_roughly_met(self):
        from repro.catalog.stats import analyze_values

        catalog = exec_catalog(rows=2000)
        data = generate_table(catalog.table("t"), seed=1)
        measured = analyze_values(data.columns["a"]).correlation
        assert measured > 0.7  # spec was 0.9

    def test_uniform_bounds_respected(self):
        catalog = exec_catalog(rows=1000)
        data = generate_table(catalog.table("t"), seed=2)
        assert all(0 <= v <= 100 for v in data.columns["b"])

    def test_analyze_into_refreshes_stats(self):
        catalog = exec_catalog(rows=1000)
        table = catalog.table("t")
        data = generate_table(table, seed=7)
        data.analyze_into(table)
        stats = table.stats("a")
        assert 40 <= stats.n_distinct <= 50


class TestExecutorProperties:
    @given(
        low=st.integers(0, 49),
        span=st.integers(0, 20),
        seed=st.integers(0, 3),
    )
    @hsettings(max_examples=25, deadline=None)
    def test_index_scan_equals_filter_scan(self, low, span, seed):
        catalog = exec_catalog(rows=800)
        database = generate_database(catalog, seed=seed)
        indexed = catalog.clone()
        indexed.add_index(Index("t", ("a",)))
        sql = "SELECT id FROM t WHERE a BETWEEN %d AND %d" % (low, low + span)
        __, expected = run_query(sql, catalog, database)
        __, actual = run_query(sql, indexed, database)
        assert rows_equal(expected, actual)

    @given(value=st.integers(-5, 55))
    @hsettings(max_examples=20, deadline=None)
    def test_equality_probe_matches_scan(self, value):
        catalog = exec_catalog(rows=800)
        database = generate_database(catalog, seed=1)
        indexed = catalog.clone()
        indexed.add_index(Index("t", ("a", "b")))
        sql = "SELECT id, b FROM t WHERE a = %d" % value
        __, expected = run_query(sql, catalog, database)
        __, actual = run_query(sql, indexed, database)
        assert rows_equal(expected, actual)
