"""Tests for the network costing fleet (:mod:`repro.net`).

The ISSUE-10 acceptance pins live here:

* the frame codec round-trips versioned payloads and classifies its
  failures: truncation is a :class:`WireFormatError` (and retryable
  :class:`TransportError`), version-mismatch handshakes are rejected
  with :class:`WireFormatError` in *both* directions, garbage is never
  best-effort parsed;
* a :class:`RemoteBackplane` over loopback runner nodes produces
  **bit-identical** warm-up entries and evaluation matrices to the
  in-process evaluator;
* a node dying mid-batch degrades gracefully: survivors pick up its
  work (or, with no survivors, the remainder runs locally) and the
  final results are identical, with the retry/death/fallback counters
  visible in the metrics registry;
* bounded staleness: ``staleness=0`` (exact-replay) force-refreshes
  lease entries every epoch, a budget of K suppresses refreshes within
  K epochs, and the per-node cache-age gauges track the lease;
* close semantics mirror the process backplane: idempotent, loud
  :class:`DesignError` on use-after-close, no leaked connections;
* a :class:`RemoteStepExecutor` scheduled run matches inline execution
  exactly.
"""

import json
import socket
import struct
import threading

import pytest

from repro import obs
from repro.colt import ColtSettings
from repro.evaluation import WorkloadEvaluator, wire
from repro.net import (
    RemoteBackplane,
    RunnerConnection,
    RunnerNode,
    TruncatedFrameError,
    parse_listen_address,
    recv_frame,
    send_frame,
)
from repro.runtime import RemoteStepExecutor, StepExecutor
from repro.service import TuningService
from repro.util import DesignError, TransportError, WireFormatError
from repro.whatif import Configuration
from repro.workloads import DriftPhase, drifting_stream, sdss
from repro.workloads import sdss_catalog as make_sdss
from repro.workloads import sdss_workload

SDSS_PHASES = (
    DriftPhase("positional", 10, ((sdss.template("cone_search"), 1.0),)),
    DriftPhase("photometric", 10, ((sdss.template("magnitude_cut"), 1.0),)),
)
COLT = ColtSettings(epoch_length=5, space_budget_pages=50_000)


@pytest.fixture(scope="module")
def astro_catalog():
    return make_sdss(scale=0.01)


@pytest.fixture(scope="module")
def queries():
    return list(sdss_workload(n_queries=6, seed=7))


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test reads its own counters, not a neighbor's."""
    obs.reset()
    yield
    obs.reset()


def pool_terms(evaluator):
    """The pool's contents as a comparable mapping — the bit-identity
    surface (plan terms compare exactly; floats are carried verbatim)."""
    return {
        signature: evaluator.pool.get(signature).plans
        for signature in evaluator.pool.signatures()
    }


def _send_raw(sock, payload):
    """Write a frame *without* the codec's version stamping — how a
    foreign-version peer looks on the wire."""
    body = json.dumps(payload).encode("utf-8")
    sock.sendall(struct.pack("!I", len(body)) + body)


# ----------------------------------------------------------------------
# Frame codec.
# ----------------------------------------------------------------------


class TestFrames:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"kind": wire.KIND_HELLO, "role": "client"})
            payload = recv_frame(b)
            assert payload["kind"] == wire.KIND_HELLO
            assert payload["wire_version"] == wire.WIRE_VERSION
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_wire_and_transport_error(self):
        a, b = socket.socketpair()
        try:
            # A length prefix promising 100 bytes, then death after 3.
            a.sendall(struct.pack("!I", 100) + b"abc")
            a.close()
            with pytest.raises(WireFormatError):
                recv_frame(b)
        finally:
            b.close()
        assert issubclass(TruncatedFrameError, WireFormatError)
        assert issubclass(TruncatedFrameError, TransportError)

    def test_clean_close_between_frames_is_transport_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(TransportError) as excinfo:
                recv_frame(b)
            assert not isinstance(excinfo.value, WireFormatError)
        finally:
            b.close()

    def test_undecodable_body_is_wire_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", 4) + b"\xff\xfe\x00{")
            with pytest.raises(WireFormatError, match="undecodable"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_corrupt_length_header_is_wire_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", 2 ** 31))
            with pytest.raises(WireFormatError, match="bound"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_unstamped_frame_fails_version_check(self):
        a, b = socket.socketpair()
        try:
            _send_raw(a, {"kind": wire.KIND_HELLO})
            with pytest.raises(WireFormatError, match="wire version"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_listen_address(self):
        assert parse_listen_address("10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_listen_address(":9000") == ("127.0.0.1", 9000)
        assert parse_listen_address("9000") == ("127.0.0.1", 9000)
        with pytest.raises(WireFormatError):
            parse_listen_address("nonsense")


# ----------------------------------------------------------------------
# Handshake / version negotiation.
# ----------------------------------------------------------------------


class TestHandshake:
    def test_runner_rejects_foreign_version_hello(self):
        with RunnerNode() as node:
            sock = socket.create_connection((node.host, node.port), 5.0)
            try:
                _send_raw(sock, {"kind": wire.KIND_HELLO,
                                 "wire_version": 1})
                reply = recv_frame(sock)
                assert reply["kind"] == wire.KIND_ERROR
                assert reply["wire_error"]
            finally:
                sock.close()

    def test_client_rejects_foreign_version_runner(self, astro_catalog):
        """A runner speaking an older wire version is rejected client
        side too: its (non-error) frames fail the version check."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def ancient_runner():
            conn, __ = listener.accept()
            with conn:
                recv_frame(conn, check_version=False)  # the client hello
                _send_raw(conn, {"kind": wire.KIND_HELLO,
                                 "wire_version": 1})

        thread = threading.Thread(target=ancient_runner, daemon=True)
        thread.start()
        try:
            evaluator = WorkloadEvaluator(astro_catalog)
            with pytest.raises(WireFormatError, match="wire version"):
                RemoteBackplane(
                    evaluator, ["127.0.0.1:%d" % port],
                    retries=0,
                )._connections[0].connect()
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_wire_errors_propagate_instead_of_retrying(self, astro_catalog):
        """The retry loop never retries an incompatible peer: a
        wire-error reply surfaces as WireFormatError immediately."""
        with RunnerNode() as node:
            evaluator = WorkloadEvaluator(astro_catalog)
            backplane = RemoteBackplane(
                evaluator, [node.address], retries=3, backoff=0.0,
            )
            conn = backplane._connections[0]
            conn.connect()
            with pytest.raises(WireFormatError):
                backplane._request_with_retry(
                    conn, {"kind": "no-such-kind"}
                )
            backplane.close()


# ----------------------------------------------------------------------
# Equivalence: the fleet prices exactly like one process.
# ----------------------------------------------------------------------


class TestRemoteEquivalence:
    def test_warm_up_matches_local(self, astro_catalog, queries):
        with RunnerNode() as a, RunnerNode() as b:
            remote = WorkloadEvaluator(astro_catalog)
            backplane = RemoteBackplane(
                remote, [a.address, b.address], retries=1,
            )
            remote_calls = backplane.warm_up(queries)
            backplane.close()

        local = WorkloadEvaluator(astro_catalog)
        local_calls = local.warm_up(queries)

        assert remote_calls == local_calls
        assert pool_terms(remote) == pool_terms(local)
        # Kernels were rebuilt on install, like the process backplane's.
        for signature in local.pool.signatures():
            assert remote.pool.kernel_for(signature) is not None

    def test_evaluate_matches_local(self, astro_catalog, queries):
        configurations = [None, Configuration.empty()]
        with RunnerNode() as node:
            remote = WorkloadEvaluator(astro_catalog)
            backplane = RemoteBackplane(remote, [node.address], retries=1)
            ours = backplane.evaluate_configurations(
                queries, configurations
            )
            backplane.close()
        local = WorkloadEvaluator(astro_catalog)
        theirs = local.evaluate_configurations(queries, configurations)
        assert ours.matrix == theirs.matrix
        assert ours.weights == theirs.weights
        assert pool_terms(remote) == pool_terms(local)

    def test_second_warm_up_ships_nothing(self, astro_catalog, queries):
        with RunnerNode() as node:
            remote = WorkloadEvaluator(astro_catalog)
            backplane = RemoteBackplane(remote, [node.address], retries=1)
            backplane.warm_up(queries)
            shipped = node.tasks_served
            assert backplane.warm_up(queries) == 0
            assert node.tasks_served == shipped  # resident: no task sent
            backplane.close()


# ----------------------------------------------------------------------
# Failure injection: death mid-batch, graceful degradation.
# ----------------------------------------------------------------------


class TestFailureInjection:
    def test_node_death_mid_batch_drains_to_survivor(
            self, astro_catalog, queries):
        dying = RunnerNode(fail_after_tasks=2).start()
        survivor = RunnerNode().start()
        try:
            remote = WorkloadEvaluator(astro_catalog)
            backplane = RemoteBackplane(
                remote, [dying.address, survivor.address],
                retries=1, backoff=0.0,
            )
            backplane.warm_up(queries)
            batch = backplane.evaluate_configurations(queries, [None])
            assert backplane.live_nodes == [survivor.address]
            backplane.close()
        finally:
            dying.stop()
            survivor.stop()

        local = WorkloadEvaluator(astro_catalog)
        local.warm_up(queries)
        assert batch.matrix == \
            local.evaluate_configurations(queries, [None]).matrix
        assert pool_terms(remote) == pool_terms(local)

        registry = obs.metrics()
        assert registry.value(
            "repro_remote_node_deaths_total", node=dying.address
        ) == 1
        assert registry.value(
            "repro_remote_retries_total", node=dying.address
        ) >= 1
        # The survivor absorbed the dead node's work: no local fallback.
        assert registry.value(
            "repro_remote_fallback_total", op="warm"
        ) == 0

    def test_whole_fleet_death_falls_back_to_local(
            self, astro_catalog, queries):
        node = RunnerNode(fail_after_tasks=0).start()
        try:
            remote = WorkloadEvaluator(astro_catalog)
            backplane = RemoteBackplane(
                remote, [node.address], retries=0, backoff=0.0,
            )
            calls = backplane.warm_up(queries)
            batch = backplane.evaluate_configurations(queries, [None])
            assert backplane.live_nodes == []
            backplane.close()
        finally:
            node.stop()

        local = WorkloadEvaluator(astro_catalog)
        assert calls == local.warm_up(queries)
        assert batch.matrix == \
            local.evaluate_configurations(queries, [None]).matrix
        assert pool_terms(remote) == pool_terms(local)

        registry = obs.metrics()
        assert registry.value(
            "repro_remote_fallback_total", op="warm"
        ) == len(pool_terms(local))
        assert registry.value(
            "repro_remote_fallback_total", op="evaluate"
        ) >= 1

    def test_unreachable_runner_falls_back(self, astro_catalog, queries):
        # A port nothing listens on: connection refused, retries
        # exhausted, node declared dead, everything runs locally.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = WorkloadEvaluator(astro_catalog)
        backplane = RemoteBackplane(
            remote, ["127.0.0.1:%d" % port], retries=1, backoff=0.0,
        )
        calls = backplane.warm_up(queries)
        backplane.close()
        local = WorkloadEvaluator(astro_catalog)
        assert calls == local.warm_up(queries)
        assert pool_terms(remote) == pool_terms(local)


# ----------------------------------------------------------------------
# Bounded staleness.
# ----------------------------------------------------------------------


class TestBoundedStaleness:
    def _run_epochs(self, catalog, queries, staleness):
        with RunnerNode() as node:
            evaluator = WorkloadEvaluator(catalog)
            backplane = RemoteBackplane(
                evaluator, [node.address], staleness=staleness, retries=1,
            )
            backplane.warm_up(queries)           # epoch 1: builds
            first = backplane.evaluate_configurations(queries, [None])
            second = backplane.evaluate_configurations(queries, [None])
            backplane.close()
            registry = obs.metrics()
            return (
                first,
                second,
                registry.value(
                    "repro_remote_stale_refresh_total", node=node.address
                ),
                registry.value(
                    "repro_remote_cache_age_epochs", node=node.address
                ),
            )

    def test_exact_replay_refreshes_every_epoch(
            self, astro_catalog, queries):
        first, second, refreshes, age = self._run_epochs(
            astro_catalog, queries, staleness=0
        )
        # Every resident entry is rebuilt in each later epoch, and the
        # age gauge pins at 0 — nothing stale ever serves.
        assert refreshes == 2 * len(queries)
        assert age == 0
        assert first.matrix == second.matrix

    def test_budget_suppresses_refreshes_within_k_epochs(
            self, astro_catalog, queries):
        first, second, refreshes, age = self._run_epochs(
            astro_catalog, queries, staleness=5
        )
        assert refreshes == 0
        assert age == 2  # built at epoch 1, last served at epoch 3
        assert first.matrix == second.matrix

    def test_stale_and_exact_replay_price_identically(
            self, astro_catalog, queries):
        exact = self._run_epochs(astro_catalog, queries, staleness=0)
        stale = self._run_epochs(astro_catalog, queries, staleness=5)
        assert exact[0].matrix == stale[0].matrix
        assert exact[1].matrix == stale[1].matrix


# ----------------------------------------------------------------------
# Close semantics.
# ----------------------------------------------------------------------


class TestRemoteClose:
    def test_use_after_close_raises_design_error(
            self, astro_catalog, queries):
        with RunnerNode() as node:
            backplane = RemoteBackplane(
                WorkloadEvaluator(astro_catalog), [node.address], retries=1,
            )
            backplane.warm_up(queries[:2])
            backplane.close()
            assert backplane.closed
            with pytest.raises(DesignError, match="closed"):
                backplane.warm_up(queries)
            with pytest.raises(DesignError, match="closed"):
                backplane.evaluate_configurations(queries, [None])

    def test_close_is_idempotent_and_leaks_no_connections(
            self, astro_catalog, queries):
        with RunnerNode() as node:
            backplane = RemoteBackplane(
                WorkloadEvaluator(astro_catalog), [node.address], retries=1,
            )
            backplane.warm_up(queries[:2])
            assert node.open_connections == 1
            backplane.close()
            backplane.close()
            deadline = 50
            while node.open_connections and deadline:
                import time

                time.sleep(0.02)
                deadline -= 1
            assert node.open_connections == 0

    def test_executor_close_closes_backplanes(self, astro_catalog):
        with RunnerNode() as node:
            evaluator = WorkloadEvaluator(astro_catalog)
            executor = RemoteStepExecutor([node.address], retries=1)
            executor.refill(
                evaluator, ["SELECT ra FROM photoobj WHERE ra < 5"]
            )
            inner = executor._backplanes[id(evaluator)]
            executor.close()
            assert inner.closed
            assert executor._backplanes == {}


# ----------------------------------------------------------------------
# The executor seam on the scheduler.
# ----------------------------------------------------------------------


def outcome(session):
    status = session.status()
    return (
        status["configuration"],
        [(r.at_query, r.trigger, r.indexes) for r in session.recommendations],
        [(e.from_phase, e.to_phase, e.at_query) for e in session.drift_events],
        [(e.epoch, e.queries, e.observed_cost, e.build_cost, e.whatif_probes)
         for e in session.report.epochs],
        status["adoptions"],
    )


class TestRemoteOffload:
    def test_remote_run_matches_inline(self, astro_catalog):
        def run(executor):
            service = TuningService(shards=2)
            service.add_backplane("sdss", astro_catalog)
            for name in ("a", "b"):
                service.add_tenant(
                    name, "sdss", colt_settings=COLT,
                    recommend_every=8, window=10,
                )
            service.run_scheduled(
                {
                    name: drifting_stream(SDSS_PHASES, seed=seed)
                    for name, seed in (("a", 4), ("b", 9))
                },
                executor=executor,
                lookahead=6,
            )
            return {n: outcome(service.tenant(n)) for n in ("a", "b")}

        inline = run(StepExecutor())
        with RunnerNode() as x, RunnerNode() as y:
            with RemoteStepExecutor(
                [x.address, y.address], retries=1
            ) as executor:
                remote = run(executor)
        assert remote == inline

    def test_remote_run_survives_mid_run_death(self, astro_catalog):
        def run(executor):
            service = TuningService(shards=1)
            service.add_backplane("sdss", astro_catalog)
            service.add_tenant("t", "sdss", colt_settings=COLT)
            service.run_scheduled(
                {"t": drifting_stream(SDSS_PHASES, seed=3)},
                executor=executor, lookahead=6,
            )
            return outcome(service.tenant("t"))

        inline = run(StepExecutor())
        dying = RunnerNode(fail_after_tasks=1).start()
        survivor = RunnerNode().start()
        try:
            with RemoteStepExecutor(
                [dying.address, survivor.address], retries=0,
            ) as executor:
                remote = run(executor)
        finally:
            dying.stop()
            survivor.stop()
        assert remote == inline
