"""Tests for the portable wire format and the process-pool backplane.

The ISSUE-3 acceptance pins live here:

* serialized cache entries reproduce ``slot_cost``/``cost``
  **bit-identically** for every SDSS and TPC-H read template under
  random configurations;
* a killed :class:`TuningService` restored from a state dir emits the
  same subsequent recommendations as an uninterrupted run;
* process-pool ``warm_up`` results equal single-process results
  entry for entry;
* wire payloads with a foreign version are rejected, never guessed at.
"""

import itertools
import json
import random

import pytest

from repro.catalog import Index
from repro.evaluation import (
    ProcessPoolBackplane,
    WorkloadEvaluator,
    wire,
)
from repro.inum.cache import InumCostModel, _DesignView
from repro.optimizer.writecost import locate_query
from repro.service import TuningService
from repro.sql.binder import BoundWrite
from repro.util import WireFormatError
from repro.whatif import Configuration
from repro.workloads import sdss, tpch
from repro.workloads import sdss_catalog as make_sdss
from repro.workloads import tpch_catalog as make_tpch
from repro.workloads.drift import default_phases, drifting_stream


def random_configuration(catalog, rng, n_indexes=2):
    """A random single/two-column index configuration over *catalog*."""
    indexes = []
    tables = catalog.tables
    for __ in range(n_indexes):
        table = rng.choice(tables)
        width = rng.choice((1, 2))
        columns = tuple(
            rng.sample([c.name for c in table.columns], k=width)
        )
        indexes.append(Index(table.name, columns))
    return Configuration(indexes=frozenset(indexes))


def read_statements(catalog, registry, rng):
    """One bound read statement per template (writes contribute their
    locate query; pure inserts have no cached plans to serialize)."""
    model = InumCostModel(catalog)
    statements = []
    for name in sorted(registry):
        maker = registry[name]
        bq = model.bound(maker(rng))
        if isinstance(bq, BoundWrite):
            if bq.kind not in ("update", "delete"):
                continue
            bq = model.bound(locate_query(bq))
        statements.append((name, bq))
    return statements


class TestSignatureCodec:
    def test_round_trip_through_json(self):
        catalog = make_sdss(scale=0.01)
        evaluator = WorkloadEvaluator(catalog)
        rng = random.Random(3)
        for name, bq in read_statements(catalog, sdss.TEMPLATE_REGISTRY, rng):
            signature = evaluator.signature(bq)
            encoded = json.loads(json.dumps(wire.signature_to_wire(signature)))
            decoded = wire.signature_from_wire(encoded)
            assert decoded == signature, name
            assert hash(decoded) == hash(signature), name

    def test_non_primitive_rejected(self):
        with pytest.raises(WireFormatError):
            wire.signature_to_wire((object(),))


class TestEntryRoundTrip:
    """``loads(dumps(entry))`` reproduces slot_cost/cost bit-identically
    for every SDSS and TPC-H template under random configurations."""

    @pytest.mark.parametrize(
        "make_catalog,registry,seed",
        [
            (make_sdss, sdss.TEMPLATE_REGISTRY, 11),
            (make_tpch, tpch.TEMPLATE_REGISTRY, 29),
        ],
        ids=["sdss", "tpch"],
    )
    def test_costs_bit_identical(self, make_catalog, registry, seed):
        catalog = make_catalog(scale=0.01)
        rng = random.Random(seed)
        original = InumCostModel(catalog)
        restored = InumCostModel(catalog)
        evaluator = WorkloadEvaluator(catalog)
        configurations = [Configuration.empty()] + [
            random_configuration(catalog, rng) for __ in range(3)
        ]
        for name, bq in read_statements(catalog, registry, rng):
            cache = original.cache_for(bq)
            signature = evaluator.signature(bq)
            text = wire.dumps(wire.entry_to_wire(signature, cache))
            signature2, cache2 = wire.loads(text, catalog)
            assert signature2 == signature, name
            assert cache2.build_optimizer_calls == cache.build_optimizer_calls
            assert cache2.plans == cache.plans, name
            # Install the deserialized entry in a second model and pin
            # per-slot and total costs exactly.
            restored._caches[cache2.bound_query.sql] = cache2
            for config in configurations:
                view = _DesignView(catalog, config)
                for (i1, s1), (i2, s2) in zip(
                    cache.plan_terms(), cache2.plan_terms()
                ):
                    assert i1 == i2
                    for slot1, slot2 in zip(s1, s2):
                        assert original.slot_cost(
                            cache.bound_query, slot1, view
                        ) == restored.slot_cost(
                            cache2.bound_query, slot2, view
                        ), name
                assert original.cost(cache.bound_query, config) == \
                    restored.cost(cache2.bound_query, config), name

    def test_dumps_is_deterministic_json(self):
        catalog = make_sdss(scale=0.01)
        model = InumCostModel(catalog)
        evaluator = WorkloadEvaluator(catalog)
        sql = sdss.template("cone_search")(random.Random(1))
        cache = model.cache_for(sql)
        signature = evaluator.signature(sql)
        first = wire.dumps(wire.entry_to_wire(signature, cache))
        second = wire.dumps(wire.entry_to_wire(signature, cache))
        assert first == second
        assert json.loads(first)["wire_version"] == wire.WIRE_VERSION


class TestVersionRejection:
    def _entry_text(self):
        catalog = make_sdss(scale=0.01)
        model = InumCostModel(catalog)
        evaluator = WorkloadEvaluator(catalog)
        sql = sdss.template("magnitude_cut")(random.Random(2))
        return catalog, wire.dumps(
            wire.entry_to_wire(evaluator.signature(sql), model.cache_for(sql))
        )

    def test_version_mismatch_rejected(self):
        catalog, text = self._entry_text()
        payload = json.loads(text)
        payload["wire_version"] = wire.WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            wire.loads(json.dumps(payload), catalog)

    def test_missing_version_rejected(self):
        catalog, text = self._entry_text()
        payload = json.loads(text)
        del payload["wire_version"]
        with pytest.raises(WireFormatError, match="version"):
            wire.loads(json.dumps(payload), catalog)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError, match="kind"):
            wire.loads(
                json.dumps({"wire_version": wire.WIRE_VERSION, "kind": "??"})
            )

    def test_entry_requires_catalog(self):
        __, text = self._entry_text()
        with pytest.raises(WireFormatError, match="catalog"):
            wire.loads(text)


class TestProcessPoolBackplane:
    """Process-pool warm_up equals single-process, entry for entry."""

    def test_warm_up_entries_identical(self):
        catalog = make_sdss(scale=0.01)
        # Every template, reads and writes alike: updates exercise the
        # locate-query wire path (synthetic SQL shipped as the write).
        workload = [
            sdss.template(name)(random.Random(i))
            for i, name in enumerate(sorted(sdss.TEMPLATE_REGISTRY))
        ]
        single = WorkloadEvaluator(catalog)
        single_calls = single.warm_up(workload)
        pooled = WorkloadEvaluator(catalog)
        with ProcessPoolBackplane(pooled, processes=2) as backplane:
            pooled_calls = backplane.warm_up(workload)
        assert pooled_calls == single_calls
        assert set(pooled.pool.signatures()) == set(single.pool.signatures())
        for signature in single.pool.signatures():
            a = pooled.pool.get(signature)
            b = single.pool.get(signature)
            assert a.plans == b.plans
            assert a.build_optimizer_calls == b.build_optimizer_calls
            assert a.bound_query.sql == b.bound_query.sql

    def test_alias_renamed_duplicates_ship_one_task(self):
        """Warm-target dedup is by canonical signature: alias-renamed
        duplicates share one cache entry, so only one build is shipped
        to the workers."""
        catalog = make_sdss(scale=0.01)
        workload = [
            "SELECT p.objid FROM photoobj p WHERE p.rmag < 20",
            "SELECT x.objid FROM photoobj x WHERE x.rmag < 20",
        ]
        evaluator = WorkloadEvaluator(catalog)
        assert len(evaluator.warm_targets(workload)) == 1
        with ProcessPoolBackplane(evaluator, processes=2) as backplane:
            backplane.warm_up(workload)
        assert len(evaluator.pool) == 1

    def test_warm_up_skips_resident_entries(self):
        catalog = make_sdss(scale=0.01)
        workload = [sdss.template("cone_search")(random.Random(4))]
        evaluator = WorkloadEvaluator(catalog)
        evaluator.warm_up(workload)
        with ProcessPoolBackplane(evaluator, processes=2) as backplane:
            assert backplane.warm_up(workload) == 0

    def test_evaluate_configurations_matrix_identical(self):
        catalog = make_sdss(scale=0.01)
        rng = random.Random(9)
        workload = [
            (sdss.template("cone_search")(rng), 2.0),
            (sdss.template("magnitude_cut")(rng), 1.0),
            (sdss.template("photo_spec_join")(rng), 0.5),
        ]
        configurations = [Configuration.empty()] + [
            random_configuration(catalog, rng) for __ in range(2)
        ]
        reference = WorkloadEvaluator(catalog).evaluate_configurations(
            workload, configurations
        )
        pooled = WorkloadEvaluator(catalog)
        with ProcessPoolBackplane(pooled, processes=2) as backplane:
            batch = backplane.evaluate_configurations(workload, configurations)
        assert batch.matrix == reference.matrix
        assert batch.weights == reference.weights
        assert batch.totals == reference.totals
        # The parent pool was warmed by the shipped entries.
        assert len(pooled.pool) == 3

    def test_bounded_parent_pool_bounds_workers_too(self):
        """A capacity-capped host stays capped: the parent's pool bound
        is mirrored into each worker evaluator, and warm-up still ships
        every built entry (each task encodes its result before any
        later eviction can drop it)."""
        from repro.evaluation import InumCachePool

        catalog = make_sdss(scale=0.01)
        rng = random.Random(21)
        workload = [sdss.template("cone_search")(rng) for __ in range(6)]
        evaluator = WorkloadEvaluator(catalog, pool=InumCachePool(capacity=3))
        with ProcessPoolBackplane(evaluator, processes=2) as backplane:
            calls = backplane.warm_up(workload)
        assert calls > 0
        assert len(evaluator.pool) <= 3

    def test_single_process_fallback(self):
        catalog = make_sdss(scale=0.01)
        workload = [sdss.template("cone_search")(random.Random(6))]
        evaluator = WorkloadEvaluator(catalog)
        with ProcessPoolBackplane(evaluator, processes=1) as backplane:
            calls = backplane.warm_up(workload)
        assert calls > 0 and len(evaluator.pool) == 1


class TestServiceKillRestore:
    """A killed TuningService restored from --state-dir emits the same
    subsequent recommendations as an uninterrupted run."""

    OPTIONS = dict(recommend_every=15, window=20)

    @staticmethod
    def make_service():
        service = TuningService(shards=2)
        service.add_backplane("sdss", make_sdss(scale=0.02))
        return service

    @staticmethod
    def stream():
        return drifting_stream(default_phases(12), seed=5)

    @staticmethod
    def fingerprint(session):
        return (
            [
                (r.at_query, r.phase, r.trigger, r.indexes)
                for r in session.recommendations
            ],
            session.status()["configuration"],
            [
                (e.at_query, e.from_phase, e.to_phase)
                for e in session.drift_events
            ],
            [
                (e.epoch, e.queries, e.observed_cost, e.configuration)
                for e in session.report.epochs
            ],
        )

    def test_restored_run_matches_uninterrupted(self, tmp_path):
        uninterrupted = self.make_service()
        uninterrupted.add_tenant("t0", "sdss", **self.OPTIONS)
        uninterrupted.run_streams({"t0": self.stream()})

        # Kill mid-stream (mid-epoch, mid-phase): 17 of 36 events.
        killed = self.make_service()
        killed.add_tenant("t0", "sdss", **self.OPTIONS)
        killed.run_streams(
            {"t0": itertools.islice(self.stream(), 17)}, finish=False
        )
        killed.save_state(tmp_path)

        resumed = self.make_service()
        restored = resumed.load_state(tmp_path)
        assert set(restored) == {"t0"}
        session = resumed.tenant("t0")
        assert session.queries == 17
        resumed.run_streams({"t0": itertools.islice(self.stream(), 17, None)})

        assert self.fingerprint(session) == self.fingerprint(
            uninterrupted.tenant("t0")
        )

    def test_cold_start_returns_empty(self, tmp_path):
        assert self.make_service().load_state(tmp_path) == {}

    def test_restore_missing_backplane_fails_clean_and_retries(self, tmp_path):
        """Restore validates before registering: a snapshot referencing
        an unregistered backplane fails without registering anything,
        and succeeds once the operator adds the backplane."""
        from repro.util import DesignError

        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        service.save_state(tmp_path)

        bare = TuningService(shards=2)  # no backplanes registered
        with pytest.raises(DesignError, match="backplane"):
            bare.load_state(tmp_path)
        assert bare.tenants == []  # nothing half-restored
        bare.add_backplane("sdss", make_sdss(scale=0.02))
        assert set(bare.load_state(tmp_path)) == {"t0"}

    def test_restore_is_all_or_nothing_on_malformed_session(self, tmp_path):
        """A malformed session payload mid-list registers nothing: every
        session materializes before any is registered, so the retry with
        a fixed file starts clean."""
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        service.add_tenant("t1", "sdss", **self.OPTIONS)
        path = service.save_state(tmp_path)
        payload = json.loads(open(path).read())
        del payload["tenants"][1]["session"]["tuner"]["epoch_probes"]
        with open(path, "w") as f:
            json.dump(payload, f)
        fresh = self.make_service()
        with pytest.raises(KeyError):
            fresh.load_state(tmp_path)
        assert fresh.tenants == []  # t0 was not half-registered

    def test_state_file_version_checked(self, tmp_path):
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        path = service.save_state(tmp_path)
        payload = json.loads(open(path).read())
        payload["wire_version"] = 99
        with open(path, "w") as f:
            json.dump(payload, f)
        with pytest.raises(WireFormatError, match="version"):
            self.make_service().load_state(tmp_path)

    def test_snapshot_is_json_and_versioned(self, tmp_path):
        service = self.make_service()
        service.add_tenant("t0", "sdss", **self.OPTIONS)
        service.run_streams(
            {"t0": itertools.islice(self.stream(), 5)}, finish=False
        )
        text = wire.dumps(service.snapshot())
        payload = wire.loads(text)
        assert payload["kind"] == wire.KIND_SERVICE
        assert payload["tenants"][0]["session"]["queries"] == 5
