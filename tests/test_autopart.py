"""Tests for the AutoPart partition advisor and query rewriting."""

import pytest

from repro.autopart import AutoPartAdvisor, rewrite_for_layout
from repro.catalog import VerticalFragment, VerticalLayout
from repro.optimizer import CostService
from repro.util import DesignError

# Queries touching small, distinct column subsets of the wide table —
# AutoPart's sweet spot.
WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 30", 1.0),
    ("SELECT rmag, gmag FROM photoobj WHERE rmag < 20", 1.0),
    ("SELECT ra, dec FROM photoobj WHERE dec > 50", 1.0),
    ("SELECT z FROM specobj WHERE z BETWEEN 1 AND 2", 1.0),
]


@pytest.fixture
def advisor(sdss_catalog):
    return AutoPartAdvisor(sdss_catalog)


class TestVerticalRecommendation:
    def test_layout_improves_workload(self, advisor):
        rec = advisor.recommend(WORKLOAD, horizontal=False)
        assert rec.predicted_workload_cost < rec.base_workload_cost
        assert "photoobj" in rec.layouts

    def test_layout_covers_all_columns(self, advisor, sdss_catalog):
        rec = advisor.recommend(WORKLOAD, horizontal=False)
        for layout in rec.configuration.layouts:
            layout.validate_covers(sdss_catalog.table(layout.table_name))

    def test_hot_columns_grouped(self, advisor):
        rec = advisor.recommend(WORKLOAD, horizontal=False)
        layout = rec.layouts["photoobj"]
        frag_of = {}
        for frag in layout.fragments:
            for col in frag.columns:
                frag_of[col] = frag
        # ra and dec are always read together.
        assert frag_of["ra"] is frag_of["dec"]
        # cold columns do not share the hot fragment
        assert frag_of["flags"] is not frag_of["ra"]

    def test_predicted_cost_close_to_optimizer(self, advisor, sdss_catalog):
        rec = advisor.recommend(WORKLOAD, horizontal=False)
        real = CostService(rec.configuration.apply(sdss_catalog)).workload_cost(
            WORKLOAD
        )
        assert rec.predicted_workload_cost == pytest.approx(real, rel=0.05)

    def test_replication_budget_respected(self, advisor, sdss_catalog):
        rec = advisor.recommend(
            WORKLOAD, replication_budget_pages=100_000, horizontal=False
        )
        extra = sum(
            l.replication_pages(sdss_catalog.table(l.table_name))
            for l in rec.configuration.layouts
        )
        assert extra <= 100_000


class TestHorizontalRecommendation:
    def test_range_partitioning_suggested(self, advisor):
        rec = advisor.recommend(WORKLOAD, vertical=False, horizontal=True)
        assert rec.horizontals  # predicates on ra/dec/z allow pruning
        for horizontal in rec.configuration.horizontals:
            assert horizontal.partition_count >= 2

    def test_partitioning_improves_cost(self, advisor):
        rec = advisor.recommend(WORKLOAD, vertical=False, horizontal=True)
        assert rec.predicted_workload_cost < rec.base_workload_cost


class TestRecommendationOutput:
    def test_per_query_benefits_reported(self, advisor):
        rec = advisor.recommend(WORKLOAD)
        assert len(rec.per_query) == len(WORKLOAD)
        for __, base, new in rec.per_query:
            assert new <= base + 1e-6

    def test_text_rendering(self, advisor):
        rec = advisor.recommend(WORKLOAD)
        text = rec.to_text()
        assert "Suggested partitions" in text and "workload:" in text

    def test_empty_workload_rejected(self, advisor):
        with pytest.raises(DesignError):
            advisor.recommend([])

    def test_negative_budget_rejected(self, advisor):
        with pytest.raises(DesignError):
            advisor.recommend(WORKLOAD, replication_budget_pages=-1)


class TestQueryRewriting:
    def make_layout(self):
        return VerticalLayout(
            "photoobj",
            (
                VerticalFragment("photoobj", ("objid", "ra", "dec")),
                VerticalFragment(
                    "photoobj",
                    ("rmag", "gmag", "type", "flags", "status"),
                ),
            ),
        )

    def test_single_fragment_query(self, sdss_catalog):
        sql = "SELECT ra, dec FROM photoobj WHERE ra < 100"
        rewritten = rewrite_for_layout(
            sql, sdss_catalog, {"photoobj": self.make_layout()}
        )
        assert "photoobj__objid_ra_dec" in rewritten
        assert "rid" not in rewritten  # one fragment: no stitch join

    def test_spanning_query_stitches(self, sdss_catalog):
        sql = "SELECT ra, rmag FROM photoobj WHERE dec > 0"
        rewritten = rewrite_for_layout(
            sql, sdss_catalog, {"photoobj": self.make_layout()}
        )
        assert ".rid = " in rewritten
        assert rewritten.count("photoobj__") >= 2

    def test_join_query_keeps_other_table(self, sdss_catalog):
        sql = (
            "SELECT p.ra, s.z FROM photoobj p, specobj s "
            "WHERE p.objid = s.objid AND s.z > 6"
        )
        rewritten = rewrite_for_layout(
            sql, sdss_catalog, {"photoobj": self.make_layout()}
        )
        assert "specobj s" in rewritten
        assert "= s.objid" in rewritten or "s.objid =" in rewritten

    def test_group_order_limit_preserved(self, sdss_catalog):
        sql = (
            "SELECT type, COUNT(*) FROM photoobj WHERE rmag < 20 "
            "GROUP BY type ORDER BY type LIMIT 3"
        )
        rewritten = rewrite_for_layout(
            sql, sdss_catalog, {"photoobj": self.make_layout()}
        )
        assert "GROUP BY" in rewritten and "LIMIT 3" in rewritten

    def test_table_without_layout_untouched(self, sdss_catalog):
        sql = "SELECT z FROM specobj WHERE z > 1"
        rewritten = rewrite_for_layout(
            sql, sdss_catalog, {"photoobj": self.make_layout()}
        )
        assert "specobj" in rewritten and "__" not in rewritten
