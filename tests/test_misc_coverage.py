"""Coverage for surfaces the focused suites skip: rendering, settings
plumbing, utility helpers, and small error paths."""

import io

import pytest

from repro.catalog import Index
from repro.designer.cli import main as cli_main
from repro.optimizer import CostService, PlannerSettings
from repro.optimizer.settings import DISABLE_COST
from repro.util import align8, ceil_div, clamp, safe_log2
from repro.util.errors import (
    BindError,
    CatalogError,
    DesignError,
    ParseError,
    PlanningError,
    ReproError,
)


class TestUtilHelpers:
    def test_align8(self):
        assert align8(0) == 0
        assert align8(1) == 8
        assert align8(8) == 8
        assert align8(9) == 16

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(99, 0, 10) == 10
        with pytest.raises(ValueError):
            clamp(1, 10, 0)

    def test_safe_log2(self):
        assert safe_log2(8) == 3.0
        assert safe_log2(1) == 1.0
        assert safe_log2(0) == 1.0

    def test_error_hierarchy(self):
        for exc in (CatalogError, ParseError, BindError, PlanningError, DesignError):
            assert issubclass(exc, ReproError)

    def test_parse_error_carries_position(self):
        err = ParseError("bad", position=7)
        assert err.position == 7


class TestExplainRendering:
    def test_all_scan_nodes_render(self, sdss_with_indexes):
        svc = CostService(sdss_with_indexes)
        texts = [
            svc.explain("SELECT ra FROM photoobj WHERE ra BETWEEN 1 AND 2"),
            svc.explain("SELECT ra, dec FROM photoobj WHERE dec BETWEEN 0 AND 4"),
            svc.explain("SELECT ra FROM photoobj"),
        ]
        combined = "\n".join(texts)
        assert "cost=" in combined and "rows=" in combined

    def test_join_tree_renders_with_indentation(self, sdss_catalog):
        svc = CostService(sdss_catalog)
        text = svc.explain(
            "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.objid"
        )
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("  ->")

    def test_aggregate_and_sort_render(self, sdss_catalog):
        svc = CostService(sdss_catalog)
        text = svc.explain(
            "SELECT type, COUNT(*) FROM photoobj GROUP BY type ORDER BY type"
        )
        assert "Aggregate" in text

    def test_limit_renders_count(self, sdss_catalog):
        text = CostService(sdss_catalog).explain("SELECT ra FROM photoobj LIMIT 3")
        assert "Limit 3" in text


class TestSettingsPlumbing:
    def test_with_changes_returns_new_object(self):
        base = PlannerSettings()
        changed = base.with_changes(random_page_cost=2.0)
        assert changed.random_page_cost == 2.0
        assert base.random_page_cost == 4.0

    def test_join_methods_enabled_map(self):
        settings = PlannerSettings(enable_hashjoin=False)
        flags = settings.join_methods_enabled()
        assert flags["hashjoin"] is False and flags["nestloop"] is True

    def test_scan_penalty(self):
        settings = PlannerSettings()
        assert settings.scan_penalty(True) == 0.0
        assert settings.scan_penalty(False) == DISABLE_COST

    def test_service_with_settings_shares_counter(self, sdss_catalog):
        svc = CostService(sdss_catalog)
        alt = svc.with_settings(PlannerSettings(enable_hashjoin=False))
        svc.cost("SELECT ra FROM photoobj")
        alt.cost("SELECT dec FROM photoobj")
        assert svc.optimizer_calls == 2

    def test_higher_random_page_cost_discourages_index(self, sdss_with_indexes):
        sql = "SELECT ra, rmag FROM photoobj WHERE ra BETWEEN 10 AND 40"
        cheap_random = CostService(
            sdss_with_indexes, PlannerSettings(random_page_cost=1.1)
        )
        dear_random = CostService(
            sdss_with_indexes, PlannerSettings(random_page_cost=40.0)
        )
        assert dear_random.cost(sql) >= cheap_random.cost(sql)


class TestCliDrops:
    FAST = ["--scale", "0.01", "--queries", "6", "--seed", "1"]

    def run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, out=out)
        return code, out.getvalue()

    def test_drops_flags_useless_index(self):
        code, text = self.run(
            self.FAST + ["drops", "--indexes", "photoobj:skyversion"]
        )
        assert code == 0
        assert "DROP INDEX" in text
        assert "skyversion" in text

    def test_drops_on_clean_catalog(self):
        code, text = self.run(self.FAST + ["drops"])
        assert code == 0
        assert "every existing index is used" in text


class TestWorkloadDescribe:
    def test_describe_truncates(self):
        from repro.workloads import Workload

        wl = Workload(["SELECT a FROM t"] * 20)
        text = wl.describe(limit=3)
        assert "more" in text

    def test_catalog_describe_lists_design(self, sdss_with_indexes):
        text = sdss_with_indexes.describe()
        assert "photoobj" in text and "index" in text
