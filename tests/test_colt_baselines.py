"""Tests for COLT baselines and report rendering extras."""

import pytest

from repro.colt import ColtSettings, ColtTuner, no_tuning_cost, static_oracle
from repro.workloads import sdss
from repro.workloads.drift import DriftPhase, drifting_stream


def stream(n=30, seed=5):
    phases = (DriftPhase("pos", n, ((sdss.template("cone_search"), 1.0),)),)
    return drifting_stream(phases, seed=seed)


class TestNoTuning:
    def test_matches_sum_of_costs(self, sdss_catalog):
        from repro.whatif import WhatIfSession

        session = WhatIfSession(sdss_catalog)
        expected = sum(session.cost(sql) for __, sql in stream())
        assert no_tuning_cost(sdss_catalog, stream()) == pytest.approx(expected)

    def test_accepts_bare_sql_stream(self, sdss_catalog):
        bare = [sql for __, sql in stream(10)]
        assert no_tuning_cost(sdss_catalog, bare) > 0


class TestStaticOracle:
    def test_oracle_beats_no_tuning_on_steady_stream(self, sdss_catalog):
        untuned = no_tuning_cost(sdss_catalog, stream(40))
        oracle = static_oracle(sdss_catalog, stream(40), space_budget_pages=100_000)
        assert oracle.stream_cost < untuned
        assert oracle.build_cost > 0

    def test_oracle_configuration_within_budget(self, sdss_catalog):
        oracle = static_oracle(sdss_catalog, stream(30), space_budget_pages=50_000)
        assert oracle.configuration.size_pages(sdss_catalog) <= 50_000

    def test_zero_budget_oracle_is_no_tuning(self, sdss_catalog):
        untuned = no_tuning_cost(sdss_catalog, stream(20))
        oracle = static_oracle(sdss_catalog, stream(20), space_budget_pages=0)
        assert oracle.stream_cost == pytest.approx(untuned)
        assert oracle.build_cost == 0.0


class TestSparkline:
    def test_sparkline_length_matches_epochs(self, sdss_catalog):
        tuner = ColtTuner(
            sdss_catalog, ColtSettings(epoch_length=10, space_budget_pages=100_000)
        )
        report = tuner.run(stream(35))
        assert len(report.sparkline()) == len(report.epochs)

    def test_sparkline_in_text_report(self, sdss_catalog):
        tuner = ColtTuner(
            sdss_catalog, ColtSettings(epoch_length=10, space_budget_pages=100_000)
        )
        report = tuner.run(stream(20))
        assert "per epoch" in report.to_text()

    def test_empty_report_sparkline(self):
        from repro.colt import OnlineReport

        assert OnlineReport().sparkline() == ""
