"""Property-based equivalence suite for the WorkloadEvaluator.

The batched evaluator must be a *refactoring* of the seed's per-call
INUM evaluation, never a different cost model: for randomized schemas,
workloads and configuration sweeps, batched costs equal per-query
:class:`InumCostModel` costs exactly, stay within INUM's fidelity
tolerance of the real optimizer on small cases, and are bit-identical
with thread fan-out on and off.
"""

import random

import pytest

from repro.catalog import Catalog, Column, DataType, Distribution, Index, Table
from repro.evaluation import WorkloadEvaluator
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.whatif import Configuration

SEEDS = [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# Randomized environments: schema + workload + candidate configurations.
# ----------------------------------------------------------------------


def random_schema(rng):
    catalog = Catalog()
    for t in range(rng.randint(2, 3)):
        columns = [Column("id", DataType.BIGINT, Distribution(kind="sequence"))]
        for c in range(rng.randint(3, 5)):
            if rng.random() < 0.5:
                columns.append(
                    Column(
                        "v%d" % c,
                        DataType.DOUBLE,
                        Distribution(kind="uniform", low=0.0, high=100.0),
                    )
                )
            else:
                columns.append(
                    Column(
                        "v%d" % c,
                        DataType.INT,
                        Distribution(kind="uniform_int", low=0, high=50),
                    )
                )
        catalog.add_table(
            Table(
                "t%d" % t,
                columns,
                row_count=rng.choice([20_000, 60_000, 150_000]),
            ).build_stats()
        )
    return catalog


def _predicate(rng, alias, column):
    if column.dtype == DataType.DOUBLE:
        if rng.random() < 0.5:
            low = rng.uniform(0, 60)
            return "%s.%s BETWEEN %.1f AND %.1f" % (
                alias, column.name, low, low + rng.uniform(5, 30),
            )
        return "%s.%s < %.1f" % (alias, column.name, rng.uniform(20, 90))
    return "%s.%s = %d" % (alias, column.name, rng.randint(0, 50))


def random_write(rng, catalog):
    table = rng.choice(list(catalog.tables))
    cols = [c for c in table.columns if c.name != "id"]
    where = _predicate(rng, table.name, rng.choice(cols))
    if rng.random() < 0.5:
        target = rng.choice(cols)
        value = "%.1f" % rng.uniform(0, 50) \
            if target.dtype == DataType.DOUBLE else str(rng.randint(0, 50))
        return "UPDATE %s SET %s = %s WHERE %s" % (
            table.name, target.name, value, where,
        )
    return "DELETE FROM %s WHERE %s" % (table.name, where)


def random_workload(rng, catalog, n_queries=6, write_fraction=0.0):
    tables = list(catalog.tables)
    queries = []
    for __ in range(n_queries):
        if rng.random() < write_fraction:
            queries.append((random_write(rng, catalog), rng.choice([1.0, 2.0])))
            continue
        if len(tables) >= 2 and rng.random() < 0.4:
            ta, tb = rng.sample(tables, 2)
            cols_a = [c for c in ta.columns if c.name != "id"]
            cols_b = [c for c in tb.columns if c.name != "id"]
            sql = (
                "SELECT a.%s, b.%s FROM %s a, %s b "
                "WHERE a.id = b.id AND %s"
                % (
                    rng.choice(cols_a).name,
                    rng.choice(cols_b).name,
                    ta.name,
                    tb.name,
                    _predicate(rng, "b", rng.choice(cols_b)),
                )
            )
        else:
            table = rng.choice(tables)
            cols = [c for c in table.columns if c.name != "id"]
            pick = rng.sample(cols, min(2, len(cols)))
            alias = table.name
            sql = "SELECT %s FROM %s WHERE %s" % (
                ", ".join(c.name for c in pick),
                table.name,
                _predicate(rng, alias, rng.choice(cols)),
            )
            if rng.random() < 0.3:
                sql += " ORDER BY %s LIMIT %d" % (
                    pick[0].name, rng.randint(5, 50),
                )
        queries.append((sql, rng.choice([1.0, 2.0])))
    return queries


def random_candidates(rng, catalog, n=8):
    candidates = []
    for table in catalog.tables:
        names = [c.name for c in table.columns]
        for __ in range(3):
            key = tuple(rng.sample(names, rng.randint(1, 2)))
            ix = Index(table.name, key)
            if ix not in candidates:
                candidates.append(ix)
    rng.shuffle(candidates)
    return candidates[:n]


def random_configs(rng, candidates, n=8):
    return [
        Configuration(
            indexes=frozenset(
                rng.sample(candidates, rng.randint(0, min(4, len(candidates))))
            )
        )
        for __ in range(n)
    ]


def make_env(seed, write_fraction=0.0):
    rng = random.Random(seed)
    catalog = random_schema(rng)
    workload = random_workload(rng, catalog, write_fraction=write_fraction)
    configs = random_configs(rng, random_candidates(rng, catalog))
    return catalog, workload, configs


# ----------------------------------------------------------------------
# The equivalence properties.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_equals_per_call_inum(seed):
    catalog, workload, configs = make_env(seed)
    per_call = InumCostModel(catalog)
    evaluator = WorkloadEvaluator(catalog)
    batched = evaluator.workload_costs(workload, configs)
    for config, total in zip(configs, batched):
        assert total == pytest.approx(
            per_call.workload_cost(workload, config), rel=1e-12
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_single_query_costs_equal_per_call(seed):
    catalog, workload, configs = make_env(seed)
    per_call = InumCostModel(catalog)
    evaluator = WorkloadEvaluator(catalog)
    for sql, __ in workload:
        for config in configs[:3]:
            assert evaluator.cost(sql, config) == pytest.approx(
                per_call.cost(sql, config), rel=1e-12
            )


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_matches_direct_cost_service_within_tolerance(seed):
    """On small cases the whole stack stays faithful to the optimizer."""
    catalog, workload, configs = make_env(seed)
    evaluator = WorkloadEvaluator(catalog)
    for config in configs[:4]:
        direct = CostService(config.apply(catalog)).workload_cost(workload)
        estimate = evaluator.workload_costs(workload, [config])[0]
        assert estimate == pytest.approx(direct, rel=0.05)


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_determinism(seed):
    """Fan-out across queries must be bit-identical to sequential."""
    catalog, workload, configs = make_env(seed)
    evaluator = WorkloadEvaluator(catalog)
    sequential = evaluator.evaluate_configurations(
        workload, configs, parallel=False
    )
    parallel = evaluator.evaluate_configurations(
        workload, configs, parallel=True, max_workers=4
    )
    assert sequential.matrix == parallel.matrix
    assert sequential.totals == parallel.totals

    fresh = WorkloadEvaluator(catalog, parallel=True)
    assert fresh.evaluate_configurations(workload, configs).matrix \
        == sequential.matrix


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_batch_issues_no_optimizer_calls_after_warm(seed):
    catalog, workload, configs = make_env(seed)
    evaluator = WorkloadEvaluator(catalog)
    evaluator.warm(workload)
    before = evaluator.precompute_calls
    evaluator.evaluate_configurations(workload, configs)
    assert evaluator.precompute_calls == before


@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_read_write_workloads_match_per_call(seed):
    """Write statements (UPDATE/DELETE maintenance + locate pricing) must
    survive batching and thread fan-out exactly like reads."""
    catalog, workload, configs = make_env(seed, write_fraction=0.4)
    # Guarantee at least one write regardless of the draw.
    workload = list(workload) + [(random_write(random.Random(seed), catalog), 1.0)]
    per_call = InumCostModel(catalog)
    evaluator = WorkloadEvaluator(catalog)
    sequential = evaluator.evaluate_configurations(workload, configs)
    for config, total in zip(configs, sequential.totals):
        assert total == pytest.approx(
            per_call.workload_cost(workload, config), rel=1e-12
        )
    parallel = evaluator.evaluate_configurations(
        workload, configs, parallel=True, max_workers=4
    )
    assert sequential.matrix == parallel.matrix


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_mixed_workload_matches_cost_service(seed):
    catalog, workload, configs = make_env(seed, write_fraction=0.3)
    evaluator = WorkloadEvaluator(catalog)
    for config in configs[:3]:
        direct = CostService(config.apply(catalog)).workload_cost(workload)
        estimate = evaluator.workload_costs(workload, [config])[0]
        assert estimate == pytest.approx(direct, rel=0.05)


def test_usage_oracle_matches_per_call():
    catalog, workload, configs = make_env(7)
    per_call = InumCostModel(catalog)
    evaluator = WorkloadEvaluator(catalog)
    batch = evaluator.workload_cost_with_usage_batch(workload, configs)
    for config, (cost, used) in zip(configs, batch):
        ref_cost, ref_used = per_call.workload_cost_with_usage(workload, config)
        assert cost == pytest.approx(ref_cost, rel=1e-12)
        assert used == ref_used


def test_batch_evaluation_best_picks_minimum():
    catalog, workload, configs = make_env(3)
    evaluator = WorkloadEvaluator(catalog)
    result = evaluator.evaluate_configurations(workload, configs)
    best_config, best_total = result.best()
    assert best_total == min(result.totals)
    assert best_config is result.configurations[
        result.totals.index(best_total)
    ]


def test_one_shot_iterator_workload():
    """A generator workload must compile fully and not poison the memo."""
    catalog, workload, configs = make_env(1)
    evaluator = WorkloadEvaluator(catalog)
    reference = evaluator.workload_costs(list(workload), configs)
    fresh = WorkloadEvaluator(catalog)
    from_iter = fresh.workload_costs(iter(list(workload)), configs)
    assert from_iter == pytest.approx(reference, rel=1e-12)
    # The memoized compilation must serve the list form identically.
    assert fresh.workload_costs(list(workload), configs) \
        == pytest.approx(reference, rel=1e-12)
