"""Tests for the Index Benefit Graph: correctness vs brute force."""

import itertools

import pytest

from repro.catalog import Index
from repro.interaction import IndexBenefitGraph, InteractionAnalyzer
from repro.inum import InumCostModel
from repro.whatif import Configuration

WORKLOAD = [
    ("SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 12", 1.0),
    ("SELECT ra, dec, rmag FROM photoobj WHERE ra BETWEEN 50 AND 51 AND dec > 0", 1.0),
    ("SELECT p.ra, s.z FROM photoobj p, specobj s "
     "WHERE p.objid = s.objid AND s.z > 6.8", 1.0),
    ("SELECT rmag FROM photoobj WHERE rmag < 14 AND type = 2", 1.0),
]

CANDIDATES = [
    Index("photoobj", ("ra",)),
    Index("photoobj", ("ra", "dec")),
    Index("specobj", ("z",)),
    Index("photoobj", ("objid",)),
    Index("photoobj", ("type", "rmag")),
]


@pytest.fixture(scope="module")
def inum(request):
    from tests.conftest import make_sdss_catalog

    return InumCostModel(make_sdss_catalog())


@pytest.fixture(scope="module")
def ibg(inum):
    def oracle(subset):
        return inum.workload_cost_with_usage(
            WORKLOAD, Configuration(indexes=frozenset(subset))
        )

    return IndexBenefitGraph.build(oracle, CANDIDATES)


class TestConstruction:
    def test_root_present(self, ibg):
        assert frozenset(CANDIDATES) in ibg.nodes

    def test_used_subset_of_node(self, ibg):
        for subset, node in ibg.nodes.items():
            assert node.used <= subset

    def test_graph_collapses_unused_candidates(self, inum):
        """Adding never-used candidates must not blow up the IBG: subsets
        differing only in unused indexes share nodes via used-set closure."""
        from repro.catalog import Index

        padded = CANDIDATES + [
            Index("photoobj", ("flags",)),
            Index("photoobj", ("status",)),
        ]

        def oracle(subset):
            return inum.workload_cost_with_usage(
                WORKLOAD, Configuration(indexes=frozenset(subset))
            )

        graph = IndexBenefitGraph.build(oracle, padded)
        assert graph.size <= 2 ** len(CANDIDATES) + len(padded)
        assert graph.size < 2 ** len(padded) / 2

    def test_build_evaluations_equal_nodes(self, ibg):
        assert ibg.build_evaluations == ibg.size

    def test_describe_renders(self, ibg):
        text = ibg.describe()
        assert "IBG with" in text and "used=" in text


class TestCostOracle:
    """The IBG's core guarantee: cost(X) for *any* X via traversal."""

    def test_cost_matches_inum_on_every_subset(self, ibg, inum):
        for r in range(len(CANDIDATES) + 1):
            for combo in itertools.combinations(CANDIDATES, r):
                direct = inum.workload_cost(
                    WORKLOAD, Configuration(indexes=frozenset(combo))
                )
                assert ibg.cost(combo) == pytest.approx(direct, rel=1e-9), combo

    def test_used_is_fixpoint(self, ibg):
        for r in range(len(CANDIDATES) + 1):
            for combo in itertools.combinations(CANDIDATES, r):
                used = ibg.used(combo)
                assert used <= frozenset(combo)
                # Plans only read what exists; cost(used) == cost(X).
                assert ibg.cost(used) == pytest.approx(ibg.cost(combo), rel=1e-9)

    def test_benefit_consistency(self, ibg):
        a = CANDIDATES[0]
        assert ibg.benefit(a, ()) == pytest.approx(
            ibg.cost(()) - ibg.cost((a,)), rel=1e-9
        )

    def test_monotone_costs(self, ibg):
        assert ibg.cost(CANDIDATES) <= ibg.cost(()) + 1e-6


class TestDoiViaIbg:
    def test_matches_subset_enumeration(self, inum):
        subsets = InteractionAnalyzer(inum, WORKLOAD, method="subsets")
        via_ibg = InteractionAnalyzer(inum, WORKLOAD, method="ibg")
        ra, ra_dec = CANDIDATES[0], CANDIDATES[1]
        brute = subsets.doi(ra, ra_dec, CANDIDATES)
        fast = via_ibg.doi(ra, ra_dec, CANDIDATES)
        assert fast == pytest.approx(brute, rel=0.05)

    def test_non_interacting_pair_zero_both_ways(self, inum):
        via_ibg = InteractionAnalyzer(inum, WORKLOAD, method="ibg")
        ra, z = CANDIDATES[0], CANDIDATES[2]
        assert via_ibg.doi(ra, z, CANDIDATES) < 0.01

    def test_graph_construction_with_ibg_method(self, inum):
        analyzer = InteractionAnalyzer(inum, WORKLOAD, method="ibg")
        graph = analyzer.interaction_graph(CANDIDATES)
        assert graph.graph.has_edge("ix_photoobj_ra", "ix_photoobj_ra_dec")

    def test_invalid_method_rejected(self, inum):
        with pytest.raises(ValueError):
            InteractionAnalyzer(inum, WORKLOAD, method="magic")

    def test_ibg_cached_per_candidate_set(self, inum):
        analyzer = InteractionAnalyzer(inum, WORKLOAD, method="ibg")
        first = analyzer.ibg(CANDIDATES)
        second = analyzer.ibg(list(reversed(CANDIDATES)))
        assert first is second
