"""CL-SERVE — multi-tenant service throughput through the shared backplane.

The TuningService's claim: hosting N tenants over one sharded, shared
costing backplane beats running each tenant's tuning loop alone, because
the expensive derived state — INUM plan caches, exact per-configuration
cost services — is built once and hit by every tenant whose traffic
overlaps.  Fan-in of overlapping streams is the normal multi-tenant
shape (many users replay the same saved dashboards); with disjoint
streams the service degrades to the baseline, it never does extra work
(per-entry single-flight guarantees no duplicate builds either way).

Method: an 8-tenant mixed fleet — four astronomy tenants replaying a
shared SDSS drift stream, four decision-support tenants replaying a
shared TPC-H drift stream — each tenant running the full session loop
(COLT epochs, drift detection, periodic Designer.recommend refreshes).

* baseline: each tenant alone, in sequence, with a private single-shard
  pool and sequential warm-up — the seed's only option;
* service: one TuningService, 4 shards per backplane, concurrent
  warm-up, one ingest worker per tenant.

Aggregate throughput (events/second over the whole fleet) must be at
least 2x the baseline, and every tenant's recommendations and adopted
configuration must be identical to its alone run — sharing dedupes
deterministic work, it never changes results.
"""

import os
import time

from repro.evaluation import WorkloadEvaluator
from repro.service import TenantSession, TuningService
from repro.workloads import sdss_catalog, tpch_catalog
from repro.workloads.drift import default_phases, drifting_stream, tpch_phases

from conftest import print_table

PHASE_LENGTH = 25
TENANTS_PER_MIX = 4
RECOMMEND_EVERY = 30
WINDOW = 30

# The claim is >=2x on quiet hardware; CI smoke jobs on shared runners
# relax the floor (they check equivalence, not magnitude).
SPEEDUP_FLOOR = float(os.environ.get("SERVICE_THROUGHPUT_FLOOR", "2.0"))


def make_fleet():
    catalogs = {
        "sdss": sdss_catalog(scale=0.02),
        "tpch": tpch_catalog(scale=0.02),
    }
    mixes = {"sdss": (default_phases, 11), "tpch": (tpch_phases, 7)}
    tenants = []
    for key in ("sdss", "tpch"):
        for i in range(TENANTS_PER_MIX):
            tenants.append(("%s-%d" % (key, i), key))
    return catalogs, mixes, tenants


def stream_for(mixes, key):
    phases_fn, seed = mixes[key]
    return drifting_stream(phases_fn(PHASE_LENGTH), seed=seed)


def warm_queries(mixes, key):
    return [sql for __, sql in stream_for(mixes, key)]


def session_options():
    return dict(recommend_every=RECOMMEND_EVERY, window=WINDOW)


def run_alone(catalogs, mixes, tenants):
    """Each tenant alone: private pool, sequential warm-up, one at a time."""
    sessions = {}
    for name, key in tenants:
        evaluator = WorkloadEvaluator(catalogs[key])
        evaluator.warm_up(warm_queries(mixes, key))
        session = TenantSession(
            name, catalogs[key], evaluator, **session_options()
        )
        session.drain(stream_for(mixes, key))
        sessions[name] = session
    return sessions


def run_service(catalogs, mixes, tenants, shards, warm_threads, concurrent):
    service = TuningService(shards=shards, warm_threads=warm_threads)
    for key, catalog in catalogs.items():
        service.add_backplane(key, catalog)
    for name, key in tenants:
        service.add_tenant(name, key, **session_options())
    for key in catalogs:
        service.warm_up(key, warm_queries(mixes, key))
    # The PR-2 claim is about the thread-per-tenant loop and its
    # concurrency knob; the scheduler path has its own claim bench
    # (bench_claim_scheduler_ingest.py) and is pinned equivalent in
    # tests/test_runtime.py.
    service.run_streams_threaded(
        {name: stream_for(mixes, key) for name, key in tenants},
        concurrency=None if concurrent else 1,
    )
    return service


def fingerprint(session):
    """What "the same recommendation" means, per tenant."""
    return (
        session.status()["configuration"],
        [r.indexes for r in session.recommendations],
        [r.trigger for r in session.recommendations],
        len(session.drift_events),
    )


def test_claim_service_throughput():
    catalogs, mixes, tenants = make_fleet()
    events = len(tenants) * 3 * PHASE_LENGTH

    # Untimed priming run (one mini tenant) so import/codepath warm-up
    # doesn't bias whichever timed leg goes first.
    prime = WorkloadEvaluator(catalogs["sdss"])
    TenantSession("prime", catalogs["sdss"], prime).drain(
        drifting_stream(default_phases(5), seed=3)
    )

    t0 = time.perf_counter()
    alone = run_alone(catalogs, mixes, tenants)
    t_alone = time.perf_counter() - t0

    t0 = time.perf_counter()
    single = run_service(
        catalogs, mixes, tenants, shards=1, warm_threads=None,
        concurrent=False,
    )
    t_single = time.perf_counter() - t0

    t0 = time.perf_counter()
    service = run_service(
        catalogs, mixes, tenants, shards=4, warm_threads=4, concurrent=True,
    )
    t_service = time.perf_counter() - t0

    speedup = t_alone / max(t_service, 1e-9)
    print_table(
        "CL-SERVE: %d tenants x %d events (shared SDSS + TPC-H dashboards)"
        % (len(tenants), 3 * PHASE_LENGTH),
        ("method", "seconds", "events/s"),
        [
            ("alone, sequential", t_alone, events / t_alone),
            ("service, 1 shard, shared pool", t_single, events / t_single),
            ("service, 4 shards, concurrent", t_service, events / t_service),
        ],
    )
    rows = []
    for key in catalogs:
        stats = service.backplane(key).pool.stats
        rows.append(
            (key, len(service.backplane(key).pool), stats.optimizer_calls,
             stats.hit_rate)
        )
    print_table(
        "CL-SERVE: shared-pool accounting (4-shard service)",
        ("backplane", "entries", "builds", "hit rate"),
        rows,
    )

    # Sharing dedupes work but never changes results: every tenant's
    # session outcome is identical to its alone run.
    for name, __ in tenants:
        assert fingerprint(service.tenant(name)) == fingerprint(alone[name]), (
            "tenant %s diverged from its alone run" % name
        )
        assert fingerprint(single.tenant(name)) == fingerprint(alone[name])

    # The fleet builds each distinct cache once, not once per tenant.
    for key in catalogs:
        service_builds = service.backplane(key).pool.stats.optimizer_calls
        alone_builds = sum(
            alone[name].evaluator.pool.stats.optimizer_calls
            for name, k in tenants if k == key
        )
        assert service_builds * 2 <= alone_builds, (
            "%s backplane should dedupe cross-tenant builds "
            "(%d vs %d alone)" % (key, service_builds, alone_builds)
        )

    assert speedup >= SPEEDUP_FLOOR, (
        "the 4-shard service must be at least %.1fx the alone-sequential "
        "baseline on aggregate throughput (got %.2fx)"
        % (SPEEDUP_FLOOR, speedup)
    )
