"""Ablation: advisor design choices.

* candidate cap — CoPhy's main quality/solve-time dial: more candidates
  widen the search space the solver can exploit;
* workload compression — clustering same-shaped statements should cut
  solve time at (near-)zero quality loss;
* composite/covering candidate generation — turning the richer candidate
  classes off should cost quality on this workload (covering indexes
  enable index-only scans the SDSS mix loves).
"""

from repro.cophy import CoPhyAdvisor, candidate_indexes
from repro.workloads import sdss_workload

from conftest import print_table


def test_ablation_candidate_cap(sdss_env, benchmark):
    catalog, workload = sdss_env
    advisor = CoPhyAdvisor(catalog)
    budget = sum(t.pages for t in catalog.tables) // 4

    rows = []
    for cap in (4, 8, 16, 32, 60):
        rec = advisor.recommend(workload, budget, max_candidates=cap)
        rows.append(
            (cap, rec.predicted_workload_cost, rec.improvement_pct,
             rec.solve_seconds)
        )
    print_table(
        "ABL-ADV: candidate cap vs quality",
        ("max candidates", "cost", "gain %", "solve s"),
        rows,
    )
    costs = [r[1] for r in rows]
    for smaller, larger in zip(costs, costs[1:]):
        assert larger <= smaller + 1e-6  # more candidates never hurt

    benchmark(advisor.recommend, workload, budget, None, "milp", 16)


def test_ablation_candidate_classes(sdss_env):
    catalog, workload = sdss_env
    advisor = CoPhyAdvisor(catalog)
    budget = sum(t.pages for t in catalog.tables) // 4

    variants = [
        ("single-column only", dict(composite_pairs=False, include_covering=False)),
        ("+ composites", dict(composite_pairs=True, include_covering=False)),
        ("+ covering", dict(composite_pairs=True, include_covering=True)),
    ]
    rows = []
    costs = []
    for label, kwargs in variants:
        candidates = candidate_indexes(catalog, workload, max_candidates=60, **kwargs)
        rec = advisor.recommend(workload, budget, candidates=candidates)
        rows.append((label, len(candidates), rec.predicted_workload_cost,
                     rec.improvement_pct))
        costs.append(rec.predicted_workload_cost)
    print_table(
        "ABL-ADV: candidate classes",
        ("class", "#cands", "cost", "gain %"),
        rows,
    )
    assert costs[2] <= costs[0] + 1e-6  # richer classes can only help


def test_ablation_workload_compression(sdss_env, benchmark):
    catalog, __ = sdss_env
    big_workload = sdss_workload(n_queries=120, seed=5)
    advisor = CoPhyAdvisor(catalog)
    budget = sum(t.pages for t in catalog.tables) // 4

    full = advisor.recommend(big_workload, budget)
    compressed = advisor.recommend(big_workload, budget, compress=True)

    stats = compressed.stats["compression"]
    print_table(
        "ABL-ADV: workload compression (120-statement workload)",
        ("variant", "statements", "solve s", "chosen indexes"),
        [
            ("full", 120, full.solve_seconds, len(full.indexes)),
            ("compressed", stats.compressed_statements,
             compressed.solve_seconds, len(compressed.indexes)),
        ],
    )
    assert stats.ratio > 2.0
    assert compressed.solve_seconds < full.solve_seconds
    # Quality check on the *full* workload: the compressed choice must be
    # within a few percent of the full-workload choice.
    inum = advisor.cost_model
    cost_full_choice = inum.workload_cost(big_workload, full.configuration)
    cost_comp_choice = inum.workload_cost(big_workload, compressed.configuration)
    print_table(
        "ABL-ADV: compression quality on full workload",
        ("full choice", "compressed choice", "penalty %"),
        [(
            cost_full_choice,
            cost_comp_choice,
            100.0 * (cost_comp_choice - cost_full_choice) / cost_full_choice,
        )],
    )
    assert cost_comp_choice <= cost_full_choice * 1.10

    benchmark(advisor.recommend, big_workload, budget, None, "milp", 60, None, True)
