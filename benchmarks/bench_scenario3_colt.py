"""SC3 — Scenario 3: continuous tuning under a changing workload.

"This component monitors the behavior of the system when the workload
changes and suggests changes to the set of indexes.  Our tool presents
the change in system's performance accruing from adopting the new
suggested indexes."

Expected shape: per-epoch observed cost drops after each drift phase once
COLT adopts new indexes; total cost (including builds) beats not tuning;
alerts fire in every phase.
"""

from repro.colt import ColtSettings, ColtTuner
from repro.whatif import WhatIfSession
from repro.workloads.drift import default_phases, drifting_stream

from conftest import print_table

PHASE_LEN = 75
EPOCH = 25
SEED = 11


def run_colt(catalog):
    settings = ColtSettings(
        epoch_length=EPOCH,
        space_budget_pages=int(sum(t.pages for t in catalog.tables) * 0.6),
        whatif_budget=40,
    )
    tuner = ColtTuner(catalog, settings)
    report = tuner.run(drifting_stream(default_phases(PHASE_LEN), seed=SEED))
    return report


def test_scenario3_drifting_stream(sdss_env, benchmark):
    catalog, __ = sdss_env

    report = benchmark.pedantic(run_colt, args=(catalog,), rounds=1, iterations=1)

    epochs_per_phase = PHASE_LEN // EPOCH
    rows = [
        (
            e.epoch,
            ("positional", "photometric", "spectral")[e.epoch // epochs_per_phase],
            e.observed_cost,
            e.build_cost,
            "*" if e.alert else "",
            len(e.configuration),
        )
        for e in report.epochs
    ]
    print_table(
        "SC3: per-epoch trace",
        ("epoch", "phase", "observed", "build", "alert", "#indexes"),
        rows,
    )

    session = WhatIfSession(catalog)
    untuned = sum(
        session.cost(sql)
        for __, sql in drifting_stream(default_phases(PHASE_LEN), seed=SEED)
    )
    from repro.colt import static_oracle

    budget = int(sum(t.pages for t in catalog.tables) * 0.6)
    full_stream = list(drifting_stream(default_phases(PHASE_LEN), seed=SEED))
    oracle = static_oracle(catalog, full_stream, space_budget_pages=budget)
    # The paper's motivation: a design tuned offline for the *initial*
    # workload "may become obsolete" — tune for phase 1 only, then pay for
    # it across the drift.
    stale = static_oracle(catalog, full_stream[:PHASE_LEN], space_budget_pages=budget)
    stale_stream_cost = sum(
        session.cost(sql, stale.configuration) for __, sql in full_stream
    )
    print_table(
        "SC3: totals",
        ("method", "stream cost", "builds", "total"),
        [
            ("no tuning", untuned, 0.0, untuned),
            ("stale static (tuned for phase 1)", stale_stream_cost,
             stale.build_cost, stale_stream_cost + stale.build_cost),
            ("colt (online)", report.observed_cost, report.build_cost,
             report.total_cost),
            ("static oracle (hindsight)", oracle.stream_cost,
             oracle.build_cost, oracle.total_cost),
        ],
    )

    # Adaptivity is visible *after the drift*: the phase-1 design is
    # obsolete for phases 2-3, COLT's adopted indexes are not.
    post_drift = full_stream[PHASE_LEN:]
    stale_post = sum(session.cost(sql, stale.configuration) for __, sql in post_drift)
    colt_post = sum(
        e.total_cost for e in report.epochs if e.epoch >= PHASE_LEN // EPOCH
    )
    untuned_post = sum(session.cost(sql) for __, sql in post_drift)
    print_table(
        "SC3: post-drift cost (phases 2+3 only)",
        ("no tuning", "stale static", "colt (incl. builds)"),
        [(untuned_post, stale_post, colt_post)],
    )
    print("\nSC3: colt observed-cost sparkline: %s" % report.sparkline())
    # After the workload changes, COLT must beat the obsolete design —
    # the paper's case for lightweight online re-optimization.
    assert colt_post < stale_post
    assert colt_post < untuned_post

    # Shapes: alerts in multiple phases, net savings, per-phase adaptation.
    adopted_phases = {e.epoch // epochs_per_phase for e in report.epochs if e.adopted}
    assert len(adopted_phases) >= 2, "COLT must adapt to at least two phases"
    assert report.total_cost < untuned, "COLT must beat not tuning"
    # Within the first phase, cost after adoption drops vs the first epoch.
    first_phase = report.epochs[:epochs_per_phase]
    assert first_phase[-1].observed_cost < first_phase[0].observed_cost


def test_scenario3_probe_budget_self_regulates(sdss_env, benchmark):
    """A steady stream lets COLT throttle its what-if probing."""
    catalog, __ = sdss_env
    from repro.workloads.drift import DriftPhase
    from repro.workloads import sdss

    def run_steady():
        settings = ColtSettings(
            epoch_length=20, whatif_budget=32, min_whatif_budget=4,
            space_budget_pages=100_000,
        )
        tuner = ColtTuner(catalog, settings)
        phases = (DriftPhase("pos", 200, ((sdss.template("cone_search"), 1.0),)),)
        return tuner.run(drifting_stream(phases, seed=SEED))

    report = benchmark.pedantic(run_steady, rounds=1, iterations=1)
    probes = [e.whatif_probes for e in report.epochs]
    print_table(
        "SC3: probe budget over a steady stream",
        ("epoch", "probes"),
        list(enumerate(probes)),
    )
    assert probes[-1] < probes[0], "budget must decay once the design is stable"
