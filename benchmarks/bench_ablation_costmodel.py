"""Ablation: cost-model design choices in the optimizer substrate.

* correlation interpolation — PostgreSQL's min/max IO blend is what makes
  clustered-key index scans attractive; forcing the uncorrelated estimate
  should flip plan choices on the `ra`-clustered SDSS table;
* bitmap scans — removing them should hurt exactly the medium-selectivity
  uncorrelated predicates;
* Mackert–Lohman — replacing the page-fetch estimate with the naive
  "one page per tuple" bound should inflate index-scan costs.
"""

import pytest

from repro.catalog import Index
from repro.optimizer import CostService, PlannerSettings
from repro.optimizer import paths as P

from conftest import print_table


def test_ablation_correlation_interpolation(sdss_env):
    catalog, __ = sdss_env
    indexed = catalog.clone()
    indexed.add_index(Index("photoobj", ("ra",)))

    # ra is generated with correlation 0.95; fake an uncorrelated twin by
    # zeroing the statistic on a cloned column.
    uncorrelated = catalog.clone()
    uncorrelated.add_index(Index("photoobj", ("ra",)))
    stats = uncorrelated.table("photoobj").stats("ra")
    original = stats.correlation
    sql = "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 120"
    try:
        cost_corr = CostService(indexed).cost(sql)
        plan_corr = CostService(indexed).plan(sql).node_type
        stats.correlation = 0.0
        cost_uncorr = CostService(uncorrelated).cost(sql)
        plan_uncorr = CostService(uncorrelated).plan(sql).node_type
    finally:
        stats.correlation = original

    print_table(
        "ABL-COST: correlation interpolation (5.5% range scan on ra)",
        ("correlation", "cost", "chosen plan"),
        [(0.95, cost_corr, plan_corr), (0.0, cost_uncorr, plan_uncorr)],
    )
    assert cost_corr < cost_uncorr
    assert plan_corr in ("IndexScan", "IndexOnlyScan")


def test_ablation_bitmap_scans(sdss_env, benchmark):
    catalog, workload = sdss_env
    indexed = catalog.clone()
    indexed.add_index(Index("photoobj", ("dec",)))  # dec is uncorrelated

    sql = "SELECT ra, dec FROM photoobj WHERE dec BETWEEN 0 AND 6"
    with_bitmap = CostService(indexed)
    without = CostService(indexed, PlannerSettings(enable_bitmapscan=False))

    rows = [
        ("bitmap on", with_bitmap.cost(sql), with_bitmap.plan(sql).node_type),
        ("bitmap off", without.cost(sql), without.plan(sql).node_type),
    ]
    print_table(
        "ABL-COST: bitmap heap scans on uncorrelated medium selectivity",
        ("setting", "cost", "chosen plan"),
        rows,
    )
    assert rows[0][2] == "BitmapHeapScan"
    assert rows[0][1] <= rows[1][1] + 1e-6

    benchmark(with_bitmap.plan, sql)


def test_ablation_mackert_lohman(sdss_env):
    """Compare ML page estimates against the naive one-page-per-tuple bound."""
    catalog, __ = sdss_env
    pages = catalog.table("photoobj").pages
    rows = []
    for tuples in (10, pages, 100_000):
        ml = P.mackert_lohman_pages(pages, tuples)
        naive = min(pages, tuples)
        rows.append((tuples, ml, naive, naive / max(ml, 1e-9)))
    print_table(
        "ABL-COST: Mackert-Lohman vs naive page estimate (heap=%d pages)" % pages,
        ("tuples fetched", "ML pages", "naive pages", "inflation x"),
        rows,
    )
    # The naive bound over-charges exactly in the interesting middle range
    # (tuples ~ pages: ML predicts heavy page sharing, naive does not).
    assert rows[1][3] > 1.3
    for tuples, ml, naive, __ in rows:
        assert ml <= naive + 1e-9


def test_ablation_work_mem(sdss_env):
    """work_mem controls the in-memory/external sort boundary."""
    catalog, __ = sdss_env
    sql = "SELECT ra FROM photoobj WHERE dec > -30 ORDER BY rmag"
    small = CostService(catalog, PlannerSettings(work_mem=64 * 1024))
    large = CostService(catalog, PlannerSettings(work_mem=1024 * 1024 * 1024))
    rows = [
        ("64 KiB", small.cost(sql)),
        ("1 GiB", large.cost(sql)),
    ]
    print_table("ABL-COST: work_mem and sort spill", ("work_mem", "cost"), rows)
    assert small.cost(sql) > large.cost(sql)
