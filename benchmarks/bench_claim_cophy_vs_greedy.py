"""CL-ILP — the paper's claim that solver-based selection beats the greedy
heuristics of commercial tools, which "prune away large fractions of the
search space and often suggest locally optimal solutions instead of the
globally optimal one" (§1).

Method: (a) a constructed instance where benefit-per-page greedy is
provably trapped by a knapsack interaction, and (b) storage-budget sweeps
on the SDSS and TPC-H workloads comparing the exact solver, LP rounding
and greedy, all over the identical INUM cost oracle.

Expected shape: MILP <= greedy at every budget, with a strict gap on the
constructed instance (and typically at tight budgets on real workloads).
"""

from repro.cophy import CoPhyAdvisor, greedy_select, solve_bip, solve_lp_rounding
from repro.cophy.bip import BipProblem, PlanTerm, QueryTerm, SlotOptions
from repro.catalog import Index

from conftest import print_table


def knapsack_trap():
    """One big index with the best ratio blocks two complementary ones."""
    candidates = [
        Index("t", ("a",), name="big_a"),
        Index("t", ("b",), name="small_b"),
        Index("t", ("c",), name="small_c"),
    ]
    problem = BipProblem(
        candidates=candidates, sizes=[10.0, 6.0, 6.0], budget_pages=12.0
    )

    def single_query(pos, improved_cost):
        return QueryTerm(
            weight=1.0,
            plans=[
                PlanTerm(
                    internal_cost=0.0,
                    slots=[
                        SlotOptions(options=[(-1, 100.0), (pos, improved_cost)])
                    ],
                )
            ],
        )

    problem.queries = [
        single_query(0, 5.0),  # big_a: benefit 95, ratio 9.5 (best ratio)
        single_query(1, 45.0),  # small_b: benefit 55, ratio 9.17
        single_query(2, 45.0),  # small_c: benefit 55, ratio 9.17
    ]
    return problem


def test_claim_greedy_trapped_on_constructed_instance(benchmark):
    problem = knapsack_trap()
    milp = benchmark(solve_bip, problem)
    greedy = greedy_select(problem)

    print_table(
        "CL-ILP: constructed knapsack trap (budget 12 pages)",
        ("solver", "cost", "chosen"),
        [
            ("milp", milp.objective,
             ",".join(problem.candidates[p].name for p in milp.chosen_positions)),
            ("greedy", greedy.objective,
             ",".join(problem.candidates[p].name for p in greedy.chosen_positions)),
        ],
    )
    # Optimal picks the two small complementary indexes (cost 190);
    # ratio-greedy grabs the big one and strands the rest (cost 205).
    assert milp.objective < greedy.objective - 1.0
    assert set(milp.chosen_positions) == {1, 2}
    assert greedy.chosen_positions == (0,)


def _sweep(catalog, workload, label, budgets):
    advisor = CoPhyAdvisor(catalog)
    rows = []
    worst_gap = 0.0
    for budget in budgets:
        milp = advisor.recommend(workload, budget, solver="milp")
        greedy = advisor.recommend(workload, budget, solver="greedy")
        rounding = advisor.recommend(workload, budget, solver="lp-rounding")
        gap = (
            100.0
            * (greedy.predicted_workload_cost - milp.predicted_workload_cost)
            / milp.predicted_workload_cost
        )
        worst_gap = max(worst_gap, gap)
        rows.append(
            (
                budget,
                milp.predicted_workload_cost,
                greedy.predicted_workload_cost,
                rounding.predicted_workload_cost,
                gap,
            )
        )
        assert milp.predicted_workload_cost <= greedy.predicted_workload_cost + 1e-6
        assert milp.predicted_workload_cost <= rounding.predicted_workload_cost + 1e-6
    print_table(
        "CL-ILP: %s budget sweep" % label,
        ("budget", "milp", "greedy", "lp-round", "greedy gap %"),
        rows,
    )
    return worst_gap


def test_claim_milp_dominates_on_sdss(sdss_env, benchmark):
    catalog, workload = sdss_env
    pages = sum(t.pages for t in catalog.tables)
    budgets = [pages // 20, pages // 10, pages // 4, pages]
    worst_gap = _sweep(catalog, workload, "SDSS", budgets)
    print_table("CL-ILP: SDSS worst greedy gap", ("gap %",), [(worst_gap,)])

    advisor = CoPhyAdvisor(catalog)
    benchmark(advisor.recommend, workload, pages // 10, None, "milp")


def test_claim_milp_dominates_on_tpch(tpch_env, benchmark):
    catalog, workload = tpch_env
    pages = sum(t.pages for t in catalog.tables)
    budgets = [pages // 20, pages // 8, pages // 2]
    _sweep(catalog, workload, "TPC-H", budgets)

    advisor = CoPhyAdvisor(catalog)
    benchmark(advisor.recommend, workload, pages // 8, None, "milp")
