"""Ablation: INUM design choices.

Two knobs drive INUM's cost/accuracy trade-off:

* the cap on interesting-order vectors per query (fewer vectors = fewer
  warm-up optimizer calls, but risk of missing the skeleton a
  configuration needs, overestimating its cost);
* the per-slot memoization (without it, every configuration evaluation
  re-prices access paths from scratch).

Expected shape: accuracy degrades monotonically as the vector cap drops;
the slot cache is worth ~an order of magnitude on warm evaluations.
"""

import random
import time

import pytest

from repro.cophy import candidate_indexes
from repro.inum import InumCostModel
from repro.inum import cache as inum_cache
from repro.optimizer import CostService
from repro.whatif import Configuration

from conftest import print_table


def make_configs(catalog, workload, n=30, seed=1):
    candidates = candidate_indexes(catalog, workload, max_candidates=12)
    rng = random.Random(seed)
    return [
        Configuration(indexes=frozenset(rng.sample(candidates, rng.randint(0, 5))))
        for __ in range(n)
    ]


def test_ablation_order_vector_cap(sdss_env, benchmark, monkeypatch):
    catalog, workload = sdss_env
    configs = make_configs(catalog, workload)
    truth = [
        CostService(c.apply(catalog)).workload_cost(workload) for c in configs
    ]

    rows = []
    for cap in (1, 2, 4, 32):
        monkeypatch.setattr(inum_cache, "MAX_VECTORS_PER_QUERY", cap)
        model = InumCostModel(catalog)
        warm_calls = model.warm(workload)
        estimates = [model.workload_cost(workload, c) for c in configs]
        errs = [abs(e - t) / t for e, t in zip(estimates, truth)]
        rows.append((cap, warm_calls, sum(errs) / len(errs), max(errs)))
    print_table(
        "ABL-INUM: interesting-order vector cap",
        ("cap", "warm calls", "mean rel err", "max rel err"),
        rows,
    )
    # More vectors => more warm-up calls and (weakly) better accuracy.
    warm = [r[1] for r in rows]
    assert warm == sorted(warm)
    max_err = [r[3] for r in rows]
    assert max_err[-1] <= max_err[0] + 1e-9
    assert max_err[-1] < 0.05

    monkeypatch.setattr(inum_cache, "MAX_VECTORS_PER_QUERY", 32)
    model = InumCostModel(catalog)
    model.warm(workload)
    benchmark(lambda: [model.workload_cost(workload, c) for c in configs[:10]])


def test_ablation_slot_cache(sdss_env):
    """Evaluate the same configs with a cold vs warm slot cache."""
    catalog, workload = sdss_env
    configs = make_configs(catalog, workload)

    model = InumCostModel(catalog)
    model.warm(workload)
    t0 = time.perf_counter()
    for c in configs:
        model.workload_cost(workload, c)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    for c in configs:
        model.workload_cost(workload, c)
    t_warm = time.perf_counter() - t0

    print_table(
        "ABL-INUM: slot-cache effect (30 configuration evaluations)",
        ("cold cache s", "warm cache s", "speedup x"),
        [(t_cold, t_warm, t_cold / max(t_warm, 1e-9))],
    )
    assert t_warm < t_cold
