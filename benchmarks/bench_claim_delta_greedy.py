"""CL-DELTA — delta-kernel pricing of a greedy index-selection sweep.

Greedy advisors spend their rounds pricing one-index extensions of the
configuration chosen so far — near-identical siblings that the full
columnar sweep re-prices from scratch every round.  Delta mode
(:meth:`~repro.evaluation.kernel.BipKernel.evaluate_delta`) captures the
parent's slot winners and per-plan sums once per round and re-minimizes
only the statements a candidate actually improves, so each round costs
O(affected plans) instead of O(grid).

Method: a greedy sweep (benefit/size ratio, half-budget knapsack) over a
50-query SDSS workload with 16 candidates, one warm pricing surface for
both engines, then one timed full run per engine — best-of-N so a noisy
sample cannot decide the claim.  Delta mode must be at least 3x faster
and **decision-identical**: same chosen positions in the same order,
same objective, same round count, and the winning configuration's
per-statement usage sets (vectorized argmin-witness batch vs. the serial
reference walk) must match exactly.
"""

import os
import random
import time

from repro.cophy import candidate_indexes
from repro.cophy.bip import build_bip
from repro.cophy.greedy import greedy_select
from repro.evaluation import WorkloadEvaluator
from repro.whatif import Configuration
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

N_QUERIES = 50
N_CANDIDATES = 64

# The claim is >=3x on quiet hardware; CI smoke jobs on shared runners
# relax the floor (they check decision identity, not magnitude).
SPEEDUP_FLOOR = float(os.environ.get("DELTA_GREEDY_SPEEDUP_FLOOR", "3.0"))


def make_problem(seed=5):
    catalog = sdss_catalog(scale=0.1)
    workload = list(sdss_workload(n_queries=N_QUERIES, seed=11))
    candidates = candidate_indexes(
        catalog, workload, max_candidates=N_CANDIDATES
    )
    evaluator = WorkloadEvaluator(catalog)
    evaluator.warm_up(workload)
    budget = sum(
        ix.size_pages(catalog.table(ix.table_name)) for ix in candidates
    ) // 2
    problem = build_bip(evaluator, workload, candidates, budget_pages=budget)
    return evaluator, workload, candidates, problem


def timed(fn, repeats=5):
    # Best-of-N: one noisy sample must not decide a timing claim.
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_claim_delta_greedy_speedup(benchmark):
    evaluator, workload, candidates, problem = make_problem()

    # Populate both engines' derived state (compiled kernel, per-position
    # delta plans), then time the steady state of a whole greedy run.
    delta_warm = greedy_select(problem)
    full_warm = greedy_select(problem, delta=False)
    assert delta_warm.chosen_positions == full_warm.chosen_positions

    t_delta, delta_result = timed(lambda: greedy_select(problem))
    t_full, full_result = timed(lambda: greedy_select(problem, delta=False))

    speedup = t_full / max(t_delta, 1e-9)
    print_table(
        "CL-DELTA: greedy sweep, %d queries x %d candidates"
        % (N_QUERIES, N_CANDIDATES),
        ("engine", "milliseconds", "extensions priced"),
        [
            ("full batch", t_full * 1e3, full_result.nodes_explored),
            ("delta kernel", t_delta * 1e3, delta_result.nodes_explored),
        ],
    )
    print_table(
        "CL-DELTA: decision identity",
        ("speedup x", "chosen", "objective"),
        [(speedup, len(delta_result.chosen_positions),
          delta_result.objective)],
    )

    # Decision-identical: same indexes in the same order, same objective
    # (bit-exact, not a tolerance), same number of pricing rounds.
    assert delta_result.chosen_positions == full_result.chosen_positions
    assert delta_result.objective == full_result.objective
    assert delta_result.nodes_explored == full_result.nodes_explored

    # The winning configuration's usage sets come out identical through
    # the vectorized argmin-witness batch and the serial reference walk.
    chosen = Configuration(indexes=frozenset(
        candidates[pos] for pos in delta_result.chosen_positions
    ))
    family = [chosen, Configuration.empty()] + [
        chosen.without_indexes(candidates[pos])
        for pos in delta_result.chosen_positions
    ]
    serial = evaluator.workload_cost_with_usage_batch(
        workload, family, vectorized=False
    )
    vectorized = evaluator.workload_cost_with_usage_batch(
        workload, family, parent=chosen
    )
    assert vectorized == serial

    assert speedup >= SPEEDUP_FLOOR, (
        "delta-mode greedy must be at least %.1fx faster than the "
        "full-batch sweep (got %.1fx)" % (SPEEDUP_FLOOR, speedup)
    )

    benchmark(greedy_select, problem)


def test_claim_delta_rounds_match_full_batch():
    """Round-by-round: every extension cost the delta kernel reports
    during the sweep equals the full-batch number exactly, so no round
    can ever flip its winner."""
    __, __, __, problem = make_problem(seed=9)
    rng = random.Random(3)
    n = problem.n_candidates
    rows = []
    for chosen_size in (0, 2, 4):
        chosen = rng.sample(range(n), chosen_size)
        extensions = [pos for pos in range(n) if pos not in chosen]
        full = problem.config_costs([chosen + [pos] for pos in extensions])
        delta = problem.config_costs_delta(chosen, extensions)
        assert delta == full
        rows.append((chosen_size, len(extensions), True))
    print_table(
        "CL-DELTA: per-round equivalence",
        ("|chosen|", "extensions", "identical"),
        rows,
    )
