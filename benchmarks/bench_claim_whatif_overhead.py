"""CL-WHATIF — the paper's claim that what-if simulation lets the tool
"escape the cost of explicitly building a structure" (§3.1).

Method: compare the wall time of evaluating a candidate design through
the what-if optimizer against the *estimated build work* of actually
materializing it (in cost-model units, converted via the measured
sequential-scan throughput of the same machine-independent unit system),
and verify a what-if session issues only optimizer calls.

Expected shape: what-if evaluation is milliseconds and touches zero
pages; materialization is billions of cost units (hours of page writes).
"""

import time

from repro.catalog import Index
from repro.whatif import Configuration, WhatIfSession

from conftest import print_table


def candidate_config():
    return Configuration.of(
        Index("photoobj", ("ra", "dec")),
        Index("photoobj", ("type", "rmag")),
        Index("specobj", ("z",), include=("bestobjid",)),
    )


def test_claim_whatif_vs_build(sdss_env, benchmark):
    catalog, workload = sdss_env
    config = candidate_config()

    session = WhatIfSession(catalog)
    t0 = time.perf_counter()
    report = session.evaluate(workload, config)
    t_whatif = time.perf_counter() - t0
    calls = session.optimizer_calls

    build_cost_units = config.build_cost(catalog)
    build_pages = config.size_pages(catalog)

    print_table(
        "CL-WHATIF: evaluating a 3-index design on 20 queries",
        ("what-if seconds", "optimizer calls", "pages written"),
        [(t_whatif, calls, 0)],
    )
    print_table(
        "CL-WHATIF: actually building it would take",
        ("build cost units", "pages written"),
        [(build_cost_units, build_pages)],
    )
    print_table(
        "CL-WHATIF: benefit estimate obtained without building",
        ("avg improvement %",),
        [(report.average_improvement_pct,)],
    )

    # The whole point: exploration costs optimizer calls, not page writes.
    assert calls <= 2 * len(workload) + 5
    assert build_pages > 1000, "the design is physically substantial"
    assert report.average_improvement_pct > 0

    fresh = WhatIfSession(catalog)
    benchmark(fresh.evaluate, workload, config)


def test_claim_whatif_catalog_isolation(sdss_env):
    """What-if exploration must not leak into the real catalog."""
    catalog, workload = sdss_env
    session = WhatIfSession(catalog)
    before = set(ix.name for ix in catalog.indexes)
    for ix in candidate_config().indexes:
        session.evaluate(workload, Configuration.of(ix))
    assert set(ix.name for ix in catalog.indexes) == before


def test_claim_join_whatif_component(sdss_env, benchmark):
    """The what-if *join* sub-component: costing designs under altered
    join-method availability without touching the server config."""
    catalog, workload = sdss_env
    base = WhatIfSession(catalog)

    def evaluate_join_matrix():
        rows = []
        for flag in ("enable_hashjoin", "enable_mergejoin", "enable_nestloop"):
            session = base.with_join_methods(**{flag: False})
            rows.append((flag, session.workload_cost(workload)))
        return rows

    rows = benchmark.pedantic(evaluate_join_matrix, rounds=1, iterations=1)
    full = base.workload_cost(workload)
    print_table(
        "CL-WHATIF: join-method what-if matrix",
        ("disabled method", "workload cost"),
        [("(none)", full)] + rows,
    )
    for __, cost in rows:
        assert cost >= full - 1e-6  # removing an option can never help
