"""SC2 — Scenario 2: automatic recommendation under size constraints.

The tool recommends indexes and partitions maximizing performance within
a storage budget, displays per-query and average benefit, interactions,
and a materialization schedule.

Expected shape: improvement grows monotonically with the budget; the
recommended schedule's cost-area never exceeds the naive order's; the
same machinery works on the TPC-H-style workload.
"""

from repro.designer import Designer

from conftest import print_table


def test_scenario2_storage_sweep(sdss_env, benchmark):
    catalog, workload = sdss_env
    designer = Designer(catalog)
    table_pages = sum(t.pages for t in catalog.tables)
    budgets = [table_pages // 10, table_pages // 4, table_pages]

    recs = [
        designer.recommend(workload, storage_budget_pages=b, partitions=False)
        for b in budgets
    ]
    rows = [
        (
            b,
            rec.index_recommendation.size_pages,
            len(rec.index_recommendation.indexes),
            rec.combined_workload_cost,
            rec.improvement_pct,
        )
        for b, rec in zip(budgets, recs)
    ]
    print_table(
        "SC2: storage budget sweep (indexes only)",
        ("budget", "used", "#indexes", "cost", "gain%"),
        rows,
    )
    for (b, rec) in zip(budgets, recs):
        assert rec.index_recommendation.size_pages <= b
    costs = [rec.combined_workload_cost for rec in recs]
    for tighter, looser in zip(costs, costs[1:]):
        assert looser <= tighter + 1e-6

    benchmark(
        designer.recommend, workload, budgets[1], "milp", False
    )


def test_scenario2_full_recommendation_with_schedule(sdss_env, benchmark):
    catalog, workload = sdss_env
    designer = Designer(catalog)
    budget = sum(t.pages for t in catalog.tables) // 3

    rec = benchmark(designer.recommend, workload, budget)

    print_table(
        "SC2: recommended indexes",
        ("index", "pages"),
        [
            (ix.name, ix.size_pages(catalog.table(ix.table_name)))
            for ix in rec.index_recommendation.indexes
        ],
    )
    if rec.schedule is not None:
        print_table(
            "SC2: materialization schedule (%s)" % rec.schedule.method,
            ("step", "index", "done@", "cost after"),
            [
                (k + 1, ix.name, rec.schedule.timeline[k + 1][0],
                 rec.schedule.timeline[k + 1][1])
                for k, ix in enumerate(rec.schedule.order)
            ],
        )
        print_table(
            "SC2: schedule quality (cost area, lower=better)",
            ("interaction-aware", "naive order"),
            [(rec.schedule.area, rec.naive_schedule.area)],
        )
        assert rec.schedule.area <= rec.naive_schedule.area + 1e-6
    assert rec.improvement_pct > 20.0
    assert rec.combined_workload_cost <= rec.index_recommendation.predicted_workload_cost + 1e-6


def test_scenario2_tpch_portability(tpch_env, benchmark):
    catalog, workload = tpch_env
    designer = Designer(catalog)
    budget = sum(t.pages for t in catalog.tables) // 3

    rec = benchmark(designer.recommend, workload, budget, "milp", False)

    print_table(
        "SC2: TPC-H-lite recommendation",
        ("index", "pages"),
        [
            (ix.name, ix.size_pages(catalog.table(ix.table_name)))
            for ix in rec.index_recommendation.indexes
        ],
    )
    print_table(
        "SC2: TPC-H-lite workload",
        ("base", "new", "gain%"),
        [(rec.base_workload_cost, rec.combined_workload_cost, rec.improvement_pct)],
    )
    assert rec.improvement_pct > 5.0
    assert rec.index_recommendation.size_pages <= budget
