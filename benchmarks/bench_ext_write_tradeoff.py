"""EXT-WRITES — extension experiment: index maintenance vs read speedup.

The paper's components model update cost (CoPhy's formulation carries
update statements; COLT charges materialization and maintenance), but the
demo only shows read workloads.  This experiment exercises the write path
end-to-end: as the write share of the SDSS workload grows, the advisor
should recommend fewer / narrower indexes, and the indexes it drops first
are the ones on heavily-updated columns.

Expected shape: recommended index count (weakly) decreases with write
weight; total predicted cost is always <= the read-only design's cost
under the same mixed workload (the advisor never ignores maintenance).
"""

from repro.cophy import CoPhyAdvisor
from repro.inum import InumCostModel
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

READS = 20
SEED = 42


def mixed_workload(write_weight):
    """Fixed read mix plus one update storm with the given weight."""
    workload = list(sdss_workload(n_queries=READS, seed=SEED))
    if write_weight > 0:
        workload.append(
            ("UPDATE photoobj SET status = 1, flags = 2 WHERE objid = 77", write_weight)
        )
        workload.append(
            ("UPDATE photoobj SET rmag = 20.5 WHERE objid = 78", write_weight / 2)
        )
        workload.append(
            ("INSERT INTO neighbors VALUES (1, 2, 0.01, 3)", write_weight / 2)
        )
    return workload


def test_ext_write_weight_sweep(benchmark):
    catalog = sdss_catalog(scale=0.1)
    inum = InumCostModel(catalog)
    advisor = CoPhyAdvisor(catalog, cost_model=inum)
    budget = sum(t.pages for t in catalog.tables)

    def touched(index):
        return index.table_name == "neighbors" or (
            index.table_name == "photoobj"
            and {"status", "flags", "rmag"} & set(index.all_columns)
        )

    weights = [0.0, 1_000.0, 10_000.0, 100_000.0]
    rows = []
    touched_counts = []
    designs = []
    for w in weights:
        workload = mixed_workload(w)
        rec = advisor.recommend(workload, budget)
        designs.append(rec.configuration)
        n_touched = sum(1 for ix in rec.indexes if touched(ix))
        touched_counts.append(n_touched)
        rows.append(
            (
                w,
                len(rec.indexes),
                n_touched,
                rec.predicted_workload_cost,
            )
        )
    print_table(
        "EXT-WRITES: update-storm weight sweep",
        ("write weight", "#indexes", "#maintenance-hit", "total cost"),
        rows,
    )
    # More write pressure never justifies *more* maintenance-hit indexes,
    # and the heaviest storm sheds at least one of them.  (An index may
    # legitimately survive: its read benefit can exceed the maintenance
    # bill of single-row updates.)
    for lighter, heavier in zip(touched_counts, touched_counts[1:]):
        assert heavier <= lighter
    assert touched_counts[-1] < touched_counts[0]
    # Dominance: at every weight the write-aware design is at least as good
    # as the read-only design under the exact (INUM) mixed cost.
    read_only = designs[0]
    for w, design in zip(weights, designs):
        workload = mixed_workload(w)
        assert inum.workload_cost(workload, design) <= inum.workload_cost(
            workload, read_only
        ) + 1e-6

    benchmark.pedantic(
        advisor.recommend, args=(mixed_workload(10_000.0), budget),
        rounds=1, iterations=1,
    )


def test_ext_advisor_respects_maintenance(sdss_env):
    """Choosing the read-only design for a mixed workload must cost at
    least as much as the advisor's own choice (it internalizes writes)."""
    catalog = sdss_catalog(scale=0.1)
    inum = InumCostModel(catalog)
    advisor = CoPhyAdvisor(catalog, cost_model=inum)
    budget = sum(t.pages for t in catalog.tables)

    mixed = mixed_workload(50_000.0)
    read_design = advisor.recommend(mixed_workload(0.0), budget).configuration
    mixed_design = advisor.recommend(mixed, budget).configuration

    cost_read_design = inum.workload_cost(mixed, read_design)
    cost_mixed_design = inum.workload_cost(mixed, mixed_design)
    print_table(
        "EXT-WRITES: designs judged under the mixed workload",
        ("read-only design", "write-aware design", "saved %"),
        [(
            cost_read_design,
            cost_mixed_design,
            100.0 * (cost_read_design - cost_mixed_design)
            / max(cost_read_design, 1e-9),
        )],
    )
    assert cost_mixed_design <= cost_read_design + 1e-6
