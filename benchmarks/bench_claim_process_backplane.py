"""CL-PROC — cold warm-up through the process-pool costing backplane.

Thread fan-out cannot speed up INUM cache *builds*: planning is pure
Python, so ``warm_up(threads=…)`` stays GIL-bound and its wins come
only from overlap with the (nonexistent) I/O.  The
:class:`~repro.evaluation.ProcessPoolBackplane` claim: fanning cold
builds across worker processes — each holding its own catalog rebuilt
from the serialized form, shipping wire-format plan terms back — turns
warm-up into real CPU scaling.

Method: a 50-query SDSS workload of three-way astronomy joins
(photoobj ⋈ specobj ⋈ neighbors with ORDER BY + LIMIT) — the
expensive-build shape: each query plans ~12 interesting-order vectors,
so warm-up spends ~600 optimizer calls.  Cold caches each leg.

* single-process: ``WorkloadEvaluator.warm_up`` on a fresh evaluator;
* process pool: ``ProcessPoolBackplane(processes=4).warm_up`` on a
  fresh evaluator (timing includes worker start-up and catalog
  rebuild — the honest cold cost).

The pool must be at least 1.5x faster on ≥4 idle cores, and the
installed entries must be **bit-identical** to the single-process pool,
entry for entry — processes change wall-clock time, never results.

Like the other claim benches, the wall-clock floor is relaxable for
noisy or undersized CI hardware (``PROCESS_BACKPLANE_SPEEDUP_FLOOR=0``
checks only the equivalence invariants); on fewer cores than workers
the floor is skipped automatically — the claim is about parallel
hardware, which a 1-core container cannot exhibit.
"""

import os
import random
import time

from repro.evaluation import ProcessPoolBackplane, WorkloadEvaluator
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

QUERIES = 50
WORKERS = 4
SPEEDUP_FLOOR = float(os.environ.get("PROCESS_BACKPLANE_SPEEDUP_FLOOR", "1.5"))


def cross_match(rng):
    """A three-way spectroscopic cross-match — the heavy-build shape."""
    return (
        "SELECT p.objid, s.z, n.distance "
        "FROM photoobj p, specobj s, neighbors n "
        "WHERE p.objid = s.bestobjid AND p.objid = n.objid "
        "AND s.z > %.3f AND n.distance < %.4f AND p.rmag < %.2f "
        "ORDER BY p.ra LIMIT 500"
        % (
            rng.uniform(0.0, 5.0),
            rng.uniform(0.005, 0.08),
            rng.uniform(18.0, 23.0),
        )
    )


def environment():
    catalog = sdss_catalog(scale=0.05)
    rng = random.Random(17)
    workload = [cross_match(rng) for __ in range(QUERIES)]
    return catalog, workload


def test_claim_process_backplane_warm_up():
    catalog, workload = environment()

    # Untimed priming: imports, parser tables, catalog stats.
    WorkloadEvaluator(catalog).warm_up(sdss_workload(n_queries=2, seed=1))

    single = WorkloadEvaluator(catalog)
    t0 = time.perf_counter()
    single_calls = single.warm_up(workload)
    t_single = time.perf_counter() - t0

    pooled = WorkloadEvaluator(catalog)
    t0 = time.perf_counter()
    with ProcessPoolBackplane(pooled, processes=WORKERS) as backplane:
        pooled_calls = backplane.warm_up(workload)
    t_pooled = time.perf_counter() - t0

    speedup = t_single / max(t_pooled, 1e-9)
    print_table(
        "CL-PROC: cold warm_up, %d queries (%d workers, %s cores)"
        % (QUERIES, WORKERS, os.cpu_count()),
        ("method", "seconds", "builds", "entries"),
        [
            ("single process", t_single, single_calls, len(single.pool)),
            ("process pool", t_pooled, pooled_calls, len(pooled.pool)),
        ],
    )

    # Equivalence invariants gate everywhere, floor or not: the pool
    # moves plan terms over the wire, it never changes them.
    assert pooled_calls == single_calls
    assert set(pooled.pool.signatures()) == set(single.pool.signatures())
    for signature in single.pool.signatures():
        ours = pooled.pool.get(signature)
        theirs = single.pool.get(signature)
        assert ours.plans == theirs.plans, (
            "wire-shipped plan terms diverged for %r" % (signature,)
        )
        assert ours.bound_query.sql == theirs.bound_query.sql

    if (os.cpu_count() or 1) < WORKERS:
        print(
            "only %s core(s) < %d workers: wall-clock floor skipped "
            "(equivalence asserted above)" % (os.cpu_count(), WORKERS)
        )
        return
    assert speedup >= SPEEDUP_FLOOR, (
        "process-pool warm_up must be at least %.1fx the single-process "
        "cold build (got %.2fx)" % (SPEEDUP_FLOOR, speedup)
    )
