"""CL-KERNEL — columnar-kernel pricing of a workload × configuration grid.

The paper's interactivity claim rests on pricing *many* hypothetical
configurations quickly; PR 1 vectorized the sweep at the Python level
(per-slot / per-statement dict memoization), and the columnar kernel
(:mod:`repro.evaluation.kernel`) compiles the same plan terms to flat
numpy arrays priced by a fixed handful of array reductions per sweep —
per-slot access-cost columns filled once per distinct per-table design,
per-plan gathered adds in scalar order, grouped minima per statement.

Method: a 50-query SDSS workload × 64 candidate configurations, both
engines on **one evaluator** (same pool, same slot memo — the engines
share every input, only the pricing loop differs), warmed with one
populating sweep each, then one timed steady-state sweep per engine —
the state an interactive session or a COLT epoch close lives in.  The
kernel must be at least 3x faster than the scalar batched path and
**bit-identical**: the equality assert pins every matrix entry with an
exact max-witness, not a tolerance.
"""

import math
import os
import random
import time

from repro.cophy import candidate_indexes
from repro.evaluation import WorkloadEvaluator
from repro.whatif import Configuration
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

N_QUERIES = 50
N_CONFIGS = 64

# The claim is >=3x on quiet hardware; CI smoke jobs on shared runners
# relax the floor (they check exact equality, not magnitude).
SPEEDUP_FLOOR = float(os.environ.get("KERNEL_EVAL_SPEEDUP_FLOOR", "3.0"))


def make_sweep(seed=5):
    catalog = sdss_catalog(scale=0.1)
    workload = list(sdss_workload(n_queries=N_QUERIES, seed=11))
    candidates = candidate_indexes(catalog, workload, max_candidates=16)
    rng = random.Random(seed)
    configs = [
        Configuration(indexes=frozenset(rng.sample(candidates, rng.randint(0, 6))))
        for __ in range(N_CONFIGS)
    ]
    return catalog, workload, configs


def timed(fn, repeats=5):
    # Best-of-N: one noisy sample must not decide a timing claim.
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_claim_kernel_eval_speedup(benchmark):
    catalog, workload, configs = make_sweep()

    evaluator = WorkloadEvaluator(catalog)
    evaluator.warm_up(workload)

    # Populate both engines' derived state (slot memo, statement memo,
    # compiled workloads, design columns), then time the steady state.
    scalar_warm = evaluator.evaluate_configurations(
        workload, configs, kernel=False
    )
    kernel_warm = evaluator.evaluate_many(workload, configs)
    assert scalar_warm.matrix == kernel_warm.matrix

    t_scalar, scalar_result = timed(
        lambda: evaluator.evaluate_configurations(workload, configs,
                                                  kernel=False)
    )
    t_kernel, kernel_result = timed(
        lambda: evaluator.evaluate_many(workload, configs)
    )

    speedup = t_scalar / max(t_kernel, 1e-9)
    print_table(
        "CL-KERNEL: %d queries x %d configurations"
        % (N_QUERIES, N_CONFIGS),
        ("engine", "milliseconds", "optimizer calls during sweep"),
        [
            ("scalar batched", t_scalar * 1e3, 0),
            ("columnar kernel", t_kernel * 1e3, 0),
        ],
    )
    print_table(
        "CL-KERNEL: speedup and kernel state",
        ("speedup x", "pool entries", "compiled kernels"),
        [(speedup, len(evaluator.pool), evaluator.pool.kernel_count)],
    )

    # Bit-identical, pinned with exact witnesses: the largest absolute
    # deviation must be exactly zero (not merely tiny), and the grid
    # extrema must coincide entry-for-entry.
    deviations = [
        abs(a - b)
        for row_a, row_b in zip(kernel_result.matrix, scalar_result.matrix)
        for a, b in zip(row_a, row_b)
    ]
    assert max(deviations) == 0.0, (
        "kernel and scalar grids must match exactly (max |delta| = %r)"
        % (max(deviations),)
    )
    flat = [c for row in kernel_result.matrix for c in row]
    flat_ref = [c for row in scalar_result.matrix for c in row]
    assert (max(flat), min(flat)) == (max(flat_ref), min(flat_ref))
    assert all(math.isfinite(c) for c in flat)
    assert kernel_result.totals == scalar_result.totals

    assert speedup >= SPEEDUP_FLOOR, (
        "kernel evaluation must be at least %.1fx faster than the scalar "
        "batched path (got %.1fx)" % (SPEEDUP_FLOOR, speedup)
    )

    benchmark(evaluator.evaluate_many, workload, configs)


def test_claim_kernel_matches_per_call():
    """The kernel grid equals per-call INUM costs exactly — statement by
    statement, configuration by configuration — so routing a consumer
    through ``evaluate_many`` can never change a decision."""
    from repro.inum import InumCostModel

    catalog, workload, configs = make_sweep(seed=9)
    evaluator = WorkloadEvaluator(catalog)
    grid = evaluator.evaluate_many(workload, configs[:8])
    per_call = InumCostModel(catalog)
    for c, config in enumerate(grid.configurations):
        for s, (sql, __) in enumerate(workload):
            assert grid.matrix[c][s] == per_call.cost(sql, config)
    print_table(
        "CL-KERNEL: per-call equivalence",
        ("configs", "statements", "identical"),
        [(8, len(workload), True)],
    )
