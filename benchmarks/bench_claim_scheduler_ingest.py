"""CL-SCHED — fleet ingest throughput through the cooperative scheduler.

The PR-2 service drove tenants with one blocking ``drain()`` thread
each; INUM cache builds are pure-Python optimizer planning, so a
thread-per-tenant fleet ingests at single-core speed no matter how many
cores idle.  The runtime's claim: the cooperative scheduler with a
process-offload executor — refill batches of upcoming statements warmed
across :class:`~repro.evaluation.ProcessPoolBackplane` workers while
every step still runs inline — turns fleet ingest into real CPU
scaling without changing a single result.

Method: an 8-tenant fleet on one shared SDSS backplane, each tenant
streaming its own sequence of three-way astronomy cross-matches (the
expensive-build shape: ~12 interesting-order plans per query), with a
10-query COLT epoch loop and a full-advisor refresh every 4 events —
the step shape whose INUM builds dominate ingest (~70% of wall clock
measured single-threaded).  Distinct streams per tenant, so
cross-tenant dedupe cannot mask the build cost.

* baseline: ``TuningService.run_streams_threaded`` — the PR-2
  thread-per-tenant loop, GIL-bound builds;
* scheduler: ``TuningService.run_scheduled`` with a
  :class:`~repro.runtime.ProcessStepExecutor` (4 workers, lookahead 8).

The scheduler leg must reach at least 1.5x the thread fleet's aggregate
events/second on ≥4 idle cores, and every tenant's full dynamic tuner
state (:meth:`ColtTuner.snapshot_state`) plus its recommendation
records must be **equal** between the two legs — scheduling and
offload move work in time and across processes, never change it.

Like the other claim benches, the wall-clock floor is relaxable for
noisy CI hardware (``SCHEDULER_INGEST_FLOOR=0`` keeps only the
equivalence gate) and is skipped automatically when the host has fewer
cores than workers.
"""

import os
import random
import time

from repro.colt import ColtSettings
from repro.runtime import ProcessStepExecutor
from repro.service import TuningService
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

TENANTS = 8
EVENTS_PER_TENANT = 12
WORKERS = 4
LOOKAHEAD = 8
EPOCH = 10
RECOMMEND_EVERY = 4
WINDOW = 8
SPEEDUP_FLOOR = float(os.environ.get("SCHEDULER_INGEST_FLOOR", "1.5"))


def cross_match(rng):
    """A three-way spectroscopic cross-match — the heavy-build shape."""
    return (
        "SELECT p.objid, s.z, n.distance "
        "FROM photoobj p, specobj s, neighbors n "
        "WHERE p.objid = s.bestobjid AND p.objid = n.objid "
        "AND s.z > %.3f AND n.distance < %.4f AND p.rmag < %.2f "
        "ORDER BY p.ra LIMIT 500"
        % (
            rng.uniform(0.0, 5.0),
            rng.uniform(0.005, 0.08),
            rng.uniform(18.0, 23.0),
        )
    )


def tenant_streams():
    """Distinct per-tenant streams: no cross-tenant dedupe windfall."""
    streams = {}
    for i in range(TENANTS):
        rng = random.Random(100 + i)
        streams["tenant-%d" % i] = [
            cross_match(rng) for __ in range(EVENTS_PER_TENANT)
        ]
    return streams


def make_service(catalog):
    service = TuningService(shards=4)
    service.add_backplane("sdss", catalog)
    settings = ColtSettings(
        epoch_length=EPOCH,
        space_budget_pages=int(sum(t.pages for t in catalog.tables) * 0.5),
    )
    for i in range(TENANTS):
        service.add_tenant(
            "tenant-%d" % i, "sdss",
            colt_settings=settings,
            recommend_every=RECOMMEND_EVERY,
            window=WINDOW,
        )
    return service


def fingerprint(service):
    """Every tenant's full dynamic tuner state — EWMAs, epoch records,
    probe counters, budgets — plus its recommendation records: the
    strongest 'same results' pin."""
    out = {}
    for i in range(TENANTS):
        session = service.tenant("tenant-%d" % i)
        out["tenant-%d" % i] = (
            session.tuner.snapshot_state(),
            [
                (r.at_query, r.trigger, r.indexes, r.improvement_pct)
                for r in session.recommendations
            ],
        )
    return out


def test_claim_scheduler_ingest_throughput():
    catalog = sdss_catalog(scale=0.05)
    streams = tenant_streams()
    events = TENANTS * EVENTS_PER_TENANT

    # Untimed priming: imports, parser tables, catalog statistics.
    make_service(catalog)
    from repro.evaluation import WorkloadEvaluator

    WorkloadEvaluator(catalog).warm_up(sdss_workload(n_queries=2, seed=1))

    # finish=False keeps both legs pure ingest (the final Designer
    # review is identical inline work in either path and would only
    # dilute what this claim measures).
    threaded = make_service(catalog)
    t0 = time.perf_counter()
    threaded.run_streams_threaded(
        {name: list(stream) for name, stream in streams.items()},
        finish=False,
    )
    t_threaded = time.perf_counter() - t0

    scheduled = make_service(catalog)
    t0 = time.perf_counter()
    with ProcessStepExecutor(processes=WORKERS) as executor:
        scheduled.run_scheduled(
            {name: list(stream) for name, stream in streams.items()},
            executor=executor,
            finish=False,
            lookahead=LOOKAHEAD,
        )
    t_scheduled = time.perf_counter() - t0

    speedup = t_threaded / max(t_scheduled, 1e-9)
    print_table(
        "CL-SCHED: %d tenants x %d events (%d workers, %s cores)"
        % (TENANTS, EVENTS_PER_TENANT, WORKERS, os.cpu_count()),
        ("method", "seconds", "events/s"),
        [
            ("thread per tenant", t_threaded, events / t_threaded),
            ("scheduler + process offload", t_scheduled,
             events / t_scheduled),
        ],
    )

    # Equivalence gates everywhere, floor or not: scheduling and
    # offload never change a tenant's dynamic state.
    assert fingerprint(scheduled) == fingerprint(threaded)

    if (os.cpu_count() or 1) < WORKERS:
        print(
            "only %s core(s) < %d workers: wall-clock floor skipped "
            "(equivalence asserted above)" % (os.cpu_count(), WORKERS)
        )
        return
    assert speedup >= SPEEDUP_FLOOR, (
        "scheduled ingest with process offload must be at least %.1fx the "
        "thread-per-tenant fleet (got %.2fx)" % (SPEEDUP_FLOOR, speedup)
    )
