"""CL-OBS — the telemetry backplane is effectively free, and exact.

PR 7 threads a metrics registry and span tracer through every layer of
the designer (pool builds, kernel evaluation, scheduler dispatch,
tenant ingest, BIP solves).  The claim that justifies always-on
telemetry is twofold:

* **overhead**: instrumented steady-state kernel evaluation and fleet
  ingest stay within a few percent of the uninstrumented baseline
  (``obs.disabled()`` swaps the registry and tracer for shared no-op
  twins — the same code path minus the recording);
* **exactness**: the counters a Prometheus scrape reports are not a
  *second* measurement that can drift — pool families are set from the
  same lock-exact :class:`~repro.evaluation.pool.PoolStats` snapshots
  ``status()`` prints, and scheduler/tenant counters move with the
  dispatch itself — so the scraped text matches the in-process
  accounting to the unit.

Method: the kernel sweep reuses CL-KERNEL's shape (50 SDSS queries x
64 configurations, one warmed evaluator, best-of-N steady-state
sweeps); fleet ingest stands up a fresh two-tenant service per sample
and times the scheduled run only (warm-up excluded — it is identical
work in both modes).  Results must be bit-identical across modes.
"""

import gc
import os
import random
import re
import time

from repro import obs
from repro.cophy import candidate_indexes
from repro.evaluation import WorkloadEvaluator
from repro.runtime import Scheduler
from repro.service import TuningService
from repro.whatif import Configuration
from repro.workloads import sdss_catalog, sdss_workload
from repro.workloads.drift import default_phases, drifting_stream

from conftest import print_table

N_QUERIES = 50
N_CONFIGS = 128

# Quiet-hardware budget; CI smoke jobs on shared runners relax it (they
# check exactness and bit-identical results, not the timing margin).
OBS_OVERHEAD_MAX_PCT = float(os.environ.get("OBS_OVERHEAD_MAX_PCT", "3.0"))


def make_sweep(seed=5):
    catalog = sdss_catalog(scale=0.1)
    workload = list(sdss_workload(n_queries=N_QUERIES, seed=11))
    candidates = candidate_indexes(catalog, workload, max_candidates=16)
    rng = random.Random(seed)
    configs = [
        Configuration(
            indexes=frozenset(rng.sample(candidates, rng.randint(0, 6)))
        )
        for __ in range(N_CONFIGS)
    ]
    return catalog, workload, configs


def timed(fn, repeats=7):
    # Best-of-N: one noisy sample must not decide a timing claim.
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_claim_obs_kernel_overhead(benchmark):
    catalog, workload, configs = make_sweep()
    evaluator = WorkloadEvaluator(catalog)
    evaluator.warm_up(workload)
    evaluator.evaluate_many(workload, configs)  # populate derived state

    # Interleaved best-of-N (see the fleet test): drift must not be
    # misread as instrumentation cost.  Many short alternating samples —
    # min over 200 sweeps per mode converges on each mode's true floor
    # even when background load is bursty, and adjacent samples see the
    # same machine regime.  GC is paused across the sampling loop (the
    # same thing ``timeit`` does) so collection pauses triggered by the
    # sweep's own allocations don't land on one mode's floor.
    def measure():
        t_off = t_on = float("inf")
        off = on = None
        gc.collect()
        gc.disable()
        try:
            for __ in range(200):
                with obs.disabled():
                    sample, off = timed(
                        lambda: evaluator.evaluate_many(workload, configs),
                        repeats=1,
                    )
                t_off = min(t_off, sample)
                sample, on = timed(
                    lambda: evaluator.evaluate_many(workload, configs),
                    repeats=1,
                )
                t_on = min(t_on, sample)
        finally:
            gc.enable()
        return t_off, t_on, off, on

    # Noise can only inflate the estimate above the true floor — one
    # clean measurement under the bound settles the claim, so retry a
    # couple of times before calling a miss real.
    for __ in range(3):
        t_off, t_on, off, on = measure()
        assert on.matrix == off.matrix  # telemetry never changes a cost
        overhead_pct = 100.0 * (t_on - t_off) / t_off
        if overhead_pct <= OBS_OVERHEAD_MAX_PCT:
            break
    print_table(
        "CL-OBS: kernel sweep overhead (%d queries x %d configurations)"
        % (N_QUERIES, N_CONFIGS),
        ("mode", "milliseconds", "overhead %"),
        [
            ("obs disabled", t_off * 1e3, 0.0),
            ("obs enabled", t_on * 1e3, overhead_pct),
        ],
    )
    assert overhead_pct <= OBS_OVERHEAD_MAX_PCT, (
        "instrumented kernel evaluation must stay within %.1f%% of the "
        "uninstrumented baseline (got %.2f%%)"
        % (OBS_OVERHEAD_MAX_PCT, overhead_pct)
    )

    benchmark(evaluator.evaluate_many, workload, configs)


def _run_fleet(catalog, sqls):
    """One fresh two-tenant service over *catalog*: warm, then time the
    scheduled ingest alone.  Returns (seconds, final status)."""
    service = TuningService(shards=2)
    service.add_backplane("sdss", catalog)
    for i in range(2):
        service.add_tenant("tenant-%d" % i, "sdss", recommend_every=0)
    service.warm_up("sdss", sqls)
    streams = {
        "tenant-%d" % i: drifting_stream(default_phases(6), seed=3 + i)
        for i in range(2)
    }
    t0 = time.perf_counter()
    status = service.run_scheduled(streams)
    return time.perf_counter() - t0, status


def test_claim_obs_fleet_overhead():
    catalog = sdss_catalog(scale=0.05)
    sqls = [sql for __, sql in drifting_stream(default_phases(6), seed=3)]
    sqls += [sql for __, sql in drifting_stream(default_phases(6), seed=4)]

    # Interleave the modes sample-for-sample so machine drift (thermal
    # throttle, background load) lands on both sides equally; compare
    # best-of-N, which is the steady-state each mode can reach.  As in
    # the kernel test, noise only ever inflates the estimate, so a miss
    # earns a remeasure before it counts.
    for __ in range(3):
        off_samples, on_samples = [], []
        for ___ in range(4):
            with obs.disabled():
                off_samples.append(_run_fleet(catalog, sqls))
            on_samples.append(_run_fleet(catalog, sqls))
        t_off, status_off = min(off_samples, key=lambda s: s[0])
        t_on, status_on = min(on_samples, key=lambda s: s[0])
        if 100.0 * (t_on - t_off) / t_off <= OBS_OVERHEAD_MAX_PCT:
            break

    # Identical ingest either way: same queries, epochs, configurations.
    for name in status_on["tenants"]:
        on_t, off_t = status_on["tenants"][name], status_off["tenants"][name]
        for key in ("queries", "epochs", "configuration", "drift_events"):
            assert on_t[key] == off_t[key]

    overhead_pct = 100.0 * (t_on - t_off) / t_off
    print_table(
        "CL-OBS: fleet ingest overhead (2 tenants, scheduled)",
        ("mode", "milliseconds", "overhead %"),
        [
            ("obs disabled", t_off * 1e3, 0.0),
            ("obs enabled", t_on * 1e3, overhead_pct),
        ],
    )
    assert overhead_pct <= OBS_OVERHEAD_MAX_PCT, (
        "instrumented fleet ingest must stay within %.1f%% of the "
        "uninstrumented baseline (got %.2f%%)"
        % (OBS_OVERHEAD_MAX_PCT, overhead_pct)
    )


def _parse_prometheus(text):
    """{(family, frozenset(label pairs)): value} for every sample line."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$",
                     line)
        assert m, "unparseable exposition line: %r" % (line,)
        name, raw_labels, value = m.groups()
        labels = frozenset(
            (key, val[1:-1])
            for key, val in (
                pair.split("=", 1) for pair in
                re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"',
                           raw_labels or "")
            )
        )
        out[(name, labels)] = float(value)
    return out


def test_claim_obs_scrape_exactness():
    """A scrape of the rendered exposition text reproduces the pool and
    scheduler accounting to the unit — counters are mirrors of the same
    state, not parallel bookkeeping."""
    obs.reset()  # fresh registry: this run's counts and nothing else
    catalog = sdss_catalog(scale=0.05)
    service = TuningService(shards=2)
    service.add_backplane("sdss", catalog)
    sessions = {
        name: service.add_tenant(name, "sdss", recommend_every=0)
        for name in ("alpha", "beta")
    }
    scheduler = Scheduler()
    for i, name in enumerate(sessions):
        scheduler.add(name, sessions[name],
                      drifting_stream(default_phases(5), seed=21 + i))
    stats = scheduler.run()

    parsed = _parse_prometheus(obs.metrics().render_prometheus())

    plane = service.backplane("sdss")
    pool_stats = plane.pool.stats
    label = frozenset([("backplane", "sdss")])
    assert parsed[("repro_pool_hits_total", label)] == pool_stats.hits
    assert parsed[("repro_pool_misses_total", label)] == pool_stats.misses
    assert parsed[("repro_pool_evictions_total", label)] \
        == pool_stats.evictions
    assert parsed[("repro_pool_optimizer_calls_total", label)] \
        == pool_stats.optimizer_calls
    assert parsed[("repro_pool_entries", label)] == len(plane.pool)

    steps_scraped = sum(
        value for (name, __), value in parsed.items()
        if name == "repro_scheduler_steps_total"
    )
    assert steps_scraped == stats["steps"]
    assert parsed[("repro_scheduler_events_started", frozenset())] \
        == stats["events"]

    for name, session in sessions.items():
        tenant = frozenset([("tenant", name)])
        assert parsed[("repro_tenant_queries_total", tenant)] \
            == session.queries
        assert parsed[("repro_tenant_events_total", tenant)] \
            == session.queries

    print_table(
        "CL-OBS: scrape exactness",
        ("surface", "scraped", "in-process", "identical"),
        [
            ("pool hits", parsed[("repro_pool_hits_total", label)],
             pool_stats.hits, True),
            ("pool misses", parsed[("repro_pool_misses_total", label)],
             pool_stats.misses, True),
            ("scheduler steps", steps_scraped, stats["steps"], True),
            ("tenant queries",
             sum(parsed[("repro_tenant_queries_total",
                         frozenset([("tenant", n)]))] for n in sessions),
             sum(s.queries for s in sessions.values()), True),
        ],
    )
