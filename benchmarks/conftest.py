"""Shared environments for the experiment benchmarks.

Each bench regenerates one artifact of the paper's evaluation (see
DESIGN.md §4).  Fixtures are session-scoped: the SDSS-lite catalog and
workload are the common substrate, built once.

``--json PATH`` additionally writes every table a bench prints to
machine-readable JSON: one ``BENCH_<slug>.json`` per table when PATH is
a directory, or a single combined file otherwise.  The JSON carries the
same numbers as the printed tables — it is a serialization, not a
second measurement — plus a ``meta`` block (timestamp, git SHA, CPU
count, python version) so an archived artifact identifies the run that
produced it.  ``--json-timestamp`` lets a harness stamp its own ISO
timestamp instead of the collection wall clock.
"""

import json
import os
import platform
import re
import subprocess
from datetime import datetime, timezone

import pytest

from repro.inum import InumCostModel
from repro.workloads import sdss_catalog, sdss_workload, tpch_catalog, tpch_workload

SDSS_SCALE = 0.1
SDSS_QUERIES = 20
SEED = 42


@pytest.fixture(scope="session")
def sdss_env():
    """(catalog, workload) for the SDSS-lite setting used across benches."""
    catalog = sdss_catalog(scale=SDSS_SCALE)
    workload = sdss_workload(n_queries=SDSS_QUERIES, seed=SEED)
    return catalog, workload


@pytest.fixture(scope="session")
def sdss_inum(sdss_env):
    catalog, workload = sdss_env
    model = InumCostModel(catalog)
    model.warm(workload)
    return model


@pytest.fixture(scope="session")
def tpch_env():
    catalog = tpch_catalog(scale=0.05)
    workload = tpch_workload(n_queries=15, seed=7)
    return catalog, workload


_tables = []  # every print_table emission, in print order


def print_table(title, header, rows):
    """Uniform experiment output: the series the demo panels display."""
    _tables.append(
        {"title": title, "header": list(header),
         "rows": [list(row) for row in rows]}
    )
    print("\n=== %s ===" % title)
    print("  " + "  ".join("%14s" % h for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append("%14.2f" % value)
            else:
                cells.append("%14s" % (value,))
        print("  " + "  ".join(cells))


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write printed bench tables as JSON: one BENCH_<slug>.json "
             "per table if PATH is a directory, else one combined file",
    )
    parser.addoption(
        "--json-timestamp",
        action="store",
        default=None,
        metavar="ISO8601",
        help="run timestamp recorded in the JSON meta block (default: "
             "the UTC wall clock at write time)",
    )


def _slug(title):
    return re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_")


def _git_sha():
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except OSError:
        return None


def _run_meta(config):
    return {
        "timestamp": config.getoption("--json-timestamp")
        or datetime.now(timezone.utc).isoformat(),
        "git_sha": _git_sha(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def pytest_sessionfinish(session):
    path = session.config.getoption("--json")
    if not path or not _tables:
        return
    meta = _run_meta(session.config)
    payload = [
        {**table, "rows": [
            [cell if isinstance(cell, (int, float, str, bool)) or cell is None
             else str(cell) for cell in row]
            for row in table["rows"]
        ]}
        for table in _tables
    ]
    if os.path.isdir(path):
        for table in payload:
            target = os.path.join(
                path, "BENCH_%s.json" % _slug(table["title"])
            )
            with open(target, "w") as handle:
                json.dump({**table, "meta": meta}, handle, indent=2)
    else:
        with open(path, "w") as handle:
            json.dump({"meta": meta, "tables": payload}, handle, indent=2)
