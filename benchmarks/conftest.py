"""Shared environments for the experiment benchmarks.

Each bench regenerates one artifact of the paper's evaluation (see
DESIGN.md §4).  Fixtures are session-scoped: the SDSS-lite catalog and
workload are the common substrate, built once.
"""

import pytest

from repro.inum import InumCostModel
from repro.workloads import sdss_catalog, sdss_workload, tpch_catalog, tpch_workload

SDSS_SCALE = 0.1
SDSS_QUERIES = 20
SEED = 42


@pytest.fixture(scope="session")
def sdss_env():
    """(catalog, workload) for the SDSS-lite setting used across benches."""
    catalog = sdss_catalog(scale=SDSS_SCALE)
    workload = sdss_workload(n_queries=SDSS_QUERIES, seed=SEED)
    return catalog, workload


@pytest.fixture(scope="session")
def sdss_inum(sdss_env):
    catalog, workload = sdss_env
    model = InumCostModel(catalog)
    model.warm(workload)
    return model


@pytest.fixture(scope="session")
def tpch_env():
    catalog = tpch_catalog(scale=0.05)
    workload = tpch_workload(n_queries=15, seed=7)
    return catalog, workload


def print_table(title, header, rows):
    """Uniform experiment output: the series the demo panels display."""
    print("\n=== %s ===" % title)
    print("  " + "  ".join("%14s" % h for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append("%14.2f" % value)
            else:
                cells.append("%14s" % (value,))
        print("  " + "  ".join(cells))
