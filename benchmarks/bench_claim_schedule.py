"""CL-SCHED — the paper's claim that "an appropriately scheduled
materialization of indexes can lead to higher benefit in contrast with a
schedule that does not take into account index interaction" (§3.5).

Method: take the recommended index set for the SDSS workload, evaluate
the cost-area (workload cost integrated over build time) of the naive
benefit-order schedule, the interaction-aware greedy schedule, and the
exact DP optimum.

Expected shape: optimal <= interaction-aware greedy <= naive, with a
visible gap whenever the set contains interacting (e.g. mutually
subsuming) indexes.
"""

from repro.catalog import Index
from repro.interaction import (
    InteractionAnalyzer,
    schedule_greedy,
    schedule_naive,
    schedule_optimal,
)

from conftest import print_table


def interacting_set():
    """A recommendation-shaped set with deliberate interactions: the
    single-column positional index is subsumed by the composite, and the
    covering z-index overlaps the plain one."""
    return [
        Index("photoobj", ("ra",)),
        Index("photoobj", ("ra", "dec")),
        Index("photoobj", ("type", "rmag")),
        Index("specobj", ("z",)),
        Index("specobj", ("z",), include=("bestobjid",)),
    ]


def test_claim_schedule_quality(sdss_env, sdss_inum, benchmark):
    catalog, workload = sdss_env
    analyzer = InteractionAnalyzer(sdss_inum, workload)
    indexes = interacting_set()

    naive = schedule_naive(indexes, analyzer.cost, catalog)
    greedy = schedule_greedy(indexes, analyzer.cost, catalog)
    optimal = benchmark(schedule_optimal, indexes, analyzer.cost, catalog)

    print_table(
        "CL-SCHED: cost area by scheduler (lower = benefit arrives earlier)",
        ("scheduler", "area", "order"),
        [
            ("naive-benefit", naive.area, " -> ".join(i.name for i in naive.order)),
            ("greedy-interaction", greedy.area,
             " -> ".join(i.name for i in greedy.order)),
            ("optimal-dp", optimal.area,
             " -> ".join(i.name for i in optimal.order)),
        ],
    )
    print_table(
        "CL-SCHED: timeline of the optimal schedule",
        ("elapsed", "workload cost"),
        optimal.timeline,
    )

    assert optimal.area <= greedy.area + 1e-6
    assert optimal.area <= naive.area + 1e-6
    gain_vs_naive = 100.0 * (naive.area - optimal.area) / naive.area
    print_table("CL-SCHED: optimal vs naive", ("area saved %",), [(gain_vs_naive,)])
    # Final design is order-independent; only the path differs.
    assert naive.timeline[-1][1] == optimal.timeline[-1][1]
    # The cost curve of the optimal schedule is non-increasing over time.
    costs = [c for __, c in optimal.timeline]
    assert all(b <= a + 1e-6 for a, b in zip(costs, costs[1:]))


def test_claim_schedule_interaction_awareness_matters(sdss_env, sdss_inum):
    """With two subsuming indexes, building the composite first makes the
    single-column index nearly worthless — the naive order ignores that."""
    catalog, workload = sdss_env
    analyzer = InteractionAnalyzer(sdss_inum, workload)
    ra = Index("photoobj", ("ra",))
    ra_dec = Index("photoobj", ("ra", "dec"))

    marginal_alone = analyzer.benefit(ra, ())
    marginal_after = analyzer.benefit(ra, (ra_dec,))
    print_table(
        "CL-SCHED: why order matters (benefit of ra index)",
        ("context", "benefit"),
        [("alone", marginal_alone), ("after (ra,dec) built", marginal_after)],
    )
    assert marginal_after < marginal_alone * 0.5
