"""CL-COLGEN — column-generation CoPhy at a 5000-candidate scale.

The exhaustive pipeline materializes one BIP option per
(slot, candidate) pair before any search happens: at thousands of
candidates ``build_bip`` dominates the advisor's wall-clock, and every
greedy round prices the whole frontier.  Column generation
(:func:`~repro.cophy.colgen.solve_colgen`) prices candidates through
the slot pricer's cached path machinery, keeps a restricted master over
only the *active* candidates, and uses a sound reduced-benefit bound to
prove the rest can never win a round.

Method: a wide synthetic catalog (4 tables x 48 numeric columns, 2M
rows each) and a 150-query seeded mix vote in >5000 distinct candidate
indexes.  Each engine gets a **fresh advisor** (cold memos — the claim
is end-to-end advisor wall-clock, not steady-state), one timed
``recommend`` call per engine.  Column generation must be at least 3x
faster, **decision-identical** (same indexes in the same rank order,
bit-equal predicted and base costs), and must activate under 30% of
the candidate space while certifying the rest.
"""

import os
import random
import time

from repro.catalog import Catalog, Column, DataType, Distribution, Table
from repro.cophy import CandidateGenerator, CoPhyAdvisor

from conftest import print_table

N_TABLES = 4
N_COLUMNS = 48
N_ROWS = 2_000_000
N_QUERIES = 150
N_CANDIDATES = 5_000

# The claim is >=3x on quiet hardware; CI smoke jobs on shared runners
# relax the floor (they check decision identity, not magnitude).
SPEEDUP_FLOOR = float(os.environ.get("COLGEN_SCALE_SPEEDUP_FLOOR", "3.0"))
ACTIVATION_CEILING = 0.30


def wide_catalog():
    """Many similarly-shaped numeric columns: the composite-pair miner
    votes in thousands of near-duplicate candidates, the regime the
    bound has to prune."""
    catalog = Catalog()
    for t in range(N_TABLES):
        columns = [Column("id", DataType.BIGINT, Distribution(kind="sequence"))]
        for c in range(N_COLUMNS):
            columns.append(Column(
                "c%02d" % c, DataType.DOUBLE,
                Distribution(kind="uniform", low=0.0, high=1000.0),
            ))
        catalog.add_table(
            Table("t%d" % t, columns, row_count=N_ROWS).build_stats()
        )
    return catalog


def seeded_workload(seed=17):
    rng = random.Random(seed)
    names = ["c%02d" % c for c in range(N_COLUMNS)]
    workload = []
    for __ in range(N_QUERIES):
        table = "t%d" % rng.randrange(N_TABLES)
        eq = rng.sample(names, 8)
        ranges = rng.sample([c for c in names if c not in eq], 4)
        order = rng.choice(
            [c for c in names if c not in eq and c not in ranges]
        )
        predicates = ["%s = %d" % (c, rng.randrange(1000)) for c in eq]
        predicates += [
            "%s < %d" % (c, rng.randrange(100, 900)) for c in ranges
        ]
        sql = "SELECT %s FROM %s WHERE %s ORDER BY %s LIMIT 50" % (
            ", ".join(eq[:2]), table, " AND ".join(predicates), order,
        )
        workload.append((sql, rng.choice([0.5, 1.0, 2.0])))
    return workload


def test_claim_colgen_scale():
    catalog = wide_catalog()
    workload = seeded_workload()
    generator = CandidateGenerator(catalog, workload)
    assert generator.n_candidates >= N_CANDIDATES, (
        "scale claim needs a >=%d-candidate space (got %d)"
        % (N_CANDIDATES, generator.n_candidates)
    )
    candidates = generator.take(N_CANDIDATES)
    budget = sum(
        ix.size_pages(catalog.table(ix.table_name)) for ix in candidates
    ) // 40

    t0 = time.perf_counter()
    full = CoPhyAdvisor(catalog).recommend(
        workload, budget, candidates=candidates, solver="greedy",
    )
    t_full = time.perf_counter() - t0

    t0 = time.perf_counter()
    colgen = CoPhyAdvisor(catalog).recommend(
        workload, budget, candidates=candidates, solver="colgen",
    )
    t_colgen = time.perf_counter() - t0

    stats = colgen.stats["solve_extra"]
    speedup = t_full / max(t_colgen, 1e-9)
    activation = stats["activated"] / len(candidates)
    print_table(
        "CL-COLGEN: advisor wall-clock, %d queries x %d candidates"
        % (N_QUERIES, len(candidates)),
        ("engine", "seconds", "chosen", "activated"),
        [
            ("exhaustive BIP + greedy", t_full, len(full.indexes),
             len(candidates)),
            ("column generation", t_colgen, len(colgen.indexes),
             stats["activated"]),
        ],
    )
    print_table(
        "CL-COLGEN: search summary",
        ("speedup x", "activated %", "rounds", "waves", "pairs priced"),
        [(speedup, 100.0 * activation, stats["rounds"], stats["waves"],
          stats["priced"])],
    )

    # Decision-identical: same indexes in the same rank order, bit-equal
    # objective and base cost — column generation changes the wall
    # clock, never the recommendation.
    assert [ix.name for ix in colgen.indexes] == \
        [ix.name for ix in full.indexes]
    assert colgen.predicted_workload_cost == full.predicted_workload_cost
    assert colgen.base_workload_cost == full.base_workload_cost
    assert colgen.size_pages == full.size_pages
    assert stats["certificate"] == "no-inactive-candidate-improves"

    # The bound must keep the master small — the whole point.
    assert activation < ACTIVATION_CEILING, (
        "colgen activated %.0f%% of the candidate space (ceiling %.0f%%)"
        % (100.0 * activation, 100.0 * ACTIVATION_CEILING)
    )

    assert speedup >= SPEEDUP_FLOOR, (
        "column generation must be at least %.1fx faster than the "
        "exhaustive pipeline at this scale (got %.2fx)"
        % (SPEEDUP_FLOOR, speedup)
    )
