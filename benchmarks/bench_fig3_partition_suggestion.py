"""FIG3 — regenerate Figure 3: the automatic partition suggestion panel.

Paper artifact: "the list of suggested partitions is displayed in the
right panel ... the user can examine the individual query benefit and the
average workload benefit".

Output: the suggested fragments per table, the per-query benefit table,
and a replication-budget sweep.  Expected shape: benefit grows with the
replication budget and then saturates.
"""

from repro.autopart import AutoPartAdvisor

from conftest import print_table


def test_fig3_partition_panel(sdss_env, sdss_inum, benchmark):
    catalog, workload = sdss_env
    advisor = AutoPartAdvisor(catalog, cost_model=sdss_inum)

    rec = benchmark(advisor.recommend, workload, 5_000)

    frag_rows = []
    for layout in rec.configuration.layouts:
        for frag in layout.fragments:
            frag_rows.append((layout.table_name, "{%s}" % ",".join(frag.columns)))
    for horizontal in rec.configuration.horizontals:
        frag_rows.append(
            (
                horizontal.table_name,
                "RANGE(%s) x%d" % (horizontal.column, horizontal.partition_count),
            )
        )
    print_table("FIG3: suggested partitions", ("table", "partition"), frag_rows)

    per_query = [
        ("q%d" % i, base, new, 100.0 * (base - new) / base if base else 0.0)
        for i, (__, base, new) in enumerate(rec.per_query)
    ]
    print_table(
        "FIG3: per-query benefit", ("query", "base", "new", "gain%"), per_query
    )
    print_table(
        "FIG3: workload summary",
        ("base", "new", "avg gain%"),
        [(rec.base_workload_cost, rec.predicted_workload_cost, rec.improvement_pct)],
    )

    assert rec.configuration.layouts, "wide SDSS table should get fragmented"
    assert rec.improvement_pct > 10.0
    assert all(new <= base + 1e-6 for __, base, new in rec.per_query)


def test_fig3_replication_budget_sweep(sdss_env, sdss_inum, benchmark):
    catalog, workload = sdss_env
    advisor = AutoPartAdvisor(catalog, cost_model=sdss_inum)
    table_pages = catalog.table("photoobj").pages
    budgets = [0, table_pages // 8, table_pages // 2, 2 * table_pages]

    def sweep():
        return [
            advisor.recommend(workload, replication_budget_pages=b).improvement_pct
            for b in budgets
        ]

    gains = benchmark(sweep)
    print_table(
        "FIG3: replication budget sweep",
        ("budget pages", "improvement %"),
        list(zip(budgets, gains)),
    )
    # Shape: more replication allowance never hurts; curve saturates.
    for tighter, looser in zip(gains, gains[1:]):
        assert looser >= tighter - 0.5
    assert gains[-1] - gains[-2] <= gains[1] - gains[0] + 5.0
