"""SC1 — Scenario 1: manual what-if design evaluation.

The user provides the workload and creates what-if partitions and indexes
through the interface; the tool presents the benefits of the new design,
the index interactions, and the rewritten queries.

Expected shape: the hand-picked positional design helps cone-search
queries dramatically, leaves unrelated queries untouched, and the whole
evaluation costs optimizer *calls*, not index builds.
"""

from repro.catalog import Index, VerticalFragment, VerticalLayout
from repro.designer import Designer

from conftest import print_table


def dba_design(catalog):
    hot = ("objid", "ra", "dec", "type", "rmag")
    cold = tuple(c for c in catalog.table("photoobj").column_names if c not in hot)
    return (
        [
            Index("photoobj", ("ra", "dec")),
            Index("photoobj", ("ra",)),
            Index("specobj", ("bestobjid",)),
        ],
        [
            VerticalLayout(
                "photoobj",
                (
                    VerticalFragment("photoobj", hot),
                    VerticalFragment("photoobj", cold),
                ),
            )
        ],
    )


def test_scenario1_whatif_evaluation(sdss_env, benchmark):
    catalog, workload = sdss_env
    designer = Designer(catalog)
    indexes, layouts = dba_design(catalog)

    evaluation = benchmark(
        designer.evaluate_design, workload, indexes, layouts
    )

    report = evaluation.report
    rows = [
        ("q%d" % i, b.base_cost, b.new_cost, b.improvement_pct)
        for i, b in enumerate(report.per_query)
    ]
    print_table("SC1: per-query benefit", ("query", "base", "new", "gain%"), rows)
    print_table(
        "SC1: workload benefit",
        ("base", "new", "avg gain%"),
        [(report.base_total, report.new_total, report.average_improvement_pct)],
    )
    if evaluation.rewritten_queries:
        print("\nSC1: first rewritten query:\n  %s" % evaluation.rewritten_queries[0])

    assert report.average_improvement_pct > 20.0
    assert any(b.improvement_pct > 80.0 for b in report.per_query)
    assert any(abs(b.improvement_pct) < 60.0 for b in report.per_query)
    assert evaluation.interaction_graph is not None
    assert evaluation.rewritten_queries


def test_scenario1_no_physical_changes(sdss_env):
    """What-if evaluation must leave the real catalog untouched."""
    catalog, workload = sdss_env
    designer = Designer(catalog)
    indexes, layouts = dba_design(catalog)
    before_indexes = set(ix.name for ix in catalog.indexes)
    before_pages = catalog.design_size_pages()
    designer.evaluate_design(workload, indexes, layouts)
    assert set(ix.name for ix in catalog.indexes) == before_indexes
    assert catalog.design_size_pages() == before_pages
