"""FIG2 — regenerate Figure 2: the index-interaction graph.

Paper artifact: "an undirected graph in which the vertices represent
indexes and the weights of the edges are the degree of interaction for a
pair of indexes", with a dynamic top-k edge filter.

Output: node list with standalone benefits, edge list with doi weights,
and the top-k filtered view.  Expected shape: overlapping indexes (e.g.
``ra`` vs ``(ra, dec)``) carry heavy edges; indexes serving disjoint
queries carry none.
"""

import pytest

from repro.catalog import Index
from repro.interaction import InteractionAnalyzer

from conftest import print_table


def candidate_set():
    """Overlapping candidates, as a DBA exploring alternatives would pick."""
    return [
        Index("photoobj", ("ra",)),
        Index("photoobj", ("ra", "dec")),
        Index("photoobj", ("type", "rmag")),
        Index("photoobj", ("rmag",)),
        Index("specobj", ("z",)),
        Index("specobj", ("z",), include=("bestobjid",)),
        Index("photoobj", ("objid",)),
    ]


def test_fig2_interaction_graph(sdss_env, sdss_inum, benchmark):
    catalog, workload = sdss_env
    analyzer = InteractionAnalyzer(sdss_inum, workload)
    candidates = candidate_set()

    graph = benchmark(analyzer.interaction_graph, candidates)

    rows = [
        (name, graph.graph.nodes[name]["benefit"])
        for name in sorted(graph.graph.nodes)
    ]
    print_table("FIG2: vertices (standalone benefit)", ("index", "benefit"), rows)
    edges = graph.edges_by_weight()
    print_table(
        "FIG2: edges (degree of interaction)",
        ("a", "b", "doi"),
        [(a, b, w) for a, b, w in edges],
    )
    print_table(
        "FIG2: top-3 filter (the demo's dynamic edge count)",
        ("a", "b", "doi"),
        [(a, b, w) for a, b, w in graph.top_edges(3)],
    )

    # Shape assertions: subsumed pairs interact, disjoint pairs do not.
    assert graph.graph.has_edge("ix_photoobj_ra", "ix_photoobj_ra_dec")
    strong = dict(((a, b), w) for a, b, w in edges)
    ra_pair = strong.get(("ix_photoobj_ra", "ix_photoobj_ra_dec")) or strong.get(
        ("ix_photoobj_ra_dec", "ix_photoobj_ra")
    )
    assert ra_pair is not None and ra_pair > 0.05
    assert not graph.graph.has_edge("ix_photoobj_ra", "ix_specobj_z")
    assert len(graph.top_edges(3)) <= 3


def test_fig2_ibg_vs_subset_enumeration(sdss_env, sdss_inum, benchmark):
    """What makes the graph *interactive*: the Index Benefit Graph answers
    the same doi queries from far fewer cost-oracle evaluations than
    enumerating the subset lattice."""
    catalog, workload = sdss_env
    candidates = candidate_set()

    subsets = InteractionAnalyzer(sdss_inum, workload, method="subsets")
    via_ibg = InteractionAnalyzer(sdss_inum, workload, method="ibg")

    a, b = candidates[0], candidates[1]  # the strongly interacting pair
    brute = subsets.doi(a, b, candidates)
    graph = via_ibg.ibg(candidates)
    fast = benchmark(graph.doi, a, b)

    print_table(
        "FIG2: doi(ra, ra_dec) by method",
        ("method", "doi", "oracle evaluations"),
        [
            ("subset enumeration", brute, len(subsets._cost_cache)),
            ("index benefit graph", fast, graph.build_evaluations),
        ],
    )
    assert fast == pytest.approx(brute, rel=0.1)
    assert graph.build_evaluations <= 2 ** len(candidates)


def test_fig2_stable_partition(sdss_env, sdss_inum, benchmark):
    """Companion analysis: Schnaitter's stable partitions of the set."""
    catalog, workload = sdss_env
    analyzer = InteractionAnalyzer(sdss_inum, workload)
    candidates = candidate_set()

    parts = benchmark(analyzer.stable_partition, candidates, 0.02)

    print_table(
        "FIG2: stable partitions (threshold 0.02)",
        ("group", "members"),
        [(i, ", ".join(ix.name for ix in part)) for i, part in enumerate(parts)],
    )
    by_member = {ix.name: i for i, part in enumerate(parts) for ix in part}
    assert by_member["ix_photoobj_ra"] == by_member["ix_photoobj_ra_dec"]
    assert len(parts) >= 2
