"""CL-INUM — the paper's claim that the INUM cache "speeds up the cost
estimation process ... by orders of magnitude" (§1, §3.2.1).

Method: evaluate many candidate configurations over the SDSS workload
twice — once by re-invoking the full optimizer per configuration, once
through INUM after its one-off warm-up — and compare both wall time and
optimizer-call counts.

Expected shape: INUM pays |interesting order vectors| optimizer calls
once, then evaluates configurations with zero further calls, at least an
order of magnitude faster than re-optimizing.
"""

import random
import time

from repro.cophy import candidate_indexes
from repro.inum import InumCostModel
from repro.optimizer import CostService
from repro.whatif import Configuration

from conftest import print_table

N_CONFIGS = 100


def make_configs(catalog, workload, n=N_CONFIGS, seed=0):
    candidates = candidate_indexes(catalog, workload, max_candidates=12)
    rng = random.Random(seed)
    return [
        Configuration(
            indexes=frozenset(rng.sample(candidates, rng.randint(0, 5)))
        )
        for __ in range(n)
    ]


def optimizer_eval(catalog, workload, configs):
    costs = []
    calls = 0
    for config in configs:
        service = CostService(config.apply(catalog))
        costs.append(service.workload_cost(workload))
        calls += service.optimizer_calls
    return costs, calls


def inum_eval(model, workload, configs):
    return [model.workload_cost(workload, config) for config in configs]


def test_claim_inum_speedup(sdss_env, benchmark):
    catalog, workload = sdss_env
    configs = make_configs(catalog, workload)

    # --- naive: full re-optimization per configuration -----------------
    t0 = time.perf_counter()
    naive_costs, naive_calls = optimizer_eval(catalog, workload, configs)
    t_naive = time.perf_counter() - t0

    # --- INUM: warm once, then analytic evaluations ---------------------
    model = InumCostModel(catalog)
    t0 = time.perf_counter()
    warm_calls = model.warm(workload)
    t_warm = time.perf_counter() - t0
    inum_eval(model, workload, configs)  # populate slot cache
    t0 = time.perf_counter()
    inum_costs = inum_eval(model, workload, configs)
    t_inum = time.perf_counter() - t0

    speedup = t_naive / max(t_inum, 1e-9)
    print_table(
        "CL-INUM: %d configuration evaluations" % N_CONFIGS,
        ("method", "seconds", "optimizer calls"),
        [
            ("re-optimize", t_naive, naive_calls),
            ("inum (warm)", t_warm, warm_calls),
            ("inum (eval)", t_inum, 0),
        ],
    )
    print_table("CL-INUM: speedup", ("evaluation speedup x",), [(speedup,)])

    errors = [
        abs(i - n) / n for i, n in zip(inum_costs, naive_costs) if n > 0
    ]
    print_table(
        "CL-INUM: accuracy vs optimizer",
        ("mean rel err", "max rel err"),
        [(sum(errors) / len(errors), max(errors))],
    )

    assert speedup > 10.0, "INUM must be at least an order of magnitude faster"
    assert max(errors) < 0.05, "INUM must stay faithful to the optimizer"
    assert naive_calls >= N_CONFIGS * len(workload) * 0.9
    assert warm_calls < naive_calls / 10

    benchmark(inum_eval, model, workload, configs[:20])


def test_claim_inum_calls_scale_with_orders_not_configs(sdss_env):
    """Optimizer-call accounting: warm-up cost is per query, not per config."""
    catalog, workload = sdss_env
    model = InumCostModel(catalog)
    warm_calls = model.warm(workload)
    before = model.precompute_calls
    for config in make_configs(catalog, workload, n=50, seed=3):
        model.workload_cost(workload, config)
    assert model.precompute_calls == before
    print_table(
        "CL-INUM: call accounting",
        ("warm calls", "calls during 50 evals"),
        [(warm_calls, model.precompute_calls - before)],
    )
