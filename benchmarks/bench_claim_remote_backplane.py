"""CL-REMOTE — cold warm-up through the distributed costing backplane.

The :class:`~repro.net.RemoteBackplane` claim: fanning cold INUM cache
builds across a fleet of runner nodes — each a separate ``python -m
repro runner`` process reached over the socket transport, holding its
own catalog rebuilt from the one-time catalog shipment, answering with
wire-format plan terms — scales warm-up across machines exactly the way
the process pool scales it across cores, and the transport adds nothing
to the results.

Method: the same 50-query SDSS cross-match workload as CL-PROC (the
expensive-build shape, ~12 plans per query).  Cold caches each leg.

* single-node: ``WorkloadEvaluator.warm_up`` on a fresh evaluator;
* runner fleet: ``RemoteBackplane.warm_up`` on a fresh evaluator
  against **two loopback runner subprocesses** (timing includes the
  handshake and catalog shipment — the honest cold cost; runner
  process start-up happens before the clock, as a real fleet is
  standing before work arrives).

The fleet must be at least 1.5x faster on ≥2 idle cores, and the
installed entries must be **bit-identical** to the single-node pool,
entry for entry — the network moves plan terms, it never changes them.

Like the other claim benches, the wall-clock floor is relaxable for
noisy or undersized CI hardware (``REMOTE_BACKPLANE_SPEEDUP_FLOOR=0``
checks only the equivalence invariants); on fewer cores than runners
the floor is skipped automatically.
"""

import os
import random
import re
import subprocess
import sys
import time

from repro.evaluation import WorkloadEvaluator
from repro.net import RemoteBackplane
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

QUERIES = 50
RUNNERS = 2
SPEEDUP_FLOOR = float(os.environ.get("REMOTE_BACKPLANE_SPEEDUP_FLOOR", "1.5"))


def cross_match(rng):
    """A three-way spectroscopic cross-match — the heavy-build shape."""
    return (
        "SELECT p.objid, s.z, n.distance "
        "FROM photoobj p, specobj s, neighbors n "
        "WHERE p.objid = s.bestobjid AND p.objid = n.objid "
        "AND s.z > %.3f AND n.distance < %.4f AND p.rmag < %.2f "
        "ORDER BY p.ra LIMIT 500"
        % (
            rng.uniform(0.0, 5.0),
            rng.uniform(0.005, 0.08),
            rng.uniform(18.0, 23.0),
        )
    )


def environment():
    catalog = sdss_catalog(scale=0.05)
    rng = random.Random(17)
    workload = [cross_match(rng) for __ in range(QUERIES)]
    return catalog, workload


def spawn_runners(count):
    """Start *count* loopback runner subprocesses; returns
    ``(processes, addresses)`` once every node has printed its bound
    address (i.e. is accepting connections)."""
    processes, addresses = [], []
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )) if p
    )
    for __ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "runner",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        processes.append(proc)
        line = proc.stdout.readline()
        match = re.search(r"listening on (\S+)", line)
        if not match:
            raise RuntimeError("runner failed to start: %r" % (line,))
        addresses.append(match.group(1))
    return processes, addresses


def test_claim_remote_backplane_warm_up():
    catalog, workload = environment()

    # Untimed priming: imports, parser tables, catalog stats.
    WorkloadEvaluator(catalog).warm_up(sdss_workload(n_queries=2, seed=1))

    single = WorkloadEvaluator(catalog)
    t0 = time.perf_counter()
    single_calls = single.warm_up(workload)
    t_single = time.perf_counter() - t0

    processes, addresses = spawn_runners(RUNNERS)
    try:
        remote = WorkloadEvaluator(catalog)
        t0 = time.perf_counter()
        with RemoteBackplane(remote, addresses, retries=1) as backplane:
            remote_calls = backplane.warm_up(workload)
        t_remote = time.perf_counter() - t0
    finally:
        for proc in processes:
            proc.terminate()
        for proc in processes:
            proc.wait(timeout=10)

    speedup = t_single / max(t_remote, 1e-9)
    print_table(
        "CL-REMOTE: cold warm_up, %d queries (%d runner nodes, %s cores)"
        % (QUERIES, RUNNERS, os.cpu_count()),
        ("method", "seconds", "builds", "entries"),
        [
            ("single node", t_single, single_calls, len(single.pool)),
            ("runner fleet", t_remote, remote_calls, len(remote.pool)),
        ],
    )

    # Equivalence invariants gate everywhere, floor or not: the fleet
    # moves plan terms over sockets, it never changes them.
    assert remote_calls == single_calls
    assert set(remote.pool.signatures()) == set(single.pool.signatures())
    for signature in single.pool.signatures():
        ours = remote.pool.get(signature)
        theirs = single.pool.get(signature)
        assert ours.plans == theirs.plans, (
            "socket-shipped plan terms diverged for %r" % (signature,)
        )
        assert ours.bound_query.sql == theirs.bound_query.sql

    if (os.cpu_count() or 1) < RUNNERS:
        print(
            "only %s core(s) < %d runners: wall-clock floor skipped "
            "(equivalence asserted above)" % (os.cpu_count(), RUNNERS)
        )
        return
    assert speedup >= SPEEDUP_FLOOR, (
        "runner-fleet warm_up must be at least %.1fx the single-node "
        "cold build (got %.2fx)" % (SPEEDUP_FLOOR, speedup)
    )
