"""CL-BATCH — batched configuration pricing through the WorkloadEvaluator.

The paper's interactivity claim rests on pricing *many* hypothetical
configurations quickly.  The seed did this one (query, configuration)
pair at a time through :class:`InumCostModel`; the
:class:`~repro.evaluation.WorkloadEvaluator` compiles the workload once
and prices the whole configuration sweep in a vectorized pass over the
shared cache pool (per-slot, per-statement and per-table-design
memoization).

Method: a 50-query SDSS workload × 20 candidate configurations, both
paths warmed the same way (plan caches built, one populating sweep),
then one timed sweep each — the steady state an interactive session
lives in.  The batched path must be at least 2x faster and numerically
identical.
"""

import os
import random
import time

from repro.cophy import candidate_indexes
from repro.evaluation import WorkloadEvaluator
from repro.inum import InumCostModel
from repro.whatif import Configuration
from repro.workloads import sdss_catalog, sdss_workload

from conftest import print_table

N_QUERIES = 50
N_CONFIGS = 20

# The claim is >=2x on quiet hardware; CI smoke jobs on shared runners
# relax the floor (they check direction, not magnitude).
SPEEDUP_FLOOR = float(os.environ.get("BATCHED_EVAL_SPEEDUP_FLOOR", "2.0"))


def make_sweep(seed=5):
    catalog = sdss_catalog(scale=0.1)
    workload = list(sdss_workload(n_queries=N_QUERIES, seed=11))
    candidates = candidate_indexes(catalog, workload, max_candidates=16)
    rng = random.Random(seed)
    configs = [
        Configuration(indexes=frozenset(rng.sample(candidates, rng.randint(0, 6))))
        for __ in range(N_CONFIGS)
    ]
    return catalog, workload, configs


def test_claim_batched_eval_speedup(benchmark):
    catalog, workload, configs = make_sweep()

    percall = InumCostModel(catalog)
    percall.warm(workload)
    batched = WorkloadEvaluator(catalog)
    batched.warm(workload)

    # Populate both sides' memos (the seed bench did the same for INUM's
    # slot cache), then time the steady-state sweep.
    for config in configs:
        percall.workload_cost(workload, config)
    batched.evaluate_configurations(workload, configs)

    def timed(fn, repeats=3):
        # Best-of-N: one noisy sample must not decide a timing claim.
        best = float("inf")
        for __ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - t0)
        return best, value

    t_percall, percall_costs = timed(
        lambda: [percall.workload_cost(workload, c) for c in configs]
    )
    t_batched, result = timed(
        lambda: batched.evaluate_configurations(workload, configs)
    )
    batched_costs = result.totals

    speedup = t_percall / max(t_batched, 1e-9)
    print_table(
        "CL-BATCH: %d queries x %d configurations" % (N_QUERIES, N_CONFIGS),
        ("method", "seconds", "optimizer calls during sweep"),
        [
            ("per-call", t_percall, 0),
            ("batched", t_batched, 0),
        ],
    )
    print_table(
        "CL-BATCH: speedup and pool stats",
        ("speedup x", "pool entries", "hit rate"),
        [(speedup, len(batched.pool), batched.pool.stats.hit_rate)],
    )

    assert speedup >= SPEEDUP_FLOOR, (
        "batched evaluation must be at least %.1fx faster than per-call "
        "(got %.1fx)" % (SPEEDUP_FLOOR, speedup)
    )
    for a, b in zip(batched_costs, percall_costs):
        assert a == b, "batched costs must equal per-call costs exactly"

    benchmark(batched.evaluate_configurations, workload, configs)


def test_claim_batched_eval_parallel_determinism():
    """Thread fan-out across queries must not change a single cost.

    The parallel leg runs on a *fresh* evaluator so it actually computes
    (a shared evaluator would serve the sequential run's memo)."""
    catalog, workload, configs = make_sweep(seed=9)
    sequential = WorkloadEvaluator(catalog).evaluate_configurations(
        workload, configs
    )
    parallel = WorkloadEvaluator(catalog).evaluate_configurations(
        workload, configs, parallel=True, max_workers=4
    )
    assert sequential.matrix == parallel.matrix
    print_table(
        "CL-BATCH: parallel determinism",
        ("configs", "statements", "identical"),
        [(len(configs), len(sequential.weights), True)],
    )
