"""CL-ZSIZE — the paper's §2 critique of prior PostgreSQL advisors:

    "Monteiro et al. implement an index suggestion tool for PostgreSQL.
     They, however, assume the size of the indexes to be zero, which
     severely affects the accuracy of the optimizer when what-if indexes
     are used."

Method: run the same advisor pipeline twice — once with honest what-if
index costing, once with the zero-size assumption
(``assume_zero_size_indexes``) — and judge *both* recommendations under
the honest cost model.

Expected shape: the zero-size advisor systematically overestimates index
benefit (its predicted costs are far below what the honest model assigns
to the same design), and its chosen design is no better (typically worse)
in true cost.
"""

import pytest

from repro.cophy import CoPhyAdvisor
from repro.inum import InumCostModel
from repro.optimizer import PlannerSettings

from conftest import print_table


def test_claim_zero_size_whatif_misleads(sdss_env, benchmark):
    catalog, __ = sdss_env
    # Index-only-scan-heavy queries: with honest costing the leaf pages ARE
    # the cost, so pretending indexes have zero size is maximally wrong.
    workload = [
        ("SELECT COUNT(*) FROM photoobj WHERE ra BETWEEN 0 AND 300", 1.0),
        ("SELECT COUNT(*) FROM photoobj WHERE dec BETWEEN -20 AND 60", 1.0),
        ("SELECT MIN(rmag) FROM photoobj WHERE rmag < 24", 1.0),
        ("SELECT COUNT(*) FROM photoobj WHERE gmag BETWEEN 16 AND 26", 1.0),
    ]
    budget = sum(t.pages for t in catalog.tables)  # room for every candidate

    honest_model = InumCostModel(catalog)
    honest = CoPhyAdvisor(catalog, cost_model=honest_model).recommend(
        workload, budget
    )

    zero_settings = PlannerSettings(assume_zero_size_indexes=True)
    zero_model = InumCostModel(catalog, zero_settings)
    zero = CoPhyAdvisor(catalog, cost_model=zero_model).recommend(
        workload, budget
    )

    # Judge both configurations with the honest model.
    true_cost_honest = honest_model.workload_cost(
        workload, honest.configuration
    )
    true_cost_zero = honest_model.workload_cost(workload, zero.configuration)

    print_table(
        "CL-ZSIZE: the zero-size what-if flaw",
        ("advisor", "predicted", "true cost", "prediction error %"),
        [
            (
                "honest",
                honest.predicted_workload_cost,
                true_cost_honest,
                100.0
                * abs(honest.predicted_workload_cost - true_cost_honest)
                / true_cost_honest,
            ),
            (
                "zero-size",
                zero.predicted_workload_cost,
                true_cost_zero,
                100.0
                * abs(zero.predicted_workload_cost - true_cost_zero)
                / true_cost_zero,
            ),
        ],
    )
    print_table(
        "CL-ZSIZE: design quality (true cost, lower=better)",
        ("honest design", "zero-size design"),
        [(true_cost_honest, true_cost_zero)],
    )

    # The honest advisor predicts its own outcome accurately...
    assert honest.predicted_workload_cost == pytest.approx(
        true_cost_honest, rel=0.02
    )
    # ...the zero-size advisor severely underestimates true cost
    # ("severely affects the accuracy of the optimizer")...
    assert zero.predicted_workload_cost < true_cost_zero * 0.9
    # ...and its design is no better under the truth.
    assert true_cost_honest <= true_cost_zero + 1e-6

    benchmark.pedantic(
        lambda: CoPhyAdvisor(catalog, cost_model=InumCostModel(catalog)).recommend(
            workload, budget
        ),
        rounds=1,
        iterations=1,
    )


def test_claim_zero_size_inflates_per_query_benefit(sdss_env):
    """Per-query view: zero-size costing claims gains the honest model
    denies, on exactly the index-heavy queries."""
    catalog, workload = sdss_env
    from repro.catalog import Index
    from repro.whatif import Configuration

    config = Configuration.of(Index("photoobj", ("dec",)))
    honest = InumCostModel(catalog)
    zero = InumCostModel(catalog, PlannerSettings(assume_zero_size_indexes=True))

    sql = "SELECT ra, dec FROM photoobj WHERE dec BETWEEN 10 AND 30"
    honest_gain = honest.cost(sql) - honest.cost(sql, config)
    zero_gain = zero.cost(sql) - zero.cost(sql, config)
    print_table(
        "CL-ZSIZE: claimed benefit of an index on a 11% dec range",
        ("model", "claimed gain"),
        [("honest", honest_gain), ("zero-size", zero_gain)],
    )
    assert zero_gain > honest_gain
