"""Join, sort, materialize and aggregate cost construction.

The shapes mirror PostgreSQL: nested loops pay the inner rescan cost per
outer row (parameterized index probes make this cheap), hash joins pay a
build+probe CPU cost and go multi-batch past ``work_mem``, merge joins
require sorted inputs and may add explicit Sort nodes.
"""

import math

from repro.optimizer.plan import (
    Aggregate,
    HashJoin,
    Limit,
    Materialize,
    MergeJoin,
    NestLoop,
    Sort,
)
from repro.optimizer.settings import DISABLE_COST
from repro.util import safe_log2

TUPLE_OVERHEAD = 24  # per-row memory overhead during sorts/hashes
PAGE_BYTES = 8192
MERGE_ORDER = 6  # polyphase merge fan-in for external sorts


def ordering_satisfies(provided, required):
    """True if pathkeys *provided* begin with *required*."""
    if not required:
        return True
    if len(provided) < len(required):
        return False
    return tuple(provided[: len(required)]) == tuple(required)


def sort_path(child, sort_keys, settings):
    """Wrap *child* in a Sort producing *sort_keys* ordering."""
    rows = max(1.0, child.rows)
    bytes_needed = rows * (child.width + TUPLE_OVERHEAD)
    comparison = 2.0 * settings.cpu_operator_cost
    sort_cpu = comparison * rows * safe_log2(rows)
    io = 0.0
    external = bytes_needed > settings.work_mem
    if external:
        pages = max(1.0, bytes_needed / PAGE_BYTES)
        runs = max(2.0, bytes_needed / settings.work_mem)
        passes = max(1.0, math.ceil(math.log(runs) / math.log(MERGE_ORDER)))
        io = 2.0 * pages * passes * settings.seq_page_cost * 0.75
    startup = child.total_cost + sort_cpu + io
    total = startup + settings.cpu_operator_cost * rows
    total += 0.0 if settings.enable_sort else DISABLE_COST
    return Sort(
        startup_cost=startup,
        total_cost=total,
        rows=child.rows,
        width=child.width,
        ordering=tuple(sort_keys),
        children=[child],
        sort_keys=tuple(sort_keys),
        external=external,
    )


def materialize_path(child, settings):
    rows = max(1.0, child.rows)
    total = child.total_cost + 2.0 * settings.cpu_operator_cost * rows
    node = Materialize(
        startup_cost=child.startup_cost,
        total_cost=total,
        rows=child.rows,
        width=child.width,
        ordering=child.ordering,
        children=[child],
    )
    if not settings.enable_material:
        node.total_cost += DISABLE_COST
    return node


def nestloop_path(outer, inner, join_clauses, rows_out, settings):
    """Nested loop with *inner* rescanned per outer row.

    If the inner is parameterized its costs are already per probe; otherwise
    the rescan cost comes from :meth:`Plan.rescan_cost`.
    """
    outer_rows = max(1.0, outer.rows)
    if inner.is_parameterized:
        run_cost = outer.total_cost + outer_rows * inner.total_cost
        pair_evals = outer_rows * max(1.0, inner.rows)
    else:
        run_cost = (
            outer.total_cost + inner.total_cost + (outer_rows - 1.0) * inner.rescan_cost()
        )
        pair_evals = outer_rows * max(1.0, inner.rows)
    clause_cpu = settings.cpu_operator_cost * max(1, len(join_clauses)) * pair_evals
    output_cpu = settings.cpu_tuple_cost * max(1.0, rows_out)
    total = run_cost + clause_cpu + output_cpu
    if not settings.enable_nestloop:
        total += DISABLE_COST
    return NestLoop(
        startup_cost=outer.startup_cost + inner.startup_cost,
        total_cost=total,
        rows=rows_out,
        width=outer.width + inner.width,
        ordering=outer.ordering,
        children=[outer, inner],
        join_clauses=tuple(join_clauses),
    )


def hashjoin_path(outer, inner, join_clauses, rows_out, settings):
    """Hash join building on *inner*, probing with *outer*."""
    if not join_clauses:
        return None
    inner_rows = max(1.0, inner.rows)
    outer_rows = max(1.0, outer.rows)
    inner_bytes = inner_rows * (inner.width + TUPLE_OVERHEAD)
    batches = 1
    io = 0.0
    if inner_bytes > settings.work_mem:
        batches = 2 ** math.ceil(math.log2(inner_bytes / settings.work_mem))
        inner_pages = inner_bytes / PAGE_BYTES
        outer_pages = outer_rows * (outer.width + TUPLE_OVERHEAD) / PAGE_BYTES
        io = 2.0 * (inner_pages + outer_pages) * settings.seq_page_cost
    n_clauses = max(1, len(join_clauses))
    build_cpu = (settings.cpu_operator_cost * n_clauses + settings.cpu_tuple_cost) * inner_rows
    probe_cpu = settings.cpu_operator_cost * n_clauses * outer_rows
    output_cpu = settings.cpu_tuple_cost * max(1.0, rows_out)
    startup = inner.total_cost + build_cpu + outer.startup_cost
    total = outer.total_cost + inner.total_cost + build_cpu + probe_cpu + output_cpu + io
    if not settings.enable_hashjoin:
        total += DISABLE_COST
    return HashJoin(
        startup_cost=startup,
        total_cost=total,
        rows=rows_out,
        width=outer.width + inner.width,
        ordering=(),
        children=[outer, inner],
        join_clauses=tuple(join_clauses),
        batches=batches,
    )


def mergejoin_path(outer, inner, join_clauses, merge_keys_outer, merge_keys_inner,
                   rows_out, settings):
    """Merge join; callers must pass inputs already ordered on the merge keys
    (use :func:`sort_path` to establish the order)."""
    if not join_clauses:
        return None
    if not ordering_satisfies(outer.ordering, merge_keys_outer):
        outer = sort_path(outer, merge_keys_outer, settings)
    if not ordering_satisfies(inner.ordering, merge_keys_inner):
        inner = sort_path(inner, merge_keys_inner, settings)
    outer_rows = max(1.0, outer.rows)
    inner_rows = max(1.0, inner.rows)
    n_clauses = max(1, len(join_clauses))
    scan_cpu = settings.cpu_operator_cost * n_clauses * (outer_rows + inner_rows * 1.1)
    output_cpu = settings.cpu_tuple_cost * max(1.0, rows_out)
    total = outer.total_cost + inner.total_cost + scan_cpu + output_cpu
    if not settings.enable_mergejoin:
        total += DISABLE_COST
    return MergeJoin(
        startup_cost=max(outer.startup_cost, inner.startup_cost),
        total_cost=total,
        rows=rows_out,
        width=outer.width + inner.width,
        ordering=outer.ordering,
        children=[outer, inner],
        join_clauses=tuple(join_clauses),
    )


def aggregate_paths(child, bound_query, groups, settings):
    """Hash and (when ordering permits) sorted aggregation over *child*."""
    rows = max(1.0, child.rows)
    n_aggs = max(1, len(bound_query.aggregates))
    group_cols = bound_query.group_by
    out = []
    if not group_cols:
        total = (
            child.total_cost
            + settings.cpu_operator_cost * n_aggs * rows
            + settings.cpu_tuple_cost
        )
        out.append(
            Aggregate(
                startup_cost=total - settings.cpu_tuple_cost,
                total_cost=total,
                rows=1.0,
                width=8 * n_aggs,
                children=[child],
                strategy="plain",
                n_aggregates=n_aggs,
            )
        )
        return out

    width = 8 * (len(group_cols) + n_aggs)
    transition = settings.cpu_operator_cost * (n_aggs + len(group_cols)) * rows
    # Hash aggregation: no input ordering needed, unordered output.
    hash_total = child.total_cost + transition + settings.cpu_tuple_cost * groups
    out.append(
        Aggregate(
            startup_cost=hash_total - settings.cpu_tuple_cost * groups,
            total_cost=hash_total,
            rows=groups,
            width=width,
            children=[child],
            strategy="hash",
            group_columns=tuple(group_cols),
            n_aggregates=n_aggs,
        )
    )
    # Sorted aggregation: needs group-column ordering; preserves it.
    group_keys = tuple((a, c, True) for a, c in group_cols)
    sorted_child = child
    if not ordering_satisfies(child.ordering, group_keys):
        sorted_child = sort_path(child, group_keys, settings)
    sorted_total = sorted_child.total_cost + transition + settings.cpu_tuple_cost * groups
    out.append(
        Aggregate(
            startup_cost=sorted_child.total_cost,
            total_cost=sorted_total,
            rows=groups,
            width=width,
            ordering=group_keys,
            children=[sorted_child],
            strategy="sorted",
            group_columns=tuple(group_cols),
            n_aggregates=n_aggs,
        )
    )
    return out


def limit_path(child, count, settings):
    """Apply LIMIT: pay startup plus the fetched fraction of run cost."""
    rows = max(1.0, child.rows)
    fraction = min(1.0, count / rows)
    total = child.startup_cost + (child.total_cost - child.startup_cost) * fraction
    return Limit(
        startup_cost=child.startup_cost,
        total_cost=total,
        rows=min(float(count), child.rows),
        width=child.width,
        ordering=child.ordering,
        children=[child],
        count=count,
    )
