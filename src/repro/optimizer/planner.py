"""The planner: Selinger dynamic programming over join orders.

``plan_query`` is the single entry point.  It keeps, per relation subset,
the cheapest path for every distinct output ordering (interesting orders),
which both merge joins and the INUM cost model rely on.
"""

import itertools

from repro.optimizer import joins as J
from repro.optimizer import paths as P
from repro.optimizer.selectivity import (
    conjunction_selectivity,
    group_count,
    join_selectivity,
)
from repro.optimizer.settings import DEFAULT_SETTINGS
from repro.util import PlanningError

MAX_PATHS_PER_SET = 12


def plan_query(bound_query, catalog, settings=None):
    """Plan *bound_query* against *catalog*; returns the cheapest Plan."""
    settings = settings or DEFAULT_SETTINGS
    planner = _Planner(bound_query, catalog, settings)
    return planner.plan()


class _PathSet:
    """Cheapest path per distinct ordering for one relation subset."""

    def __init__(self):
        self._paths = []

    def add(self, path):
        if path is None:
            return
        kept = []
        for existing in self._paths:
            if (
                existing.total_cost <= path.total_cost
                and J.ordering_satisfies(existing.ordering, path.ordering)
            ):
                return  # dominated: no cheaper and no better ordered
            if (
                path.total_cost <= existing.total_cost
                and J.ordering_satisfies(path.ordering, existing.ordering)
            ):
                continue  # existing is dominated, drop it
            kept.append(existing)
        kept.append(path)
        kept.sort(key=lambda p: p.total_cost)
        del kept[MAX_PATHS_PER_SET:]
        self._paths = kept

    def __iter__(self):
        return iter(self._paths)

    def __len__(self):
        return len(self._paths)

    def cheapest(self):
        if not self._paths:
            raise PlanningError("no path produced for a relation subset")
        return self._paths[0]


class _Planner:
    def __init__(self, bound_query, catalog, settings):
        self.q = bound_query
        self.catalog = catalog
        self.settings = settings
        self.aliases = list(bound_query.tables)
        self._geometry = {
            alias: P.relation_geometry(bound_query, alias, catalog)
            for alias in self.aliases
        }
        self._filter_sel = {
            alias: conjunction_selectivity(
                bound_query.filters_for(alias), bound_query.table_for(alias)
            )
            for alias in self.aliases
        }

    # ------------------------------------------------------------------

    def plan(self):
        best = self._join_search()
        top = self._finalize(best)
        return top

    # ------------------------------------------------------------------
    # Cardinality model (shared by every path for the same subset).
    # ------------------------------------------------------------------

    def subset_rows(self, subset):
        rows = 1.0
        for alias in subset:
            rows *= self._geometry[alias].rows * self._filter_sel[alias]
        for clause in self.q.joins:
            if clause.left_alias in subset and clause.right_alias in subset:
                rows *= join_selectivity(
                    self.q.table_for(clause.left_alias),
                    clause.left_column,
                    self.q.table_for(clause.right_alias),
                    clause.right_column,
                )
        return max(1e-9, rows)

    # ------------------------------------------------------------------
    # Base relations.
    # ------------------------------------------------------------------

    def _interesting_columns(self, alias):
        """Columns whose ordering could help upstream operators."""
        cols = set()
        for a, c, __ in self.q.order_by:
            if a == alias:
                cols.add(c)
        for a, c in self.q.group_by:
            if a == alias:
                cols.add(c)
        for clause in self.q.joins_for(alias):
            col, __, __ = clause.side_for(alias)
            cols.add(col)
        return cols

    def _base_paths(self):
        table_paths = {}
        for alias in self.aliases:
            pset = _PathSet()
            for path in P.scan_paths(
                self.q,
                alias,
                self.catalog,
                self.settings,
                interesting_columns=self._interesting_columns(alias),
            ):
                pset.add(path)
            if not len(pset):
                raise PlanningError("no access path for %r" % (alias,))
            table_paths[frozenset((alias,))] = pset
        return table_paths

    # ------------------------------------------------------------------
    # Join enumeration.
    # ------------------------------------------------------------------

    def _join_search(self):
        sets = self._base_paths()
        n = len(self.aliases)
        if n == 1:
            return sets[frozenset(self.aliases)]
        for size in range(2, n + 1):
            for combo in itertools.combinations(self.aliases, size):
                subset = frozenset(combo)
                pset = _PathSet()
                found_connected = False
                for left, right in self._splits(subset):
                    clauses = self._clauses_between(left, right)
                    if clauses:
                        found_connected = True
                    if left not in sets or right not in sets:
                        continue
                    self._join_pair(sets[left], sets[right], clauses, subset, pset)
                if not found_connected:
                    # Disconnected join graph: cartesian product as last resort.
                    for left, right in self._splits(subset):
                        if left not in sets or right not in sets:
                            continue
                        self._join_pair(sets[left], sets[right], (), subset, pset)
                if len(pset):
                    sets[subset] = pset
        full = frozenset(self.aliases)
        if full not in sets:
            raise PlanningError("join search failed to cover all relations")
        return sets[full]

    def _splits(self, subset):
        members = sorted(subset)
        seen = set()
        for r in range(1, len(members)):
            for combo in itertools.combinations(members, r):
                left = frozenset(combo)
                if left in seen:
                    continue
                right = subset - left
                seen.add(left)
                seen.add(right)
                yield left, right
                yield right, left

    def _clauses_between(self, left, right):
        return tuple(
            c
            for c in self.q.joins
            if (c.left_alias in left and c.right_alias in right)
            or (c.left_alias in right and c.right_alias in left)
        )

    def _join_pair(self, outer_set, inner_set, clauses, subset, pset):
        rows_out = self.subset_rows(subset)
        settings = self.settings
        inner_aliases = self._aliases_of(inner_set)
        for outer in outer_set:
            for inner in inner_set:
                pset.add(J.nestloop_path(outer, inner, clauses, rows_out, settings))
                if not inner.is_parameterized and settings.enable_material:
                    pset.add(
                        J.nestloop_path(
                            outer,
                            J.materialize_path(inner, settings),
                            clauses,
                            rows_out,
                            settings,
                        )
                    )
                if clauses:
                    pset.add(J.hashjoin_path(outer, inner, clauses, rows_out, settings))
                    keys_outer, keys_inner = self._merge_keys(clauses, outer, inner)
                    pset.add(
                        J.mergejoin_path(
                            outer, inner, clauses, keys_outer, keys_inner,
                            rows_out, settings,
                        )
                    )
            # Parameterized index nested loop: only when the inner side is a
            # single base relation probed on its join columns.
            if clauses and len(inner_aliases) == 1:
                inner_alias = next(iter(inner_aliases))
                param_cols = tuple(
                    clause.side_for(inner_alias)[0]
                    for clause in clauses
                    if clause.involves(inner_alias)
                )
                for param in P.parameterized_paths(
                    self.q, inner_alias, self.catalog, settings, param_cols
                ):
                    pset.add(
                        J.nestloop_path(outer, param, clauses, rows_out, settings)
                    )

    def _aliases_of(self, path_set_key_or_paths):
        if isinstance(path_set_key_or_paths, frozenset):
            return path_set_key_or_paths
        aliases = set()
        for path in path_set_key_or_paths:
            for node in path.walk():
                alias = getattr(node, "alias", "")
                if alias:
                    aliases.add(alias)
        return aliases

    def _merge_keys(self, clauses, outer, inner):
        outer_aliases = self._aliases_of([outer])
        keys_outer, keys_inner = [], []
        for clause in clauses:
            if clause.left_alias in outer_aliases:
                keys_outer.append((clause.left_alias, clause.left_column, True))
                keys_inner.append((clause.right_alias, clause.right_column, True))
            else:
                keys_outer.append((clause.right_alias, clause.right_column, True))
                keys_inner.append((clause.left_alias, clause.left_column, True))
        return tuple(keys_outer), tuple(keys_inner)

    # ------------------------------------------------------------------
    # Grouping, ordering, limit.
    # ------------------------------------------------------------------

    def _finalize(self, path_set):
        candidates = list(path_set)
        if self.q.is_aggregate or self.q.group_by:
            groups = group_count(self.q, max(p.rows for p in candidates))
            aggregated = []
            for path in candidates:
                aggregated.extend(
                    J.aggregate_paths(path, self.q, groups, self.settings)
                )
            candidates = aggregated

        if self.q.order_by:
            required = tuple(self.q.order_by)
            ordered = []
            for path in candidates:
                if J.ordering_satisfies(path.ordering, required):
                    ordered.append(path)
                else:
                    ordered.append(J.sort_path(path, required, self.settings))
            candidates = ordered

        if self.q.limit is not None:
            candidates = [
                J.limit_path(path, self.q.limit, self.settings) for path in candidates
            ]

        best = min(candidates, key=lambda p: p.total_cost)
        return best
