"""Selectivity estimation: bound filters and join clauses -> fractions.

Follows PostgreSQL's estimator structure: per-clause selectivities from
MCVs + histograms, combined under the attribute-independence assumption;
equi-join selectivity ``1 / max(nd_left, nd_right)``.
"""

from repro.util import clamp

DEFAULT_EQ_SEL = 0.005
DEFAULT_RANGE_SEL = 1.0 / 3.0
DEFAULT_NE_SEL = 1.0 - DEFAULT_EQ_SEL


def filter_selectivity(bound_filter, table):
    """Selectivity of one :class:`~repro.sql.binder.BoundFilter`."""
    stats = table.stats(bound_filter.column)
    kind = bound_filter.kind
    if kind == "eq":
        return clamp(stats.eq_fraction(bound_filter.value), 0.0, 1.0)
    if kind == "ne":
        eq = stats.eq_fraction(bound_filter.value)
        return clamp(stats.nonnull_frac - eq, 0.0, 1.0)
    if kind == "range":
        return clamp(
            stats.range_fraction(
                low=bound_filter.low,
                high=bound_filter.high,
                low_inclusive=bound_filter.low_inclusive,
                high_inclusive=bound_filter.high_inclusive,
            ),
            0.0,
            1.0,
        )
    if kind == "in":
        total = sum(stats.eq_fraction(v) for v in bound_filter.values)
        return clamp(total, 0.0, 1.0)
    if kind == "isnull":
        return clamp(stats.null_frac, 0.0, 1.0)
    if kind == "notnull":
        return clamp(stats.nonnull_frac, 0.0, 1.0)
    raise ValueError("unknown filter kind %r" % (kind,))


def conjunction_selectivity(filters, table):
    """Combined selectivity of a conjunct list (independence assumption)."""
    sel = 1.0
    for f in filters:
        sel *= filter_selectivity(f, table)
    return clamp(sel, 0.0, 1.0)


def equality_fraction(table, column):
    """Average fraction of rows matching an equality probe on *column*
    (used for parameterized index scans on join keys): ``1 / n_distinct``."""
    stats = table.stats(column)
    return clamp(stats.nonnull_frac / max(1.0, stats.n_distinct), 0.0, 1.0)


def join_selectivity(left_table, left_column, right_table, right_column):
    """Equi-join selectivity: ``1 / max(nd_left, nd_right)`` scaled by the
    non-null fractions (PostgreSQL's ``eqjoinsel`` without MCV matching)."""
    ls = left_table.stats(left_column)
    rs = right_table.stats(right_column)
    nd = max(1.0, ls.n_distinct, rs.n_distinct)
    return clamp(ls.nonnull_frac * rs.nonnull_frac / nd, 0.0, 1.0)


def distinct_after_filter(table, column, input_rows):
    """Estimated number of distinct values of *column* among *input_rows*
    surviving rows (cap n_distinct by the row count)."""
    stats = table.stats(column)
    return max(1.0, min(stats.n_distinct, input_rows))


def group_count(bound_query, input_rows):
    """Estimated number of GROUP BY groups (product of per-column distincts,
    capped by the input cardinality)."""
    if not bound_query.group_by:
        return 1.0
    groups = 1.0
    for alias, column in bound_query.group_by:
        table = bound_query.table_for(alias)
        groups *= max(1.0, table.stats(column).n_distinct)
    return max(1.0, min(groups, input_rows))
