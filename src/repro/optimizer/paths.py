"""Access-path generation and costing for base relations.

For one table reference the planner considers:

* sequential scan (or AppendScan over pruned horizontal partitions,
  FragmentScan over a vertical layout),
* index scans for every index whose key prefix matches sargable filters,
* index-only scans when the index covers all referenced columns,
* bitmap heap scans (good for medium-selectivity, uncorrelated keys),
* "ordering-only" full index scans when an index's leading column is
  *interesting* (ORDER BY / GROUP BY / merge-joinable),
* parameterized index scans for nested-loop inners, where a join key is
  treated as an equality probe.

Cost formulas follow PostgreSQL's ``costsize.c`` shapes, including the
Mackert–Lohman page-fetch estimate and correlation interpolation between
the best-case (clustered) and worst-case (random) heap access cost.
"""

import math
from dataclasses import dataclass, replace

from repro.optimizer.plan import (
    AppendScan,
    BitmapAndScan,
    BitmapHeapScan,
    FragmentScan,
    IndexScan,
    SeqScan,
)
from repro.optimizer.selectivity import (
    conjunction_selectivity,
    equality_fraction,
    filter_selectivity,
)
from repro.util import ceil_div, clamp


@dataclass
class RelationGeometry:
    """Physical footprint of one table reference after partition effects."""

    table: object
    alias: str
    rows: float  # rows that any scan must consider (after pruning)
    scan_pages: float  # pages a full scan reads
    fetch_pages: float  # pages index heap-fetches target
    fragments: tuple = ()  # chosen vertical fragments, if any
    partitions_scanned: int = 0
    partitions_total: int = 0
    prune_fraction: float = 1.0


def relation_geometry(bound_query, alias, catalog):
    """Compute the effective size of *alias* given partition layouts."""
    table = bound_query.table_for(alias)
    needed = bound_query.referenced_columns(alias)
    rows = float(table.row_count)
    scan_pages = float(table.pages)
    fetch_pages = float(table.pages)
    fragments = ()
    partitions_scanned = 0
    partitions_total = 0
    prune_fraction = 1.0

    layout = catalog.vertical_layout(table.name)
    if layout is not None:
        chosen = tuple(layout.fragments_for(needed or set(table.column_names)))
        fragments = chosen
        scan_pages = float(sum(f.pages(table) for f in chosen))
        fetch_pages = scan_pages

    horizontal = catalog.horizontal_partitioning(table.name)
    if horizontal is not None:
        prune_fraction, partitions_scanned = _prune(bound_query, alias, table, horizontal)
        partitions_total = horizontal.partition_count
        rows *= prune_fraction
        scan_pages = max(1.0, scan_pages * prune_fraction)
        fetch_pages = max(1.0, fetch_pages * prune_fraction)

    return RelationGeometry(
        table=table,
        alias=alias,
        rows=rows,
        scan_pages=max(1.0, scan_pages),
        fetch_pages=max(1.0, fetch_pages),
        fragments=fragments,
        partitions_scanned=partitions_scanned,
        partitions_total=partitions_total,
        prune_fraction=prune_fraction,
    )


def _prune(bound_query, alias, table, horizontal):
    """Fraction of rows in partitions surviving predicate pruning."""
    low = high = None
    for f in bound_query.filters_for(alias):
        if f.column != horizontal.column:
            continue
        if f.kind == "eq":
            low = high = f.value
            break
        if f.kind == "range":
            low, high = f.low, f.high
            break
        if f.kind == "in" and f.values:
            low, high = min(f.values), max(f.values)
            break
    matching = horizontal.matching_partitions(low, high)
    if len(matching) >= horizontal.partition_count:
        return 1.0, horizontal.partition_count
    stats = table.stats(horizontal.column)
    fraction = 0.0
    for i in matching:
        p_low, p_high = horizontal.partition_range(i)
        fraction += stats.range_fraction(p_low, p_high, high_inclusive=False)
    return clamp(fraction, 0.0, 1.0), len(matching)


# ----------------------------------------------------------------------
# Index/filter matching.
# ----------------------------------------------------------------------


@dataclass
class IndexMatch:
    """Result of matching filters (and join-key probes) to an index prefix."""

    boundary_filters: tuple  # real BoundFilters consumed as boundary conds
    param_columns: tuple  # join columns treated as equality probes
    residual_filters: tuple  # remaining quals, checked after the fetch
    eq_prefix: int  # leading key columns bound by equality
    boundary_selectivity: float
    ordering_columns: tuple  # key columns that still order the output


def match_index(index, filters, table, param_columns=()):
    """Greedy prefix match of sargable *filters* against *index*.

    Equality conditions (including parameterized join probes) extend the
    prefix; the first range/IN condition closes it.  Everything unmatched
    becomes a residual qual.
    """
    by_column = {}
    for f in filters:
        by_column.setdefault(f.column, []).append(f)
    params_available = set(param_columns)

    boundary = []
    used_params = []
    eq_prefix = 0
    sel = 1.0
    closed = False
    for key_col in index.columns:
        if closed:
            break
        eq_filter = next(
            (f for f in by_column.get(key_col, ()) if f.kind == "eq"), None
        )
        if eq_filter is not None:
            boundary.append(eq_filter)
            sel *= filter_selectivity(eq_filter, table)
            eq_prefix += 1
            continue
        if key_col in params_available:
            used_params.append(key_col)
            sel *= equality_fraction(table, key_col)
            eq_prefix += 1
            continue
        closing = next(
            (f for f in by_column.get(key_col, ()) if f.kind in ("range", "in")),
            None,
        )
        if closing is not None:
            boundary.append(closing)
            sel *= filter_selectivity(closing, table)
        closed = True

    boundary_set = set(id(f) for f in boundary)
    residual = tuple(f for f in filters if id(f) not in boundary_set)
    ordering = tuple(index.columns[eq_prefix:])
    return IndexMatch(
        boundary_filters=tuple(boundary),
        param_columns=tuple(used_params),
        residual_filters=residual,
        eq_prefix=eq_prefix,
        boundary_selectivity=clamp(sel, 0.0, 1.0),
        ordering_columns=ordering,
    )


# ----------------------------------------------------------------------
# Cost helpers.
# ----------------------------------------------------------------------


def mackert_lohman_pages(total_pages, tuples_fetched):
    """Expected distinct heap pages touched when fetching *tuples_fetched*
    random tuples from a *total_pages* heap (Mackert & Lohman)."""
    T = max(1.0, float(total_pages))
    N = max(0.0, float(tuples_fetched))
    if N <= 0.0:
        return 0.0
    pages = (2.0 * T * N) / (2.0 * T + N)
    return min(pages, T)


def _descent_cost(table_rows, height, settings):
    log_term = math.ceil(math.log2(max(2.0, table_rows)))
    return (
        log_term * settings.cpu_operator_cost
        + (height + 1) * 50.0 * settings.cpu_operator_cost
    )


def _output_width(bound_query, alias):
    table = bound_query.table_for(alias)
    needed = bound_query.referenced_columns(alias)
    if not needed:
        return 8
    return max(1, table.row_width(sorted(needed)))


# ----------------------------------------------------------------------
# Path construction.
# ----------------------------------------------------------------------


@dataclass
class ScanContext:
    """The per-relation inputs shared by every access path of one table
    reference: geometry, filter set, and output shape.  Computing it once
    lets a caller price *per-index* path groups incrementally
    (:func:`index_path_group`, :func:`parameterized_path_for`) without
    regenerating the whole view's path set — the seam the lazy CoPhy
    candidate pricer builds on."""

    bound_query: object
    geometry: RelationGeometry
    filters: tuple
    sel_all: float
    rows_out: float
    width: int

    @property
    def table(self):
        return self.geometry.table


def scan_context(bound_query, alias, catalog):
    """The :class:`ScanContext` for one table reference.

    Only the relation geometry depends on *catalog*, and only through
    vertical layouts / horizontal partitionings — secondary-index-only
    overlays (a candidate design view) produce the identical context as
    the base catalog.
    """
    geometry = relation_geometry(bound_query, alias, catalog)
    filters = bound_query.filters_for(alias)
    sel_all = conjunction_selectivity(filters, geometry.table)
    rows_out = max(1.0, geometry.rows * sel_all)
    width = _output_width(bound_query, alias)
    return ScanContext(
        bound_query=bound_query,
        geometry=geometry,
        filters=filters,
        sel_all=sel_all,
        rows_out=rows_out,
        width=width,
    )


def sequential_path(ctx, settings):
    """The sequential-scan path for one context."""
    return _sequential_path(
        ctx.bound_query, ctx.geometry, ctx.filters, settings, ctx.rows_out,
        ctx.width,
    )


def index_path_group(ctx, index, settings, interesting_columns=()):
    """One index's non-parameterized paths under *ctx*.

    Returns ``(paths, arm)`` where *arm* is the ``(index, match)`` pair
    usable as a BitmapAnd arm (or ``None``).  Pure per-index function:
    the group an index contributes to :func:`scan_paths` is independent
    of which other indexes the catalog holds (only the combining
    BitmapAnd path couples indexes).
    """
    match = match_index(index, ctx.filters, ctx.table)
    useful_order = (
        match.ordering_columns
        and match.ordering_columns[0] in interesting_columns
    )
    if not match.boundary_filters and not useful_order:
        return [], None
    arm = (index, match) if match.boundary_filters else None
    paths = _index_paths(
        ctx.bound_query, ctx.geometry, index, match, settings, ctx.rows_out,
        ctx.width, ctx.sel_all,
    )
    return paths, arm


def bitmap_and_path(ctx, arm_candidates, settings):
    """The combining BitmapAnd path over *arm_candidates* (or ``None``)."""
    return _bitmap_and_path(
        ctx.bound_query, ctx.geometry, arm_candidates, ctx.filters, settings,
        ctx.rows_out, ctx.width,
    )


def parameterized_path_for(ctx, index, settings, param_columns):
    """One index's parameterized probe path under *ctx* (or ``None``)."""
    match = match_index(
        index, ctx.filters, ctx.table, param_columns=param_columns
    )
    if not match.param_columns:
        return None
    sel_all = match.boundary_selectivity
    for f in match.residual_filters:
        sel_all *= filter_selectivity(f, ctx.table)
    rows_out = max(1e-9, ctx.geometry.rows * sel_all)
    return _index_scan_cost(
        ctx.bound_query,
        ctx.geometry,
        index,
        match,
        settings,
        rows_out,
        ctx.width,
        parameterized=True,
    )


def scan_paths(bound_query, alias, catalog, settings, interesting_columns=()):
    """All non-parameterized access paths for *alias*."""
    ctx = scan_context(bound_query, alias, catalog)
    paths = [sequential_path(ctx, settings)]
    arm_candidates = []  # (index, match) pairs usable as BitmapAnd arms
    for index in catalog.indexes_on(ctx.table.name):
        group, arm = index_path_group(ctx, index, settings, interesting_columns)
        if arm is not None:
            arm_candidates.append(arm)
        paths.extend(group)
    and_path = bitmap_and_path(ctx, arm_candidates, settings)
    if and_path is not None:
        paths.append(and_path)
    return paths


def parameterized_paths(bound_query, alias, catalog, settings, param_columns):
    """Index paths probing *alias* by equality on *param_columns* (inner side
    of an index nested loop).  Costs and rows are per outer probe."""
    if not param_columns:
        return []
    ctx = scan_context(bound_query, alias, catalog)
    paths = []
    for index in catalog.indexes_on(ctx.table.name):
        path = parameterized_path_for(ctx, index, settings, param_columns)
        if path is not None:
            paths.append(path)
    return paths


def _sequential_path(bound_query, geometry, filters, settings, rows_out, width):
    table = geometry.table
    n_quals = len(filters)
    io = settings.seq_page_cost * geometry.scan_pages * (
        1.0 - settings.effective_cache_fraction
    )
    cpu = (
        settings.cpu_tuple_cost * geometry.rows
        + settings.cpu_operator_cost * n_quals * geometry.rows
    )
    stitch = 0.0
    if len(geometry.fragments) > 1:
        # Positional stitch of k fragments: one extra comparison per row per
        # extra fragment (fragments are co-ordered by row id).
        stitch = (
            settings.cpu_operator_cost * (len(geometry.fragments) - 1) * geometry.rows
        )
    total = io + cpu + stitch + settings.scan_penalty(settings.enable_seqscan)

    if geometry.fragments:
        return FragmentScan(
            startup_cost=0.0,
            total_cost=total,
            rows=rows_out,
            width=width,
            table_name=table.name,
            alias=geometry.alias,
            fragments=geometry.fragments,
            filters=tuple(filters),
        )
    if geometry.partitions_total:
        return AppendScan(
            startup_cost=0.0,
            total_cost=total,
            rows=rows_out,
            width=width,
            table_name=table.name,
            alias=geometry.alias,
            partitions_scanned=geometry.partitions_scanned,
            partitions_total=geometry.partitions_total,
        )
    return SeqScan(
        startup_cost=0.0,
        total_cost=total,
        rows=rows_out,
        width=width,
        table_name=table.name,
        alias=geometry.alias,
        filters=tuple(filters),
    )


def _index_paths(bound_query, geometry, index, match, settings, rows_out, width, sel_all):
    paths = []
    plain = _index_scan_cost(
        bound_query, geometry, index, match, settings, rows_out, width,
        parameterized=False,
    )
    if plain is not None:
        paths.append(plain)
        if plain.ordering:
            # Btrees scan backward at the same cost: offer the descending
            # ordering too (serves ORDER BY ... DESC without a sort).
            backward = replace(
                plain,
                ordering=tuple((a, c, False) for a, c, __ in plain.ordering),
                backward=True,
                children=list(plain.children),
            )
            paths.append(backward)
    bitmap = _bitmap_path(
        bound_query, geometry, index, match, settings, rows_out, width
    )
    if bitmap is not None:
        paths.append(bitmap)
    return paths


def _index_scan_cost(
    bound_query, geometry, index, match, settings, rows_out, width, parameterized
):
    table = geometry.table
    alias = geometry.alias
    needed = bound_query.referenced_columns(alias)
    sel_index = match.boundary_selectivity
    tuples = max(1e-9, geometry.rows * sel_index)

    total_pages, height, leaf_pages = index.shape(table)
    if settings.assume_zero_size_indexes:
        total_pages, height, leaf_pages = 1, 0, 1
    startup = _descent_cost(table.row_count, height, settings)

    leaf_visited = max(1.0, math.ceil(sel_index * leaf_pages * geometry.prune_fraction))
    index_io = settings.random_page_cost + (leaf_visited - 1.0) * settings.seq_page_cost
    if settings.assume_zero_size_indexes:
        index_io = 0.0
    index_cpu = settings.cpu_index_tuple_cost * tuples + settings.cpu_operator_cost * max(
        1, len(match.boundary_filters) + len(match.param_columns)
    ) * tuples

    index_only = index.covers(needed) and not parameterized
    if index_only:
        # Heap fetches happen only for tuples on pages the visibility map
        # does not mark all-visible — cap the Mackert-Lohman estimate by
        # that page fraction, as PostgreSQL's cost_index does.
        invisible = tuples * (1.0 - settings.index_only_visible_frac)
        heap_pages = min(
            mackert_lohman_pages(geometry.fetch_pages, invisible),
            (1.0 - settings.index_only_visible_frac) * geometry.fetch_pages + 1.0,
        )
        heap_io = heap_pages * settings.random_page_cost
        flag = settings.enable_indexonlyscan and settings.enable_indexscan
    else:
        T = geometry.fetch_pages
        max_pages = mackert_lohman_pages(T, tuples)
        max_io = max_pages * settings.random_page_cost
        min_pages = max(1.0, math.ceil(sel_index * T))
        min_io = settings.random_page_cost + (min_pages - 1.0) * settings.seq_page_cost
        corr = table.stats(index.columns[0]).correlation
        c2 = corr * corr
        heap_io = c2 * min_io + (1.0 - c2) * max_io
        flag = settings.enable_indexscan

    heap_cpu = settings.cpu_tuple_cost * tuples + settings.cpu_operator_cost * len(
        match.residual_filters
    ) * tuples

    total = startup + index_io + index_cpu + heap_io + heap_cpu
    total *= (1.0 - settings.effective_cache_fraction * 0.5)
    total += settings.scan_penalty(flag)

    ordering = tuple((alias, col, True) for col in match.ordering_columns)
    return IndexScan(
        startup_cost=startup,
        total_cost=total,
        rows=rows_out,
        width=width,
        ordering=ordering,
        table_name=table.name,
        alias=alias,
        index=index,
        index_filters=match.boundary_filters,
        heap_filters=match.residual_filters,
        index_only=index_only,
        is_parameterized=parameterized,
        param_columns=match.param_columns,
    )


def _bitmap_and_path(bound_query, geometry, arm_candidates, filters, settings,
                     rows_out, width):
    """Combine the two most selective single-index arms with a BitmapAnd.

    Each arm must bind a *different* leading column, so the combined
    boundary selectivity is the product and the heap is visited once.
    """
    arms = []
    seen_columns = set()
    for index, match in sorted(
        arm_candidates, key=lambda im: im[1].boundary_selectivity
    ):
        if not match.boundary_filters:
            continue
        lead = match.boundary_filters[0]
        if lead.column in seen_columns:
            continue
        seen_columns.add(lead.column)
        arms.append((index, lead, filter_selectivity(lead, geometry.table)))
        if len(arms) == 2:
            break
    if len(arms) < 2:
        return None

    table = geometry.table
    sel_combined = 1.0
    index_cost = 0.0
    for index, lead, sel in arms:
        sel_combined *= sel
        total_pages, height, leaf_pages = index.shape(table)
        if settings.assume_zero_size_indexes:
            height, leaf_pages = 0, 1
        arm_tuples = max(1e-9, geometry.rows * sel)
        leaf_visited = max(1.0, math.ceil(sel * leaf_pages * geometry.prune_fraction))
        arm_io = 0.0 if settings.assume_zero_size_indexes else (
            settings.random_page_cost + (leaf_visited - 1.0) * settings.seq_page_cost
        )
        index_cost += (
            _descent_cost(table.row_count, height, settings)
            + arm_io
            + settings.cpu_index_tuple_cost * arm_tuples
        )

    tuples = max(1e-9, geometry.rows * sel_combined)
    T = geometry.fetch_pages
    pages_fetched = max(1.0, mackert_lohman_pages(T, tuples))
    frac = clamp(pages_fetched / max(1.0, T), 0.0, 1.0)
    cost_per_page = settings.random_page_cost - (
        settings.random_page_cost - settings.seq_page_cost
    ) * math.sqrt(frac)
    heap_io = pages_fetched * cost_per_page

    arm_columns = {lead.column for __, lead, __ in arms}
    residual = tuple(f for f in filters if f.column not in arm_columns)
    heap_cpu = (
        settings.cpu_tuple_cost * tuples
        + 0.2 * settings.cpu_operator_cost * tuples  # two bitmap passes
        + settings.cpu_operator_cost * len(residual) * tuples
    )
    total = index_cost + heap_io + heap_cpu
    total *= (1.0 - settings.effective_cache_fraction * 0.5)
    total += settings.scan_penalty(settings.enable_bitmapscan)
    return BitmapAndScan(
        startup_cost=index_cost,
        total_cost=total,
        rows=rows_out,
        width=width,
        table_name=table.name,
        alias=geometry.alias,
        indexes=tuple(index for index, __, __ in arms),
        arm_filters=tuple(lead for __, lead, __ in arms),
        heap_filters=residual,
    )


def _bitmap_path(bound_query, geometry, index, match, settings, rows_out, width):
    if not match.boundary_filters:
        return None  # a full-index bitmap scan is never useful
    table = geometry.table
    sel_index = match.boundary_selectivity
    tuples = max(1e-9, geometry.rows * sel_index)

    total_pages, height, leaf_pages = index.shape(table)
    if settings.assume_zero_size_indexes:
        total_pages, height, leaf_pages = 1, 0, 1
    descent = _descent_cost(table.row_count, height, settings)
    leaf_visited = max(1.0, math.ceil(sel_index * leaf_pages * geometry.prune_fraction))
    index_io = settings.random_page_cost + (leaf_visited - 1.0) * settings.seq_page_cost
    if settings.assume_zero_size_indexes:
        index_io = 0.0
    index_cost = descent + index_io + settings.cpu_index_tuple_cost * tuples

    T = geometry.fetch_pages
    pages_fetched = max(1.0, mackert_lohman_pages(T, tuples))
    frac = clamp(pages_fetched / max(1.0, T), 0.0, 1.0)
    cost_per_page = settings.random_page_cost - (
        settings.random_page_cost - settings.seq_page_cost
    ) * math.sqrt(frac)
    heap_io = pages_fetched * cost_per_page
    heap_cpu = (
        settings.cpu_tuple_cost * tuples
        + 0.1 * settings.cpu_operator_cost * tuples
        + settings.cpu_operator_cost * len(match.residual_filters) * tuples
    )

    total = index_cost + heap_io + heap_cpu
    total *= (1.0 - settings.effective_cache_fraction * 0.5)
    total += settings.scan_penalty(settings.enable_bitmapscan)
    return BitmapHeapScan(
        startup_cost=index_cost,
        total_cost=total,
        rows=rows_out,
        width=width,
        table_name=table.name,
        alias=geometry.alias,
        index=index,
        index_filters=match.boundary_filters,
        heap_filters=match.residual_filters,
    )
