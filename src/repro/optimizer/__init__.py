"""Cost-based query optimizer substrate (the "PostgreSQL" of this repo).

A Selinger-style planner over statistics: access-path generation for base
relations (sequential, index, index-only, bitmap, fragment and partition
scans), dynamic-programming join enumeration with interesting orders, and a
PostgreSQL-flavoured cost model.  The designer stack consumes it through
:class:`~repro.optimizer.service.CostService`, the portable interface the
paper requires of any host DBMS (an optimizer, statistics, join control).
"""

from repro.optimizer.settings import PlannerSettings, DISABLE_COST
from repro.optimizer.plan import (
    Aggregate,
    AppendScan,
    BitmapAndScan,
    BitmapHeapScan,
    FragmentScan,
    HashJoin,
    IndexScan,
    Limit,
    Materialize,
    MergeJoin,
    NestLoop,
    Plan,
    SeqScan,
    Sort,
)
from repro.optimizer.planner import plan_query
from repro.optimizer.service import CostService

__all__ = [
    "PlannerSettings",
    "DISABLE_COST",
    "Plan",
    "SeqScan",
    "IndexScan",
    "BitmapHeapScan",
    "BitmapAndScan",
    "FragmentScan",
    "AppendScan",
    "NestLoop",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "Materialize",
    "Aggregate",
    "Limit",
    "plan_query",
    "CostService",
]
