"""Cost model for write statements (UPDATE / INSERT / DELETE).

Writes are the *cost* side of physical design: every index on the target
table must be maintained, so an index that speeds one query can slow a
thousand updates.  The model:

* **locate** (update/delete) — the cost of finding the affected rows,
  priced by planning the equivalent SELECT (so indexes also *help*
  writes find their rows, as in a real DBMS);
* **heap modification** — one tuple write per affected row plus amortized
  page dirtying;
* **index maintenance** — per affected row and per touched index: a btree
  descent (CPU), an index-tuple insertion, and amortized leaf-page
  dirtying.  Updates touch only indexes covering an assigned column
  (heap-only-tuple optimization); inserts and deletes touch every index.
"""

from dataclasses import replace as dc_replace

from repro.optimizer.selectivity import conjunction_selectivity
from repro.sql.binder import BoundQuery

# Amortized page-write charges (fractions of a random page write per row).
HEAP_DIRTY_PER_ROW = 0.05
INDEX_LEAF_DIRTY_PER_ROW = 0.05

# Synthetic-SQL marker for locate queries.  Their text is not
# re-parseable (there is no real SELECT), so wire-format consumers ship
# the originating write statement instead and re-derive the locate
# query on the receiving side.
LOCATE_PREFIX = "<locate> "


def locate_query(bound_write):
    """The SELECT-equivalent used to price finding the affected rows."""
    table = bound_write.table
    alias = table.name
    referenced = {f.column for f in bound_write.filters}
    referenced.update(bound_write.set_columns)
    if not referenced:
        referenced = {table.column_names[0]}
    select_columns = tuple((alias, c) for c in sorted(referenced))
    return BoundQuery(
        query=None,
        tables={alias: table},
        filters={alias: tuple(bound_write.filters)},
        joins=(),
        select_columns=select_columns,
        aggregates=(),
        group_by=(),
        order_by=(),
        limit=None,
        has_star=False,
        _sql=LOCATE_PREFIX + (bound_write.sql or ""),
    )


def affected_rows(bound_write):
    """Estimated number of rows the write touches."""
    if bound_write.kind == "insert":
        return float(max(1, bound_write.n_rows))
    table = bound_write.table
    sel = conjunction_selectivity(bound_write.filters, table)
    return max(1.0, table.row_count * sel)


def index_maintenance_cost_per_row(index, table, settings):
    """Maintaining one index entry for one modified row."""
    __, height, __ = index.shape(table)
    descent_cpu = (height + 1) * 50.0 * settings.cpu_operator_cost
    return (
        descent_cpu
        + settings.cpu_index_tuple_cost
        + INDEX_LEAF_DIRTY_PER_ROW * settings.random_page_cost
    )


def maintenance_cost(bound_write, indexes, settings):
    """Total index-maintenance cost of the write under *indexes*."""
    table = bound_write.table
    rows = affected_rows(bound_write)
    total = 0.0
    for index in indexes:
        if bound_write.touches_index(index):
            total += rows * index_maintenance_cost_per_row(index, table, settings)
    return total


def heap_write_cost(bound_write, settings):
    rows = affected_rows(bound_write)
    return rows * (
        settings.cpu_tuple_cost + HEAP_DIRTY_PER_ROW * settings.random_page_cost
    )


def write_statement_cost(bound_write, catalog, settings, locate_cost_fn=None):
    """Full cost of one write statement under *catalog*'s design.

    ``locate_cost_fn(bound_query) -> float`` may be supplied to price the
    locate step through a cached cost model (INUM); by default the full
    planner is used.
    """
    total = heap_write_cost(bound_write, settings)
    total += maintenance_cost(
        bound_write, catalog.indexes_on(bound_write.table.name), settings
    )
    if bound_write.kind in ("update", "delete"):
        locate = locate_query(bound_write)
        if locate_cost_fn is not None:
            total += locate_cost_fn(locate)
        else:
            from repro.optimizer.planner import plan_query

            total += plan_query(locate, catalog, settings).total_cost
    return total
