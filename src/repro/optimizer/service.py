"""CostService: the portable optimizer facade the designer stack consumes.

The paper argues the tool ports to "any relational DBMS which offers a
query optimizer, a way to extract and create statistics, and control over
join operations".  This class is that contract: ``plan``/``cost`` with
GUC-style join control, plus call accounting so experiments can report how
many (expensive) optimizer invocations a designer component issued — the
quantity INUM's caching is meant to slash.
"""

from repro.optimizer.planner import plan_query
from repro.optimizer.settings import DEFAULT_SETTINGS
from repro.optimizer.writecost import write_statement_cost
from repro.sql.binder import BoundQuery, BoundWrite, bind_statement
from repro.util import PlanningError, workload_pairs


class CostService:
    """Plans queries against one catalog with one settings snapshot."""

    def __init__(self, catalog, settings=None, shared_counter=None):
        self.catalog = catalog
        self.settings = settings or DEFAULT_SETTINGS
        self._bind_cache = {}
        self._plan_cache = {}
        self._counter = shared_counter if shared_counter is not None else _Counter()

    # ------------------------------------------------------------------

    @property
    def optimizer_calls(self):
        """Number of full planner invocations issued so far."""
        return self._counter.calls

    def reset_counter(self):
        self._counter.calls = 0

    # ------------------------------------------------------------------

    def bound(self, query):
        """Accept SQL text or an already-bound statement."""
        if isinstance(query, (BoundQuery, BoundWrite)):
            return query
        if isinstance(query, str):
            cached = self._bind_cache.get(query)
            if cached is None:
                cached = bind_statement(query, self.catalog)
                self._bind_cache[query] = cached
            return cached
        raise TypeError("expected SQL text or BoundQuery, got %r" % (type(query),))

    def plan(self, query):
        """Plan *query*, caching by SQL text (cache keys include nothing of
        the physical design, so a CostService must not outlive catalog
        design changes — what-if sessions create fresh services)."""
        bq = self.bound(query)
        if isinstance(bq, BoundWrite):
            raise PlanningError(
                "write statements have no plan tree; use cost() instead"
            )
        key = bq.sql
        plan = self._plan_cache.get(key)
        if plan is None:
            self._counter.calls += 1
            plan = plan_query(bq, self.catalog, self.settings)
            self._plan_cache[key] = plan
        return plan

    def cost(self, query):
        bq = self.bound(query)
        if isinstance(bq, BoundWrite):
            return write_statement_cost(
                bq,
                self.catalog,
                self.settings,
                locate_cost_fn=lambda locate: self.plan(locate).total_cost,
            )
        return self.plan(bq).total_cost

    def explain(self, query):
        return self.plan(query).explain()

    def workload_cost(self, workload):
        """Weighted total cost of a workload (iterable of (query, weight)
        pairs or a :class:`~repro.workloads.workload.Workload`)."""
        total = 0.0
        for query, weight in workload_pairs(workload):
            total += weight * self.cost(query)
        return total

    # ------------------------------------------------------------------

    def with_catalog(self, catalog):
        """A service against a different (e.g. hypothetical) catalog.

        Shares the optimizer-call counter so experiments see the total
        spend across what-if explorations, but not the plan cache (plans
        depend on the physical design).
        """
        svc = CostService(catalog, self.settings, shared_counter=self._counter)
        svc._bind_cache = self._bind_cache  # binding only reads logical schema
        return svc

    def with_settings(self, settings):
        svc = CostService(self.catalog, settings, shared_counter=self._counter)
        svc._bind_cache = self._bind_cache
        return svc


class _Counter:
    __slots__ = ("calls",)

    def __init__(self):
        self.calls = 0

