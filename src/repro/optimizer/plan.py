"""Plan tree nodes with EXPLAIN-style rendering.

Every node carries PostgreSQL-shaped accounting: ``startup_cost``,
``total_cost``, estimated output ``rows`` and ``width``, and the output
``ordering`` (a tuple of ``(alias, column, ascending)`` pathkeys).
Parameterized nodes (inner sides of index nested loops) have costs *per
probe* and ``is_parameterized`` set.
"""

from dataclasses import dataclass, field


@dataclass
class Plan:
    """Base plan node."""

    startup_cost: float = 0.0
    total_cost: float = 0.0
    rows: float = 1.0
    width: int = 8
    ordering: tuple = ()
    children: list = field(default_factory=list)
    is_parameterized: bool = False

    @property
    def node_type(self):
        return type(self).__name__

    def describe(self):
        """One-line detail shown in EXPLAIN output; nodes override."""
        return ""

    def rescan_cost(self):
        """Cost of re-running this node for one more outer row."""
        return self.total_cost

    def explain(self, indent=0, out=None):
        """Render the subtree like ``EXPLAIN`` (costs, rows, width)."""
        lines = out if out is not None else []
        pad = "  " * indent
        arrow = "->  " if indent else ""
        detail = self.describe()
        head = "%s%s%s" % (pad, arrow, self.node_type)
        if detail:
            head += " " + detail
        head += "  (cost=%.2f..%.2f rows=%.0f width=%d)" % (
            self.startup_cost,
            self.total_cost,
            max(1.0, self.rows),
            self.width,
        )
        lines.append(head)
        for child in self.children:
            child.explain(indent + 1, lines)
        if out is None:
            return "\n".join(lines)
        return None

    def walk(self):
        """Yield every node in the subtree (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def indexes_used(self):
        """Set of Index objects referenced anywhere in the subtree."""
        used = set()
        for node in self.walk():
            index = getattr(node, "index", None)
            if index is not None:
                used.add(index)
            for multi in getattr(node, "indexes", ()) or ():
                used.add(multi)
        return used


# ----------------------------------------------------------------------
# Base-relation scans.
# ----------------------------------------------------------------------


@dataclass
class SeqScan(Plan):
    table_name: str = ""
    alias: str = ""
    filters: tuple = ()

    def describe(self):
        name = self.table_name if self.alias == self.table_name else (
            "%s %s" % (self.table_name, self.alias)
        )
        text = "on %s" % name
        if self.filters:
            text += " [%s]" % "; ".join(f.describe() for f in self.filters)
        return text


@dataclass
class IndexScan(Plan):
    table_name: str = ""
    alias: str = ""
    index: object = None
    index_filters: tuple = ()  # boundary conditions matched to the key prefix
    heap_filters: tuple = ()  # residual quals checked on the heap tuple
    index_only: bool = False
    param_columns: tuple = ()  # join columns probed (parameterized scans)
    backward: bool = False  # scanned in reverse key order

    @property
    def node_type(self):
        return "IndexOnlyScan" if self.index_only else "IndexScan"

    def describe(self):
        text = "using %s on %s %s" % (self.index.name, self.table_name, self.alias)
        if self.backward:
            text = "backward " + text
        if self.index_filters:
            text += " cond[%s]" % "; ".join(f.describe() for f in self.index_filters)
        if self.heap_filters:
            text += " filter[%s]" % "; ".join(f.describe() for f in self.heap_filters)
        return text


@dataclass
class BitmapHeapScan(Plan):
    table_name: str = ""
    alias: str = ""
    index: object = None
    index_filters: tuple = ()
    heap_filters: tuple = ()

    def describe(self):
        text = "on %s %s via %s" % (self.table_name, self.alias, self.index.name)
        if self.index_filters:
            text += " cond[%s]" % "; ".join(f.describe() for f in self.index_filters)
        return text


@dataclass
class BitmapAndScan(Plan):
    """Heap scan driven by the intersection of several index bitmaps
    (PostgreSQL's BitmapAnd): each index contributes one boundary
    condition; the heap is visited once with the combined selectivity."""

    table_name: str = ""
    alias: str = ""
    indexes: tuple = ()  # one Index per AND arm
    arm_filters: tuple = ()  # the boundary filter matched by each arm
    heap_filters: tuple = ()

    def describe(self):
        arms = " AND ".join(ix.name for ix in self.indexes)
        return "on %s %s via %s" % (self.table_name, self.alias, arms)


@dataclass
class FragmentScan(Plan):
    """Scan of a vertically partitioned table: reads the chosen fragments
    and stitches them by row id (AutoPart layouts)."""

    table_name: str = ""
    alias: str = ""
    fragments: tuple = ()
    filters: tuple = ()

    def describe(self):
        frag_text = ", ".join("{%s}" % ",".join(f.columns) for f in self.fragments)
        return "on %s %s fragments %s" % (self.table_name, self.alias, frag_text)


@dataclass
class AppendScan(Plan):
    """Union of surviving horizontal partitions after pruning."""

    table_name: str = ""
    alias: str = ""
    partitions_scanned: int = 0
    partitions_total: int = 0

    def describe(self):
        return "on %s %s (%d of %d partitions)" % (
            self.table_name,
            self.alias,
            self.partitions_scanned,
            self.partitions_total,
        )


# ----------------------------------------------------------------------
# Joins.
# ----------------------------------------------------------------------


@dataclass
class NestLoop(Plan):
    join_clauses: tuple = ()

    def describe(self):
        if not self.join_clauses:
            return "(cartesian)"
        return "on " + " AND ".join(j.describe() for j in self.join_clauses)


@dataclass
class HashJoin(Plan):
    join_clauses: tuple = ()
    batches: int = 1

    def describe(self):
        text = "on " + " AND ".join(j.describe() for j in self.join_clauses)
        if self.batches > 1:
            text += " (batches=%d)" % self.batches
        return text


@dataclass
class MergeJoin(Plan):
    join_clauses: tuple = ()

    def describe(self):
        return "on " + " AND ".join(j.describe() for j in self.join_clauses)


# ----------------------------------------------------------------------
# Unary operators.
# ----------------------------------------------------------------------


@dataclass
class Sort(Plan):
    sort_keys: tuple = ()
    external: bool = False

    def describe(self):
        keys = ", ".join(
            "%s.%s%s" % (a, c, "" if asc else " DESC") for a, c, asc in self.sort_keys
        )
        return "by %s%s" % (keys, " (external)" if self.external else "")

    def rescan_cost(self):
        # A finished sort is rescanned from its result storage.
        child = self.children[0]
        return 0.01 * max(1.0, self.rows) if not self.external else self.total_cost - child.total_cost


@dataclass
class Materialize(Plan):
    def rescan_cost(self):
        return 0.0025 * max(1.0, self.rows)


@dataclass
class Aggregate(Plan):
    strategy: str = "hash"  # hash | sorted | plain
    group_columns: tuple = ()
    n_aggregates: int = 0

    def describe(self):
        if not self.group_columns:
            return "(plain)"
        cols = ", ".join("%s.%s" % (a, c) for a, c in self.group_columns)
        return "(%s) by %s" % (self.strategy, cols)


@dataclass
class Limit(Plan):
    count: int = 0

    def describe(self):
        return "%d" % self.count
