"""Planner cost constants and enable flags (PostgreSQL GUC equivalents).

The ``enable_*`` flags implement the paper's *what-if join component*: the
designer toggles join methods (and scan types) to steer the optimizer while
exploring hypothetical designs, exactly like setting ``enable_hashjoin``
and friends on a real PostgreSQL.

Disabled paths are not removed — they are penalized with
:data:`DISABLE_COST`, matching PostgreSQL's behaviour so a plan always
exists even when everything relevant is "disabled".
"""

from dataclasses import dataclass, replace

DISABLE_COST = 1.0e10


@dataclass(frozen=True)
class PlannerSettings:
    """Cost model constants and planner toggles.

    Defaults are PostgreSQL's shipped values.  ``work_mem`` is in bytes.
    """

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    work_mem: int = 4 * 1024 * 1024
    effective_cache_fraction: float = 0.0  # fraction of heap assumed cached

    enable_seqscan: bool = True
    enable_indexscan: bool = True
    enable_indexonlyscan: bool = True
    enable_bitmapscan: bool = True
    enable_nestloop: bool = True
    enable_hashjoin: bool = True
    enable_mergejoin: bool = True
    enable_sort: bool = True
    enable_material: bool = True

    # Fraction of heap pages assumed all-visible for index-only scans.
    index_only_visible_frac: float = 0.95

    # Reproduces the flaw the paper's §2 attributes to Monteiro et al.:
    # cost what-if indexes as if they had zero size (no descent, no leaf
    # IO).  Exists purely so the CL-ZSIZE experiment can measure how badly
    # this skews the advisor; never enable it for real tuning.
    assume_zero_size_indexes: bool = False

    def with_changes(self, **kwargs):
        """Return a copy with the given GUCs overridden."""
        return replace(self, **kwargs)

    def join_methods_enabled(self):
        return {
            "nestloop": self.enable_nestloop,
            "hashjoin": self.enable_hashjoin,
            "mergejoin": self.enable_mergejoin,
        }

    def scan_penalty(self, flag):
        """0 when *flag* is on, :data:`DISABLE_COST` otherwise."""
        return 0.0 if flag else DISABLE_COST


DEFAULT_SETTINGS = PlannerSettings()
