"""Workload container: an ordered bag of weighted SQL statements."""

from repro.util import DesignError


class Workload:
    """A list of ``(sql, weight)`` pairs.

    Iterating yields the pairs, which is the protocol every cost/benefit
    API in the library accepts.  Weights model statement frequencies.
    """

    def __init__(self, entries=()):
        self._entries = []
        for entry in entries:
            if isinstance(entry, tuple):
                sql, weight = entry
            else:
                sql, weight = entry, 1.0
            self.add(sql, weight)

    def add(self, sql, weight=1.0):
        if not isinstance(sql, str) or not sql.strip():
            raise DesignError("workload statements must be non-empty SQL text")
        if weight <= 0:
            raise DesignError("workload weights must be positive")
        self._entries.append((sql, float(weight)))
        return self

    def __iter__(self):
        return iter(self._entries)

    def __len__(self):
        return len(self._entries)

    def __getitem__(self, idx):
        return self._entries[idx]

    @property
    def statements(self):
        return [sql for sql, __ in self._entries]

    @property
    def total_weight(self):
        return sum(w for __, w in self._entries)

    def subset(self, indices):
        picked = Workload()
        for i in indices:
            sql, weight = self._entries[i]
            picked.add(sql, weight)
        return picked

    def merged(self, other):
        out = Workload(self._entries)
        for sql, weight in other:
            out.add(sql, weight)
        return out

    def describe(self, limit=10):
        lines = ["Workload with %d statements:" % len(self)]
        for sql, weight in self._entries[:limit]:
            lines.append("  [w=%.1f] %s" % (weight, sql))
        if len(self) > limit:
            lines.append("  ... (%d more)" % (len(self) - limit))
        return "\n".join(lines)
