"""TPC-H-lite: a decision-support schema + workload.

Used to show the designer is portable across workload shapes (the paper's
tool is not SDSS-specific).  The schema is a faithful subset of TPC-H with
numeric date encoding (days since 1992-01-01) to stay within the SQL
dialect.
"""

import random

from repro.catalog import Catalog, Column, DataType, Distribution, Table
from repro.workloads.workload import Workload

DATE_LO = 0  # 1992-01-01
DATE_HI = 2557  # ~1998-12-31


def tpch_catalog(scale=0.1):
    """TPC-H-lite at the given scale factor (1.0 = 6M lineitems)."""
    lineitems = max(1000, int(6_000_000 * scale))
    orders = max(250, lineitems // 4)
    customers = max(50, orders // 10)
    parts = max(40, int(200_000 * scale))
    suppliers = max(10, parts // 20)

    catalog = Catalog()
    catalog.add_table(
        Table(
            "lineitem",
            [
                Column("l_orderkey", DataType.BIGINT,
                       Distribution(kind="uniform_int", low=0, high=orders - 1, correlation=1.0)),
                Column("l_partkey", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=parts - 1)),
                Column("l_suppkey", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=suppliers - 1)),
                Column("l_linenumber", DataType.INT,
                       Distribution(kind="uniform_int", low=1, high=7)),
                Column("l_quantity", DataType.FLOAT,
                       Distribution(kind="uniform", low=1.0, high=50.0)),
                Column("l_extendedprice", DataType.FLOAT,
                       Distribution(kind="uniform", low=900.0, high=105000.0)),
                Column("l_discount", DataType.FLOAT,
                       Distribution(kind="uniform", low=0.0, high=0.1)),
                Column("l_tax", DataType.FLOAT,
                       Distribution(kind="uniform", low=0.0, high=0.08)),
                Column("l_returnflag", DataType.INT,
                       Distribution(kind="zipf", n_values=3, s=0.6)),
                Column("l_linestatus", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=1)),
                Column("l_shipdate", DataType.INT,
                       Distribution(kind="uniform_int", low=DATE_LO, high=DATE_HI, correlation=0.3)),
                Column("l_commitdate", DataType.INT,
                       Distribution(kind="uniform_int", low=DATE_LO, high=DATE_HI)),
                Column("l_receiptdate", DataType.INT,
                       Distribution(kind="uniform_int", low=DATE_LO, high=DATE_HI)),
            ],
            row_count=lineitems,
        ).build_stats()
    )
    catalog.add_table(
        Table(
            "orders",
            [
                Column("o_orderkey", DataType.BIGINT, Distribution(kind="sequence")),
                Column("o_custkey", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=customers - 1)),
                Column("o_orderstatus", DataType.INT,
                       Distribution(kind="zipf", n_values=3, s=0.8)),
                Column("o_totalprice", DataType.FLOAT,
                       Distribution(kind="uniform", low=850.0, high=560000.0)),
                Column("o_orderdate", DataType.INT,
                       Distribution(kind="uniform_int", low=DATE_LO, high=DATE_HI, correlation=0.95)),
                Column("o_orderpriority", DataType.INT,
                       Distribution(kind="uniform_int", low=1, high=5)),
                Column("o_shippriority", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=1)),
            ],
            row_count=orders,
        ).build_stats()
    )
    catalog.add_table(
        Table(
            "customer",
            [
                Column("c_custkey", DataType.INT, Distribution(kind="sequence")),
                Column("c_nationkey", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=24)),
                Column("c_acctbal", DataType.FLOAT,
                       Distribution(kind="uniform", low=-1000.0, high=10000.0)),
                Column("c_mktsegment", DataType.INT,
                       Distribution(kind="uniform_int", low=1, high=5)),
            ],
            row_count=customers,
        ).build_stats()
    )
    catalog.add_table(
        Table(
            "part",
            [
                Column("p_partkey", DataType.INT, Distribution(kind="sequence")),
                Column("p_brand", DataType.INT,
                       Distribution(kind="uniform_int", low=1, high=25)),
                Column("p_size", DataType.INT,
                       Distribution(kind="uniform_int", low=1, high=50)),
                Column("p_retailprice", DataType.FLOAT,
                       Distribution(kind="uniform", low=900.0, high=2100.0)),
                Column("p_container", DataType.INT,
                       Distribution(kind="uniform_int", low=1, high=40)),
            ],
            row_count=parts,
        ).build_stats()
    )
    catalog.add_table(
        Table(
            "supplier",
            [
                Column("s_suppkey", DataType.INT, Distribution(kind="sequence")),
                Column("s_nationkey", DataType.INT,
                       Distribution(kind="uniform_int", low=0, high=24)),
                Column("s_acctbal", DataType.FLOAT,
                       Distribution(kind="uniform", low=-1000.0, high=10000.0)),
            ],
            row_count=suppliers,
        ).build_stats()
    )
    return catalog


def _pricing_summary(rng):
    ship = rng.randint(DATE_HI - 120, DATE_HI - 1)
    return (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), "
        "COUNT(*) FROM lineitem WHERE l_shipdate <= %d "
        "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag" % ship
    )


def _shipping_window(rng):
    lo = rng.randint(DATE_LO, DATE_HI - 40)
    return (
        "SELECT l_orderkey, l_extendedprice, l_discount FROM lineitem "
        "WHERE l_shipdate BETWEEN %d AND %d AND l_discount BETWEEN 0.05 AND 0.07 "
        "AND l_quantity < 24" % (lo, lo + 30)
    )


def _order_lineitem_join(rng):
    lo = rng.randint(DATE_LO, DATE_HI - 95)
    return (
        "SELECT o.o_orderkey, o.o_orderdate, SUM(l.l_extendedprice) "
        "FROM orders o, lineitem l WHERE l.l_orderkey = o.o_orderkey "
        "AND o.o_orderdate BETWEEN %d AND %d "
        "GROUP BY o.o_orderkey, o.o_orderdate LIMIT 10" % (lo, lo + 90)
    )


def _customer_orders(rng):
    segment = rng.randint(1, 5)
    date = rng.randint(DATE_LO + 700, DATE_HI - 700)
    return (
        "SELECT o.o_orderkey, o.o_totalprice FROM customer c, orders o "
        "WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = %d "
        "AND o.o_orderdate < %d" % (segment, date)
    )


def _part_supplier(rng):
    brand = rng.randint(1, 25)
    size = rng.randint(1, 15)
    return (
        "SELECT p.p_partkey, l.l_quantity FROM part p, lineitem l "
        "WHERE p.p_partkey = l.l_partkey AND p.p_brand = %d AND p.p_size < %d"
        % (brand, size)
    )


def _big_spenders(rng):
    qty = rng.uniform(45.0, 49.0)
    return (
        "SELECT l_orderkey, SUM(l_quantity) FROM lineitem "
        "WHERE l_quantity > %.1f GROUP BY l_orderkey LIMIT 100" % qty
    )


TEMPLATES = (
    (_pricing_summary, 0.15),
    (_shipping_window, 0.25),
    (_order_lineitem_join, 0.20),
    (_customer_orders, 0.15),
    (_part_supplier, 0.15),
    (_big_spenders, 0.10),
)

# Public registry mirroring the SDSS one: consumers (drift streams,
# tenant mixes) address makers by name, never by the private functions.
TEMPLATE_REGISTRY = {
    "pricing_summary": _pricing_summary,
    "shipping_window": _shipping_window,
    "order_lineitem_join": _order_lineitem_join,
    "customer_orders": _customer_orders,
    "part_supplier": _part_supplier,
    "big_spenders": _big_spenders,
}


def template(name):
    """The query maker registered under *name* (see TEMPLATE_REGISTRY)."""
    try:
        return TEMPLATE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown TPC-H template %r (known: %s)"
            % (name, ", ".join(sorted(TEMPLATE_REGISTRY)))
        ) from None


def tpch_workload(n_queries=15, seed=7, templates=None):
    """A seeded TPC-H-style decision-support mix."""
    rng = random.Random(seed)
    chosen = templates or TEMPLATES
    makers = [t for t, __ in chosen]
    weights = [w for __, w in chosen]
    workload = Workload()
    for __ in range(n_queries):
        maker = rng.choices(makers, weights=weights, k=1)[0]
        workload.add(maker(rng))
    return workload
