"""Drifting workload streams for the continuous-tuning scenario.

Scenario 3 needs "queries running on a database [that] evolve over time":
the stream moves through phases, each drawing from a different template
mix, so a design tuned for phase 1 turns stale in phase 2 — exactly the
situation COLT is built to detect.  Templates are addressed through the
public registries of :mod:`repro.workloads.sdss` and
:mod:`repro.workloads.tpch`, never their private makers.

The TPC-H phases exist for the multi-tenant tuning service: a mixed
tenant fleet streams astronomy and decision-support traffic against the
same service, each catalog on its own costing backplane.
"""

import random
from dataclasses import dataclass

from repro.workloads import sdss, tpch


@dataclass(frozen=True)
class DriftPhase:
    """One stretch of the stream: ``length`` queries from ``templates``."""

    name: str
    length: int
    templates: tuple  # ((maker, weight), ...)


def default_phases(length=200):
    """Three-phase astronomy drift: positional -> photometric -> spectral.

    Each phase is dominated by predicates on different columns, so the
    index set that helps one phase is nearly useless for the next.
    """
    positional = (
        (sdss.template("cone_search"), 0.8),
        (sdss.template("neighbor_search"), 0.2),
    )
    photometric = (
        (sdss.template("magnitude_cut"), 0.55),
        (sdss.template("color_cut"), 0.30),
        (sdss.template("type_histogram"), 0.15),
    )
    spectral = (
        (sdss.template("photo_spec_join"), 0.5),
        (sdss.template("spec_quality_join"), 0.3),
        (sdss.template("recent_plates"), 0.2),
    )
    return (
        DriftPhase("positional", length, positional),
        DriftPhase("photometric", length, photometric),
        DriftPhase("spectral", length, spectral),
    )


def tpch_phases(length=200):
    """Three-phase decision-support drift: pricing -> customers -> supply.

    The same stale-design dynamic as :func:`default_phases`, over the
    TPC-H-lite schema: each phase's predicates concentrate on different
    tables and columns.
    """
    pricing = (
        (tpch.template("pricing_summary"), 0.45),
        (tpch.template("shipping_window"), 0.55),
    )
    customers = (
        (tpch.template("customer_orders"), 0.6),
        (tpch.template("big_spenders"), 0.4),
    )
    supply = (
        (tpch.template("part_supplier"), 0.55),
        (tpch.template("order_lineitem_join"), 0.45),
    )
    return (
        DriftPhase("pricing", length, pricing),
        DriftPhase("customers", length, customers),
        DriftPhase("supply", length, supply),
    )


def drifting_stream(phases=None, seed=11):
    """Yield ``(phase_name, sql)`` pairs for the whole stream."""
    rng = random.Random(seed)
    for phase in phases or default_phases():
        makers = [t for t, __ in phase.templates]
        weights = [w for __, w in phase.templates]
        for __ in range(phase.length):
            maker = rng.choices(makers, weights=weights, k=1)[0]
            yield phase.name, maker(rng)
