"""Drifting workload streams for the continuous-tuning scenario.

Scenario 3 needs "queries running on a database [that] evolve over time":
the stream moves through phases, each drawing from a different template
mix, so a design tuned for phase 1 turns stale in phase 2 — exactly the
situation COLT is built to detect.
"""

import random
from dataclasses import dataclass

from repro.workloads import sdss


@dataclass(frozen=True)
class DriftPhase:
    """One stretch of the stream: ``length`` queries from ``templates``."""

    name: str
    length: int
    templates: tuple  # ((maker, weight), ...)


def default_phases(length=200):
    """Three-phase astronomy drift: positional -> photometric -> spectral.

    Each phase is dominated by predicates on different columns, so the
    index set that helps one phase is nearly useless for the next.
    """
    positional = (
        (sdss._cone_search, 0.8),
        (sdss._neighbor_search, 0.2),
    )
    photometric = (
        (sdss._magnitude_cut, 0.55),
        (sdss._color_cut, 0.30),
        (sdss._type_histogram, 0.15),
    )
    spectral = (
        (sdss._photo_spec_join, 0.5),
        (sdss._spec_quality_join, 0.3),
        (sdss._recent_plates, 0.2),
    )
    return (
        DriftPhase("positional", length, positional),
        DriftPhase("photometric", length, photometric),
        DriftPhase("spectral", length, spectral),
    )


def drifting_stream(phases=None, seed=11):
    """Yield ``(phase_name, sql)`` pairs for the whole stream."""
    rng = random.Random(seed)
    for phase in phases or default_phases():
        makers = [t for t, __ in phase.templates]
        weights = [w for __, w in phase.templates]
        for __ in range(phase.length):
            maker = rng.choices(makers, weights=weights, k=1)[0]
            yield phase.name, maker(rng)
