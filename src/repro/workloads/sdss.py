"""SDSS-like scientific schema and astronomy workload generator.

The demo evaluates against the Sloan Digital Sky Survey: very wide
photometric tables with selective sky-coordinate and magnitude predicates,
joins to the spectroscopic table, and aggregation over object classes.
This module synthesizes that shape (see DESIGN.md §2, substitution 3):
``photoobj`` is wide (30 columns) so vertical partitioning pays off,
``ra`` is the physical clustering key, magnitudes are normal-distributed,
and object types are Zipf-skewed.
"""

import random

from repro.catalog import Catalog, Column, DataType, Distribution, Table
from repro.workloads.workload import Workload

# Photometric magnitude bands as in SDSS (u, g, r, i, z).
BANDS = ("u", "g", "r", "i", "z")


def sdss_catalog(scale=1.0):
    """Build the SDSS-like catalog.  ``scale=1.0`` is ~2M photo objects."""
    photo_rows = max(1000, int(2_000_000 * scale))
    spec_rows = max(200, int(150_000 * scale))
    field_rows = max(50, int(20_000 * scale))
    neighbor_rows = max(500, int(800_000 * scale))

    catalog = Catalog()

    photo_columns = [
        Column("objid", DataType.BIGINT, Distribution(kind="sequence")),
        Column("skyversion", DataType.INT, Distribution(kind="uniform_int", low=0, high=2)),
        Column("run", DataType.INT, Distribution(kind="uniform_int", low=94, high=8162)),
        Column("camcol", DataType.INT, Distribution(kind="uniform_int", low=1, high=6)),
        Column("fieldid", DataType.INT,
               Distribution(kind="uniform_int", low=0, high=field_rows - 1, correlation=0.8)),
        Column("ra", DataType.DOUBLE,
               Distribution(kind="uniform", low=0.0, high=360.0, correlation=0.95)),
        Column("dec", DataType.DOUBLE, Distribution(kind="uniform", low=-25.0, high=85.0)),
        Column("type", DataType.INT, Distribution(kind="zipf", n_values=6, s=1.1)),
        Column("mode", DataType.INT, Distribution(kind="zipf", n_values=3, s=1.5)),
        Column("status", DataType.INT, Distribution(kind="uniform_int", low=0, high=255)),
        Column("flags", DataType.BIGINT, Distribution(kind="uniform_int", low=0, high=2**30)),
        Column("rowc", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=1489.0)),
        Column("colc", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=2048.0)),
        Column("petror50", DataType.FLOAT, Distribution(kind="normal", mu=3.0, sigma=1.5)),
        Column("petror90", DataType.FLOAT, Distribution(kind="normal", mu=7.0, sigma=3.0)),
    ]
    for band in BANDS:
        photo_columns.append(
            Column(
                band + "mag",
                DataType.FLOAT,
                Distribution(kind="normal", mu=20.0 + BANDS.index(band) * 0.4, sigma=2.0),
            )
        )
        photo_columns.append(
            Column(
                band + "err",
                DataType.FLOAT,
                Distribution(kind="uniform", low=0.0, high=0.5),
            )
        )
        photo_columns.append(
            Column(
                "extinction_" + band,
                DataType.FLOAT,
                Distribution(kind="uniform", low=0.0, high=1.2),
            )
        )
    catalog.add_table(Table("photoobj", photo_columns, row_count=photo_rows).build_stats())

    catalog.add_table(
        Table(
            "specobj",
            [
                Column("specid", DataType.BIGINT, Distribution(kind="sequence")),
                Column("bestobjid", DataType.BIGINT,
                       Distribution(kind="uniform_int", low=0, high=photo_rows - 1)),
                Column("z", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=7.0)),
                Column("zerr", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=0.01)),
                Column("zconf", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=1.0)),
                Column("specclass", DataType.INT, Distribution(kind="zipf", n_values=6, s=1.0)),
                Column("plate", DataType.INT, Distribution(kind="uniform_int", low=266, high=2974)),
                Column("mjd", DataType.INT,
                       Distribution(kind="uniform_int", low=51578, high=54663, correlation=0.9)),
                Column("sn_median", DataType.FLOAT, Distribution(kind="normal", mu=10.0, sigma=5.0)),
            ],
            row_count=spec_rows,
        ).build_stats()
    )

    catalog.add_table(
        Table(
            "field",
            [
                Column("fieldid", DataType.INT, Distribution(kind="sequence")),
                Column("run", DataType.INT, Distribution(kind="uniform_int", low=94, high=8162)),
                Column("camcol", DataType.INT, Distribution(kind="uniform_int", low=1, high=6)),
                Column("quality", DataType.INT, Distribution(kind="zipf", n_values=4, s=1.3)),
                Column("mjd", DataType.INT,
                       Distribution(kind="uniform_int", low=51075, high=54663)),
                Column("seeing", DataType.FLOAT, Distribution(kind="normal", mu=1.4, sigma=0.3)),
                Column("sky_r", DataType.FLOAT, Distribution(kind="normal", mu=21.0, sigma=0.5)),
            ],
            row_count=field_rows,
        ).build_stats()
    )

    catalog.add_table(
        Table(
            "neighbors",
            [
                Column("objid", DataType.BIGINT,
                       Distribution(kind="uniform_int", low=0, high=photo_rows - 1, correlation=0.9)),
                Column("neighborobjid", DataType.BIGINT,
                       Distribution(kind="uniform_int", low=0, high=photo_rows - 1)),
                Column("distance", DataType.FLOAT, Distribution(kind="uniform", low=0.0, high=0.5)),
                Column("neighbortype", DataType.INT, Distribution(kind="zipf", n_values=6, s=1.1)),
            ],
            row_count=neighbor_rows,
        ).build_stats()
    )
    return catalog


# ----------------------------------------------------------------------
# Query templates (the astronomy mix the demo motivates).
# ----------------------------------------------------------------------


def _cone_search(rng):
    ra = rng.uniform(0.0, 355.0)
    dec = rng.uniform(-25.0, 80.0)
    w = rng.uniform(0.2, 4.0)
    return (
        "SELECT objid, ra, dec, rmag FROM photoobj "
        "WHERE ra BETWEEN %.3f AND %.3f AND dec BETWEEN %.3f AND %.3f"
        % (ra, ra + w, dec, dec + w)
    )


def _magnitude_cut(rng):
    band = rng.choice(BANDS)
    mag = rng.uniform(14.0, 18.0)
    obj_type = rng.randint(1, 6)
    return (
        "SELECT objid, ra, dec, %smag, %serr FROM photoobj "
        "WHERE %smag < %.2f AND type = %d" % (band, band, band, mag, obj_type)
    )


def _color_cut(rng):
    g_hi = rng.uniform(15.0, 18.0)
    r_hi = g_hi - rng.uniform(0.1, 0.8)
    return (
        "SELECT objid, gmag, rmag FROM photoobj "
        "WHERE gmag < %.2f AND rmag < %.2f AND mode = 1" % (g_hi, r_hi)
    )


def _photo_spec_join(rng):
    z_lo = rng.uniform(0.0, 6.0)
    z_hi = z_lo + rng.uniform(0.02, 0.4)
    return (
        "SELECT p.objid, p.ra, p.dec, s.z FROM photoobj p, specobj s "
        "WHERE p.objid = s.bestobjid AND s.z BETWEEN %.3f AND %.3f" % (z_lo, z_hi)
    )


def _spec_quality_join(rng):
    sn = rng.uniform(18.0, 30.0)
    cls = rng.randint(1, 6)
    return (
        "SELECT p.objid, p.rmag, s.z, s.sn_median FROM photoobj p, specobj s "
        "WHERE p.objid = s.bestobjid AND s.sn_median > %.1f AND s.specclass = %d"
        % (sn, cls)
    )


def _type_histogram(rng):
    band = rng.choice(BANDS)
    mag = rng.uniform(15.0, 21.0)
    return (
        "SELECT type, COUNT(*) FROM photoobj "
        "WHERE %smag < %.2f GROUP BY type ORDER BY type" % (band, mag)
    )


def _field_join(rng):
    quality = rng.randint(1, 3)
    seeing = rng.uniform(1.0, 1.6)
    return (
        "SELECT p.objid, p.ra, f.seeing FROM photoobj p, field f "
        "WHERE p.fieldid = f.fieldid AND f.quality = %d AND f.seeing < %.2f"
        % (quality, seeing)
    )


def _neighbor_search(rng):
    dist = rng.uniform(0.005, 0.08)
    obj_type = rng.randint(1, 3)
    return (
        "SELECT p.objid, n.neighborobjid, n.distance FROM photoobj p, neighbors n "
        "WHERE p.objid = n.objid AND n.distance < %.4f AND p.type = %d"
        % (dist, obj_type)
    )


def _recent_plates(rng):
    mjd = rng.randint(54000, 54600)
    return (
        "SELECT plate, COUNT(*) FROM specobj WHERE mjd > %d "
        "GROUP BY plate ORDER BY plate LIMIT 20" % mjd
    )


def _status_update(rng):
    """Pipeline reprocessing: flag a run's objects (touches `status`)."""
    run = rng.randint(94, 8162)
    status = rng.randint(0, 255)
    return "UPDATE photoobj SET status = %d WHERE run = %d" % (status, run)


def _flags_update(rng):
    """Recalibration of one object (touches `flags` and one magnitude)."""
    objid = rng.randint(0, 10**6)
    band = rng.choice(BANDS)
    return (
        "UPDATE photoobj SET flags = %d, %smag = %.2f WHERE objid = %d"
        % (rng.randint(0, 2**30), band, rng.uniform(14.0, 26.0), objid)
    )


def _neighbor_insert(rng):
    """New cross-match results appended to the neighbors table."""
    rows = ", ".join(
        "(%d, %d, %.4f, %d)"
        % (
            rng.randint(0, 10**6),
            rng.randint(0, 10**6),
            rng.uniform(0.0, 0.5),
            rng.randint(1, 6),
        )
        for __ in range(rng.randint(1, 5))
    )
    return "INSERT INTO neighbors VALUES %s" % rows


TEMPLATES = (
    (_cone_search, 0.22),
    (_magnitude_cut, 0.18),
    (_color_cut, 0.10),
    (_photo_spec_join, 0.16),
    (_spec_quality_join, 0.08),
    (_type_histogram, 0.08),
    (_field_join, 0.08),
    (_neighbor_search, 0.06),
    (_recent_plates, 0.04),
)

WRITE_TEMPLATES = (
    (_status_update, 0.45),
    (_flags_update, 0.35),
    (_neighbor_insert, 0.20),
)

# Public registry: template name -> maker.  The makers above are module
# privates; everything outside this module (drift streams, tests, tenant
# mixes) addresses them by name through here, so the maker set can be
# reorganized without breaking consumers.
TEMPLATE_REGISTRY = {
    "cone_search": _cone_search,
    "magnitude_cut": _magnitude_cut,
    "color_cut": _color_cut,
    "photo_spec_join": _photo_spec_join,
    "spec_quality_join": _spec_quality_join,
    "type_histogram": _type_histogram,
    "field_join": _field_join,
    "neighbor_search": _neighbor_search,
    "recent_plates": _recent_plates,
    "status_update": _status_update,
    "flags_update": _flags_update,
    "neighbor_insert": _neighbor_insert,
}


def template(name):
    """The query maker registered under *name* (see TEMPLATE_REGISTRY)."""
    try:
        return TEMPLATE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown SDSS template %r (known: %s)"
            % (name, ", ".join(sorted(TEMPLATE_REGISTRY)))
        ) from None


def sdss_workload(n_queries=20, seed=42, templates=None, write_fraction=0.0,
                  write_weight=1.0):
    """A seeded mix of astronomy queries.

    ``write_fraction`` (0..1) of the statements are drawn from the write
    templates (pipeline updates, cross-match inserts), each carrying
    ``write_weight`` — writes typically run far more often than ad-hoc
    analysis queries, which is what makes index maintenance matter.
    """
    rng = random.Random(seed)
    chosen_templates = templates or TEMPLATES
    makers = [t for t, __ in chosen_templates]
    weights = [w for __, w in chosen_templates]
    write_makers = [t for t, __ in WRITE_TEMPLATES]
    write_weights = [w for __, w in WRITE_TEMPLATES]
    workload = Workload()
    for __ in range(n_queries):
        if write_fraction > 0.0 and rng.random() < write_fraction:
            maker = rng.choices(write_makers, weights=write_weights, k=1)[0]
            workload.add(maker(rng), write_weight)
        else:
            maker = rng.choices(makers, weights=weights, k=1)[0]
            workload.add(maker(rng))
    return workload
