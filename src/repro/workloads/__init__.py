"""Workload substrate: schemas and seeded query generators.

* :mod:`repro.workloads.sdss` — the SDSS-like scientific schema and
  astronomy query mix the demo runs on,
* :mod:`repro.workloads.tpch` — a TPC-H-lite decision-support mix used to
  show the designer is not SDSS-specific,
* :mod:`repro.workloads.drift` — a phase-shifting query stream for the
  continuous-tuning scenario.
"""

from repro.workloads.workload import Workload
from repro.workloads.sdss import sdss_catalog, sdss_workload
from repro.workloads.tpch import tpch_catalog, tpch_workload
from repro.workloads.drift import (
    DriftPhase,
    default_phases,
    drifting_stream,
    tpch_phases,
)

__all__ = [
    "Workload",
    "sdss_catalog",
    "sdss_workload",
    "tpch_catalog",
    "tpch_workload",
    "DriftPhase",
    "default_phases",
    "drifting_stream",
    "tpch_phases",
]
