"""The TuningService: many tenants, one costing backplane per catalog.

The paper pitches the designer as an *interactive, continuously running*
advisor; the seed could only tune one workload in one blocking call.
This module is the long-lived service layer over the same components:

* one :class:`Backplane` per (catalog, settings) pair — a
  :class:`~repro.evaluation.ShardedInumCachePool` plus one shared
  :class:`~repro.evaluation.WorkloadEvaluator` every tenant on that
  catalog prices through.  INUM caches, exact per-configuration
  services, and memos built for one tenant are hits for the next;
* per-tenant :class:`~repro.service.tenant.TenantSession` objects, each
  advancing on its own COLT epochs against the shared, incrementally
  maintained caches (the stale-synchronous idea: tenants never wait for
  a global barrier, they just read whatever derived state is current);
* **concurrent warm-up** (:meth:`warm_up`) pre-building per-query
  caches in a thread pool, bit-identical to sequential warm-up;
* **scheduled ingest** (:meth:`run_scheduled`): every tenant advances
  as resumable steps on the cooperative
  :class:`~repro.runtime.Scheduler` — fair, priority-aware, with
  per-tenant backpressure, pause-point snapshots (``--snapshot-interval``
  in the CLI), and an executor seam that can offload INUM cache builds
  to a :class:`~repro.evaluation.ProcessPoolBackplane` or across a
  :class:`~repro.net.RemoteBackplane` runner fleet;
  :meth:`run_streams` is the thin compatibility shim over it, with
  results pinned bit-identical to the legacy thread-per-tenant loop
  (:meth:`run_streams_threaded`);
* a mergeable **status surface** (:meth:`status` /
  :meth:`status_text`): per-tenant session snapshots, per-backplane
  pool statistics, and runtime state (queue depths, snapshot age),
  cheap enough to poll.
"""

import itertools
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.evaluation import ShardedInumCachePool, WorkloadEvaluator, wire
from repro.runtime import Scheduler, StepExecutor
from repro.service.tenant import TenantSession
from repro.util import DesignError, WireFormatError

STATE_FILENAME = "service.json"


@dataclass
class Backplane:
    """One catalog's shared costing substrate inside the service."""

    key: str
    catalog: object
    settings: object
    pool: ShardedInumCachePool
    evaluator: WorkloadEvaluator
    tenants: list = field(default_factory=list)

    def warm_up(self, workload, threads=None):
        """Pre-build INUM caches for *workload* (thread fan-out when
        ``threads > 1``); returns the optimizer calls spent."""
        return self.evaluator.warm_up(workload, threads=threads)

    def status(self):
        stats = self.pool.stats
        snapshot = stats.as_dict()
        snapshot.update(
            tenants=list(self.tenants),
            pool_size=len(self.pool),
            shards=self.pool.n_shards,
            hit_rate=stats.hit_rate,
            shard_stats=self.pool.shard_stats(),
            # Compiled columnar kernels resident alongside the entries
            # (pool-owned, dropped with their entry on eviction).
            kernels=self.pool.kernel_count,
        )
        return snapshot


class TuningService:
    """Hosts many concurrent tenant sessions over shared backplanes.

    ``shards`` and ``pool_capacity`` size every backplane's cache pool
    (``shards=1`` degenerates to the flat single-lock pool);
    ``warm_threads`` is the default fan-out for :meth:`warm_up`.

    Typical use::

        service = TuningService(shards=4)
        service.add_backplane("sdss", sdss_catalog(scale=0.1))
        service.add_tenant("astro-1", "sdss", recommend_every=50)
        service.warm_up("sdss", first_phase_queries)
        service.run_streams({"astro-1": drifting_stream(...)})
        print(service.status_text())
    """

    def __init__(self, shards=4, pool_capacity=None, warm_threads=None):
        self.shards = shards
        self.pool_capacity = pool_capacity
        self.warm_threads = warm_threads
        self._backplanes = OrderedDict()
        self._tenants = OrderedDict()
        self._lock = threading.RLock()  # guards the two registries
        self._runtime = None  # the active Scheduler during run_scheduled
        self._pause_point = False  # inside the scheduler's snapshot hook
        self._pending = {}  # tenant -> restored not-yet-ingested events
        self._snapshots = 0
        self._last_snapshot_time = None
        # Scrape-time mirror of pool statistics and tenant counters:
        # the registry's counters match PoolStats to the unit because
        # they are *set from* PoolStats at collect time, never counted
        # separately.  Held weakly; dies with the service.
        obs.metrics().add_collector(self._collect_obs)

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def add_backplane(self, key, catalog, settings=None):
        """Register a catalog under *key*; tenants join it by key."""
        with self._lock:
            if key in self._backplanes:
                raise DesignError("backplane %r already registered" % (key,))
            pool = ShardedInumCachePool(
                shards=self.shards, capacity=self.pool_capacity
            )
            evaluator = WorkloadEvaluator(catalog, settings, pool=pool)
            backplane = Backplane(
                key=key,
                catalog=catalog,
                settings=evaluator.settings,
                pool=pool,
                evaluator=evaluator,
            )
            self._backplanes[key] = backplane
            return backplane

    def backplane(self, key):
        try:
            return self._backplanes[key]
        except KeyError:
            raise DesignError(
                "unknown backplane %r (registered: %s)"
                % (key, ", ".join(self._backplanes) or "none")
            ) from None

    def add_tenant(self, name, backplane, **session_options):
        """Create a :class:`TenantSession` named *name* on *backplane*
        (a key previously passed to :meth:`add_backplane`).  Extra
        keyword options go to the session constructor."""
        with self._lock:
            if name in self._tenants:
                raise DesignError("tenant %r already registered" % (name,))
            plane = self.backplane(backplane)
            session = TenantSession(
                name, plane.catalog, plane.evaluator, **session_options
            )
            self._tenants[name] = session
            plane.tenants.append(name)
            return session

    def tenant(self, name):
        try:
            return self._tenants[name]
        except KeyError:
            raise DesignError(
                "unknown tenant %r (registered: %s)"
                % (name, ", ".join(self._tenants) or "none")
            ) from None

    @property
    def tenants(self):
        return list(self._tenants.values())

    # ------------------------------------------------------------------
    # Warm-up and ingest.
    # ------------------------------------------------------------------

    def warm_up(self, backplane, workload, threads=None, executor=None):
        """Concurrently pre-build *backplane*'s caches for *workload*.

        With *executor* (a :class:`~repro.runtime.ProcessStepExecutor`
        or :class:`~repro.runtime.RemoteStepExecutor`) the builds are
        offloaded through the executor's refill seam — across worker
        processes or the runner fleet — instead of the local thread
        pool; the installed entries are bit-identical either way.  The
        trailing inline pass is a residency check that also covers
        anything the offload could not ship (and returns the optimizer
        calls it spent, like the plain path)."""
        plane = self.backplane(backplane)
        if executor is not None:
            executor.refill(plane.evaluator, list(workload))
            return plane.warm_up(workload, threads=1)
        if threads is None:
            threads = self.warm_threads
        return plane.warm_up(workload, threads=threads)

    def ingest(self, tenant, event):
        """Feed one query event to *tenant* (the streaming entry point)."""
        self.tenant(tenant).ingest(event)

    def run_streams(self, streams, concurrency=None, finish=True):
        """Drive many tenant streams to completion and return the final
        status snapshot.

        A thin compatibility shim over :meth:`run_scheduled`: tenants
        advance on the cooperative scheduler as resumable steps instead
        of one blocking thread each, with per-tenant results pinned
        bit-identical to the legacy loop (``concurrency`` is accepted
        for API compatibility; the scheduler interleaves steps from one
        thread, so it no longer changes anything — use
        :meth:`run_streams_threaded` for the historical behavior).
        """
        return self.run_scheduled(streams, finish=finish)

    def run_streams_threaded(self, streams, concurrency=None, finish=True):
        """The PR-2 thread-per-tenant ingest loop, kept as the reference
        implementation the scheduler path is pinned against (and the
        baseline the scheduler benchmark measures).

        ``streams`` maps tenant name -> iterable of query events.  Each
        tenant is drained by exactly one worker (sessions are not
        reentrant), up to ``concurrency`` tenants in flight at once
        (default: all of them).  The first worker exception propagates.
        """
        sessions = [(self.tenant(name), stream)
                    for name, stream in streams.items()]
        workers = max(1, min(len(sessions), concurrency or len(sessions)))
        if workers == 1:
            for session, stream in sessions:
                session.drain(stream, finish=finish)
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(session.drain, stream, finish)
                    for session, stream in sessions
                ]
                for future in futures:
                    future.result()
        return self.status()

    def run_scheduled(self, streams, executor=None, finish=True,
                      lookahead=None, priorities=None, max_pending=None,
                      snapshot_interval=0, state_dir=None, on_snapshot=None,
                      trace=False):
        """Drive tenant streams on the cooperative scheduler.

        ``executor`` is the heavy-step seam — ``None`` means inline
        (bit-identical to the thread loop in work *and* placement); a
        :class:`~repro.runtime.ProcessStepExecutor` offloads INUM cache
        builds to worker processes, a
        :class:`~repro.runtime.RemoteStepExecutor` fans them across a
        runner fleet (both bit-identical in results, faster on spare
        cores or machines).  An executor created here is closed here; a
        caller-provided one is left open for reuse.

        ``priorities`` maps tenant name -> stride weight (default 1.0);
        ``max_pending`` bounds each tenant's event buffer (backpressure);
        ``lookahead`` is the per-tenant prewarm read-ahead.  Every
        ``snapshot_interval`` ingested events the scheduler pauses at a
        consistent event boundary and takes :meth:`snapshot` — written
        to ``state_dir`` when given, and passed to ``on_snapshot`` when
        given.  Events restored with a snapshot's scheduler state are
        re-queued ahead of each tenant's stream automatically.

        If the run raises, events still buffered are re-captured into
        the service's pending state so a later :meth:`snapshot` keeps
        them; this is best-effort — an event whose steps were mid-flight
        when the error hit cannot be recovered, so hosts wanting crash
        consistency should restart from the last ``snapshot_interval``
        write rather than the post-error in-memory state.

        Returns the final status snapshot, like :meth:`run_streams`.
        """
        owned = executor is None
        executor = executor if executor is not None else StepExecutor()
        hook = None
        if snapshot_interval:
            hook = self._snapshot_hook(state_dir, on_snapshot)
        scheduler = Scheduler(
            executor=executor,
            lookahead=lookahead,
            snapshot_interval=snapshot_interval,
            on_snapshot=hook,
            trace=trace,
        )
        priorities = priorities or {}
        for name, stream in streams.items():
            session = self.tenant(name)
            restored = self._pending.pop(name, None)
            if restored:
                stream = itertools.chain(restored, stream)
            scheduler.add(
                name, session, stream,
                finish=finish,
                priority=priorities.get(name, 1.0),
                max_pending=max_pending,
            )
        self._runtime = scheduler
        try:
            scheduler.run()
        finally:
            # Re-capture any events still buffered (a run that raised
            # mid-stream leaves them behind): restored push-mode events
            # are not replayable, so losing them here would make a
            # later save_state() silently incomplete.
            for name, events in scheduler.pending_events().items():
                if events:
                    self._pending[name] = list(events)
            self._runtime = None
            if owned:
                executor.close()
        return self.status()

    def _snapshot_hook(self, state_dir, on_snapshot):
        def hook(scheduler):
            self._pause_point = True
            try:
                payload = self.snapshot()
            finally:
                self._pause_point = False
            if state_dir is not None:
                self._write_state(state_dir, payload)
            self._snapshots += 1
            self._last_snapshot_time = time.monotonic()
            if on_snapshot is not None:
                on_snapshot(payload)
        return hook

    def stream_offset(self, name):
        """How many events of *name*'s original stream are accounted for
        — ingested by the session plus restored-but-pending in the
        scheduler state.  A host replaying a deterministic stream after
        :meth:`restore` resumes it from this offset."""
        return self.tenant(name).queries + len(self._pending.get(name, ()))

    # ------------------------------------------------------------------
    # Snapshot / restore (wire format).
    # ------------------------------------------------------------------

    def snapshot(self):
        """The whole service's tenant state as one wire-format payload.

        Catalogs are *not* embedded: backplanes are re-registered by the
        host on restart (they carry the heavyweight live objects), and
        each tenant's snapshot records which backplane key it belongs
        to.  Pool contents are rebuilt on demand — they are a cache,
        not state.

        When a scheduler run is active the snapshot also carries the
        scheduler's per-tenant pending buffers (events pulled from the
        stream or pushed by a producer but not yet ingested) — taken at
        a pause point, this makes a mid-ingest snapshot complete:
        sessions reflect exactly the ingested prefix, and the buffered
        events ride along so nothing is lost even when the stream
        cannot be replayed.

        During an active run, only the scheduler itself may snapshot
        (via ``run_scheduled(snapshot_interval=…)``), because it first
        drains in-flight events to their boundaries; a direct call from
        another thread would capture sessions mid-event and race the
        live buffers, so it is refused loudly."""
        if self._runtime is not None and not self._pause_point:
            raise DesignError(
                "snapshot() during an active scheduler run is only "
                "consistent at a pause point; use "
                "run_scheduled(snapshot_interval=..., state_dir=...) "
                "for periodic mid-ingest snapshots"
            )
        with self._lock:
            tenant_keys = {
                name: key
                for key, plane in self._backplanes.items()
                for name in plane.tenants
            }
            pending = dict(self._pending)
            if self._runtime is not None:
                for name, events in self._runtime.pending_events().items():
                    if events:
                        pending[name] = events
            return {
                "kind": wire.KIND_SERVICE,
                "backplanes": list(self._backplanes),
                "tenants": [
                    {
                        "backplane": tenant_keys[name],
                        "session": session.snapshot(),
                    }
                    for name, session in self._tenants.items()
                ],
                "scheduler": {
                    "pending": {
                        name: [wire.event_to_wire(e) for e in events]
                        for name, events in pending.items()
                        if events
                    },
                },
            }

    def restore(self, payload):
        """Rebuild every tenant session from a :meth:`snapshot` payload.

        The host must have re-registered (at least) the backplanes the
        snapshot's tenants reference, over equivalent catalogs; restored
        tenants then continue their streams exactly where the snapshot
        left them.  Returns the restored sessions by name."""
        if payload.get("kind") != wire.KIND_SERVICE:
            raise WireFormatError(
                "expected %r payload, got %r"
                % (wire.KIND_SERVICE, payload.get("kind"))
            )
        entries = list(payload.get("tenants", ()))
        with self._lock:
            # All-or-nothing: validate names/backplanes and materialize
            # every session *before* registering any, so a snapshot with
            # a missing backplane or one malformed session payload fails
            # cleanly and the retry — after the operator fixes it —
            # starts from scratch instead of tripping over a
            # half-restored service.
            seen = set()
            for entry in entries:
                self.backplane(entry["backplane"])
                name = entry["session"]["name"]
                if name in self._tenants or name in seen:
                    raise DesignError(
                        "tenant %r already registered" % (name,)
                    )
                seen.add(name)
            built = []
            for entry in entries:
                plane = self.backplane(entry["backplane"])
                session = TenantSession.from_snapshot(
                    entry["session"], plane.catalog, plane.evaluator
                )
                built.append((plane, session))
            restored = {}
            for plane, session in built:
                self._tenants[session.name] = session
                plane.tenants.append(session.name)
                restored[session.name] = session
            scheduler_state = payload.get("scheduler") or {}
            for name, events in scheduler_state.get("pending", {}).items():
                self._pending[name] = [
                    wire.event_from_wire(e) for e in events
                ]
            return restored

    def save_state(self, state_dir):
        """Write the service snapshot to ``<state_dir>/service.json``
        (atomic rename, so a crash mid-write never corrupts the last
        good snapshot).  Returns the path written."""
        path = self._write_state(state_dir, self.snapshot())
        self._snapshots += 1
        self._last_snapshot_time = time.monotonic()
        return path

    def _write_state(self, state_dir, payload):
        os.makedirs(state_dir, exist_ok=True)
        path = os.path.join(state_dir, STATE_FILENAME)
        scratch = path + ".tmp"
        with open(scratch, "w") as f:
            f.write(wire.dumps(payload, indent=2))
        os.replace(scratch, path)
        return path

    def load_state(self, state_dir):
        """Restore tenants from ``<state_dir>/service.json`` if present;
        returns the restored sessions by name (empty dict when the
        directory holds no snapshot — a cold start)."""
        path = os.path.join(state_dir, STATE_FILENAME)
        if not os.path.exists(path):
            return {}
        with open(path) as f:
            payload = wire.loads(f.read())
        return self.restore(payload)

    # ------------------------------------------------------------------
    # Monitoring.
    # ------------------------------------------------------------------

    def queue_depths(self):
        """Buffered-but-not-ingested events per tenant: live scheduler
        buffers during a run, restored pending buffers between runs."""
        if self._runtime is not None:
            return self._runtime.queue_depths()
        return {name: len(self._pending.get(name, ()))
                for name in self._tenants}

    def _collect_obs(self, registry):
        """Scrape-time mirror of pool and tenant accounting.

        Counter families are *set* from the same lock-exact
        :class:`~repro.evaluation.pool.PoolStats` snapshots
        :meth:`status` reports, so a scrape and a status call taken at
        the same quiet instant agree to the unit — and the costing hot
        path carries zero extra bookkeeping."""
        with self._lock:
            planes = list(self._backplanes.items())
            sessions = list(self._tenants.items())
        hits = registry.counter(
            "repro_pool_hits_total", "INUM cache pool hits",
            labelnames=("backplane",))
        misses = registry.counter(
            "repro_pool_misses_total", "INUM cache pool misses",
            labelnames=("backplane",))
        evictions = registry.counter(
            "repro_pool_evictions_total", "INUM cache pool evictions",
            labelnames=("backplane",))
        builds = registry.counter(
            "repro_pool_optimizer_calls_total",
            "Optimizer calls spent building pool entries",
            labelnames=("backplane",))
        entries = registry.gauge(
            "repro_pool_entries", "Resident INUM cache entries",
            labelnames=("backplane",))
        kernels = registry.gauge(
            "repro_pool_kernels", "Compiled columnar kernels resident",
            labelnames=("backplane",))
        for key, plane in planes:
            stats = plane.pool.stats
            hits.labels(backplane=key).set_total(stats.hits)
            misses.labels(backplane=key).set_total(stats.misses)
            evictions.labels(backplane=key).set_total(stats.evictions)
            builds.labels(backplane=key).set_total(stats.optimizer_calls)
            entries.labels(backplane=key).set(len(plane.pool))
            kernels.labels(backplane=key).set(plane.pool.kernel_count)
        queries = registry.counter(
            "repro_tenant_queries_total", "Query events ingested per tenant",
            labelnames=("tenant",))
        for name, session in sessions:
            queries.labels(tenant=name).set_total(session.queries)

    def status(self):
        """Mergeable point-in-time snapshot of every tenant and pool."""
        # Monotonic difference: snapshot age must not jump when the
        # wall clock is adjusted (NTP slew, DST) under a long-lived
        # service.
        age = None
        if self._last_snapshot_time is not None:
            age = time.monotonic() - self._last_snapshot_time
        return {
            "tenants": {
                name: session.status()
                for name, session in self._tenants.items()
            },
            "backplanes": {
                key: plane.status()
                for key, plane in self._backplanes.items()
            },
            "runtime": {
                "active": self._runtime is not None,
                "queue_depths": self.queue_depths(),
                "snapshots": self._snapshots,
                "last_snapshot_age": age,
            },
            # The merged telemetry registry (collectors run first, so
            # pool/scheduler mirrors are current): one JSON-safe view
            # of every counter, gauge, and histogram.
            "obs": obs.metrics().snapshot(),
        }

    def status_text(self):
        """The status snapshot as the terminal panel ``serve`` prints."""
        snapshot = self.status()
        depths = snapshot["runtime"]["queue_depths"]
        lines = [
            "%-12s %-10s %8s %7s %7s %6s %6s %6s %6s  %s"
            % ("tenant", "phase", "queries", "epochs", "drifts",
               "alerts", "adopt", "recs", "queue", "configuration")
        ]
        for name, t in snapshot["tenants"].items():
            lines.append(
                "%-12s %-10s %8d %7d %7d %6d %6d %6d %6d  %s"
                % (
                    name,
                    t["phase"] or "-",
                    t["queries"],
                    t["epochs"],
                    t["drift_events"],
                    t["alerts"],
                    t["adoptions"],
                    t["recommendations"],
                    depths.get(name, 0),
                    ",".join(t["configuration"]) or "(none)",
                )
            )
        for key, plane in snapshot["backplanes"].items():
            lines.append(
                "backplane %-8s tenants=%d shards=%d entries=%d "
                "kernels=%d hits=%d misses=%d evictions=%d builds=%d "
                "hit_rate=%.2f"
                % (
                    key,
                    len(plane["tenants"]),
                    plane["shards"],
                    plane["pool_size"],
                    plane["kernels"],
                    plane["hits"],
                    plane["misses"],
                    plane["evictions"],
                    plane["optimizer_calls"],
                    plane["hit_rate"],
                )
            )
        runtime = snapshot["runtime"]
        age = runtime["last_snapshot_age"]
        lines.append(
            "runtime: %s snapshots=%d last_snapshot_age=%s queued=%d"
            % (
                "scheduling" if runtime["active"] else "idle",
                runtime["snapshots"],
                "%.1fs" % age if age is not None else "-",
                sum(runtime["queue_depths"].values()),
            )
        )
        return "\n".join(lines)
