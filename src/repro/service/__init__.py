"""The multi-tenant online tuning service.

A long-lived layer hosting many concurrent tenant streams over shared
costing backplanes:

* :mod:`repro.service.service` — :class:`TuningService`: backplane
  registry (one sharded INUM cache pool + shared evaluator per
  catalog), concurrent warm-up, scheduler-driven per-tenant ingest
  (see :mod:`repro.runtime`; the legacy thread loop survives as
  :meth:`TuningService.run_streams_threaded`), pause-point snapshots,
  merged status snapshots;
* :mod:`repro.service.tenant` — :class:`TenantSession`: streaming
  ingest decomposed into resumable steps
  (:meth:`~TenantSession.ingest_steps`), the COLT epoch loop, drift
  detection at phase boundaries, periodic full-advisor recommendation
  refreshes.
"""

from repro.service.service import Backplane, TuningService
from repro.service.tenant import (
    DriftEvent,
    RecommendationRecord,
    TenantSession,
)

__all__ = [
    "Backplane",
    "TuningService",
    "TenantSession",
    "DriftEvent",
    "RecommendationRecord",
]
