"""One tenant's continuously tuned session inside the TuningService.

A tenant is a stream of query events over one catalog.  The session
wraps the paper's Scenario-3 machinery — a COLT epoch loop observing
every query — and adds what a long-lived service needs on top:

* **streaming ingest** of ``(phase, sql)`` events (plain SQL works too),
* **drift detection at phase boundaries**: when the event's phase tag
  changes, the session records a drift event, restores COLT's full
  probing budget (:meth:`~repro.colt.ColtTuner.notify_workload_shift`),
  and reviews the design against the window that just went stale,
* **periodic** :meth:`~repro.designer.facade.Designer.recommend`
  **refreshes** over a sliding window of recent queries — the "full
  advisor" pass COLT's single-column candidates cannot replace,
* a **status snapshot** for the service's monitoring surface.

Tenants advance on their own epochs; everything expensive (INUM cache
builds, exact optimizer plans) flows through the shared backplane
evaluator, so work one tenant pays for is a cache hit for the next.
A session is not reentrant: it is advanced by one driver at a time —
normally the cooperative :class:`~repro.runtime.Scheduler`, one step
(:meth:`ingest_steps`) after another, or a single legacy ``drain()``
thread; *different* sessions sharing an evaluator may run
concurrently.
"""

import time
from collections import deque
from dataclasses import asdict, dataclass
from functools import partial

from repro import obs
from repro.colt import ColtSettings
from repro.designer.facade import Designer
from repro.evaluation import wire
from repro.runtime.steps import Step
from repro.util import WireFormatError


@dataclass(frozen=True)
class DriftEvent:
    """A phase boundary observed in the tenant's stream."""

    at_query: int  # events ingested when the boundary was seen
    from_phase: str
    to_phase: str


@dataclass(frozen=True)
class RecommendationRecord:
    """One Designer.recommend refresh, summarized for the status panel."""

    at_query: int
    phase: str
    trigger: str  # "interval" | "drift" | "final"
    indexes: tuple  # sorted index names
    improvement_pct: float


class TenantSession:
    """Continuous tuning of one tenant's stream over a shared backplane.

    ``evaluator`` is typically a backplane-shared
    :class:`~repro.evaluation.WorkloadEvaluator`; a private one works
    identically (that equivalence is pinned in the test suite — shared
    caches only dedupe deterministic work, they never change results).

    ``recommend_every`` triggers a full-advisor refresh every N ingested
    queries (0 disables interval refreshes); ``refresh_on_drift`` runs
    one at every phase boundary; :meth:`finish` always closes with one.
    The refresh prices the last ``window`` queries within
    ``budget_frac`` of the catalog's total pages.
    """

    def __init__(self, name, catalog, evaluator, colt_settings=None,
                 recommend_every=0, window=50, budget_frac=0.25,
                 solver="greedy", refresh_on_drift=True, partitions=False):
        self.name = name
        self.catalog = catalog
        self.evaluator = evaluator
        self.designer = Designer(catalog, evaluator=evaluator)
        if colt_settings is None:
            colt_settings = ColtSettings(
                space_budget_pages=int(
                    sum(t.pages for t in catalog.tables) * 0.5
                )
            )
        self.tuner = self.designer.continuous_tuner(colt_settings)
        self.recommend_every = recommend_every
        self.window = deque(maxlen=window)
        self.budget_pages = int(
            sum(t.pages for t in catalog.tables) * budget_frac
        )
        self.solver = solver
        self.refresh_on_drift = refresh_on_drift
        self.partitions = partitions
        self.queries = 0
        self.drift_events = []
        self.recommendations = []
        self.last_recommendation = None  # full FullRecommendation object
        self._phase = None
        self._phases_seen = []
        self._finished = False

    # ------------------------------------------------------------------
    # Streaming ingest, decomposed into resumable steps.
    # ------------------------------------------------------------------

    def ingest_steps(self, event):
        """One event's ingest as a lazy sequence of resumable
        :class:`~repro.runtime.Step`\\ s — the scheduler's view of
        :meth:`ingest`, with an explicit pause point between steps.

        Steps for a ``(phase, sql)`` event, in order:

        1. ``drift`` (phase boundary only): record the drift event,
           restore COLT's probing budget, review the stale window —
           heavy when a drift refresh will run;
        2. ``observe``: count the query, slide the window, feed COLT —
           heavy because probing (and a closing epoch) builds the
           query's INUM cache;
        3. ``refresh`` (interval due only): the full-advisor pass over
           the window.

        Each condition is evaluated when the *previous* step has run
        (generators advance lazily), so driving the steps to exhaustion
        is exactly :meth:`ingest` — the compatibility shim literally
        does that, which is what pins the two paths bit-identical.
        """
        if isinstance(event, tuple):
            phase, sql = event
        else:
            phase, sql = None, event
        if phase is not None and phase != self._phase:
            heavy = (
                self._phase is not None
                and self.refresh_on_drift
                and bool(self.window)
            )
            yield Step(
                "drift",
                run=partial(self._drift_step, phase),
                heavy=heavy,
                prewarm=tuple(self.window) if heavy else (),
            )
        prewarm = (sql,)
        if self.tuner.will_end_epoch:
            # The closing epoch re-prices every query it observed.
            prewarm += self.tuner.pending_queries
        yield Step(
            "observe",
            run=partial(self._observe_step, sql),
            heavy=True,
            prewarm=prewarm,
        )
        if self.recommend_every and self.queries % self.recommend_every == 0:
            yield Step(
                "refresh",
                run=partial(self._refresh, "interval"),
                heavy=True,
                prewarm=tuple(self.window),
            )

    def _drift_step(self, phase):
        previous = self._phase
        self._phase = phase
        self._phases_seen.append(phase)
        if previous is not None:
            obs.metrics().counter(
                "repro_tenant_drift_total",
                "Phase boundaries observed per tenant",
                labelnames=("tenant",),
            ).labels(tenant=self.name).inc()
            self.drift_events.append(
                DriftEvent(
                    at_query=self.queries,
                    from_phase=previous,
                    to_phase=phase,
                )
            )
            # The host *knows* the mix shifted; skip COLT's discovery
            # lag and review the design the old phase tuned for.
            self.tuner.notify_workload_shift()
            if self.refresh_on_drift and self.window:
                self._refresh("drift")

    def _observe_step(self, sql):
        self.queries += 1
        self.window.append(sql)
        # Counts exactly what ``queries`` counts — the scrape-time
        # mirror in the service sets repro_tenant_queries_total from
        # the attribute, this one moves with the event itself.
        obs.metrics().counter(
            "repro_tenant_events_total",
            "Observe steps run per tenant",
            labelnames=("tenant",),
        ).labels(tenant=self.name).inc()
        self.tuner.observe(sql)

    def finish_steps(self):
        """The closing steps — flush the trailing COLT epoch, run the
        final design review — as resumable steps.  Empty when already
        finished, mirroring :meth:`finish`'s idempotence."""
        if self._finished:
            return
        yield Step(
            "flush",
            run=self.tuner.flush,
            heavy=bool(self.tuner.pending_queries),
            prewarm=self.tuner.pending_queries,
        )
        if self.window:
            yield Step(
                "final",
                run=partial(self._refresh, "final"),
                heavy=True,
                prewarm=tuple(self.window),
            )
        self._finished = True

    def ingest(self, event):
        """Consume one query event: ``(phase, sql)`` or plain SQL."""
        with obs.tracer().span("tenant.ingest", tenant=self.name):
            for step in self.ingest_steps(event):
                step.run()

    def drain(self, stream, finish=True):
        """Ingest an entire event stream (the blocking convenience)."""
        for event in stream:
            self.ingest(event)
        if finish:
            self.finish()
        return self

    def finish(self):
        """Close the trailing COLT epoch and run a final design review."""
        for step in self.finish_steps():
            step.run()

    # ------------------------------------------------------------------
    # Design refreshes.
    # ------------------------------------------------------------------

    def _refresh(self, trigger):
        with obs.tracer().span("tenant.refresh", tenant=self.name,
                               trigger=trigger):
            t0 = time.perf_counter()
            rec = self.designer.recommend(
                list(self.window),
                storage_budget_pages=self.budget_pages,
                solver=self.solver,
                partitions=self.partitions,
                schedule=False,
            )
            elapsed = time.perf_counter() - t0
        registry = obs.metrics()
        registry.counter(
            "repro_tenant_refreshes_total",
            "Full-advisor refreshes by trigger",
            labelnames=("trigger",),
        ).labels(trigger=trigger).inc()
        registry.histogram(
            "repro_tenant_refresh_seconds",
            "Full-advisor refresh latency",
        ).observe(elapsed)
        self.last_recommendation = rec
        self.recommendations.append(
            RecommendationRecord(
                at_query=self.queries,
                phase=self._phase,
                trigger=trigger,
                indexes=tuple(
                    sorted(
                        ix.name for ix in rec.index_recommendation.indexes
                    )
                ),
                improvement_pct=rec.improvement_pct,
            )
        )
        return rec

    # ------------------------------------------------------------------
    # Snapshot / restore (wire format).
    # ------------------------------------------------------------------

    def snapshot(self):
        """The session's full state as a wire-format payload.

        Captures the construction knobs (COLT settings, refresh policy,
        window size, budget) plus every piece of dynamic state — epoch
        counters and candidate EWMAs (via
        :meth:`~repro.colt.ColtTuner.snapshot_state`), the sliding
        query window, the drift phase, drift events and recommendation
        records — so :meth:`from_snapshot` over the same catalog and
        evaluator continues the stream exactly where it stopped.
        ``last_recommendation`` (a live object graph) is summarized by
        its record; only the full object is dropped."""
        return {
            "kind": wire.KIND_TENANT,
            "name": self.name,
            "options": {
                "colt_settings": asdict(self.tuner.settings),
                "recommend_every": self.recommend_every,
                "window": self.window.maxlen,
                "budget_pages": self.budget_pages,
                "solver": self.solver,
                "refresh_on_drift": self.refresh_on_drift,
                "partitions": self.partitions,
            },
            "queries": self.queries,
            "phase": self._phase,
            "phases_seen": list(self._phases_seen),
            "window_queries": list(self.window),
            "finished": self._finished,
            "drift_events": [
                {
                    "at_query": e.at_query,
                    "from_phase": e.from_phase,
                    "to_phase": e.to_phase,
                }
                for e in self.drift_events
            ],
            "recommendations": [
                {
                    "at_query": r.at_query,
                    "phase": r.phase,
                    "trigger": r.trigger,
                    "indexes": list(r.indexes),
                    "improvement_pct": r.improvement_pct,
                }
                for r in self.recommendations
            ],
            "tuner": self.tuner.snapshot_state(),
        }

    @classmethod
    def from_snapshot(cls, payload, catalog, evaluator, name=None):
        """Rebuild a session from a :meth:`snapshot` payload over the
        host-provided *catalog* and *evaluator* (state is portable, the
        costing substrate is re-provided — exactly like the INUM cache
        entries themselves)."""
        if payload.get("kind") != wire.KIND_TENANT:
            raise WireFormatError(
                "expected %r payload, got %r"
                % (wire.KIND_TENANT, payload.get("kind"))
            )
        options = payload["options"]
        session = cls(
            name if name is not None else payload["name"],
            catalog,
            evaluator,
            colt_settings=ColtSettings(**options["colt_settings"]),
            recommend_every=options["recommend_every"],
            window=options["window"],
            solver=options["solver"],
            refresh_on_drift=options["refresh_on_drift"],
            partitions=options["partitions"],
        )
        session.budget_pages = options["budget_pages"]
        session.queries = payload["queries"]
        session._phase = payload["phase"]
        session._phases_seen = list(payload["phases_seen"])
        session.window.extend(payload["window_queries"])
        session._finished = payload["finished"]
        session.drift_events = [
            DriftEvent(
                at_query=e["at_query"],
                from_phase=e["from_phase"],
                to_phase=e["to_phase"],
            )
            for e in payload["drift_events"]
        ]
        session.recommendations = [
            RecommendationRecord(
                at_query=r["at_query"],
                phase=r["phase"],
                trigger=r["trigger"],
                indexes=tuple(r["indexes"]),
                improvement_pct=r["improvement_pct"],
            )
            for r in payload["recommendations"]
        ]
        session.tuner.restore_state(payload["tuner"])
        return session

    # ------------------------------------------------------------------
    # Monitoring.
    # ------------------------------------------------------------------

    @property
    def report(self):
        """The COLT per-epoch report (Scenario 3's panel)."""
        return self.tuner.report

    def status(self):
        """A point-in-time metrics snapshot (plain data, JSON-friendly)."""
        report = self.tuner.report
        last = self.recommendations[-1] if self.recommendations else None
        return {
            "tenant": self.name,
            "queries": self.queries,
            "phase": self._phase,
            "phases_seen": list(self._phases_seen),
            "epochs": len(report.epochs),
            "alerts": report.alerts,
            "adoptions": report.adoptions,
            "drift_events": len(self.drift_events),
            "observed_cost": report.observed_cost,
            "build_cost": report.build_cost,
            "whatif_probes": report.whatif_probes,
            "configuration": tuple(
                sorted(ix.name for ix in self.tuner.current.indexes)
            ),
            "pending_alert": self.tuner.pending_alert is not None,
            "recommendations": len(self.recommendations),
            "last_recommendation": last.indexes if last else (),
            "finished": self._finished,
        }
