"""Secondary (btree) index definitions with the btree size model.

Indexes are frozen and hashable: the designer components treat sets of
indexes as *configurations* and use them as dictionary keys everywhere, so
value semantics are essential.
"""

from dataclasses import dataclass

from repro.catalog import pagemodel
from repro.util import CatalogError


@dataclass(frozen=True)
class Index:
    """A btree index over ``columns`` (in key order) of ``table_name``.

    ``include`` lists non-key INCLUDE columns (they widen the leaf tuples
    and enable index-only scans without affecting ordering).
    """

    table_name: str
    columns: tuple
    include: tuple = ()
    unique: bool = False
    name: str = ""

    def __post_init__(self):
        if not self.columns:
            raise CatalogError("an index needs at least one key column")
        if isinstance(self.columns, list):
            object.__setattr__(self, "columns", tuple(self.columns))
        if isinstance(self.include, list):
            object.__setattr__(self, "include", tuple(self.include))
        seen = set(self.columns) | set(self.include)
        if len(seen) != len(self.columns) + len(self.include):
            raise CatalogError("duplicate column in index on %r" % (self.table_name,))
        if not self.name:
            suffix = "_".join(self.columns)
            if self.include:
                suffix += "_inc_" + "_".join(self.include)
            object.__setattr__(self, "name", "ix_%s_%s" % (self.table_name, suffix))

    # ------------------------------------------------------------------

    @property
    def all_columns(self):
        return self.columns + self.include

    def covers(self, needed_columns):
        """True if an index-only scan can answer a query needing these columns."""
        return set(needed_columns) <= set(self.all_columns)

    def key_width(self, table):
        return sum(table.column(c).width for c in self.all_columns) + 6  # heap TID

    def shape(self, table):
        """``(total_pages, height, leaf_pages)`` for this index on *table*."""
        if table.name != self.table_name:
            raise CatalogError(
                "index on %r sized against table %r" % (self.table_name, table.name)
            )
        return pagemodel.btree_shape(table.row_count, self.key_width(table))

    def size_pages(self, table):
        return self.shape(table)[0]

    def size_bytes(self, table):
        return self.size_pages(table) * pagemodel.PAGE_SIZE

    def build_cost(self, table):
        """Estimated cost of materializing the index (CREATE INDEX).

        Modeled as a full heap scan plus an external sort of the keys plus
        writing the leaf pages — the dominant terms of a real btree build.
        """
        from repro.util import safe_log2

        rows = max(1, table.row_count)
        scan = table.pages * 1.0 + rows * 0.01
        sort = 2.0 * 0.0025 * rows * safe_log2(rows)
        total_pages, __, __ = self.shape(table)
        write = total_pages * 1.0
        return scan + sort + write

    def sql(self):
        """CREATE INDEX statement for display in reports."""
        stmt = "CREATE %sINDEX %s ON %s (%s)" % (
            "UNIQUE " if self.unique else "",
            self.name,
            self.table_name,
            ", ".join(self.columns),
        )
        if self.include:
            stmt += " INCLUDE (%s)" % ", ".join(self.include)
        return stmt

    def __str__(self):
        return "%s(%s)" % (self.table_name, ",".join(self.columns))
