"""Catalog (de)serialization to plain JSON-compatible dictionaries.

A portable designer must move designs between machines and sessions: the
demo saves/restores tuning sessions, and our benchmarks pin workload
snapshots.  The format captures the logical schema, the generative
distributions, and the current physical design (indexes + partitions).
Statistics are *not* serialized — they are derived deterministically from
the distributions on load, exactly as a fresh ANALYZE would.

Indexes are emitted in a canonical order (the full identity key, not
just the name) and carry **stable integer ids**: position in that
canonical order.  Index *names* are only unique per catalog — a
configuration (or a tenant snapshot) may legally hold same-named
indexes on different tables — so the ids give every index a
collision-proof, content-derived identity that survives round-trips
byte-for-byte (``dump(load(dump(c))) == dump(c)``).  Vertical
fragments also carry ids, positional *within their layout*: fragment
order is preserved, not canonicalized, because it is semantic — the
greedy set cover in ``fragments_for`` breaks ties by fragment order,
so reordering would change restored plans.  Today's payloads embed
objects in full, with the ids fixing their deterministic order
(:func:`stable_index_ids` keys the tuner's candidate snapshots);
compact by-id cross-references are what the ids exist to enable.
"""

import json

from repro.catalog.column import Column
from repro.catalog.index import Index
from repro.catalog.partition import (
    HorizontalPartitioning,
    VerticalFragment,
    VerticalLayout,
)
from repro.catalog.schema import Catalog
from repro.catalog.stats import Distribution
from repro.catalog.table import Table
from repro.catalog.types import DataType
from repro.util import CatalogError

FORMAT_VERSION = 1


def index_sort_key(index):
    """Canonical ordering key: the index's full identity, so ordering —
    and therefore the assigned ids — never depends on insertion order or
    on name uniqueness across tables."""
    return (
        index.table_name,
        index.name,
        index.columns,
        index.include,
        index.unique,
    )


def stable_index_ids(indexes):
    """Map each index to a stable integer id (position in canonical
    order).  Deterministic for any iteration order of *indexes*; ids are
    unique even when names collide across tables."""
    ordered = sorted(indexes, key=index_sort_key)
    return {index: position for position, index in enumerate(ordered)}


def catalog_to_dict(catalog):
    """Serializable snapshot of *catalog*."""
    return {
        "version": FORMAT_VERSION,
        "tables": [_table_to_dict(t) for t in catalog.tables],
        "indexes": [
            _index_to_dict(ix, stable_id)
            for stable_id, ix in enumerate(
                sorted(catalog.indexes, key=index_sort_key)
            )
        ],
        "vertical_layouts": [
            _layout_to_dict(layout)
            for layout in sorted(
                catalog.vertical_layouts.values(),
                key=lambda l: l.table_name,
            )
        ],
        "horizontal_partitionings": [
            {
                "table": h.table_name,
                "column": h.column,
                "bounds": list(h.bounds),
            }
            for h in (
                catalog.horizontal_partitioning(name)
                for name in catalog.table_names
            )
            if h is not None
        ],
    }


def catalog_from_dict(payload):
    """Rebuild a catalog (with fresh synthetic statistics)."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CatalogError("unsupported catalog format version %r" % (version,))
    catalog = Catalog()
    for tdict in payload.get("tables", ()):
        catalog.add_table(_table_from_dict(tdict).build_stats())
    for ixdict in payload.get("indexes", ()):
        catalog.add_index(_index_from_dict(ixdict))
    for ldict in payload.get("vertical_layouts", ()):
        catalog.set_vertical_layout(_layout_from_dict(ldict))
    for hdict in payload.get("horizontal_partitionings", ()):
        catalog.set_horizontal_partitioning(
            HorizontalPartitioning(
                hdict["table"], hdict["column"], tuple(hdict["bounds"])
            )
        )
    return catalog


def save_catalog(catalog, path):
    with open(path, "w") as f:
        json.dump(catalog_to_dict(catalog), f, indent=2, sort_keys=True)


def load_catalog(path):
    with open(path) as f:
        return catalog_from_dict(json.load(f))


def configuration_to_dict(configuration):
    """Serializable snapshot of a hypothetical design (a tuning session's
    outcome): indexes + partition layouts, independent of any catalog.

    Indexes sort by full identity, not name: a configuration may hold
    same-named indexes on different tables, and the dump must still be
    deterministic and loss-free."""
    return {
        "version": FORMAT_VERSION,
        "indexes": [
            _index_to_dict(ix, stable_id)
            for stable_id, ix in enumerate(
                sorted(configuration.indexes, key=index_sort_key)
            )
        ],
        "vertical_layouts": [
            _layout_to_dict(layout) for layout in configuration.layouts
        ],
        "horizontal_partitionings": [
            {"table": h.table_name, "column": h.column, "bounds": list(h.bounds)}
            for h in configuration.horizontals
        ],
    }


def configuration_from_dict(payload):
    from repro.whatif import Configuration

    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CatalogError(
            "unsupported configuration format version %r" % (version,)
        )
    return Configuration(
        indexes=frozenset(
            _index_from_dict(d) for d in payload.get("indexes", ())
        ),
        layouts=tuple(
            _layout_from_dict(d) for d in payload.get("vertical_layouts", ())
        ),
        horizontals=tuple(
            HorizontalPartitioning(d["table"], d["column"], tuple(d["bounds"]))
            for d in payload.get("horizontal_partitionings", ())
        ),
    )


# ----------------------------------------------------------------------


def _distribution_to_dict(dist):
    if dist is None:
        return None
    return {
        "kind": dist.kind,
        "low": dist.low,
        "high": dist.high,
        "n_values": dist.n_values,
        "s": dist.s,
        "mu": dist.mu,
        "sigma": dist.sigma,
        "values": list(dist.values),
        "probs": list(dist.probs),
        "correlation": dist.correlation,
        "null_frac": dist.null_frac,
    }


def _distribution_from_dict(payload):
    if payload is None:
        return None
    return Distribution(
        kind=payload["kind"],
        low=payload.get("low", 0.0),
        high=payload.get("high", 1.0),
        n_values=payload.get("n_values", 0),
        s=payload.get("s", 1.1),
        mu=payload.get("mu", 0.0),
        sigma=payload.get("sigma", 1.0),
        values=tuple(payload.get("values", ())),
        probs=tuple(payload.get("probs", ())),
        correlation=payload.get("correlation", 0.0),
        null_frac=payload.get("null_frac", 0.0),
    )


def _table_to_dict(table):
    return {
        "name": table.name,
        "row_count": table.row_count,
        "columns": [
            {
                "name": col.name,
                "type": col.dtype.value,
                "width": col.width,
                "nullable": col.nullable,
                "distribution": _distribution_to_dict(col.distribution),
            }
            for col in table.columns
        ],
    }


def _table_from_dict(payload):
    columns = [
        Column(
            cdict["name"],
            DataType(cdict["type"]),
            distribution=_distribution_from_dict(cdict.get("distribution")),
            width=cdict.get("width", 0),
            nullable=cdict.get("nullable", True),
        )
        for cdict in payload["columns"]
    ]
    return Table(payload["name"], columns, row_count=payload["row_count"])


def index_to_dict(index, stable_id=None):
    """Self-contained index payload; ``stable_id`` is the canonical-order
    position assigned by the enclosing catalog/configuration dump."""
    payload = {
        "table": index.table_name,
        "columns": list(index.columns),
        "include": list(index.include),
        "unique": index.unique,
        "name": index.name,
    }
    if stable_id is not None:
        payload["id"] = stable_id
    return payload


def index_from_dict(payload):
    return Index(
        payload["table"],
        tuple(payload["columns"]),
        include=tuple(payload.get("include", ())),
        unique=payload.get("unique", False),
        name=payload.get("name", ""),
    )


# Pre-wire-format private names, kept for compatibility.
_index_to_dict = index_to_dict
_index_from_dict = index_from_dict


def _layout_to_dict(layout):
    return {
        "table": layout.table_name,
        "fragments": [
            {"columns": list(f.columns), "name": f.name, "id": position}
            for position, f in enumerate(layout.fragments)
        ],
    }


def _layout_from_dict(payload):
    fragments = tuple(
        VerticalFragment(
            payload["table"], tuple(f["columns"]), name=f.get("name", "")
        )
        for f in payload["fragments"]
    )
    return VerticalLayout(payload["table"], fragments)
