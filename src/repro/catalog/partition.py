"""Partition catalog objects: vertical fragments and horizontal range splits.

These model AutoPart's two design dimensions.  A :class:`VerticalLayout`
replaces a table's storage with a set of column fragments (each carrying an
implicit 8-byte row id used to stitch projections back together); a
:class:`HorizontalPartitioning` splits the rows by ranges of one column so
the optimizer can prune partitions against predicates.
"""

from dataclasses import dataclass

from repro.util import CatalogError


@dataclass(frozen=True)
class VerticalFragment:
    """One column group of a vertically partitioned table."""

    table_name: str
    columns: tuple
    name: str = ""

    def __post_init__(self):
        if isinstance(self.columns, list):
            object.__setattr__(self, "columns", tuple(self.columns))
        if not self.columns:
            raise CatalogError("a fragment needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise CatalogError("duplicate column in fragment of %r" % (self.table_name,))
        if not self.name:
            object.__setattr__(
                self, "name", "%s__%s" % (self.table_name, "_".join(self.columns))
            )

    def pages(self, table):
        return table.projection_pages(self.columns)

    def row_width(self, table):
        return table.row_width(self.columns) + 8  # row id


@dataclass(frozen=True)
class VerticalLayout:
    """A complete vertical partitioning of one table.

    Fragments must jointly cover every column; columns may appear in more
    than one fragment (AutoPart's *replication*), which trades storage for
    fewer stitch joins.
    """

    table_name: str
    fragments: tuple

    def __post_init__(self):
        if isinstance(self.fragments, list):
            object.__setattr__(self, "fragments", tuple(self.fragments))
        if not self.fragments:
            raise CatalogError("a layout needs at least one fragment")
        for frag in self.fragments:
            if frag.table_name != self.table_name:
                raise CatalogError(
                    "fragment of %r in layout of %r" % (frag.table_name, self.table_name)
                )

    def validate_covers(self, table):
        covered = set()
        for frag in self.fragments:
            for col in frag.columns:
                if not table.has_column(col):
                    raise CatalogError(
                        "fragment column %r not in table %r" % (col, table.name)
                    )
                covered.add(col)
        missing = set(table.column_names) - covered
        if missing:
            raise CatalogError(
                "layout of %r misses columns: %s" % (table.name, sorted(missing))
            )

    def total_pages(self, table):
        return sum(f.pages(table) for f in self.fragments)

    def replication_pages(self, table):
        """Extra storage relative to the original unpartitioned table.

        Covers both genuinely replicated columns and per-fragment overhead
        (row ids, page headers) — the quantity AutoPart's replication
        budget constrains.
        """
        return max(0, self.total_pages(table) - table.pages)

    def fragments_for(self, needed_columns):
        """Greedy minimal-page set cover of *needed_columns* by fragments.

        Returns the chosen fragments; raises if the columns cannot be
        covered (which :meth:`validate_covers` should have prevented).
        """
        needed = set(needed_columns)
        chosen = []
        remaining = set(needed)
        candidates = list(self.fragments)
        while remaining:
            best = None
            best_score = None
            for frag in candidates:
                gain = len(remaining & set(frag.columns))
                if gain == 0:
                    continue
                score = (len(frag.columns) - gain, len(frag.columns))
                if best is None or score < best_score:
                    best, best_score = frag, score
            if best is None:
                raise CatalogError(
                    "layout of %r cannot cover columns %s"
                    % (self.table_name, sorted(remaining))
                )
            chosen.append(best)
            remaining -= set(best.columns)
            candidates.remove(best)
        return chosen


@dataclass(frozen=True)
class HorizontalPartitioning:
    """Range partitioning of a table on one column.

    ``bounds`` are the interior split points ``b_1 < b_2 < ... < b_k``,
    yielding ``k + 1`` partitions ``(-inf, b_1), [b_1, b_2), ..., [b_k, +inf)``.
    """

    table_name: str
    column: str
    bounds: tuple

    def __post_init__(self):
        if isinstance(self.bounds, list):
            object.__setattr__(self, "bounds", tuple(self.bounds))
        if not self.bounds:
            raise CatalogError("horizontal partitioning needs at least one bound")
        for a, b in zip(self.bounds, self.bounds[1:]):
            if not a < b:
                raise CatalogError("bounds must be strictly increasing")

    @property
    def partition_count(self):
        return len(self.bounds) + 1

    def partition_range(self, i):
        """Half-open range ``(low, high)`` of partition *i* (None = open)."""
        low = self.bounds[i - 1] if i > 0 else None
        high = self.bounds[i] if i < len(self.bounds) else None
        return low, high

    def matching_partitions(self, low=None, high=None):
        """Indexes of partitions intersecting the query interval [low, high]."""
        matches = []
        for i in range(self.partition_count):
            p_low, p_high = self.partition_range(i)
            if low is not None and p_high is not None and p_high <= low:
                continue
            if high is not None and p_low is not None and p_low > high:
                continue
            matches.append(i)
        return matches
