"""Physical page-layout constants and heap/btree size arithmetic.

The numbers follow PostgreSQL's on-disk format: 8 KiB pages with a 24-byte
header, 4-byte line pointers, 23-byte heap tuple headers MAXALIGN'd to 24,
and btree leaf/internal pages at ~90% fill with an 8-byte index tuple
header.  Getting sizes right matters because every designer component
reasons about storage budgets in these units.
"""

from repro.util import align8, ceil_div

PAGE_SIZE = 8192
PAGE_HEADER = 24
LINE_POINTER = 4
HEAP_TUPLE_HEADER = 24  # 23 bytes, MAXALIGN'd
INDEX_TUPLE_HEADER = 8
BTREE_FILL = 0.90
BTREE_META_PAGES = 1

USABLE_PAGE = PAGE_SIZE - PAGE_HEADER


def heap_tuple_bytes(row_width):
    """On-page footprint of one heap tuple of the given data width."""
    return align8(HEAP_TUPLE_HEADER + max(1, int(row_width))) + LINE_POINTER


def heap_tuples_per_page(row_width):
    return max(1, USABLE_PAGE // heap_tuple_bytes(row_width))


def heap_pages(row_count, row_width):
    """Number of heap pages for *row_count* rows of average width *row_width*."""
    if row_count <= 0:
        return 1
    return max(1, ceil_div(row_count, heap_tuples_per_page(row_width)))


def index_tuple_bytes(key_width):
    return align8(INDEX_TUPLE_HEADER + max(1, int(key_width))) + LINE_POINTER


def btree_leaf_pages(row_count, key_width):
    per_page = max(1, int(USABLE_PAGE * BTREE_FILL) // index_tuple_bytes(key_width))
    return max(1, ceil_div(max(1, row_count), per_page))


def btree_shape(row_count, key_width):
    """Return ``(total_pages, height, leaf_pages)`` of a btree.

    Height counts internal levels above the leaves (a one-leaf-page index
    has height 0).
    """
    leaves = btree_leaf_pages(row_count, key_width)
    fanout = max(2, int(USABLE_PAGE * BTREE_FILL) // index_tuple_bytes(key_width))
    total = leaves
    level = leaves
    height = 0
    while level > 1:
        level = ceil_div(level, fanout)
        total += level
        height += 1
    return total + BTREE_META_PAGES, height, leaves
