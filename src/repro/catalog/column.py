"""Column definitions.

A :class:`Column` couples a logical definition (name, type) with an optional
generative :class:`~repro.catalog.stats.Distribution` used both to derive
synthetic statistics and to drive the row generator in tests.
"""

from dataclasses import dataclass, field

from repro.catalog.stats import ColumnStats, Distribution
from repro.catalog.types import DataType


@dataclass
class Column:
    """One column of a table.

    Parameters
    ----------
    name:
        Column name (lower-case identifiers throughout the library).
    dtype:
        A :class:`~repro.catalog.types.DataType`.
    distribution:
        Optional generative spec.  When present, synthetic statistics are
        derived from it; otherwise callers must attach stats explicitly.
    width:
        Average on-disk width override (defaults to the type's width).
    nullable:
        Whether NULLs may appear (informational; the null fraction itself
        lives in the distribution / statistics).
    """

    name: str
    dtype: DataType
    distribution: Distribution = None
    width: int = 0
    nullable: bool = True
    stats: ColumnStats = field(default=None, repr=False)

    def __post_init__(self):
        if not self.name or not self.name.islower():
            raise ValueError("column names must be non-empty lower-case: %r" % (self.name,))
        if self.width <= 0:
            self.width = self.dtype.default_width

    def build_stats(self, row_count, n_buckets=100):
        """Materialize synthetic statistics from the distribution spec."""
        if self.distribution is None:
            self.stats = ColumnStats(
                n_distinct=max(1.0, row_count / 10.0),
                avg_width=self.width,
            )
        else:
            self.stats = ColumnStats.synthetic(
                row_count, self.distribution, self.width, n_buckets=n_buckets
            )
        return self.stats
