"""Table definitions with the heap size model attached."""

from dataclasses import dataclass, field

from repro.catalog.column import Column
from repro.catalog import pagemodel
from repro.util import CatalogError


@dataclass
class Table:
    """A base table: columns plus cardinality, with derived page counts."""

    name: str
    columns: list
    row_count: int = 0

    _by_name: dict = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if not self.name or not self.name.islower():
            raise CatalogError("table names must be non-empty lower-case: %r" % (self.name,))
        if self.row_count < 0:
            raise CatalogError("row_count must be non-negative")
        self._by_name = {}
        for col in self.columns:
            if not isinstance(col, Column):
                raise CatalogError("columns must be Column instances")
            if col.name in self._by_name:
                raise CatalogError("duplicate column %r in table %r" % (col.name, self.name))
            self._by_name[col.name] = col

    # ------------------------------------------------------------------

    def column(self, name):
        """Look up a column by name, raising :class:`CatalogError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError("no column %r in table %r" % (name, self.name)) from None

    def has_column(self, name):
        return name in self._by_name

    @property
    def column_names(self):
        return [c.name for c in self.columns]

    def row_width(self, column_names=None):
        """Average data width of a full row, or of a projection."""
        if column_names is None:
            cols = self.columns
        else:
            cols = [self.column(n) for n in column_names]
        return sum(c.width for c in cols)

    @property
    def pages(self):
        return pagemodel.heap_pages(self.row_count, self.row_width())

    def projection_pages(self, column_names):
        """Heap pages a vertical fragment holding *column_names* would use
        (includes the 8-byte row id that stitches fragments back together)."""
        width = self.row_width(column_names) + 8
        return pagemodel.heap_pages(self.row_count, width)

    # ------------------------------------------------------------------

    def build_stats(self, n_buckets=100):
        """Materialize synthetic statistics on every column."""
        for col in self.columns:
            col.build_stats(self.row_count, n_buckets=n_buckets)
        return self

    def stats(self, column_name):
        col = self.column(column_name)
        if col.stats is None:
            col.build_stats(self.row_count)
        return col.stats
