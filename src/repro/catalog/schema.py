"""The catalog: tables, indexes, and partition layouts.

A :class:`Catalog` is cheap to copy (:meth:`clone`), which is how the
what-if component builds hypothetical configurations without mutating the
"real" database state — the Python analogue of the paper's modified
optimizer that sees simulated indexes and partitioned tables.
"""

from repro.catalog.index import Index
from repro.catalog.partition import HorizontalPartitioning, VerticalLayout
from repro.catalog.table import Table
from repro.util import CatalogError


class Catalog:
    """A named collection of tables plus their physical design."""

    def __init__(self):
        self._tables = {}
        self._indexes = {}
        self._layouts = {}
        self._horizontals = {}

    # ------------------------------------------------------------------
    # Tables.
    # ------------------------------------------------------------------

    def add_table(self, table):
        if not isinstance(table, Table):
            raise CatalogError("add_table expects a Table")
        if table.name in self._tables:
            raise CatalogError("table %r already exists" % (table.name,))
        self._tables[table.name] = table
        return table

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError("no table named %r" % (name,)) from None

    def has_table(self, name):
        return name in self._tables

    @property
    def tables(self):
        return list(self._tables.values())

    @property
    def table_names(self):
        return list(self._tables)

    # ------------------------------------------------------------------
    # Indexes.
    # ------------------------------------------------------------------

    def add_index(self, index):
        if not isinstance(index, Index):
            raise CatalogError("add_index expects an Index")
        table = self.table(index.table_name)
        for col in index.all_columns:
            if not table.has_column(col):
                raise CatalogError(
                    "index column %r not in table %r" % (col, table.name)
                )
        if index.name in self._indexes:
            existing = self._indexes[index.name]
            if existing == index:
                return index  # idempotent re-add of the same definition
            raise CatalogError("index name %r already in use" % (index.name,))
        self._indexes[index.name] = index
        return index

    def drop_index(self, name):
        if name not in self._indexes:
            raise CatalogError("no index named %r" % (name,))
        del self._indexes[name]

    def index(self, name):
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError("no index named %r" % (name,)) from None

    def has_index(self, index):
        """True if an identical index definition already exists."""
        return any(ix == index for ix in self._indexes.values())

    @property
    def indexes(self):
        return list(self._indexes.values())

    def indexes_on(self, table_name):
        return [ix for ix in self._indexes.values() if ix.table_name == table_name]

    # ------------------------------------------------------------------
    # Partitions.
    # ------------------------------------------------------------------

    def set_vertical_layout(self, layout):
        if not isinstance(layout, VerticalLayout):
            raise CatalogError("set_vertical_layout expects a VerticalLayout")
        layout.validate_covers(self.table(layout.table_name))
        self._layouts[layout.table_name] = layout
        return layout

    def clear_vertical_layout(self, table_name):
        self._layouts.pop(table_name, None)

    def vertical_layout(self, table_name):
        return self._layouts.get(table_name)

    @property
    def vertical_layouts(self):
        return dict(self._layouts)

    def set_horizontal_partitioning(self, part):
        if not isinstance(part, HorizontalPartitioning):
            raise CatalogError("expects a HorizontalPartitioning")
        table = self.table(part.table_name)
        if not table.has_column(part.column):
            raise CatalogError(
                "partition column %r not in table %r" % (part.column, table.name)
            )
        self._horizontals[part.table_name] = part
        return part

    def clear_horizontal_partitioning(self, table_name):
        self._horizontals.pop(table_name, None)

    def horizontal_partitioning(self, table_name):
        return self._horizontals.get(table_name)

    # ------------------------------------------------------------------
    # Design-level accounting and cloning.
    # ------------------------------------------------------------------

    def design_size_pages(self):
        """Pages used by secondary structures: indexes + replicated columns."""
        pages = 0
        for ix in self._indexes.values():
            pages += ix.size_pages(self.table(ix.table_name))
        for layout in self._layouts.values():
            pages += layout.replication_pages(self.table(layout.table_name))
        return pages

    def clone(self):
        """Shallow-copy the catalog: shares Table objects (they are not
        mutated by design changes) but copies the design dictionaries."""
        other = Catalog()
        other._tables = dict(self._tables)
        other._indexes = dict(self._indexes)
        other._layouts = dict(self._layouts)
        other._horizontals = dict(self._horizontals)
        return other

    def describe(self):
        """Human-readable one-screen summary used by example scripts."""
        lines = []
        for table in self.tables:
            lines.append(
                "%s: %d rows, %d pages, %d columns"
                % (table.name, table.row_count, table.pages, len(table.columns))
            )
            for ix in self.indexes_on(table.name):
                lines.append("  index %s (%d pages)" % (ix, ix.size_pages(table)))
            layout = self.vertical_layout(table.name)
            if layout is not None:
                frags = ", ".join(
                    "{%s}" % ",".join(f.columns) for f in layout.fragments
                )
                lines.append("  vertical layout: %s" % frags)
            horiz = self.horizontal_partitioning(table.name)
            if horiz is not None:
                lines.append(
                    "  horizontal: %s into %d ranges"
                    % (horiz.column, horiz.partition_count)
                )
        return "\n".join(lines)
