"""Column data types and their physical widths.

Widths follow PostgreSQL's on-disk sizes; variable-length types carry a
default average width that :class:`~repro.catalog.column.Column` may
override per column.
"""

import enum


class DataType(enum.Enum):
    """Supported column types (a practical subset of PostgreSQL's)."""

    SMALLINT = "smallint"
    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DOUBLE = "double"
    BOOL = "bool"
    DATE = "date"
    TIMESTAMP = "timestamp"
    TEXT = "text"

    @property
    def default_width(self):
        """Average on-disk width in bytes."""
        return _WIDTHS[self]

    @property
    def is_numeric(self):
        return self in _NUMERIC

    @property
    def is_orderable(self):
        """All supported types are orderable (btree-indexable)."""
        return True


_WIDTHS = {
    DataType.SMALLINT: 2,
    DataType.INT: 4,
    DataType.BIGINT: 8,
    DataType.FLOAT: 4,
    DataType.DOUBLE: 8,
    DataType.BOOL: 1,
    DataType.DATE: 4,
    DataType.TIMESTAMP: 8,
    DataType.TEXT: 32,  # average; override per column
}

_NUMERIC = frozenset(
    {
        DataType.SMALLINT,
        DataType.INT,
        DataType.BIGINT,
        DataType.FLOAT,
        DataType.DOUBLE,
    }
)
