"""Per-column statistics, mirroring PostgreSQL's ``pg_statistic`` rows.

A :class:`ColumnStats` carries everything the selectivity estimator needs:

* ``n_distinct`` — absolute number of distinct non-null values,
* ``null_frac`` — fraction of NULLs,
* most-common values with their frequencies (MCV list),
* an equi-depth histogram over the remaining values,
* ``correlation`` — physical-vs-logical order correlation in [-1, 1],
  which drives the index-scan cost interpolation,
* ``avg_width`` — average on-disk width in bytes.

Statistics come from two sources, matching the paper's requirement that a
portable designer only needs "a way to extract and create statistics":

* :func:`analyze_values` computes them from actual rows (our ``ANALYZE``),
  used by the executor-backed tests;
* :meth:`ColumnStats.synthetic` derives them analytically from a
  :class:`Distribution` spec, used for the large SDSS-like catalogs where
  materializing rows would be pointless.
"""

import bisect
import math
from dataclasses import dataclass, field

from repro.util import clamp


@dataclass(frozen=True)
class Distribution:
    """Generative spec for a column's value distribution.

    ``kind`` is one of:

    * ``"uniform"`` — continuous uniform over [low, high]
    * ``"uniform_int"`` — integer uniform over [low, high]
    * ``"zipf"`` — integers 1..n_values with Zipf(s) frequencies
    * ``"normal"`` — normal(mu, sigma) clipped to [low, high] when given
    * ``"sequence"`` — 0..rows-1 in physical order (a surrogate key)
    * ``"categorical"`` — explicit values + probabilities
    """

    kind: str = "uniform"
    low: float = 0.0
    high: float = 1.0
    n_values: int = 0
    s: float = 1.1
    mu: float = 0.0
    sigma: float = 1.0
    values: tuple = ()
    probs: tuple = ()
    correlation: float = 0.0
    null_frac: float = 0.0

    def __post_init__(self):
        if self.kind not in (
            "uniform",
            "uniform_int",
            "zipf",
            "normal",
            "sequence",
            "categorical",
        ):
            raise ValueError("unknown distribution kind %r" % (self.kind,))
        if not 0.0 <= self.null_frac < 1.0:
            raise ValueError("null_frac must be in [0, 1)")


def _as_key(value):
    """Map a value onto the real line for histogram arithmetic.

    Numbers map to themselves.  Strings map to a crude base-256 expansion of
    their first 8 bytes, which preserves lexicographic order well enough for
    equi-depth interpolation (PostgreSQL does essentially the same in
    ``convert_string_to_scalar``).
    """
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        acc = 0.0
        scale = 1.0
        for ch in value[:8].encode("utf-8", errors="replace")[:8]:
            scale /= 256.0
            acc += ch * scale
        return acc
    raise TypeError("unsupported value type %r" % (type(value),))


@dataclass
class ColumnStats:
    """Statistics snapshot for one column."""

    n_distinct: float = 1.0
    null_frac: float = 0.0
    min_value: object = None
    max_value: object = None
    mcv_values: list = field(default_factory=list)
    mcv_freqs: list = field(default_factory=list)
    histogram: list = field(default_factory=list)  # equi-depth bounds, len = buckets+1
    correlation: float = 0.0
    avg_width: int = 4

    def __post_init__(self):
        self.n_distinct = max(1.0, float(self.n_distinct))
        self.null_frac = clamp(float(self.null_frac), 0.0, 1.0)
        self.correlation = clamp(float(self.correlation), -1.0, 1.0)
        if len(self.mcv_values) != len(self.mcv_freqs):
            raise ValueError("MCV values and frequencies must align")

    # ------------------------------------------------------------------
    # Fraction helpers consumed by the selectivity estimator.
    # ------------------------------------------------------------------

    @property
    def mcv_total_freq(self):
        return min(1.0, sum(self.mcv_freqs))

    @property
    def nonnull_frac(self):
        return 1.0 - self.null_frac

    def eq_fraction(self, value):
        """Fraction of rows equal to *value* (PostgreSQL's ``eqsel``)."""
        for mcv, freq in zip(self.mcv_values, self.mcv_freqs):
            if mcv == value:
                return clamp(freq, 0.0, 1.0)
        if self.min_value is not None and self.max_value is not None:
            try:
                if value < self.min_value or value > self.max_value:
                    return 0.0
            except TypeError:
                pass
        remaining = max(0.0, self.nonnull_frac - self.mcv_total_freq)
        remaining_distinct = max(1.0, self.n_distinct - len(self.mcv_values))
        return clamp(remaining / remaining_distinct, 0.0, 1.0)

    def fraction_below(self, value, inclusive=False):
        """Fraction of rows with column value < (or <=) *value*."""
        frac = 0.0
        for mcv, freq in zip(self.mcv_values, self.mcv_freqs):
            try:
                below = mcv < value or (inclusive and mcv == value)
            except TypeError:
                below = False
            if below:
                frac += freq
        histogram_mass = max(0.0, self.nonnull_frac - self.mcv_total_freq)
        frac += self._histogram_fraction_below(value, inclusive) * histogram_mass
        if inclusive and histogram_mass > 0.0 and value not in self.mcv_values:
            # Closed bound: add the average per-value mass so that integer
            # domains (where P(X = v) is not negligible) estimate correctly.
            remaining_distinct = max(1.0, self.n_distinct - len(self.mcv_values))
            frac += histogram_mass / remaining_distinct
        return clamp(frac, 0.0, 1.0)

    def _histogram_fraction_below(self, value, inclusive):
        bounds = self.histogram
        if len(bounds) < 2:
            return self._linear_fraction_below(value)
        keys = [_as_key(b) for b in bounds]
        key = _as_key(value)
        if key <= keys[0]:
            return 0.0 if not inclusive or key < keys[0] else 0.0
        if key >= keys[-1]:
            return 1.0
        idx = bisect.bisect_right(keys, key) - 1
        idx = min(idx, len(keys) - 2)
        lo, hi = keys[idx], keys[idx + 1]
        within = 0.5 if hi <= lo else clamp((key - lo) / (hi - lo), 0.0, 1.0)
        buckets = len(keys) - 1
        return clamp((idx + within) / buckets, 0.0, 1.0)

    def _linear_fraction_below(self, value):
        """Fallback when no histogram exists: assume uniform [min, max]."""
        if self.min_value is None or self.max_value is None:
            return 0.5
        lo, hi = _as_key(self.min_value), _as_key(self.max_value)
        if hi <= lo:
            return 0.5
        return clamp((_as_key(value) - lo) / (hi - lo), 0.0, 1.0)

    def range_fraction(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Fraction of rows in the interval [low, high] (either side open)."""
        upper = self.fraction_below(high, inclusive=high_inclusive) if high is not None else self.nonnull_frac
        lower = self.fraction_below(low, inclusive=not low_inclusive) if low is not None else 0.0
        return clamp(upper - lower, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def synthetic(cls, row_count, dist, avg_width, n_buckets=100, n_mcvs=10):
        """Derive statistics analytically from a :class:`Distribution`.

        This is exact for the distributions our workload generators use, so
        synthetic catalogs behave as if freshly ANALYZE'd.
        """
        row_count = max(1, int(row_count))
        if dist.kind == "sequence":
            bounds = [row_count * i / n_buckets for i in range(n_buckets + 1)]
            return cls(
                n_distinct=row_count,
                null_frac=0.0,
                min_value=0,
                max_value=row_count - 1,
                histogram=bounds,
                correlation=1.0,
                avg_width=avg_width,
            )
        if dist.kind in ("uniform", "uniform_int"):
            lo, hi = float(dist.low), float(dist.high)
            if dist.kind == "uniform_int":
                n_distinct = min(row_count, int(hi) - int(lo) + 1)
            else:
                n_distinct = row_count * (1.0 - dist.null_frac)
            bounds = [lo + (hi - lo) * i / n_buckets for i in range(n_buckets + 1)]
            return cls(
                n_distinct=max(1.0, n_distinct),
                null_frac=dist.null_frac,
                min_value=lo,
                max_value=hi,
                histogram=bounds,
                correlation=dist.correlation,
                avg_width=avg_width,
            )
        if dist.kind == "normal":
            from scipy.stats import norm

            qs = [i / n_buckets for i in range(n_buckets + 1)]
            eps = 1.0 / (10.0 * n_buckets)
            bounds = [
                float(norm.ppf(clamp(q, eps, 1.0 - eps), loc=dist.mu, scale=dist.sigma))
                for q in qs
            ]
            return cls(
                n_distinct=row_count * (1.0 - dist.null_frac),
                null_frac=dist.null_frac,
                min_value=bounds[0],
                max_value=bounds[-1],
                histogram=bounds,
                correlation=dist.correlation,
                avg_width=avg_width,
            )
        if dist.kind == "zipf":
            return cls._synthetic_zipf(row_count, dist, avg_width, n_buckets, n_mcvs)
        if dist.kind == "categorical":
            values = list(dist.values)
            probs = list(dist.probs)
            order = sorted(range(len(values)), key=lambda i: -probs[i])
            mcv_idx = order[:n_mcvs]
            return cls(
                n_distinct=len(values),
                null_frac=dist.null_frac,
                min_value=min(values),
                max_value=max(values),
                mcv_values=[values[i] for i in mcv_idx],
                mcv_freqs=[probs[i] * (1.0 - dist.null_frac) for i in mcv_idx],
                correlation=dist.correlation,
                avg_width=avg_width,
            )
        raise ValueError("unsupported distribution %r" % (dist.kind,))

    @classmethod
    def _synthetic_zipf(cls, row_count, dist, avg_width, n_buckets, n_mcvs):
        n_values = max(1, dist.n_values or 1000)
        weights = [1.0 / (rank ** dist.s) for rank in range(1, n_values + 1)]
        total = sum(weights)
        freqs = [w / total * (1.0 - dist.null_frac) for w in weights]
        mcv_values = list(range(1, min(n_mcvs, n_values) + 1))
        mcv_freqs = freqs[: len(mcv_values)]
        # Equi-depth histogram over the tail (values after the MCVs).
        tail = freqs[len(mcv_values):]
        bounds = [len(mcv_values) + 1]
        if tail:
            tail_total = sum(tail)
            target = tail_total / n_buckets
            acc = 0.0
            for offset, f in enumerate(tail):
                acc += f
                while acc >= target and len(bounds) <= n_buckets:
                    bounds.append(len(mcv_values) + 1 + offset)
                    acc -= target
        while len(bounds) <= n_buckets:
            bounds.append(n_values)
        return cls(
            n_distinct=min(row_count, n_values),
            null_frac=dist.null_frac,
            min_value=1,
            max_value=n_values,
            mcv_values=mcv_values,
            mcv_freqs=mcv_freqs,
            histogram=[float(b) for b in bounds],
            correlation=dist.correlation,
            avg_width=avg_width,
        )


def analyze_values(values, avg_width=None, n_buckets=100, n_mcvs=10, mcv_min_freq=0.02):
    """Compute :class:`ColumnStats` from actual column values (``ANALYZE``).

    ``values`` may contain ``None`` for NULLs.  Physical correlation is the
    Spearman-style correlation between storage position and value rank, the
    same quantity PostgreSQL stores.
    """
    values = list(values)
    total = len(values)
    if total == 0:
        return ColumnStats(avg_width=avg_width or 4)
    nonnull = [v for v in values if v is not None]
    null_frac = 1.0 - len(nonnull) / total
    if not nonnull:
        return ColumnStats(null_frac=1.0, avg_width=avg_width or 4)

    counts = {}
    for v in nonnull:
        counts[v] = counts.get(v, 0) + 1
    n_distinct = len(counts)

    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], _as_key(kv[0])))
    mcvs = [(v, c / total) for v, c in ranked[:n_mcvs] if c / total >= mcv_min_freq and c > 1]
    mcv_values = [v for v, __ in mcvs]
    mcv_freqs = [f for __, f in mcvs]
    mcv_set = set(mcv_values)

    tail = sorted((v for v in nonnull if v not in mcv_set), key=_as_key)
    histogram = []
    if len(tail) >= 2:
        buckets = min(n_buckets, max(1, len(tail) - 1))
        histogram = [tail[round(i * (len(tail) - 1) / buckets)] for i in range(buckets + 1)]

    correlation = _physical_correlation(values)
    if avg_width is None:
        avg_width = max(1, round(sum(_value_width(v) for v in nonnull) / len(nonnull)))
    return ColumnStats(
        n_distinct=n_distinct,
        null_frac=null_frac,
        min_value=min(nonnull, key=_as_key),
        max_value=max(nonnull, key=_as_key),
        mcv_values=mcv_values,
        mcv_freqs=mcv_freqs,
        histogram=histogram,
        correlation=correlation,
        avg_width=avg_width,
    )


def _value_width(value):
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4 if -2**31 <= value < 2**31 else 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value) + 1
    return 8


def _physical_correlation(values):
    """Correlation between physical position and value order, ignoring NULLs."""
    pairs = [(pos, _as_key(v)) for pos, v in enumerate(values) if v is not None]
    if len(pairs) < 2:
        return 0.0
    n = len(pairs)
    mean_pos = sum(p for p, __ in pairs) / n
    # Rank the values (average ranks for ties) and correlate with position.
    order = sorted(range(n), key=lambda i: pairs[i][1])
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and pairs[order[j + 1]][1] == pairs[order[i]][1]:
            j += 1
        avg_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    mean_rank = sum(ranks) / n
    cov = sum((pairs[i][0] - mean_pos) * (ranks[i] - mean_rank) for i in range(n))
    var_pos = sum((pairs[i][0] - mean_pos) ** 2 for i in range(n))
    var_rank = sum((r - mean_rank) ** 2 for r in ranks)
    if var_pos <= 0.0 or var_rank <= 0.0:
        return 0.0
    return clamp(cov / math.sqrt(var_pos * var_rank), -1.0, 1.0)
