"""Catalog substrate: schema objects, statistics, and the physical size model.

This mirrors what the paper's designer reads from PostgreSQL's system
catalogs: table/column definitions, per-column statistics (``pg_statistic``),
and page-level size accounting for heap tables, btree indexes, and
partitions.
"""

from repro.catalog.types import DataType
from repro.catalog.stats import ColumnStats, Distribution, analyze_values
from repro.catalog.column import Column
from repro.catalog.table import Table
from repro.catalog.index import Index
from repro.catalog.partition import VerticalFragment, VerticalLayout, HorizontalPartitioning
from repro.catalog.schema import Catalog

__all__ = [
    "DataType",
    "ColumnStats",
    "Distribution",
    "analyze_values",
    "Column",
    "Table",
    "Index",
    "VerticalFragment",
    "VerticalLayout",
    "HorizontalPartitioning",
    "Catalog",
]
