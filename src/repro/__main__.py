"""``python -m repro`` — the designer's command-line interface."""

import sys

from repro.designer.cli import main

if __name__ == "__main__":
    sys.exit(main())
