"""Index Benefit Graph (Schnaitter et al., PVLDB 2009, §3).

The IBG of a workload and candidate set S is a DAG over index subsets:
the root is S itself; each node Y stores the optimizer cost under Y and
``used(Y)`` — the subset of Y the optimal plan actually touches; the
children of Y are ``Y \\ {a}`` for every ``a ∈ used(Y)``.

Two properties make it the work-horse of interaction analysis:

1. it is typically *tiny* compared to the 2^|S| subset lattice, because
   removing an unused index never changes the plan, and
2. the cost of an **arbitrary** subset X ⊆ S can be answered by a single
   root-to-node traversal: descend from Y along any ``a ∈ used(Y) \\ X``
   until ``used(Y) ⊆ X``; then cost(X) = cost(Y).

Interactions are witnessed at IBG nodes, so the degree of interaction can
be maximized over the (few) node-derived contexts instead of every
subset — the speedup that makes the demo's graph interactive.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IbgNode:
    subset: frozenset
    cost: float
    used: frozenset


@dataclass
class IndexBenefitGraph:
    """The IBG plus O(1)-ish whole-lattice cost lookups."""

    root: frozenset
    nodes: dict = field(default_factory=dict)  # frozenset -> IbgNode
    build_evaluations: int = 0

    @classmethod
    def build(cls, cost_with_usage, candidate_set, oracle_many=None):
        """Construct the IBG.

        ``cost_with_usage(frozenset) -> (cost, used_frozenset)`` is the
        optimizer/INUM oracle; ``used`` must be a subset of the argument.

        The graph is expanded level by level, so when ``oracle_many``
        (``[frozenset] -> [(cost, used)]``) is supplied — e.g. a
        :class:`~repro.evaluation.WorkloadEvaluator`'s usage-batch
        oracle — each frontier is handed over in one call, letting the
        oracle share or vectorize work across the level.  The resulting
        graph is identical either way.
        """
        root = frozenset(candidate_set)
        graph = cls(root=root)
        frontier = [root]
        while frontier:
            fresh = [
                s for s in dict.fromkeys(frontier) if s not in graph.nodes
            ]
            if oracle_many is not None:
                results = oracle_many(fresh)
            else:
                results = [cost_with_usage(subset) for subset in fresh]
            frontier = []
            for subset, (cost, used) in zip(fresh, results):
                used = frozenset(used) & subset
                graph.nodes[subset] = IbgNode(subset=subset, cost=cost, used=used)
                graph.build_evaluations += 1
                for index in used:
                    child = subset - {index}
                    if child not in graph.nodes:
                        frontier.append(child)
        return graph

    # ------------------------------------------------------------------

    def cost(self, subset):
        """Cost under an arbitrary X ⊆ root, by IBG traversal."""
        x = frozenset(subset) & self.root
        node = self.nodes[self.root]
        while True:
            extra = node.used - x
            if not extra:
                return node.cost
            # Remove any used-but-unavailable index and descend.
            index = next(iter(sorted(extra, key=lambda i: i.name)))
            node = self.nodes[node.subset - {index}]

    def used(self, subset):
        """``used(X)``: the indexes the plan under X touches."""
        x = frozenset(subset) & self.root
        node = self.nodes[self.root]
        while True:
            extra = node.used - x
            if not extra:
                return node.used
            index = next(iter(sorted(extra, key=lambda i: i.name)))
            node = self.nodes[node.subset - {index}]

    def benefit(self, index, context):
        """benefit(index | context) computed inside the graph."""
        context = frozenset(context) - {index}
        return self.cost(context) - self.cost(context | {index})

    @property
    def size(self):
        return len(self.nodes)

    def contexts(self):
        """Candidate maximizer contexts for doi: every node subset.

        Interactions change only where plans change, and plans change only
        at IBG nodes, so maximizing doi over these contexts finds the same
        maxima as the full lattice (Schnaitter et al., Theorem 4.2 spirit).
        """
        return sorted(self.nodes, key=lambda s: (len(s), sorted(i.name for i in s)))

    def doi(self, a, b):
        """Degree of interaction between *a* and *b* via IBG contexts."""
        if a == b:
            return 0.0
        best = 0.0
        seen = set()
        for node_subset in self.contexts():
            context = node_subset - {a, b}
            if context in seen:
                continue
            seen.add(context)
            with_b = context | {b}
            denom = self.cost(with_b | {a})
            if denom <= 0:
                continue
            delta = abs(self.benefit(a, context) - self.benefit(a, with_b))
            best = max(best, delta / denom)
        return best

    def describe(self):
        lines = ["IBG with %d nodes over %d candidates:" % (self.size, len(self.root))]
        for subset in self.contexts():
            node = self.nodes[subset]
            lines.append(
                "  {%s} cost=%.1f used={%s}"
                % (
                    ",".join(sorted(i.name for i in subset)),
                    node.cost,
                    ",".join(sorted(i.name for i in node.used)),
                )
            )
        return "\n".join(lines)
