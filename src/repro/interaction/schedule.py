"""Index materialization scheduling (the demo's second interaction tool).

Building an index set takes real time; while index ``k+1`` is being built
the workload runs under the design containing only the first ``k``.  A
schedule is judged by the *cost area*: the workload cost integrated over
the build timeline — lower area means benefit arrives earlier.

    area(order) = Σ_k  W(prefix_k) · build_time(index_{k+1})

Three schedulers:

* :func:`schedule_naive` — interaction-oblivious: sort by standalone
  benefit (what a DBA without interaction data would do),
* :func:`schedule_greedy` — interaction-aware: each step picks the index
  with the best marginal-benefit-per-build-second given what is already
  materialized,
* :func:`schedule_optimal` — exact subset DP (for ≤ ~12 indexes).
"""

import itertools
import math
from dataclasses import dataclass, field


@dataclass
class Schedule:
    """A materialization order with its evaluated timeline."""

    order: list
    area: float
    total_build_time: float
    timeline: list = field(default_factory=list)  # (elapsed, workload_cost)
    method: str = ""

    def to_text(self):
        lines = ["Materialization schedule (%s): area=%.1f" % (self.method, self.area)]
        elapsed = 0.0
        for step, ix in enumerate(self.order):
            elapsed = self.timeline[step + 1][0]
            lines.append(
                "  %d. %-45s done@%.0f cost->%.1f"
                % (step + 1, ix.name, elapsed, self.timeline[step + 1][1])
            )
        return "\n".join(lines)


def _build_time(index, catalog):
    return index.build_cost(catalog.table(index.table_name))


def evaluate_schedule(order, cost_fn, catalog, method="given"):
    """Timeline and area of a specific materialization *order*.

    ``cost_fn(frozenset_of_indexes)`` must return the workload cost under
    exactly that index set (e.g. ``InteractionAnalyzer.cost``).
    """
    order = list(order)
    area = 0.0
    elapsed = 0.0
    built = frozenset()
    timeline = [(0.0, cost_fn(built))]
    for index in order:
        duration = _build_time(index, catalog)
        area += cost_fn(built) * duration
        elapsed += duration
        built = built | {index}
        timeline.append((elapsed, cost_fn(built)))
    return Schedule(
        order=order,
        area=area,
        total_build_time=elapsed,
        timeline=timeline,
        method=method,
    )


def schedule_naive(indexes, cost_fn, catalog):
    """Sort by standalone benefit, descending — ignores interactions."""
    empty_cost = cost_fn(frozenset())
    ranked = sorted(
        indexes,
        key=lambda ix: -(empty_cost - cost_fn(frozenset((ix,)))),
    )
    return evaluate_schedule(ranked, cost_fn, catalog, method="naive-benefit")


def schedule_greedy(indexes, cost_fn, catalog):
    """Interaction-aware greedy: maximize marginal benefit per build second."""
    remaining = set(indexes)
    built = frozenset()
    order = []
    while remaining:
        current = cost_fn(built)
        best = None
        best_score = -math.inf
        for ix in sorted(remaining, key=lambda i: i.name):
            gain = current - cost_fn(built | {ix})
            score = gain / _build_time(ix, catalog)
            if score > best_score:
                best, best_score = ix, score
        order.append(best)
        built = built | {best}
        remaining.discard(best)
    return evaluate_schedule(order, cost_fn, catalog, method="greedy-interaction")


def schedule_optimal(indexes, cost_fn, catalog, max_exact=12):
    """Exact minimum-area schedule by DP over subsets.

    State: the set of already-built indexes; transition: which index to
    build next.  Falls back to the greedy schedule beyond *max_exact*.
    """
    indexes = sorted(set(indexes), key=lambda i: i.name)
    n = len(indexes)
    if n > max_exact:
        return schedule_greedy(indexes, cost_fn, catalog)
    if n == 0:
        return evaluate_schedule([], cost_fn, catalog, method="optimal-dp")

    build = [_build_time(ix, catalog) for ix in indexes]
    cost_of = {}
    for r in range(n + 1):
        for combo in itertools.combinations(range(n), r):
            mask = 0
            for i in combo:
                mask |= 1 << i
            cost_of[mask] = cost_fn(frozenset(indexes[i] for i in combo))

    full = (1 << n) - 1
    best_area = {0: 0.0}
    best_prev = {}
    masks_by_bits = sorted(range(full + 1), key=lambda m: bin(m).count("1"))
    for mask in masks_by_bits:
        if mask not in best_area:
            continue
        base_area = best_area[mask]
        running_cost = cost_of[mask]
        for i in range(n):
            bit = 1 << i
            if mask & bit:
                continue
            nxt = mask | bit
            area = base_area + running_cost * build[i]
            if area < best_area.get(nxt, math.inf) - 1e-12:
                best_area[nxt] = area
                best_prev[nxt] = i

    order_rev = []
    mask = full
    while mask:
        i = best_prev[mask]
        order_rev.append(indexes[i])
        mask ^= 1 << i
    order = list(reversed(order_rev))
    return evaluate_schedule(order, cost_fn, catalog, method="optimal-dp")
