"""Index interactions (paper §3.5, reference [12]).

Two tools, as in the demo:

* :class:`InteractionAnalyzer` quantifies the *degree of interaction*
  ``doi(a, b)`` between index pairs and renders the Figure-2 interaction
  graph (vertices = indexes, weighted edges = doi, top-k edge filter);
* the scheduling functions order index materialization so that workload
  benefit accumulates as early as possible, exploiting (rather than
  ignoring) the interactions.
"""

from repro.interaction.doi import InteractionAnalyzer, InteractionGraph
from repro.interaction.ibg import IbgNode, IndexBenefitGraph
from repro.interaction.schedule import (
    Schedule,
    evaluate_schedule,
    schedule_greedy,
    schedule_naive,
    schedule_optimal,
)

__all__ = [
    "InteractionAnalyzer",
    "InteractionGraph",
    "IndexBenefitGraph",
    "IbgNode",
    "Schedule",
    "evaluate_schedule",
    "schedule_greedy",
    "schedule_naive",
    "schedule_optimal",
]
