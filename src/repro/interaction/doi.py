"""Degree of interaction between indexes (Schnaitter et al., PVLDB 2009).

Two indexes *a*, *b* interact when the benefit of *a* depends on whether
*b* is present.  Following the reference paper::

    benefit(a | X)  =  cost(X) - cost(X ∪ {a})
    doi(a, b)       =  max over X ⊆ S \\ {a,b} of
                       |benefit(a | X) - benefit(a | X ∪ {b})| / cost(X ∪ {a,b})

where S is the candidate set under analysis and cost() is the workload
cost.  The subset maximization is exponential, so we enumerate exactly up
to ``exact_limit`` context indexes and fall back to seeded random subset
sampling beyond that.  Costs come from INUM, so each subset evaluation is
analytic — this is precisely why the demo can visualize interactions
interactively.
"""

import itertools
import random
from dataclasses import dataclass, field

import networkx as nx

from repro.whatif import Configuration


class InteractionAnalyzer:
    """Computes doi values and interaction graphs over one workload.

    ``method`` selects how the subset maximization in doi is performed:

    * ``"subsets"`` — enumerate/sample the context lattice directly,
    * ``"ibg"`` — build the Index Benefit Graph once per candidate set and
      maximize over its (far fewer) node contexts, the reference paper's
      own approach.
    """

    def __init__(self, inum_model, workload, exact_limit=8, samples=40, seed=17,
                 method="subsets"):
        if method not in ("subsets", "ibg"):
            raise ValueError("method must be 'subsets' or 'ibg', got %r" % (method,))
        self.inum = inum_model
        self.workload = list(workload)
        self.exact_limit = exact_limit
        self.samples = samples
        self.seed = seed
        self.method = method
        self._cost_cache = {}
        self._ibg_cache = {}

    # ------------------------------------------------------------------

    def cost(self, index_set):
        """Workload cost under exactly *index_set* (cached)."""
        key = frozenset(index_set)
        cached = self._cost_cache.get(key)
        if cached is None:
            cached = self.inum.workload_cost(
                self.workload, Configuration(indexes=key)
            )
            self._cost_cache[key] = cached
        return cached

    def benefit(self, index, context):
        """benefit(index | context) = cost(context) - cost(context + index)."""
        context = frozenset(context) - {index}
        return self.cost(context) - self.cost(context | {index})

    def prefetch(self, subsets, parent=None):
        """Batch-price index subsets into the cost cache.

        When the cost model is a :class:`~repro.evaluation.WorkloadEvaluator`
        the whole batch is priced in one columnar-kernel pass
        (:meth:`~repro.evaluation.WorkloadEvaluator.evaluate_many`);
        with a plain model this is a no-op and costs are computed
        lazily as before.  Either way the numbers are identical (the
        equivalence suite pins this), so prefetching is purely a
        throughput lever.

        With *parent* (an index set the batch's subsets are small edits
        of) and a delta-capable evaluator, the batch prices through the
        seminaïve seam
        (:meth:`~repro.evaluation.WorkloadEvaluator.evaluate_deltas`)
        instead — same numbers, captured-parent state reused.
        """
        evaluate = getattr(self.inum, "evaluate_many", None)
        if evaluate is None:
            evaluate = getattr(self.inum, "evaluate_configurations", None)
        if evaluate is None:
            return
        missing = [
            key
            for key in dict.fromkeys(frozenset(s) for s in subsets)
            if key not in self._cost_cache
        ]
        if not missing:
            return
        deltas = (
            getattr(self.inum, "evaluate_deltas", None)
            if parent is not None else None
        )
        configs = [Configuration(indexes=key) for key in missing]
        if deltas is not None:
            totals = deltas(
                self.workload, Configuration(indexes=frozenset(parent)),
                configs,
            ).totals
        else:
            totals = evaluate(self.workload, configs).totals
        for key, total in zip(missing, totals):
            self._cost_cache[key] = total

    def ibg(self, candidate_set):
        """The Index Benefit Graph for *candidate_set* (built once)."""
        from repro.interaction.ibg import IndexBenefitGraph
        from repro.whatif import Configuration

        key = frozenset(candidate_set)
        graph = self._ibg_cache.get(key)
        if graph is None:
            def oracle(subset):
                return self.inum.workload_cost_with_usage(
                    self.workload, Configuration(indexes=frozenset(subset))
                )

            oracle_many = None
            if hasattr(self.inum, "workload_cost_with_usage_batch"):
                def oracle_many(subsets):
                    configs = [
                        Configuration(indexes=frozenset(s)) for s in subsets
                    ]
                    if hasattr(self.inum, "evaluate_deltas"):
                        # IBG frontiers are root subsets minus a few used
                        # indexes: price each level as deltas off the
                        # root's captured state (bit-identical, and the
                        # witnesses of untouched statements are reused).
                        return self.inum.workload_cost_with_usage_batch(
                            self.workload, configs,
                            parent=Configuration(indexes=key),
                        )
                    return self.inum.workload_cost_with_usage_batch(
                        self.workload, configs
                    )

            graph = IndexBenefitGraph.build(oracle, key, oracle_many=oracle_many)
            self._ibg_cache[key] = graph
        return graph

    def doi(self, a, b, candidate_set):
        """Degree of interaction between *a* and *b* within *candidate_set*."""
        if a == b:
            return 0.0
        if self.method == "ibg":
            return self.ibg(candidate_set).doi(a, b)
        others = sorted(
            (ix for ix in candidate_set if ix not in (a, b)), key=lambda i: i.name
        )
        contexts = list(self._contexts(others))
        self.prefetch(
            frozenset(context) | extra
            for context in contexts
            for extra in (frozenset(), {a}, {b}, {a, b})
        )
        best = 0.0
        for context in contexts:
            with_b = frozenset(context) | {b}
            denom = self.cost(with_b | {a})
            if denom <= 0:
                continue
            delta = abs(self.benefit(a, context) - self.benefit(a, with_b))
            best = max(best, delta / denom)
        return best

    def _contexts(self, others):
        if len(others) <= self.exact_limit:
            for r in range(len(others) + 1):
                yield from itertools.combinations(others, r)
            return
        rng = random.Random(self.seed)
        yield ()
        yield tuple(others)
        for __ in range(self.samples):
            r = rng.randint(0, len(others))
            yield tuple(rng.sample(others, r))

    # ------------------------------------------------------------------

    def interaction_graph(self, candidate_set, min_doi=1e-9):
        """The Figure-2 graph: one vertex per index, edges weighted by doi."""
        candidate_set = sorted(set(candidate_set), key=lambda i: i.name)
        graph = nx.Graph()
        # Singles are one-index edits of the empty design: delta-priced
        # off the empty parent when the evaluator supports it.
        self.prefetch(
            [frozenset()] + [frozenset((ix,)) for ix in candidate_set],
            parent=frozenset(),
        )
        for ix in candidate_set:
            graph.add_node(ix.name, index=ix, benefit=self.benefit(ix, ()))
        for a, b in itertools.combinations(candidate_set, 2):
            weight = self.doi(a, b, candidate_set)
            if weight > min_doi:
                graph.add_edge(a.name, b.name, doi=weight)
        return InteractionGraph(graph)

    def stable_partition(self, candidate_set, threshold=0.01):
        """Partition indexes into groups with no cross-group interaction
        above *threshold* (Schnaitter's stable partitions): the connected
        components of the thresholded interaction graph."""
        graph = self.interaction_graph(candidate_set, min_doi=threshold).graph
        name_to_index = {ix.name: ix for ix in candidate_set}
        return [
            sorted((name_to_index[n] for n in component), key=lambda i: i.name)
            for component in nx.connected_components(graph)
        ]


@dataclass
class InteractionGraph:
    """Presentation wrapper around the networkx interaction graph."""

    graph: nx.Graph
    _edge_cache: list = field(default=None, repr=False)

    def edges_by_weight(self):
        if self._edge_cache is None:
            self._edge_cache = sorted(
                self.graph.edges(data="doi"), key=lambda e: -e[2]
            )
        return self._edge_cache

    def top_edges(self, k):
        """The demo's dynamic filter: show only the k strongest interactions."""
        return self.edges_by_weight()[:k]

    def to_text(self, max_edges=15):
        lines = ["Index interaction graph (%d indexes):" % self.graph.number_of_nodes()]
        for name in sorted(self.graph.nodes):
            lines.append(
                "  [%s] standalone benefit %.1f"
                % (name, self.graph.nodes[name]["benefit"])
            )
        edges = self.top_edges(max_edges)
        if not edges:
            lines.append("  (no interactions above threshold)")
        for a, b, w in edges:
            lines.append("  %s -- %s  doi=%.4f" % (a, b, w))
        return "\n".join(lines)

    def to_dot(self, max_edges=None):
        """Graphviz DOT rendering (what the demo UI draws)."""
        edges = self.edges_by_weight()
        if max_edges is not None:
            edges = edges[:max_edges]
        lines = ["graph interactions {"]
        for name in sorted(self.graph.nodes):
            lines.append('  "%s";' % name)
        max_w = max((w for __, __, w in edges), default=1.0) or 1.0
        for a, b, w in edges:
            lines.append(
                '  "%s" -- "%s" [label="%.3f", penwidth=%.2f];'
                % (a, b, w, 1.0 + 4.0 * w / max_w)
            )
        lines.append("}")
        return "\n".join(lines)
