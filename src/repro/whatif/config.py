"""Hypothetical physical-design configurations.

A :class:`Configuration` is an immutable bundle of indexes and partition
layouts.  Designer components pass configurations around as values (sets,
dict keys), and :meth:`Configuration.apply` turns one into a catalog
overlay for the optimizer — the moral equivalent of HypoPG's hypothetical
catalog entries.
"""

from dataclasses import dataclass

from repro.catalog import HorizontalPartitioning, Index, VerticalLayout
from repro.util import DesignError


@dataclass(frozen=True)
class Configuration:
    """An immutable set of design features (indexes + partitions)."""

    indexes: frozenset = frozenset()
    layouts: tuple = ()
    horizontals: tuple = ()

    def __post_init__(self):
        if not isinstance(self.indexes, frozenset):
            object.__setattr__(self, "indexes", frozenset(self.indexes))
        for ix in self.indexes:
            if not isinstance(ix, Index):
                raise DesignError("configuration indexes must be Index objects")
        layouts = tuple(sorted(self.layouts, key=lambda l: l.table_name))
        object.__setattr__(self, "layouts", layouts)
        seen = set()
        for layout in layouts:
            if not isinstance(layout, VerticalLayout):
                raise DesignError("layouts must be VerticalLayout objects")
            if layout.table_name in seen:
                raise DesignError(
                    "two vertical layouts for table %r" % (layout.table_name,)
                )
            seen.add(layout.table_name)
        horizontals = tuple(sorted(self.horizontals, key=lambda h: h.table_name))
        object.__setattr__(self, "horizontals", horizontals)
        seen = set()
        for horizontal in horizontals:
            if not isinstance(horizontal, HorizontalPartitioning):
                raise DesignError("horizontals must be HorizontalPartitioning objects")
            if horizontal.table_name in seen:
                raise DesignError(
                    "two horizontal partitionings for table %r"
                    % (horizontal.table_name,)
                )
            seen.add(horizontal.table_name)

    # ------------------------------------------------------------------

    @classmethod
    def empty(cls):
        return cls()

    @classmethod
    def of(cls, *indexes):
        """Convenience: a configuration of just these indexes."""
        return cls(indexes=frozenset(indexes))

    @property
    def is_empty(self):
        return not self.indexes and not self.layouts and not self.horizontals

    def with_indexes(self, *indexes):
        return Configuration(
            indexes=self.indexes | frozenset(indexes),
            layouts=self.layouts,
            horizontals=self.horizontals,
        )

    def without_indexes(self, *indexes):
        return Configuration(
            indexes=self.indexes - frozenset(indexes),
            layouts=self.layouts,
            horizontals=self.horizontals,
        )

    def with_layout(self, layout):
        others = tuple(l for l in self.layouts if l.table_name != layout.table_name)
        return Configuration(
            indexes=self.indexes,
            layouts=others + (layout,),
            horizontals=self.horizontals,
        )

    def with_horizontal(self, horizontal):
        others = tuple(
            h for h in self.horizontals if h.table_name != horizontal.table_name
        )
        return Configuration(
            indexes=self.indexes,
            layouts=self.layouts,
            horizontals=others + (horizontal,),
        )

    def union(self, other):
        merged = self
        for layout in other.layouts:
            merged = merged.with_layout(layout)
        for horizontal in other.horizontals:
            merged = merged.with_horizontal(horizontal)
        return Configuration(
            indexes=self.indexes | other.indexes,
            layouts=merged.layouts,
            horizontals=merged.horizontals,
        )

    # ------------------------------------------------------------------

    def apply(self, catalog):
        """Overlay this configuration on *catalog* (returns a clone)."""
        overlay = catalog.clone()
        for ix in sorted(self.indexes, key=lambda i: i.name):
            if not overlay.has_index(ix):
                overlay.add_index(ix)
        for layout in self.layouts:
            overlay.set_vertical_layout(layout)
        for horizontal in self.horizontals:
            overlay.set_horizontal_partitioning(horizontal)
        return overlay

    def size_pages(self, catalog):
        """Extra storage the configuration needs on top of *catalog*."""
        pages = 0
        for ix in self.indexes:
            if not catalog.has_index(ix):
                pages += ix.size_pages(catalog.table(ix.table_name))
        for layout in self.layouts:
            pages += layout.replication_pages(catalog.table(layout.table_name))
        return pages

    def build_cost(self, catalog):
        """Total estimated materialization cost of all features."""
        cost = 0.0
        for ix in self.indexes:
            if not catalog.has_index(ix):
                cost += ix.build_cost(catalog.table(ix.table_name))
        for layout in self.layouts:
            table = catalog.table(layout.table_name)
            # Rewriting a table into fragments: read once, write all fragments.
            cost += table.pages + layout.total_pages(table)
        for horizontal in self.horizontals:
            table = catalog.table(horizontal.table_name)
            cost += 2.0 * table.pages
        return cost

    def describe(self):
        lines = []
        for ix in sorted(self.indexes, key=lambda i: i.name):
            lines.append(ix.sql())
        for layout in self.layouts:
            frags = ", ".join("{%s}" % ",".join(f.columns) for f in layout.fragments)
            lines.append("PARTITION %s VERTICALLY AS %s" % (layout.table_name, frags))
        for horizontal in self.horizontals:
            lines.append(
                "PARTITION %s BY RANGE (%s) INTO %d"
                % (horizontal.table_name, horizontal.column, horizontal.partition_count)
            )
        return "\n".join(lines) if lines else "(empty configuration)"
