"""What-if sessions: evaluate queries and workloads under hypothetical
configurations, with per-configuration service caching.

The session is the single entry point through which every designer
component obtains optimizer costs for designs that do not exist — the
paper's claim that "we escape the cost of explicitly building a
structure".
"""

from dataclasses import dataclass, field

from repro.optimizer import CostService
from repro.whatif.config import Configuration


@dataclass
class QueryBenefit:
    """Per-query outcome of a what-if comparison."""

    sql: str
    base_cost: float
    new_cost: float
    weight: float = 1.0

    @property
    def benefit(self):
        return self.base_cost - self.new_cost

    @property
    def speedup(self):
        return self.base_cost / self.new_cost if self.new_cost > 0 else float("inf")

    @property
    def improvement_pct(self):
        if self.base_cost <= 0:
            return 0.0
        return 100.0 * self.benefit / self.base_cost


@dataclass
class WhatIfReport:
    """Workload-level what-if comparison (the demo's benefit panels)."""

    configuration: Configuration
    per_query: list = field(default_factory=list)

    @property
    def base_total(self):
        return sum(b.weight * b.base_cost for b in self.per_query)

    @property
    def new_total(self):
        return sum(b.weight * b.new_cost for b in self.per_query)

    @property
    def total_benefit(self):
        return self.base_total - self.new_total

    @property
    def average_improvement_pct(self):
        if self.base_total <= 0:
            return 0.0
        return 100.0 * self.total_benefit / self.base_total

    def to_text(self, max_rows=20):
        lines = [
            "What-if evaluation of:",
            _indent(self.configuration.describe()),
            "",
            "%-6s %12s %12s %9s  %s" % ("query", "base", "new", "gain%", "sql"),
        ]
        for i, b in enumerate(self.per_query[:max_rows]):
            lines.append(
                "q%-5d %12.1f %12.1f %8.1f%%  %s"
                % (i, b.base_cost, b.new_cost, b.improvement_pct, _clip(b.sql))
            )
        if len(self.per_query) > max_rows:
            lines.append("... (%d more queries)" % (len(self.per_query) - max_rows))
        lines.append(
            "workload: base=%.1f new=%.1f improvement=%.1f%%"
            % (self.base_total, self.new_total, self.average_improvement_pct)
        )
        return "\n".join(lines)


def _indent(text):
    return "\n".join("  " + line for line in text.splitlines())


def _clip(sql, limit=60):
    return sql if len(sql) <= limit else sql[: limit - 3] + "..."


class WhatIfSession:
    """Cost evaluation under hypothetical configurations.

    Caches one :class:`CostService` per distinct configuration, so repeated
    probes of the same design (COLT does many) cost nothing extra beyond
    the underlying plan cache.
    """

    def __init__(self, catalog, settings=None):
        self.catalog = catalog
        self.base_service = CostService(catalog, settings)
        self._services = {Configuration.empty(): self.base_service}

    # ------------------------------------------------------------------

    @property
    def optimizer_calls(self):
        return self.base_service.optimizer_calls

    def service_for(self, config):
        """CostService seeing *config* overlaid on the base catalog."""
        svc = self._services.get(config)
        if svc is None:
            svc = self.base_service.with_catalog(config.apply(self.catalog))
            self._services[config] = svc
        return svc

    def with_join_methods(self, **enable_flags):
        """What-if join control: a session whose optimizer has the given
        ``enable_*`` flags overridden (e.g. ``enable_hashjoin=False``)."""
        settings = self.base_service.settings.with_changes(**enable_flags)
        return WhatIfSession(self.catalog, settings)

    # ------------------------------------------------------------------

    def cost(self, query, config=None):
        config = config or Configuration.empty()
        return self.service_for(config).cost(query)

    def plan(self, query, config=None):
        config = config or Configuration.empty()
        return self.service_for(config).plan(query)

    def workload_cost(self, workload, config=None):
        config = config or Configuration.empty()
        return self.service_for(config).workload_cost(workload)

    def evaluate(self, workload, config):
        """Full what-if comparison: base design vs *config* (Scenario 1)."""
        report = WhatIfReport(configuration=config)
        new_service = self.service_for(config)
        for query, weight in _pairs(workload):
            bq = self.base_service.bound(query)
            report.per_query.append(
                QueryBenefit(
                    sql=bq.sql,
                    base_cost=self.base_service.cost(bq),
                    new_cost=new_service.cost(bq),
                    weight=weight,
                )
            )
        return report

    def benefit(self, workload, config):
        """Workload benefit of *config* over the base design."""
        return self.workload_cost(workload) - self.workload_cost(workload, config)


def _pairs(workload):
    for entry in workload:
        if isinstance(entry, tuple) and len(entry) == 2:
            yield entry
        else:
            yield entry, 1.0
