"""What-if sessions: evaluate queries and workloads under hypothetical
configurations, with per-configuration service caching.

The session is the single entry point through which every designer
component obtains optimizer costs for designs that do not exist — the
paper's claim that "we escape the cost of explicitly building a
structure".
"""

from dataclasses import dataclass, field

from repro.util import DesignError, workload_pairs
from repro.whatif.config import Configuration


def _improvement_pct(base, new):
    """Percentage improvement with the degenerate-cost convention shared
    by per-query and report-level numbers: a zero/negative base with a
    *different* new cost is ±inf (mirroring ``speedup``), never a silent
    0.0 no-op."""
    if base <= 0:
        if new == base:
            return 0.0
        return float("inf") if new < base else float("-inf")
    return 100.0 * (base - new) / base


@dataclass
class QueryBenefit:
    """Per-query outcome of a what-if comparison."""

    sql: str
    base_cost: float
    new_cost: float
    weight: float = 1.0

    @property
    def benefit(self):
        return self.base_cost - self.new_cost

    @property
    def speedup(self):
        return self.base_cost / self.new_cost if self.new_cost > 0 else float("inf")

    @property
    def improvement_pct(self):
        return _improvement_pct(self.base_cost, self.new_cost)


@dataclass
class WhatIfReport:
    """Workload-level what-if comparison (the demo's benefit panels)."""

    configuration: Configuration
    per_query: list = field(default_factory=list)

    @property
    def base_total(self):
        return sum(b.weight * b.base_cost for b in self.per_query)

    @property
    def new_total(self):
        return sum(b.weight * b.new_cost for b in self.per_query)

    @property
    def total_benefit(self):
        return self.base_total - self.new_total

    @property
    def average_improvement_pct(self):
        return _improvement_pct(self.base_total, self.new_total)

    def to_text(self, max_rows=20):
        lines = [
            "What-if evaluation of:",
            _indent(self.configuration.describe()),
            "",
            "%-6s %12s %12s %9s  %s" % ("query", "base", "new", "gain%", "sql"),
        ]
        for i, b in enumerate(self.per_query[:max_rows]):
            lines.append(
                "q%-5d %12.1f %12.1f %8.1f%%  %s"
                % (i, b.base_cost, b.new_cost, b.improvement_pct, _clip(b.sql))
            )
        if len(self.per_query) > max_rows:
            lines.append("... (%d more queries)" % (len(self.per_query) - max_rows))
        lines.append(
            "workload: base=%.1f new=%.1f improvement=%.1f%%"
            % (self.base_total, self.new_total, self.average_improvement_pct)
        )
        return "\n".join(lines)


def _indent(text):
    return "\n".join("  " + line for line in text.splitlines())


def _clip(sql, limit=60):
    return sql if len(sql) <= limit else sql[: limit - 3] + "..."


class WhatIfSession:
    """Cost evaluation under hypothetical configurations.

    The session routes all costing through a shared
    :class:`~repro.evaluation.WorkloadEvaluator` — the designer's single
    costing backplane.  Exact optimizer costs (this class's contract)
    come from the evaluator's per-configuration :class:`CostService`
    cache, so repeated probes of the same design (COLT does many) cost
    nothing extra beyond the underlying plan cache; batched analytic
    sweeps over many designs go through :meth:`estimate_many`.
    """

    def __init__(self, catalog, settings=None, evaluator=None):
        # Imported here: repro.evaluation itself imports repro.whatif.
        from repro.evaluation.evaluator import WorkloadEvaluator

        if evaluator is not None:
            if evaluator.catalog is not catalog:
                raise DesignError(
                    "catalog conflict: the provided evaluator prices a "
                    "different catalog than this session's"
                )
            if settings is not None and settings != evaluator.settings:
                raise DesignError(
                    "settings conflict: the provided evaluator was built "
                    "with different planner settings; pass one or the other"
                )
        self.catalog = catalog
        self.evaluator = evaluator or WorkloadEvaluator(catalog, settings)
        self.base_service = self.evaluator.exact_service()

    # ------------------------------------------------------------------

    @property
    def optimizer_calls(self):
        return self.base_service.optimizer_calls

    def service_for(self, config):
        """CostService seeing *config* overlaid on the base catalog."""
        return self.evaluator.exact_service(config)

    def with_join_methods(self, **enable_flags):
        """What-if join control: a session whose optimizer has the given
        ``enable_*`` flags overridden (e.g. ``enable_hashjoin=False``)."""
        settings = self.base_service.settings.with_changes(**enable_flags)
        return WhatIfSession(self.catalog, settings)

    # ------------------------------------------------------------------

    def cost(self, query, config=None):
        config = config or Configuration.empty()
        return self.service_for(config).cost(query)

    def plan(self, query, config=None):
        config = config or Configuration.empty()
        return self.service_for(config).plan(query)

    def workload_cost(self, workload, config=None):
        config = config or Configuration.empty()
        return self.service_for(config).workload_cost(workload)

    def evaluate(self, workload, config):
        """Full what-if comparison: base design vs *config* (Scenario 1)."""
        report = WhatIfReport(configuration=config)
        new_service = self.service_for(config)
        for query, weight in workload_pairs(workload):
            bq = self.base_service.bound(query)
            report.per_query.append(
                QueryBenefit(
                    sql=bq.sql,
                    base_cost=self.base_service.cost(bq),
                    new_cost=new_service.cost(bq),
                    weight=weight,
                )
            )
        return report

    def estimate_many(self, workload, configurations, parallel=None):
        """Batched what-if sweep: price many candidate designs in one
        pass — the interactive "thousands of configurations" path.

        Named *estimate* deliberately: these are analytic INUM costs
        (within the cost model's tolerance of the optimizer), unlike
        :meth:`cost`/:meth:`evaluate`, which are exact.  The sweep runs
        on the evaluator's columnar kernel by default
        (:mod:`repro.evaluation.kernel`).  Use it to rank a sweep
        cheaply, then confirm the winner on the exact path.
        Returns a :class:`~repro.evaluation.BatchEvaluation`."""
        return self.evaluator.evaluate_configurations(
            workload, configurations, parallel=parallel
        )

    def benefit(self, workload, config):
        """Workload benefit of *config* over the base design."""
        return self.workload_cost(workload) - self.workload_cost(workload, config)

