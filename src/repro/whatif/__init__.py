"""What-if component (paper §3.1): simulate physical designs without
building them.

Three sub-components, as in the paper:

* **what-if index** — hypothetical indexes injected into a catalog overlay
  (:class:`Configuration`),
* **what-if table** — hypothetical vertical/horizontal partitions in the
  same overlay,
* **what-if join** — GUC-style join-method control
  (:meth:`WhatIfSession.with_join_methods`).

All other designer components attach to this one, mirroring Figure 1.
"""

from repro.whatif.config import Configuration
from repro.whatif.session import WhatIfSession, QueryBenefit, WhatIfReport

__all__ = ["Configuration", "WhatIfSession", "QueryBenefit", "WhatIfReport"]
