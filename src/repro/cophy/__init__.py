"""CoPhy: automated index selection as combinatorial optimization
(paper §3.2.1, reference [4]).

CoPhy phrases index selection as a binary integer program built on top of
INUM's plan caches: per-query plan-choice variables, per-slot access-path
variables linked to global index variables, and a storage-budget
constraint.  A mature solver (HiGHS via scipy) finds solutions with
optimality guarantees; a greedy baseline represents the commercial tools
the paper's introduction criticizes for "pruning away large fractions of
the search space".
"""

from repro.cophy.candidates import CandidateGenerator, candidate_indexes
from repro.cophy.bip import BipProblem, build_bip
from repro.cophy.solvers import solve_bip, solve_branch_and_bound, solve_lp_rounding
from repro.cophy.greedy import greedy_select
from repro.cophy.colgen import solve_colgen
from repro.cophy.advisor import CoPhyAdvisor, Recommendation

__all__ = [
    "CandidateGenerator",
    "candidate_indexes",
    "BipProblem",
    "build_bip",
    "solve_bip",
    "solve_branch_and_bound",
    "solve_lp_rounding",
    "greedy_select",
    "solve_colgen",
    "CoPhyAdvisor",
    "Recommendation",
]
