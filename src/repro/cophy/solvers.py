"""Solver backends for the CoPhy binary program.

* :func:`solve_bip` — HiGHS branch-and-cut via ``scipy.optimize.milp``
  (the "sophisticated and mature solver" the paper plugs in),
* :func:`solve_branch_and_bound` — our own LP-based branch-and-bound on
  the index variables (used for cross-checking and when exact solves of
  small instances must be dependency-free),
* :func:`solve_lp_rounding` — LP relaxation + greedy rounding, CoPhy's
  fast approximate mode that trades quality for execution time.

All backends report the *true* objective of the returned configuration
(via :meth:`BipProblem.config_cost`) so results are directly comparable.
"""

import math
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, sparse

from repro import obs


@dataclass
class SolveResult:
    """Outcome of one solver run."""

    chosen_positions: tuple
    objective: float  # true cost of the chosen configuration
    lower_bound: float = float("nan")
    status: str = "optimal"
    solver: str = ""
    solve_seconds: float = 0.0
    nodes_explored: int = 0
    n_variables: int = 0
    n_constraints: int = 0
    extra: dict = field(default_factory=dict)  # backend-specific stats

    @property
    def gap(self):
        """Relative optimality gap vs the proven lower bound."""
        if not math.isfinite(self.lower_bound) or self.lower_bound <= 0:
            return float("nan")
        return (self.objective - self.lower_bound) / self.lower_bound


@dataclass
class _Matrices:
    """The BIP in matrix form plus the variable layout."""

    c: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    n_y: int
    x_meta: list = field(default_factory=list)  # (var, candidate_pos)


def _assemble(problem):
    n_y = problem.n_candidates
    c = [0.0] * n_y
    if problem.index_penalties:
        for pos in range(n_y):
            c[pos] = problem.index_penalties[pos]
    eq_rows, eq_cols, eq_vals, b_eq = [], [], [], []
    ub_rows, ub_cols, ub_vals, b_ub = [], [], [], []
    x_meta = []
    var = n_y

    def new_var(coef):
        nonlocal var
        c.append(coef)
        var += 1
        return var - 1

    for q in problem.queries:
        z_vars = []
        for plan in q.plans:
            z = new_var(q.weight * plan.internal_cost)
            z_vars.append(z)
            for slot in plan.slots:
                row = len(b_eq)
                # sum_o x - z = 0
                eq_rows.append(row), eq_cols.append(z), eq_vals.append(-1.0)
                for pos, cost in slot.options:
                    x = new_var(q.weight * cost)
                    eq_rows.append(row), eq_cols.append(x), eq_vals.append(1.0)
                    if pos != -1:
                        x_meta.append((x, pos))
                        # x - y_pos <= 0
                        ub_row = len(b_ub)
                        ub_rows.append(ub_row), ub_cols.append(x), ub_vals.append(1.0)
                        ub_rows.append(ub_row), ub_cols.append(pos), ub_vals.append(-1.0)
                        b_ub.append(0.0)
                b_eq.append(0.0)
        row = len(b_eq)
        for z in z_vars:
            eq_rows.append(row), eq_cols.append(z), eq_vals.append(1.0)
        b_eq.append(1.0)

    # storage budget
    ub_row = len(b_ub)
    for pos in range(n_y):
        ub_rows.append(ub_row), ub_cols.append(pos), ub_vals.append(problem.sizes[pos])
    b_ub.append(problem.budget_pages)

    # optional cardinality cap on the chosen indexes
    if problem.max_indexes is not None:
        ub_row = len(b_ub)
        for pos in range(n_y):
            ub_rows.append(ub_row), ub_cols.append(pos), ub_vals.append(1.0)
        b_ub.append(float(problem.max_indexes))

    n = var
    a_eq = sparse.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(b_eq), n)
    )
    a_ub = sparse.csr_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), n)
    )
    return _Matrices(
        c=np.array(c),
        a_eq=a_eq,
        b_eq=np.array(b_eq),
        a_ub=a_ub,
        b_ub=np.array(b_ub),
        n_y=n_y,
        x_meta=x_meta,
    )


def _chosen_from_y(y_values, threshold=0.5):
    return tuple(pos for pos, v in enumerate(y_values) if v > threshold)


def observed_solve(result):
    """Record one finished solve into the telemetry backplane and pass
    the result through — every backend (this module's three and the
    greedy heuristic) reports the same two families, labeled by the
    backend name the result already carries."""
    registry = obs.metrics()
    registry.counter(
        "repro_bip_solves_total",
        "Physical-design solves by solver backend",
        labelnames=("solver",),
    ).labels(solver=result.solver).inc()
    registry.histogram(
        "repro_bip_solve_seconds",
        "Physical-design solve latency",
        labelnames=("solver",),
    ).labels(solver=result.solver).observe(result.solve_seconds)
    return result


def solve_bip(problem, time_limit=60.0):
    """Exact solve with HiGHS (scipy.optimize.milp)."""
    with obs.tracer().span("cophy.solve", solver="milp-highs",
                           candidates=problem.n_candidates):
        started = time.perf_counter()
        mats = _assemble(problem)
        n = len(mats.c)
        constraints = [
            optimize.LinearConstraint(mats.a_eq, mats.b_eq, mats.b_eq),
            optimize.LinearConstraint(mats.a_ub, -np.inf, mats.b_ub),
        ]
        res = optimize.milp(
            c=mats.c,
            constraints=constraints,
            integrality=np.ones(n),
            bounds=optimize.Bounds(0.0, 1.0),
            options={"time_limit": time_limit},
        )
        if res.x is None:
            raise RuntimeError("MILP solver failed: %s" % (res.message,))
        chosen = _chosen_from_y(res.x[: mats.n_y])
        objective = problem.config_cost(chosen)
        return observed_solve(SolveResult(
            chosen_positions=chosen,
            objective=objective,
            lower_bound=float(res.fun) + problem.write_base_cost,
            status="optimal" if res.success else str(res.status),
            solver="milp-highs",
            solve_seconds=time.perf_counter() - started,
            n_variables=n,
            n_constraints=mats.a_eq.shape[0] + mats.a_ub.shape[0],
        ))


def _lp_relax(mats, fixed_zero=(), fixed_one=()):
    n = len(mats.c)
    lower = np.zeros(n)
    upper = np.ones(n)
    for pos in fixed_zero:
        upper[pos] = 0.0
    for pos in fixed_one:
        lower[pos] = 1.0
    res = optimize.linprog(
        c=mats.c,
        A_eq=mats.a_eq,
        b_eq=mats.b_eq,
        A_ub=mats.a_ub,
        b_ub=mats.b_ub,
        bounds=np.column_stack([lower, upper]),
        method="highs",
    )
    return res


def solve_lp_rounding(problem):
    """LP relaxation + greedy rounding of the index variables."""
    started = time.perf_counter()
    mats = _assemble(problem)
    res = _lp_relax(mats)
    if res.x is None:
        raise RuntimeError("LP relaxation failed: %s" % (res.message,))
    y = res.x[: mats.n_y]
    order = sorted(range(mats.n_y), key=lambda p: -y[p])
    chosen, used = [], 0.0
    for pos in order:
        if y[pos] <= 1e-6:
            break
        if problem.max_indexes is not None and len(chosen) >= problem.max_indexes:
            break
        if used + problem.sizes[pos] <= problem.budget_pages:
            chosen.append(pos)
            used += problem.sizes[pos]
    objective = problem.config_cost(chosen)
    return observed_solve(SolveResult(
        chosen_positions=tuple(chosen),
        objective=objective,
        lower_bound=float(res.fun) + problem.write_base_cost,
        status="rounded",
        solver="lp-rounding",
        solve_seconds=time.perf_counter() - started,
        n_variables=len(mats.c),
        n_constraints=mats.a_eq.shape[0] + mats.a_ub.shape[0],
    ))


def solve_branch_and_bound(problem, max_nodes=400):
    """Our own branch-and-bound on the y variables, LP-bounded.

    Exists to cross-check the HiGHS backend and to demonstrate the BIP is
    solvable without any external MILP machinery.
    """
    started = time.perf_counter()
    mats = _assemble(problem)

    best_obj = math.inf
    best_chosen = ()
    nodes = 0
    root_bound = math.nan

    stack = [((), ())]  # (fixed_zero, fixed_one)
    while stack and nodes < max_nodes:
        fixed_zero, fixed_one = stack.pop()
        nodes += 1
        res = _lp_relax(mats, fixed_zero, fixed_one)
        if res.x is None:
            continue  # infeasible branch
        bound = float(res.fun) + problem.write_base_cost
        if nodes == 1:
            root_bound = bound
        if bound >= best_obj - 1e-9:
            continue
        y = res.x[: mats.n_y]
        frac_pos = None
        frac_dist = 1.0
        for pos in range(mats.n_y):
            if pos in fixed_zero or pos in fixed_one:
                continue
            dist = abs(y[pos] - 0.5)
            if y[pos] > 1e-6 and y[pos] < 1.0 - 1e-6 and dist < frac_dist:
                frac_pos, frac_dist = pos, dist
        # Candidate incumbent from this node's (rounded) y.
        rounded = [pos for pos in range(mats.n_y) if y[pos] > 0.5]
        count_ok = problem.max_indexes is None or len(rounded) <= problem.max_indexes
        if count_ok and problem.config_size(rounded) <= problem.budget_pages:
            obj = problem.config_cost(rounded)
            if obj < best_obj:
                best_obj, best_chosen = obj, tuple(rounded)
        if frac_pos is None:
            continue  # integral node; incumbent already recorded
        stack.append((fixed_zero + (frac_pos,), fixed_one))
        stack.append((fixed_zero, fixed_one + (frac_pos,)))

    if not math.isfinite(best_obj):
        best_chosen = ()
        best_obj = problem.config_cost(())
    return observed_solve(SolveResult(
        chosen_positions=best_chosen,
        objective=best_obj,
        lower_bound=root_bound,
        status="optimal" if not stack else "node-limit",
        solver="branch-and-bound",
        solve_seconds=time.perf_counter() - started,
        nodes_explored=nodes,
        n_variables=len(mats.c),
        n_constraints=mats.a_eq.shape[0] + mats.a_ub.shape[0],
    ))
