"""Greedy index selection: the baseline the paper's introduction targets.

This is the classic advisor loop (DTA-style): repeatedly add the candidate
with the best benefit-per-page ratio until the budget is exhausted or no
candidate helps.  It uses the *same* cost oracle as the exact solvers
(:meth:`BipProblem.config_cost`), so any quality gap measured against the
BIP optimum is attributable purely to greedy search, not to cost-model
differences — the comparison the CL-ILP experiment reports.
"""

import time

from repro.cophy.solvers import SolveResult, observed_solve


def greedy_select(problem, by_ratio=True, delta=True, sparse=False):
    """Greedy selection over a :class:`~repro.cophy.bip.BipProblem`.

    ``by_ratio=True`` ranks candidates by benefit/size (the usual
    knapsack heuristic); ``False`` ranks by raw benefit.

    With ``delta=True`` (the default) each round prices its extensions
    as single-index deltas off the current ``chosen``
    (:meth:`~repro.cophy.bip.BipProblem.config_costs_delta`): the
    parent's slot winners and per-plan sums are captured once per round
    and only queries a candidate actually improves are re-minimized.
    The chosen indexes, objective, and round-by-round decisions are
    bit-identical to the full-batch sweep, which ``delta=False`` keeps
    available as the reference.

    ``sparse=True`` routes batch pricing (the initial cost and the
    ``delta=False`` sweeps) through the kernel's sparse footprint mode
    — bit-identical again, so every combination of the two flags makes
    the same decisions.
    """
    started = time.perf_counter()
    chosen = []
    used = 0.0
    current_cost = (
        problem.config_cost(chosen, sparse=True) if sparse
        else problem.config_cost(chosen)
    )
    evaluations = 1
    remaining = set(range(problem.n_candidates))
    delta = delta and hasattr(problem, "config_costs_delta")

    while remaining:
        if problem.max_indexes is not None and len(chosen) >= problem.max_indexes:
            break
        # Batched round: price every feasible one-index extension in a
        # single sweep through the problem's pricing surface.
        feasible = [
            pos for pos in sorted(remaining)
            if used + problem.sizes[pos] <= problem.budget_pages
        ]
        if delta:
            costs = problem.config_costs_delta(chosen, feasible)
        else:
            children = [chosen + [pos] for pos in feasible]
            costs = (
                problem.config_costs(children, sparse=True) if sparse
                else problem.config_costs(children)
            )
        evaluations += len(feasible)
        best_pos = None
        best_score = 0.0
        best_cost = current_cost
        for pos, cost in zip(feasible, costs):
            benefit = current_cost - cost
            if benefit <= 1e-9:
                continue
            score = benefit / problem.sizes[pos] if by_ratio else benefit
            if score > best_score:
                best_pos, best_score, best_cost = pos, score, cost
        if best_pos is None:
            break
        chosen.append(best_pos)
        used += problem.sizes[best_pos]
        current_cost = best_cost
        remaining.discard(best_pos)

    return observed_solve(SolveResult(
        chosen_positions=tuple(chosen),
        objective=current_cost,
        status="heuristic",
        solver="greedy-%s" % ("ratio" if by_ratio else "benefit"),
        solve_seconds=time.perf_counter() - started,
        nodes_explored=evaluations,
    ))
