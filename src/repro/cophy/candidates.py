"""Candidate index generation from a workload.

Mines the bound queries for indexable columns and emits:

* single-column indexes on every sargable filter, join, grouping and
  ordering column,
* two-column composites pairing equality columns with range/join columns
  from the same query (the classic "merge eligible prefixes" rule),
* optionally, covering variants (key + INCLUDE of the query's referenced
  columns) that enable index-only scans.

Candidates are scored by the summed weight of the queries they could
serve.  :class:`CandidateGenerator` is the lazy surface: mining
aggregates votes on lightweight ``(table, columns, include)`` keys, the
ranked order streams through a heap, and :class:`~repro.catalog.Index`
objects are only constructed for candidates actually taken — so a
million-key candidate space costs tuples and heap pops, not a
materialized cross-product of catalog objects.  :func:`candidate_indexes`
keeps the classic eager facade (``generator.take(max_candidates)``).

Statement binding is memoized per ``(catalog, sql)``
(:func:`_bound`), so repeated advisor/colgen rounds over the same
workload never re-parse or re-bind a statement.
"""

import heapq
import weakref

from repro.catalog import Index
from repro.sql.binder import BoundWrite, bind_statement
from repro.util import workload_pairs

MAX_INCLUDE_COLUMNS = 6

# catalog -> {sql: bound statement}; keyed weakly so dropping a catalog
# drops its bindings.
_BIND_MEMO = weakref.WeakKeyDictionary()


def _bound(sql, catalog):
    """Memoized :func:`bind_statement` — the default binder candidate
    mining routes through (callers with their own canonical binder, like
    the evaluator, pass it in instead)."""
    try:
        bucket = _BIND_MEMO.get(catalog)
    except TypeError:  # un-weakref-able catalog stand-in
        return bind_statement(sql, catalog)
    if bucket is None:
        bucket = _BIND_MEMO[catalog] = {}
    bq = bucket.get(sql)
    if bq is None:
        bq = bucket[sql] = bind_statement(sql, catalog)
    return bq


def _index_name(table_name, columns, include):
    """The auto-generated name ``Index(table, columns, include)`` would
    carry — the rank tie-breaker, computed without constructing the
    index (pinned against :class:`~repro.catalog.Index` by the tests)."""
    suffix = "_".join(columns)
    if include:
        suffix += "_inc_" + "_".join(include)
    return "ix_%s_%s" % (table_name, suffix)


class CandidateGenerator:
    """Ranked candidate indexes, yielded lazily in score order.

    Ranking matches the classic eager enumeration exactly: descending
    summed vote weight, ties broken by the index's auto-generated name.
    ``take(n)`` memoizes the emitted prefix, so interleaved ``take``
    calls (colgen growing its active set) never re-mine or re-rank.
    """

    def __init__(self, catalog, workload, include_covering=True,
                 composite_pairs=True, bind=None):
        self.catalog = catalog
        self.workload = workload
        self.include_covering = include_covering
        self.composite_pairs = composite_pairs
        self._bind = bind or _bound
        self._heap = None  # (-score, name, key) entries, heapified
        self._emitted = []  # Index objects in rank order
        self._scores = None  # key -> summed vote weight

    # -- mining --------------------------------------------------------

    def _vote(self, scores, table_name, columns, weight, include=()):
        key = (table_name, tuple(columns), tuple(include))
        scores[key] = scores.get(key, 0.0) + weight

    def _mine(self):
        """Aggregate votes over the workload (once, lazily)."""
        if self._scores is not None:
            return
        scores = {}
        for sql, weight in workload_pairs(self.workload):
            bq = self._bind(sql, self.catalog)
            if isinstance(bq, BoundWrite):
                # Writes only spawn locate-helping candidates; the
                # maintenance penalty side is handled by the BIP's write
                # terms.
                for f in bq.filters:
                    if f.sargable:
                        self._vote(scores, bq.table.name, (f.column,), weight)
                continue
            for alias in bq.aliases:
                table = bq.table_for(alias)
                referenced = bq.referenced_columns(alias)
                eq_cols, range_cols = [], []
                for f in bq.filters_for(alias):
                    if not f.sargable:
                        continue
                    bucket = eq_cols if f.kind in ("eq", "in") else range_cols
                    if f.column not in bucket:
                        bucket.append(f.column)
                join_cols = []
                for clause in bq.joins_for(alias):
                    col, __, __ = clause.side_for(alias)
                    if col not in join_cols:
                        join_cols.append(col)
                other_cols = []
                for a, c in bq.group_by:
                    if a == alias and c not in other_cols:
                        other_cols.append(c)
                for a, c, __ in bq.order_by:
                    if a == alias and c not in other_cols:
                        other_cols.append(c)

                for col in eq_cols + range_cols + join_cols + other_cols:
                    self._vote(scores, table.name, (col,), weight)

                if self.composite_pairs:
                    for eq in eq_cols:
                        for second in range_cols + join_cols + other_cols:
                            if second != eq:
                                self._vote(
                                    scores, table.name, (eq, second), weight
                                )
                    for i, eq1 in enumerate(eq_cols):
                        for eq2 in eq_cols[i + 1:]:
                            self._vote(
                                scores, table.name, (eq1, eq2), weight
                            )
                    for join_col in join_cols:
                        for second in range_cols:
                            self._vote(
                                scores, table.name, (join_col, second), weight
                            )

                if (self.include_covering
                        and len(referenced) <= MAX_INCLUDE_COLUMNS + 1):
                    for col in eq_cols + range_cols + join_cols:
                        rest = tuple(sorted(referenced - {col}))
                        if rest:
                            self._vote(
                                scores, table.name, (col,), weight,
                                include=rest,
                            )
        self._scores = scores
        self._heap = [
            (-score, _index_name(table, columns, include),
             (table, columns, include))
            for (table, columns, include), score in scores.items()
        ]
        heapq.heapify(self._heap)

    # -- ranked emission -----------------------------------------------

    @property
    def n_candidates(self):
        """Distinct candidates the workload votes for."""
        self._mine()
        return len(self._scores)

    def take(self, n):
        """The first *n* candidates in rank order (all of them when the
        space is smaller); the emitted prefix is memoized."""
        self._mine()
        while len(self._emitted) < n and self._heap:
            __, name, (table, columns, include) = heapq.heappop(self._heap)
            self._emitted.append(
                Index(table, columns, include=include, name=name)
            )
        return list(self._emitted[:n])

    def __iter__(self):
        pos = 0
        while True:
            batch = self.take(pos + 1)
            if len(batch) <= pos:
                return
            yield batch[pos]
            pos += 1


def candidate_indexes(
    catalog,
    workload,
    max_candidates=60,
    include_covering=True,
    composite_pairs=True,
):
    """Return candidate :class:`Index` objects, highest-scored first."""
    return CandidateGenerator(
        catalog,
        workload,
        include_covering=include_covering,
        composite_pairs=composite_pairs,
    ).take(max_candidates)
