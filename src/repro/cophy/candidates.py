"""Candidate index generation from a workload.

Mines the bound queries for indexable columns and emits:

* single-column indexes on every sargable filter, join, grouping and
  ordering column,
* two-column composites pairing equality columns with range/join columns
  from the same query (the classic "merge eligible prefixes" rule),
* optionally, covering variants (key + INCLUDE of the query's referenced
  columns) that enable index-only scans.

Candidates are scored by the summed weight of the queries they could
serve and capped at *max_candidates* — the knob the paper exposes for
trading solve time against solution quality.
"""

from repro.catalog import Index
from repro.sql.binder import BoundWrite, bind_statement
from repro.util import workload_pairs

MAX_INCLUDE_COLUMNS = 6


def candidate_indexes(
    catalog,
    workload,
    max_candidates=60,
    include_covering=True,
    composite_pairs=True,
):
    """Return candidate :class:`Index` objects, highest-scored first."""
    scores = {}

    def vote(index, weight):
        scores[index] = scores.get(index, 0.0) + weight

    for sql, weight in workload_pairs(workload):
        bq = bind_statement(sql, catalog)
        if isinstance(bq, BoundWrite):
            # Writes only spawn locate-helping candidates; the maintenance
            # penalty side is handled by the BIP's write terms.
            for f in bq.filters:
                if f.sargable:
                    vote(Index(bq.table.name, (f.column,)), weight)
            continue
        for alias in bq.aliases:
            table = bq.table_for(alias)
            referenced = bq.referenced_columns(alias)
            eq_cols, range_cols = [], []
            for f in bq.filters_for(alias):
                if not f.sargable:
                    continue
                bucket = eq_cols if f.kind in ("eq", "in") else range_cols
                if f.column not in bucket:
                    bucket.append(f.column)
            join_cols = []
            for clause in bq.joins_for(alias):
                col, __, __ = clause.side_for(alias)
                if col not in join_cols:
                    join_cols.append(col)
            other_cols = []
            for a, c in bq.group_by:
                if a == alias and c not in other_cols:
                    other_cols.append(c)
            for a, c, __ in bq.order_by:
                if a == alias and c not in other_cols:
                    other_cols.append(c)

            for col in eq_cols + range_cols + join_cols + other_cols:
                vote(Index(table.name, (col,)), weight)

            if composite_pairs:
                for eq in eq_cols:
                    for second in range_cols + join_cols + other_cols:
                        if second != eq:
                            vote(Index(table.name, (eq, second)), weight)
                for i, eq1 in enumerate(eq_cols):
                    for eq2 in eq_cols[i + 1:]:
                        vote(Index(table.name, (eq1, eq2)), weight)
                for join_col in join_cols:
                    for second in range_cols:
                        vote(Index(table.name, (join_col, second)), weight)

            if include_covering and len(referenced) <= MAX_INCLUDE_COLUMNS + 1:
                for col in eq_cols + range_cols + join_cols:
                    rest = tuple(sorted(referenced - {col}))
                    if rest:
                        vote(Index(table.name, (col,), include=rest), weight)

    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0].name))
    return [index for index, __ in ranked[:max_candidates]]

