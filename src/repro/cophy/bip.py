"""Construction of CoPhy's binary integer program from INUM plan caches.

For workload query *q* with weight ``w_q``, INUM supplies cached plans
``e`` with internal cost ``c_qe`` and access slots.  For every slot the
BIP offers options: the *default* access (sequential scan / whatever the
base design already provides) and one option per compatible candidate
index ``j`` with analytic access cost.  Decision variables:

* ``y_j``      — build candidate index j
* ``z_qe``     — query q executes cached plan e
* ``x_qeso``   — slot s of (q, e) uses option o

subject to  Σ_e z_qe = 1,  Σ_o x_qeso = z_qe,  x(option j) ≤ y_j, and
Σ_j size_j · y_j ≤ budget.  The objective sums weighted internal and
access costs.  By construction the optimum equals
``min_config INUM(workload, config)`` over configurations within budget —
CoPhy's quality guarantee.
"""

import math
from dataclasses import dataclass, field

from repro.inum.cache import _DesignView
from repro.optimizer.writecost import (
    affected_rows,
    heap_write_cost,
    index_maintenance_cost_per_row,
    locate_query,
    maintenance_cost,
)
from repro.sql.binder import BoundWrite
from repro.util import workload_pairs
from repro.whatif import Configuration


@dataclass
class SlotOptions:
    """Cost options for one access slot: index -1 is the default access."""

    options: list  # list of (candidate_index_position or -1, cost)


@dataclass
class PlanTerm:
    internal_cost: float
    slots: list  # list of SlotOptions


@dataclass
class QueryTerm:
    weight: float
    plans: list  # list of PlanTerm
    sql: str = ""


@dataclass
class BipProblem:
    candidates: list
    sizes: list  # pages per candidate
    budget_pages: float
    queries: list = field(default_factory=list)
    max_indexes: int = None  # optional cap on the number of chosen indexes
    # Write-statement terms: a design-independent base (heap writes, locate
    # under the existing design, maintenance of existing indexes) plus a
    # per-candidate maintenance penalty incurred when that index is built.
    write_base_cost: float = 0.0
    index_penalties: list = field(default_factory=list)
    _prepared: list = field(default=None, repr=False)
    _kernel: object = field(default=None, repr=False)

    @property
    def n_candidates(self):
        return len(self.candidates)

    def config_cost(self, chosen_positions, sparse=False):
        """Objective value of a given set of candidate positions — the
        best z/x completion is computed greedily (it decomposes).
        Single pricing implementation: delegates to :meth:`config_costs`
        so exact solvers and the greedy batch path cannot diverge."""
        return self.config_costs([chosen_positions], sparse=sparse)[0]

    def config_costs(self, batch, sparse=False):
        """Objective values for a batch of candidate-position sets,
        priced on the columnar :class:`~repro.evaluation.kernel.BipKernel`:
        per-slot minima over applicable accesses (the default plus the
        chosen candidates), per-plan sums and per-query minima run as
        grouped array reductions over the whole batch at once.  Compiled
        lazily, once — the problem is immutable after ``build_bip``.
        Results equal :meth:`config_costs_scalar` (and therefore
        ``config_cost``) bit-exactly.

        ``sparse=True`` prices each member as a footprint scatter
        against the empty-set base state instead of allocating the
        dense batch × options mask — bit-identical, and the mode the
        column-generation solver routes its pricing through."""
        if self._kernel is None:
            from repro.evaluation.kernel import BipKernel

            self._kernel = BipKernel(self)
        return self._kernel.evaluate(batch, sparse=sparse)

    def config_costs_delta(self, chosen, extensions):
        """Objective values of ``chosen + [pos]`` for every extension
        position, priced as single-index deltas off the captured parent
        state (:meth:`~repro.evaluation.kernel.BipKernel.delta_state`) —
        the greedy round's sweep without re-pricing untouched queries.
        Equals ``config_costs([chosen + [pos] for pos in extensions])``
        bit-exactly; *chosen* must be passed in selection order (the
        penalty term replays its set-iteration order)."""
        if self._kernel is None:
            from repro.evaluation.kernel import BipKernel

            self._kernel = BipKernel(self)
        state = self._kernel.delta_state(chosen)
        return self._kernel.evaluate_delta(state, extensions)

    def config_costs_scalar(self, batch):
        """The scalar reference pricing of a batch of candidate sets —
        what :meth:`config_costs` is pinned bit-identical against.

        The per-slot option lists are preprocessed once per problem —
        default access cost split from the per-candidate options — so
        each batch member pays only the chosen-set minimum, not a
        re-filtering of every option list.
        """
        if self._prepared is None:
            # Lazily computed after build_bip finishes mutating queries;
            # the problem is immutable from then on.
            self._prepared = [
                (
                    q.weight,
                    [
                        (
                            plan.internal_cost,
                            [
                                (
                                    min(
                                        (c for pos, c in slot.options
                                         if pos == -1),
                                        default=None,
                                    ),
                                    [(pos, c) for pos, c in slot.options
                                     if pos != -1],
                                )
                                for slot in plan.slots
                            ],
                        )
                        for plan in q.plans
                    ],
                )
                for q in self.queries
            ]
        prepared = self._prepared
        totals = []
        for chosen_positions in batch:
            chosen = set(chosen_positions)
            total = self.write_base_cost
            if self.index_penalties:
                total += sum(self.index_penalties[pos] for pos in chosen)
            for weight, plans in prepared:
                best = math.inf
                for internal, slots in plans:
                    cost = internal
                    feasible = True
                    for default, options in slots:
                        winner = default
                        for pos, option_cost in options:
                            if pos in chosen and (
                                winner is None or option_cost < winner
                            ):
                                winner = option_cost
                        if winner is None:
                            feasible = False
                            break
                        cost += winner
                    if feasible and cost < best:
                        best = cost
                if not math.isfinite(best):
                    raise RuntimeError("BIP has an infeasible query term")
                total += weight * best
            totals.append(total)
        return totals

    def config_size(self, chosen_positions):
        return sum(self.sizes[pos] for pos in set(chosen_positions))


def build_bip(inum_model, workload, candidates, budget_pages, max_indexes=None):
    """Assemble the BIP for *workload* over *candidates* under a budget."""
    catalog = inum_model.catalog
    sizes = [
        float(ix.size_pages(catalog.table(ix.table_name))) for ix in candidates
    ]
    by_table = {}
    for pos, ix in enumerate(candidates):
        by_table.setdefault(ix.table_name, []).append(pos)

    default_view = _DesignView(catalog, Configuration.empty())
    single_views = [
        _DesignView(catalog, Configuration.of(ix)) for ix in candidates
    ]

    problem = BipProblem(
        candidates=list(candidates),
        sizes=sizes,
        budget_pages=float(budget_pages),
        max_indexes=max_indexes,
        index_penalties=[0.0] * len(candidates),
    )
    def add_query_term(bq_or_sql, weight):
        cache = inum_model.cache_for(bq_or_sql)
        bq = cache.bound_query
        term = QueryTerm(weight=weight, plans=[], sql=bq.sql)
        for cached in cache.plans:
            plan_term = PlanTerm(internal_cost=cached.internal_cost, slots=[])
            feasible = True
            for slot in cached.slots:
                # Slot pricing goes through the model's memo, so BIP
                # construction shares per-slot access costs with every
                # other consumer of the evaluation backplane.
                options = []
                default = inum_model.slot_cost(bq, slot, default_view)
                if default is not None:
                    options.append((-1, default))
                for pos in by_table.get(slot.table_name, ()):
                    cost = inum_model.slot_cost(bq, slot, single_views[pos])
                    if cost is not None and (default is None or cost < default):
                        options.append((pos, cost))
                if not options:
                    feasible = False
                    break
                plan_term.slots.append(SlotOptions(options=options))
            if feasible:
                term.plans.append(plan_term)
        if not term.plans:
            raise RuntimeError("no feasible cached plan for %r" % (term.sql,))
        problem.queries.append(term)

    for sql, weight in workload_pairs(workload):
        bound = inum_model.bound(sql)
        if isinstance(bound, BoundWrite):
            _add_write_terms(
                problem, inum_model, bound, weight, candidates, add_query_term
            )
            continue
        add_query_term(bound, weight)
    if not any(problem.index_penalties):
        # Read-only workload: every penalty is +0.0, and adding +0.0 is
        # the floating-point identity, so every pricing path can skip
        # the per-configuration penalty sum without changing a bit.
        problem.index_penalties = []
    return problem


def _add_write_terms(problem, inum_model, bound_write, weight, candidates,
                     add_query_term):
    """Fold one write statement into the BIP.

    Three parts, making the BIP objective coincide with INUM's exact
    mixed-workload cost:

    * the *locate* step of updates/deletes is added as a full query term
      (so candidate indexes are credited for finding the rows faster);
    * the design-independent base: heap modification plus maintaining the
      indexes that already exist;
    * a linear maintenance penalty per candidate touched by the write.
    """
    settings = inum_model.settings
    base = heap_write_cost(bound_write, settings)
    base += maintenance_cost(
        bound_write,
        inum_model.catalog.indexes_on(bound_write.table.name),
        settings,
    )
    problem.write_base_cost += weight * base
    if bound_write.kind in ("update", "delete"):
        add_query_term(locate_query(bound_write), weight)

    rows = affected_rows(bound_write)
    for pos, index in enumerate(candidates):
        if bound_write.touches_index(index):
            per_row = index_maintenance_cost_per_row(
                index, bound_write.table, settings
            )
            problem.index_penalties[pos] += weight * rows * per_row

