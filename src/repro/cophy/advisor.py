"""The automatic index suggestion component (paper §3.2.1).

Glues the pipeline together: candidate generation -> INUM warm-up ->
BIP construction -> solver -> :class:`Recommendation`.  The DBA-facing
knobs are the storage budget, the candidate cap, and the solver choice
(CoPhy's "trade off execution time against the quality of the suggested
solutions").
"""

import time
from dataclasses import dataclass, field

from repro.cophy.bip import build_bip
from repro.cophy.candidates import candidate_indexes
from repro.cophy.colgen import solve_colgen
from repro.cophy.greedy import greedy_select
from repro.cophy.solvers import solve_bip, solve_branch_and_bound, solve_lp_rounding
from repro.evaluation import WorkloadEvaluator
from repro.util import DesignError
from repro.whatif import Configuration

_SOLVERS = {
    "milp": solve_bip,
    "bnb": solve_branch_and_bound,
    "lp-rounding": solve_lp_rounding,
    "greedy": greedy_select,
    "greedy-benefit": lambda problem: greedy_select(problem, by_ratio=False),
}

# Solvers that price candidates lazily instead of consuming a fully
# materialized BipProblem — the advisor skips build_bip for these.
_LAZY_SOLVERS = {"colgen"}


@dataclass
class Recommendation:
    """An index recommendation with its predicted impact."""

    indexes: list
    configuration: Configuration
    base_workload_cost: float
    predicted_workload_cost: float
    size_pages: int
    budget_pages: int
    solver: str
    solve_seconds: float = 0.0
    optimizer_calls: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def benefit(self):
        return self.base_workload_cost - self.predicted_workload_cost

    @property
    def improvement_pct(self):
        if self.base_workload_cost <= 0:
            return 0.0
        return 100.0 * self.benefit / self.base_workload_cost

    def to_text(self):
        lines = ["Recommended indexes (%s):" % self.solver]
        if not self.indexes:
            lines.append("  (none — budget too small or nothing helps)")
        for ix in self.indexes:
            lines.append("  %s" % ix.sql())
        lines.append(
            "storage: %d of %d pages; workload cost %.1f -> %.1f (%.1f%% better)"
            % (
                self.size_pages,
                self.budget_pages,
                self.base_workload_cost,
                self.predicted_workload_cost,
                self.improvement_pct,
            )
        )
        return "\n".join(lines)


class CoPhyAdvisor:
    """Offline index advisor for one catalog."""

    def __init__(self, catalog, settings=None, cost_model=None):
        self.catalog = catalog
        self.cost_model = cost_model or WorkloadEvaluator(catalog, settings)

    def recommend(
        self,
        workload,
        budget_pages,
        candidates=None,
        solver="milp",
        max_candidates=60,
        max_indexes=None,
        compress=False,
    ):
        """Suggest indexes for *workload* within *budget_pages* of storage.

        ``max_indexes`` caps how many indexes may be chosen (a common DBA
        constraint next to raw storage).  ``compress=True`` clusters
        same-shaped statements before building the BIP, shrinking solve
        time for large workloads with repeated templates.
        """
        if budget_pages < 0:
            raise DesignError("storage budget must be non-negative")
        if solver not in _SOLVERS and solver not in _LAZY_SOLVERS:
            raise DesignError(
                "unknown solver %r (have: %s)"
                % (solver, sorted(set(_SOLVERS) | _LAZY_SOLVERS))
            )
        workload = list(workload)
        if not workload:
            raise DesignError("cannot tune an empty workload")

        started = time.perf_counter()
        calls_before = self.cost_model.precompute_calls
        compression_stats = None
        if compress:
            from repro.cophy.compression import compress_workload

            compressed, compression_stats = compress_workload(
                self.catalog, workload
            )
            workload = list(compressed)
        if candidates is None:
            candidates = candidate_indexes(
                self.catalog, workload, max_candidates=max_candidates
            )
        if solver in _LAZY_SOLVERS:
            # Column generation: no exhaustive BIP — candidates are
            # priced by the slot pricer and activated on demand, so the
            # cross-product of (slot, candidate) options is never fully
            # materialized into a problem object.
            result = solve_colgen(
                self.cost_model, workload, candidates, budget_pages,
                max_indexes=max_indexes,
            )
            base_cost = result.extra["base_cost"]
            size_pages = sum(
                float(candidates[pos].size_pages(
                    self.catalog.table(candidates[pos].table_name)
                ))
                for pos in set(result.chosen_positions)
            )
        else:
            problem = build_bip(
                self.cost_model, workload, candidates, budget_pages,
                max_indexes=max_indexes,
            )
            result = _SOLVERS[solver](problem)
            base_cost = problem.config_cost(())
            size_pages = problem.config_size(result.chosen_positions)

        chosen = [candidates[pos] for pos in result.chosen_positions]
        config = Configuration(indexes=frozenset(chosen))
        return Recommendation(
            indexes=sorted(chosen, key=lambda ix: ix.name),
            configuration=config,
            base_workload_cost=base_cost,
            predicted_workload_cost=result.objective,
            size_pages=int(size_pages),
            budget_pages=int(budget_pages),
            solver=result.solver,
            solve_seconds=time.perf_counter() - started,
            optimizer_calls=self.cost_model.precompute_calls - calls_before,
            stats={
                "n_candidates": len(candidates),
                "n_variables": result.n_variables,
                "n_constraints": result.n_constraints,
                "lower_bound": result.lower_bound,
                "gap": result.gap,
                "status": result.status,
                "nodes": result.nodes_explored,
                "compression": compression_stats,
                "solve_extra": dict(result.extra) or None,
            },
        )
