"""Workload compression for the index advisor.

Tuning-tool inputs are often thousands of statements that differ only in
literals.  Since candidate generation, INUM interesting orders, and the
BIP structure all depend on a query's *shape* — tables, predicate columns
and kinds, join edges, grouping/ordering — not on its literals, queries
with identical shape can be clustered and replaced by one representative
carrying the cluster's total weight.

This is the standard advisor trick (used by DTA and assumed by CoPhy's
scalability argument): the BIP shrinks linearly in the compression ratio
while the recommended configuration stays (near-)identical because every
cluster member prices access paths the same way up to literal-dependent
selectivities, which the representative's weight averages out.
"""

from dataclasses import dataclass

from repro.sql.binder import BoundWrite, bind_statement
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class CompressionStats:
    original_statements: int
    compressed_statements: int

    @property
    def ratio(self):
        if self.compressed_statements == 0:
            return 1.0
        return self.original_statements / self.compressed_statements


def query_signature(bound_query):
    """Shape signature: everything the advisor pipeline keys off."""
    if isinstance(bound_query, BoundWrite):
        return (
            "write",
            bound_query.kind,
            bound_query.table.name,
            tuple(sorted(bound_query.set_columns)),
            tuple(sorted((f.column, f.kind) for f in bound_query.filters)),
        )
    tables = tuple(sorted(t.name for t in bound_query.tables.values()))
    filters = []
    for alias in sorted(bound_query.filters):
        table = bound_query.table_for(alias).name
        for f in bound_query.filters_for(alias):
            filters.append((table, f.column, f.kind))
    joins = tuple(
        sorted(
            (
                min((j.left_table, j.left_column), (j.right_table, j.right_column)),
                max((j.left_table, j.left_column), (j.right_table, j.right_column)),
            )
            for j in bound_query.joins
        )
    )
    group = tuple(
        sorted(
            (bound_query.table_for(a).name, c) for a, c in bound_query.group_by
        )
    )
    order = tuple(
        (bound_query.table_for(a).name, c, asc)
        for a, c, asc in bound_query.order_by
    )
    referenced = tuple(
        sorted(
            (bound_query.table_for(a).name, tuple(sorted(bound_query.referenced_columns(a))))
            for a in bound_query.aliases
        )
    )
    return (
        tables,
        tuple(sorted(filters)),
        joins,
        group,
        order,
        bound_query.limit is not None,
        bound_query.is_aggregate,
        referenced,
    )


def compress_workload(catalog, workload, max_statements=None):
    """Cluster by shape; returns ``(compressed_workload, stats)``.

    The representative of each cluster is its highest-weight member; the
    representative's weight is the cluster's total.  With
    ``max_statements`` set, only the heaviest clusters are kept (their
    weights are scaled up so the total workload weight is preserved).
    """
    clusters = {}  # signature -> [total_weight, best_sql, best_weight]
    order = []  # first-seen signatures, to keep output deterministic
    total_weight = 0.0
    n_original = 0
    for entry in workload:
        sql, weight = entry if isinstance(entry, tuple) else (entry, 1.0)
        n_original += 1
        total_weight += weight
        signature = query_signature(bind_statement(sql, catalog))
        if signature not in clusters:
            clusters[signature] = [0.0, sql, -1.0]
            order.append(signature)
        bucket = clusters[signature]
        bucket[0] += weight
        if weight > bucket[2]:
            bucket[1], bucket[2] = sql, weight

    chosen = order
    if max_statements is not None and len(order) > max_statements:
        chosen = sorted(order, key=lambda s: -clusters[s][0])[:max_statements]
        chosen.sort(key=order.index)

    kept_weight = sum(clusters[s][0] for s in chosen)
    scale = total_weight / kept_weight if kept_weight > 0 else 1.0
    compressed = Workload()
    for signature in chosen:
        cluster_weight, sql, __ = clusters[signature]
        compressed.add(sql, cluster_weight * scale)
    stats = CompressionStats(
        original_statements=n_original,
        compressed_statements=len(compressed),
    )
    return compressed, stats
