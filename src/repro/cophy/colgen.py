"""Column-generation CoPhy: lazy candidate activation with an exactness
certificate.

The classic pipeline (``build_bip`` + ``greedy_select``) materializes
one BIP option per (slot, candidate) pair up front and prices every
candidate every round — fine at ``max_candidates=60``, a scaling cliff
at thousands.  :func:`solve_colgen` keeps the *search* exact while
doing lazy work, in three parts:

* :class:`CandidatePricer` — exact per-(slot, candidate) access costs
  without per-candidate path regeneration.  For one slot the scan
  context, sequential path, base-design path groups, BitmapAnd arms and
  parameterized probes are assembled once; pricing candidate *j* then
  adds only *j*'s own path group and re-runs the same winner functions
  the INUM memo runs (:func:`~repro.inum.cache._best_scan_access` /
  ``_best_param_access``).  Single-index design views change neither
  relation geometry (no layouts or partitionings) nor the path order
  (base indexes first, *j* appended last, the combining BitmapAnd
  always last), so every price is **bit-identical** to
  ``inum_model.slot_cost(bq, slot, _DesignView(catalog,
  Configuration.of(j)))`` — the tests pin this pair by pair.

* a *restricted master*: a :class:`~repro.cophy.bip.BipProblem` over
  the **full** candidate vector whose slot options only mention the
  currently *active* candidates.  Because option lists for a chosen set
  ``C ⊆ active`` are identical to the full problem's (the default plus
  exactly the options of indexes in ``C``), restricted pricing of any
  such set equals full-problem pricing bit for bit — including the
  write-penalty accumulation, which iterates the very same global
  position sets.

* a sound *reduced-benefit bound*: for candidate *j* at chosen state
  ``C``, per query ``benefit_q(j | C) ≤ max_plan Σ_slot max(0,
  winner_C(slot) − cost_j(slot))`` (drop into the plan that currently
  wins nothing forfeits; the winner of every slot can only improve to
  ``cost_j``).  Slot winners are anti-monotone in ``C``, so the bound
  computed at the current state dominates the benefit at **every**
  future state — a candidate whose bound falls below greedy's
  ``1e-9`` benefit threshold is prunable forever, and the final round
  terminates with the certificate that no inactive candidate could
  have changed any decision.  The bound is evaluated for all inactive
  candidates each round as a handful of grouped numpy reductions.

The round loop replays :func:`~repro.cophy.greedy.greedy_select`
exactly — same feasibility filter, same benefit threshold, same
strict-max tie-breaking over ascending global positions — activating
(in descending bound-score order) every inactive candidate whose bound
could still beat the incumbent before committing a round.  Hence the
headline property, pinned by ``tests/test_colgen.py``:
``solve_colgen`` returns the identical design and objective as greedy
over the exhaustively-built full BIP, while activating a small
fraction of the candidate space.
"""

import time

import numpy as np

from repro import obs
from repro.cophy.bip import BipProblem, PlanTerm, QueryTerm, SlotOptions
from repro.cophy.solvers import SolveResult, observed_solve
from repro.inum.cache import _DesignView, _best_param_access, _best_scan_access
from repro.optimizer import paths as P
from repro.optimizer.writecost import (
    affected_rows,
    heap_write_cost,
    index_maintenance_cost_per_row,
    locate_query,
    maintenance_cost,
)
from repro.sql.binder import BoundWrite
from repro.util import workload_pairs
from repro.whatif import Configuration

# Inactive candidates activated per refinement wave, in descending
# bound-score order.  Small enough not to flood the active set when the
# first wave's incumbent already dominates, large enough that round one
# (no incumbent yet) converges in a few waves.
_WAVE_SIZE = 32

# Greedy's benefit threshold (a candidate must beat it to be chosen) —
# shared so the bound prunes against exactly the decision rule.
_BENEFIT_EPS = 1e-9


class CandidatePricer:
    """Exact slot access costs for single-candidate design views, with
    all candidate-independent work cached per slot (see module doc)."""

    def __init__(self, model):
        self.model = model
        self.settings = model.settings
        self.catalog = model.catalog
        self.default_view = _DesignView(model.catalog, Configuration.empty())
        self._ctx = {}  # (sql, alias) -> ScanContext
        self._scan_base = {}  # (sql, slot) -> (paths, arms, interesting)
        self._param_base = {}  # (sql, slot) -> parameterized base paths
        self._groups = {}  # (sql, alias, required_order, index) -> group
        self._ppaths = {}  # (sql, alias, param_columns, index) -> path
        self._base_sets = {}  # table -> set of base-catalog indexes
        self.pricings = 0

    def _context(self, bq, slot):
        key = (bq.sql, slot.alias)
        ctx = self._ctx.get(key)
        if ctx is None:
            ctx = P.scan_context(bq, slot.alias, self.default_view)
            self._ctx[key] = ctx
        return ctx

    def _base_indexes(self, table_name):
        base = self._base_sets.get(table_name)
        if base is None:
            base = set(self.catalog.indexes_on(table_name))
            self._base_sets[table_name] = base
        return base

    def default_cost(self, bq, slot):
        """The slot's cost under the base design (through the model's
        shared memo — every other consumer prices the same entry)."""
        return self.model.slot_cost(bq, slot, self.default_view)

    def _scan_state(self, bq, slot):
        key = (bq.sql, slot)
        cached = self._scan_base.get(key)
        if cached is None:
            ctx = self._context(bq, slot)
            interesting = (
                {slot.required_order} if slot.required_order else set()
            )
            paths = [P.sequential_path(ctx, self.settings)]
            arms = []
            for ix in self.default_view.indexes_on(slot.table_name):
                group, arm = P.index_path_group(
                    ctx, ix, self.settings, interesting
                )
                if arm is not None:
                    arms.append(arm)
                paths.extend(group)
            cached = (paths, arms, interesting)
            self._scan_base[key] = cached
        return cached

    def _group(self, bq, slot, index, interesting):
        key = (bq.sql, slot.alias, slot.required_order, index)
        cached = self._groups.get(key)
        if cached is None:
            cached = self._groups[key] = P.index_path_group(
                self._context(bq, slot), index, self.settings, interesting
            )
        return cached

    def _param_state(self, bq, slot):
        key = (bq.sql, slot)
        cached = self._param_base.get(key)
        if cached is None:
            ctx = self._context(bq, slot)
            cached = []
            for ix in self.default_view.indexes_on(slot.table_name):
                path = P.parameterized_path_for(
                    ctx, ix, self.settings, slot.param_columns
                )
                if path is not None:
                    cached.append(path)
            self._param_base[key] = cached
        return cached

    def _param_path(self, bq, slot, index):
        key = (bq.sql, slot.alias, slot.param_columns, index)
        if key not in self._ppaths:
            self._ppaths[key] = P.parameterized_path_for(
                self._context(bq, slot), index, self.settings,
                slot.param_columns,
            )
        return self._ppaths[key]

    def price(self, bq, slot, index):
        """``slot``'s cost when exactly ``index`` is added to the base
        design — bit-identical to pricing the single-index design view
        through the INUM winner logic (``None`` means infeasible)."""
        self.pricings += 1
        if index in self._base_indexes(slot.table_name):
            # The design view deduplicates against the base catalog, so
            # the path set — and therefore the winner — is the default's.
            return self.default_cost(bq, slot)
        if slot.param_columns:
            paths = self._param_state(bq, slot)
            own = self._param_path(bq, slot, index)
            if own is not None:
                paths = paths + [own]
            return _best_param_access(slot, paths)
        base_paths, base_arms, interesting = self._scan_state(bq, slot)
        group, arm = self._group(bq, slot, index, interesting)
        paths = base_paths + group
        arms = base_arms if arm is None else base_arms + [arm]
        and_path = P.bitmap_and_path(
            self._context(bq, slot), arms, self.settings
        )
        if and_path is not None:
            paths = paths + [and_path]
        return _best_scan_access(slot, paths, self.settings)


class _Master:
    """The priced skeleton of the full BIP plus restricted-problem
    construction and the vectorized reduced-benefit bound."""

    def __init__(self, inum_model, workload, candidates, budget_pages,
                 max_indexes):
        catalog = inum_model.catalog
        self.candidates = list(candidates)
        n = len(self.candidates)
        self.sizes = [
            float(ix.size_pages(catalog.table(ix.table_name)))
            for ix in self.candidates
        ]
        self.budget_pages = float(budget_pages)
        self.max_indexes = max_indexes
        self.pricer = CandidatePricer(inum_model)
        by_table = {}
        for pos, ix in enumerate(self.candidates):
            by_table.setdefault(ix.table_name, []).append(pos)

        self.write_base_cost = 0.0
        self.index_penalties = [0.0] * n
        self.slot_entries = []  # sid -> (default cost or None, options)
        self.pos_slots = [[] for __ in range(n)]  # pos -> [(sid, cost)]
        self.query_specs = []  # (weight, sql, [(internal, [sid, ...])])
        slot_ids = {}

        def slot_entry(bq, slot):
            key = (bq.sql, slot)
            sid = slot_ids.get(key)
            if sid is None:
                default = self.pricer.default_cost(bq, slot)
                options = []
                for pos in by_table.get(slot.table_name, ()):
                    cost = self.pricer.price(bq, slot, self.candidates[pos])
                    if cost is not None and (
                        default is None or cost < default
                    ):
                        options.append((pos, cost))
                sid = len(self.slot_entries)
                self.slot_entries.append((default, options))
                for pos, cost in options:
                    self.pos_slots[pos].append((sid, cost))
                slot_ids[key] = sid
            return sid

        def add_query_spec(bq_or_sql, weight):
            cache = inum_model.cache_for(bq_or_sql)
            bq = cache.bound_query
            plans = [
                (
                    cached.internal_cost,
                    [slot_entry(bq, slot) for slot in cached.slots],
                )
                for cached in cache.plans
            ]
            self.query_specs.append((weight, bq.sql, plans))

        settings = inum_model.settings
        for sql, weight in workload_pairs(workload):
            bound = inum_model.bound(sql)
            if isinstance(bound, BoundWrite):
                # Same three-part fold as build_bip's _add_write_terms.
                base = heap_write_cost(bound, settings)
                base += maintenance_cost(
                    bound, catalog.indexes_on(bound.table.name), settings
                )
                self.write_base_cost += weight * base
                if bound.kind in ("update", "delete"):
                    add_query_spec(locate_query(bound), weight)
                rows = affected_rows(bound)
                for pos, index in enumerate(self.candidates):
                    if bound.touches_index(index):
                        per_row = index_maintenance_cost_per_row(
                            index, bound.table, settings
                        )
                        self.index_penalties[pos] += weight * rows * per_row
                continue
            add_query_spec(bound, weight)

        # Current per-slot winners under the chosen set (inf = slot
        # feasible only through a not-yet-chosen candidate's option).
        self.winner = np.asarray(
            [
                np.inf if default is None else default
                for default, __ in self.slot_entries
            ],
            dtype=np.float64,
        )
        self._build_bound_groups()

    # -- restricted master ---------------------------------------------

    def build_restricted(self, active_set):
        """The BIP over the full candidate vector with slot options
        filtered to *active_set* — equal to ``build_bip`` over the full
        candidate list when every candidate is active (pinned)."""
        queries = []
        for weight, sql, plans in self.query_specs:
            term = QueryTerm(weight=weight, plans=[], sql=sql)
            for internal, sids in plans:
                plan_term = PlanTerm(internal_cost=internal, slots=[])
                feasible = True
                for sid in sids:
                    default, options = self.slot_entries[sid]
                    opts = []
                    if default is not None:
                        opts.append((-1, default))
                    for pos, cost in options:
                        if pos in active_set:
                            opts.append((pos, cost))
                    if not opts:
                        feasible = False
                        break
                    plan_term.slots.append(SlotOptions(options=opts))
                if feasible:
                    term.plans.append(plan_term)
            if not term.plans:
                raise RuntimeError("no feasible cached plan for %r" % (sql,))
            queries.append(term)
        return BipProblem(
            candidates=self.candidates,
            sizes=self.sizes,
            budget_pages=self.budget_pages,
            queries=queries,
            max_indexes=self.max_indexes,
            write_base_cost=self.write_base_cost,
            index_penalties=(
                list(self.index_penalties)
                if any(self.index_penalties) else []
            ),
        )

    # -- reduced-benefit bound -----------------------------------------

    def _build_bound_groups(self):
        """Flatten every (candidate, query, plan, option-slot) pair into
        arrays grouped candidate → query → plan, so each round's bound
        is three reduceat passes (Σ over plan slots, max over plans,
        weighted Σ over queries)."""
        ent_pos, ent_q, ent_p, ent_sid, ent_cost = [], [], [], [], []
        qweights = []
        pid = 0
        for qid, (weight, __, plans) in enumerate(self.query_specs):
            qweights.append(weight)
            for internal, sids in plans:
                for sid in sids:
                    __, options = self.slot_entries[sid]
                    for pos, cost in options:
                        ent_pos.append(pos)
                        ent_q.append(qid)
                        ent_p.append(pid)
                        ent_sid.append(sid)
                        ent_cost.append(cost)
                pid += 1
        self._qweights = np.asarray(qweights, dtype=np.float64)
        self._penalty = np.asarray(self.index_penalties, dtype=np.float64)
        self.n_entries = len(ent_cost)
        if not self.n_entries:
            self._ent_sid = np.empty(0, dtype=np.intp)
            return
        ent_pos = np.asarray(ent_pos, dtype=np.intp)
        ent_q = np.asarray(ent_q, dtype=np.intp)
        ent_p = np.asarray(ent_p, dtype=np.intp)
        order = np.lexsort((ent_p, ent_q, ent_pos))
        ent_pos, ent_q, ent_p = ent_pos[order], ent_q[order], ent_p[order]
        self._ent_sid = np.asarray(ent_sid, dtype=np.intp)[order]
        self._ent_cost = np.asarray(ent_cost, dtype=np.float64)[order]
        key_pq = (ent_pos, ent_q, ent_p)
        plan_first = np.r_[
            True,
            (ent_pos[1:] != ent_pos[:-1])
            | (ent_q[1:] != ent_q[:-1])
            | (ent_p[1:] != ent_p[:-1]),
        ]
        self._plan_starts = np.nonzero(plan_first)[0]
        grp_pos = ent_pos[self._plan_starts]
        grp_q = ent_q[self._plan_starts]
        q_first = np.r_[
            True,
            (grp_pos[1:] != grp_pos[:-1]) | (grp_q[1:] != grp_q[:-1]),
        ]
        self._q_starts = np.nonzero(q_first)[0]
        self._qgrp_q = grp_q[self._q_starts]
        qg_pos = grp_pos[self._q_starts]
        c_first = np.r_[True, qg_pos[1:] != qg_pos[:-1]]
        self._c_starts = np.nonzero(c_first)[0]
        self._cgrp_pos = qg_pos[self._c_starts]

    def upper_bounds(self):
        """A sound upper bound on every candidate's total benefit at the
        current winner state (and at every future one — winners are
        anti-monotone in the chosen set).  Includes a relative + absolute
        safety margin so float rounding can never undercut a true
        benefit."""
        n = len(self.candidates)
        if not self.n_entries:
            ub = np.zeros(n, dtype=np.float64)
        else:
            imp = np.maximum(
                self.winner[self._ent_sid] - self._ent_cost, 0.0
            )
            plan_sums = np.add.reduceat(imp, self._plan_starts)
            q_max = np.maximum.reduceat(plan_sums, self._q_starts)
            contrib = q_max * self._qweights[self._qgrp_q]
            cand = np.add.reduceat(contrib, self._c_starts)
            ub = np.zeros(n, dtype=np.float64)
            ub[self._cgrp_pos] = cand
        if self._penalty.size:
            ub = ub - self._penalty
        return ub * (1.0 + 1e-9) + 1e-12

    def commit(self, pos):
        """Fold candidate *pos* into the winner state (chosen grew)."""
        for sid, cost in self.pos_slots[pos]:
            if cost < self.winner[sid]:
                self.winner[sid] = cost


def solve_colgen(inum_model, workload, candidates, budget_pages,
                 max_indexes=None, by_ratio=True):
    """Greedy CoPhy selection by column generation: identical design
    and objective to ``greedy_select(build_bip(model, workload,
    candidates, budget, max_indexes), by_ratio=by_ratio)``, activating
    only the candidates whose reduced-benefit bound ever threatens a
    round's incumbent."""
    candidates = list(candidates)
    n = len(candidates)
    with obs.tracer().span("cophy.solve_colgen", candidates=n):
        started = time.perf_counter()
        master = _Master(
            inum_model, workload, candidates, budget_pages, max_indexes
        )
        sizes = master.sizes
        budget = master.budget_pages

        active = []  # activation order (restricted options grow with it)
        active_set = set()
        pruned = np.zeros(n, dtype=bool)
        chosen = []
        chosen_set = set()
        used = 0.0
        problem = master.build_restricted(active_set)
        current_cost = problem.config_cost(chosen, sparse=True)
        base_cost = current_cost
        evaluations = 1
        rounds = 0
        waves = 0

        def activate(wave):
            for pos in wave:
                active.append(pos)
                active_set.add(pos)

        while len(chosen) < n:
            if max_indexes is not None and len(chosen) >= max_indexes:
                break
            rounds += 1
            ub = master.upper_bounds()
            pruned |= ub <= _BENEFIT_EPS
            round_costs = {}  # global pos -> cost of chosen + [pos]

            def price(positions):
                nonlocal evaluations
                if positions:
                    costs = problem.config_costs_delta(chosen, positions)
                    evaluations += len(positions)
                    round_costs.update(zip(positions, costs))

            price([
                pos for pos in sorted(active_set - chosen_set)
                if used + sizes[pos] <= budget
            ])

            while True:
                # Greedy's exact selection over the active feasible set:
                # ascending global positions, benefit threshold, strict
                # max (first best wins ties).
                best_pos = None
                best_score = 0.0
                best_cost = current_cost
                for pos in sorted(round_costs):
                    benefit = current_cost - round_costs[pos]
                    if benefit <= _BENEFIT_EPS:
                        continue
                    score = benefit / sizes[pos] if by_ratio else benefit
                    if score > best_score:
                        best_pos, best_score = pos, score
                        best_cost = round_costs[pos]
                # Inactive candidates whose bound could still beat (or
                # tie — ties resolve by position, so they must compete
                # for real) the incumbent.
                need = []
                for pos in np.nonzero(~pruned)[0].tolist():
                    if pos in active_set:
                        continue
                    if used + sizes[pos] > budget:
                        continue  # stays infeasible: used only grows
                    score = ub[pos] / sizes[pos] if by_ratio else ub[pos]
                    if best_pos is None or score >= best_score:
                        need.append((score, pos))
                if not need:
                    break
                need.sort(key=lambda item: (-item[0], item[1]))
                wave = [pos for __, pos in need[:_WAVE_SIZE]]
                activate(wave)
                waves += 1
                problem = master.build_restricted(active_set)
                price([
                    pos for pos in sorted(wave)
                    if used + sizes[pos] <= budget
                ])

            if best_pos is None:
                break
            chosen.append(best_pos)
            chosen_set.add(best_pos)
            used += sizes[best_pos]
            current_cost = best_cost
            master.commit(best_pos)

        registry = obs.metrics()
        registry.counter(
            "repro_colgen_rounds_total",
            "Column-generation greedy rounds",
        ).inc(rounds)
        registry.counter(
            "repro_colgen_activated_total",
            "Candidates activated into the restricted master",
        ).inc(len(active))
        registry.counter(
            "repro_colgen_priced_total",
            "Slot-candidate pairs priced by the candidate pricer",
        ).inc(master.pricer.pricings)
        return observed_solve(SolveResult(
            chosen_positions=tuple(chosen),
            objective=current_cost,
            status="heuristic",
            solver="colgen",
            solve_seconds=time.perf_counter() - started,
            nodes_explored=evaluations,
            n_variables=n,
            extra={
                "base_cost": base_cost,
                "rounds": rounds,
                "waves": waves,
                "activated": len(active),
                "n_candidates": n,
                "priced": master.pricer.pricings,
                "certificate": "no-inactive-candidate-improves",
            },
        ))
