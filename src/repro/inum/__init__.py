"""INUM: the cache-based cost model (paper §3.2.1, reference [9]).

INUM observes that the optimal plan for a query changes only when the
*interesting orders* delivered by the access paths change.  It therefore
invokes the real optimizer once per interesting-order vector, caches each
plan's **internal** cost (everything above the base-table accesses), and
prices a candidate configuration by re-costing only the access slots
analytically — no further optimizer calls.

The paper extends INUM to cache **table partitions and partial plans**;
here that falls out naturally: access slots are re-costed against the
configuration's catalog overlay, so vertical fragments and pruned
horizontal partitions are priced by the same analytic path generator.
"""

from repro.inum.cache import (
    AccessSlot,
    CachedPlan,
    InumCostModel,
    QueryCache,
    build_cache,
    extract_plan_terms,
)

__all__ = [
    "AccessSlot",
    "CachedPlan",
    "InumCostModel",
    "QueryCache",
    "build_cache",
    "extract_plan_terms",
]
