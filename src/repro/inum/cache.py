"""The INUM plan cache and configuration cost evaluator.

Build phase (once per query): enumerate interesting-order vectors —
one entry per table: unordered, or ordered by one join/grouping/ordering
column.  For each vector, plan the query against a catalog holding a
hypothetical covering index per ordered table, and split the resulting
cost into ``internal`` (joins, sorts, aggregation) plus per-table *access
slots*.

Evaluate phase (per configuration): for every cached plan, re-price each
slot with the cheapest matching access path available under the
configuration (sequential scan, a configuration index, or scan+sort to
restore a required order) and return the minimum over cached plans.
Evaluation issues **zero** optimizer calls.
"""

import itertools
import math
from dataclasses import dataclass, field

from repro.catalog import Index
from repro.optimizer import joins as J
from repro.optimizer import paths as P
from repro.optimizer.planner import plan_query
from repro.optimizer.settings import DEFAULT_SETTINGS, DISABLE_COST
from repro.optimizer.writecost import (
    heap_write_cost,
    locate_query,
    maintenance_cost,
)
from repro.sql.binder import BoundQuery, BoundWrite, bind_statement
from repro.util import workload_pairs
from repro.whatif import Configuration

MAX_ORDERS_PER_TABLE = 4
MAX_VECTORS_PER_QUERY = 32
_TMP_PREFIX = "inum_tmp_"


@dataclass(frozen=True)
class AccessSlot:
    """One base-table access in a cached plan skeleton.

    Every field is a primitive (strings, floats, a tuple of column
    names), which is what makes slots — and therefore whole cache
    entries — portable: :mod:`repro.evaluation.wire` serializes them
    verbatim, and re-pricing a slot needs only these fields plus the
    owning bound query.
    """

    alias: str
    table_name: str
    required_order: str = None  # column the skeleton expects order on
    param_columns: tuple = ()  # non-empty => index-probe slot
    probes: float = 1.0  # times the access runs (NL inner)
    scale: float = 1.0  # fraction consumed (LIMIT early termination)


@dataclass(frozen=True)
class CachedPlan:
    """One plan's *terms*: internal (access-independent) cost plus
    access slots — everything evaluation needs, with no reference to
    live :class:`~repro.optimizer.plan.Plan` nodes.  Plan trees are
    consumed once at build time (:func:`extract_plan_terms`) and kept
    only by the explain path; evaluation and the wire format see terms.
    """

    internal_cost: float
    slots: tuple
    order_vector: tuple  # ((alias, column-or-None), ...) for debugging

    @property
    def terms(self):
        """The ``(internal_cost, slots)`` pair evaluation consumes."""
        return self.internal_cost, self.slots


@dataclass
class QueryCache:
    """All cached plans for one query."""

    bound_query: BoundQuery
    plans: list = field(default_factory=list)
    build_optimizer_calls: int = 0
    _terms: tuple = field(default=None, repr=False, compare=False)

    @property
    def sql(self):
        return self.bound_query.sql

    def plan_terms(self):
        """Every plan reduced to ``(internal_cost, slots)`` terms.

        Memoized on first call — ``plans`` is immutable once the build
        returns, and this sits on the per-query per-configuration hot
        path, which must stay allocation-free."""
        if self._terms is None or len(self._terms) != len(self.plans):
            self._terms = tuple(cached.terms for cached in self.plans)
        return self._terms

    @classmethod
    def from_plan_terms(cls, bound_query, plans, build_optimizer_calls=0):
        """Rebuild a cache entry from plan terms (the wire-format path):
        no optimizer runs, the plans are installed as given."""
        return cls(
            bound_query=bound_query,
            plans=list(plans),
            build_optimizer_calls=build_optimizer_calls,
        )


def evaluate_terms(cache, price_slot):
    """The scalar reference walk over one entry's plan terms.

    ``price_slot(bound_query, slot)`` returns ``None`` for an
    infeasible slot or a ``(cost, payload)`` pair; the walk sums each
    plan's slot costs onto its internal cost (in slot order), skips
    infeasible plans, and returns ``(best_cost, payloads)`` where
    ``payloads`` are the winning plan's per-slot payloads in slot
    order.  Raises when no cached plan is feasible.

    This is the *single* scalar consumer of plan terms: plain
    evaluation (:meth:`InumCostModel._evaluate`) and usage-aware
    evaluation (:meth:`InumCostModel.cost_with_usage`) are both thin
    wrappers, and the columnar kernel
    (:mod:`repro.evaluation.kernel`) is pinned bit-identical to this
    walk — so the three consumers cannot drift.
    """
    bq = cache.bound_query
    best = math.inf
    best_payloads = ()
    for internal_cost, slots in cache.plan_terms():
        total = internal_cost
        payloads = []
        feasible = True
        for slot in slots:
            priced = price_slot(bq, slot)
            if priced is None:
                feasible = False
                break
            cost, payload = priced
            total += cost
            payloads.append(payload)
        if feasible and total < best:
            best = total
            best_payloads = tuple(payloads)
    if not math.isfinite(best):
        raise RuntimeError("INUM cache produced no feasible plan")
    return best, best_payloads


class InumCostModel:
    """Workload-level INUM: lazy per-query caches over one base catalog."""

    def __init__(self, catalog, settings=None):
        self.catalog = catalog
        self.settings = settings or DEFAULT_SETTINGS
        self._caches = {}
        self._bound_cache = {}
        # sql -> {(slot, per-table design sig) -> cost}; sharded by owning
        # query so evicting one cache drops its memo bucket in O(1).
        self._slot_costs = {}
        # Same shape for winning-access choices (the witness memo the
        # vectorized usage path prices through).
        self._slot_choices = {}
        self.evaluations = 0

    # ------------------------------------------------------------------

    @property
    def precompute_calls(self):
        return sum(c.build_optimizer_calls for c in self._caches.values())

    def bound(self, query):
        if isinstance(query, (BoundQuery, BoundWrite)):
            return query
        cached = self._bound_cache.get(query)
        if cached is None:
            cached = bind_statement(query, self.catalog)
            self._bound_cache[query] = cached
        return cached

    def cache_for(self, query):
        key = query if isinstance(query, str) else query.sql
        cache = self._caches.get(key)
        if cache is None:
            bq = self.bound(query)
            cache = build_cache(bq, self.catalog, self.settings)
            self._caches[key] = cache
            self._caches[bq.sql] = cache
        return cache

    # ------------------------------------------------------------------

    def cost(self, query, config=None):
        """INUM cost of *query* under *config* (no optimizer calls)."""
        config = config or Configuration.empty()
        view = _DesignView(self.catalog, config)
        bq = self.bound(query)
        self.evaluations += 1
        if isinstance(bq, BoundWrite):
            return self._write_cost(bq, view, config)
        return self._evaluate(self.cache_for(bq), view)

    def workload_cost(self, workload, config=None):
        config = config or Configuration.empty()
        view = _DesignView(self.catalog, config)
        total = 0.0
        for query, weight in workload_pairs(workload):
            bq = self.bound(query)
            self.evaluations += 1
            if isinstance(bq, BoundWrite):
                total += weight * self._write_cost(bq, view, config)
            else:
                total += weight * self._evaluate(self.cache_for(bq), view)
        return total

    def _write_cost(self, bound_write, view, config):
        """Write statements: analytic maintenance + INUM-priced locate."""
        total = heap_write_cost(bound_write, self.settings)
        total += maintenance_cost(
            bound_write,
            view.indexes_on(bound_write.table.name),
            self.settings,
        )
        if bound_write.kind in ("update", "delete"):
            locate = locate_query(bound_write)
            total += self._evaluate(self.cache_for(locate), view)
        return total

    def slot_cost(self, bq, slot, view, design_signature=None):
        """Memoized analytic access cost of *slot* under *view*.

        The memo is keyed by the owning query, the slot, and the
        per-table design signature, so it is shared across
        configurations, across evaluate calls, and (through the cached
        plan's bound query) across alias-renamed queries that share one
        cache entry.  ``design_signature`` may be passed to avoid
        recomputing it in batched loops.
        """
        if design_signature is None:
            design_signature = view.design_signature(slot.table_name)
        bucket = self._slot_costs.get(bq.sql)
        if bucket is None:
            bucket = self._slot_costs.setdefault(bq.sql, {})
        key = (slot, design_signature)
        if key not in bucket:
            bucket[key] = _access_cost(slot, bq, view, self.settings)
        return bucket[key]

    def slot_choice(self, bq, slot, view, design_signature=None):
        """Memoized winning access of *slot* under *view* — the witness
        twin of :meth:`slot_cost`: ``(cost, winner index tuple)``, or
        ``None`` for an infeasible slot.  Keyed and sharded exactly like
        the cost memo; it calls the same pure :func:`_access_cost` the
        serial usage walk calls, so memoized witnesses cannot drift from
        the reference.
        """
        if design_signature is None:
            design_signature = view.design_signature(slot.table_name)
        bucket = self._slot_choices.get(bq.sql)
        if bucket is None:
            bucket = self._slot_choices.setdefault(bq.sql, {})
        key = (slot, design_signature)
        if key not in bucket:
            bucket[key] = _access_cost(
                slot, bq, view, self.settings, want_choice=True
            )
        return bucket[key]

    def _evaluate(self, cache, view):
        """Price a cache entry under *view* from its plan terms alone.

        Consumes ``(internal_cost, slots)`` pairs — never live plan
        trees — so an entry deserialized from the wire format evaluates
        exactly like one built in-process.
        """

        def price(bq, slot):
            cost = self.slot_cost(bq, slot, view)
            return None if cost is None else (cost, None)

        best, __ = evaluate_terms(cache, price)
        return best

    # ------------------------------------------------------------------
    # Usage-aware evaluation (feeds the Index Benefit Graph).
    # ------------------------------------------------------------------

    def cost_with_usage(self, query, config=None):
        """Like :meth:`cost` but also returns the set of configuration
        indexes the winning cached plan's access slots would use.

        For writes, "used" means maintained: the configuration indexes
        whose presence changes the statement's cost.
        """
        config = config or Configuration.empty()
        view = _DesignView(self.catalog, config)
        maybe_write = self.bound(query)
        if isinstance(maybe_write, BoundWrite):
            cost = self._write_cost(maybe_write, view, config)
            self.evaluations += 1
            used = frozenset(
                ix for ix in config.indexes if maybe_write.touches_index(ix)
            )
            if maybe_write.kind in ("update", "delete"):
                __, locate_used = self.cost_with_usage(
                    locate_query(maybe_write), config
                )
                used |= locate_used
            return cost, used
        cache = self.cache_for(maybe_write)

        def price(bq, slot):
            return _access_cost(slot, bq, view, self.settings, want_choice=True)

        best, winner_lists = evaluate_terms(cache, price)
        best_used = frozenset(
            index
            for winners in winner_lists
            for index in winners
            if index in config.indexes
        )
        self.evaluations += 1
        return best, best_used

    def workload_cost_with_usage(self, workload, config=None):
        """Workload cost plus the union of used configuration indexes."""
        config = config or Configuration.empty()
        total = 0.0
        used = set()
        for query, weight in workload_pairs(workload):
            cost, q_used = self.cost_with_usage(query, config)
            total += weight * cost
            used |= q_used
        return total, frozenset(used)

    def warm(self, workload):
        """Precompute caches for every workload statement; returns the
        number of optimizer calls spent (INUM's one-off investment).
        Write statements warm the cache of their locate query."""
        before = self.precompute_calls
        for query, __ in workload_pairs(workload):
            bq = self.bound(query)
            if isinstance(bq, BoundWrite):
                if bq.kind in ("update", "delete"):
                    self.cache_for(locate_query(bq))
            else:
                self.cache_for(bq)
        return self.precompute_calls - before


# ----------------------------------------------------------------------
# Cache construction.
# ----------------------------------------------------------------------


def _interesting_orders(bq, alias):
    """Candidate order columns for one table reference."""
    orders = []
    for clause in bq.joins_for(alias):
        col, __, __ = clause.side_for(alias)
        if col not in orders:
            orders.append(col)
    for a, c in bq.group_by:
        if a == alias and c not in orders:
            orders.append(c)
            break
    for a, c, __ in bq.order_by:
        if a == alias and c not in orders:
            orders.append(c)
            break
    return [None] + orders[: MAX_ORDERS_PER_TABLE - 1]


def _order_vectors(bq):
    per_alias = [
        [(alias, order) for order in _interesting_orders(bq, alias)]
        for alias in bq.aliases
    ]
    vectors = list(itertools.product(*per_alias))
    # Prefer vectors with fewer ordered tables (they generalize best),
    # then truncate to the cap.
    vectors.sort(key=lambda v: sum(1 for __, o in v if o is not None))
    return vectors[:MAX_VECTORS_PER_QUERY]


def build_cache(bq, catalog, settings):
    """Build the INUM cache entry for one bound query: plan each
    interesting-order vector and reduce every plan tree to terms."""
    cache = QueryCache(bound_query=bq)
    seen = set()
    for vector in _order_vectors(bq):
        overlay = catalog.clone()
        for alias, order in vector:
            if order is None:
                continue
            table = bq.table_for(alias)
            include = tuple(
                sorted(bq.referenced_columns(alias) - {order})
            )
            overlay.add_index(
                Index(
                    table.name,
                    (order,),
                    include=include,
                    name="%s%s_%s" % (_TMP_PREFIX, alias, order),
                )
            )
        plan = plan_query(bq, overlay, settings)
        cache.build_optimizer_calls += 1
        cached = extract_plan_terms(plan, bq, dict(vector))
        key = (round(cached.internal_cost, 6), cached.slots)
        if key not in seen:
            seen.add(key)
            cache.plans.append(cached)
    return cache


# Backward-compatible alias (pre-wire-format name).
_build_cache = build_cache


def extract_plan_terms(plan, bq, order_by_alias):
    """Split a plan tree into terms: internal cost + access slots.

    This is the only place evaluation ever touches a live plan tree;
    everything downstream (``_evaluate``, the batch compiler, the wire
    format) works on the returned :class:`CachedPlan` terms."""
    contributions = {}  # alias -> (cost_contribution, slot)
    _walk_scans(plan, 1.0, 1.0, contributions, bq, order_by_alias)
    internal = plan.total_cost - sum(c for c, __ in contributions.values())
    internal = max(0.0, internal)
    slots = tuple(sorted((s for __, s in contributions.values()),
                         key=lambda s: s.alias))
    vector = tuple(sorted(order_by_alias.items()))
    return CachedPlan(internal_cost=internal, slots=slots, order_vector=vector)


_SCAN_TYPES = ("SeqScan", "IndexScan", "IndexOnlyScan", "BitmapHeapScan",
               "BitmapAndScan", "FragmentScan", "AppendScan")
_BLOCKING_TYPES = ("Sort", "Aggregate", "Materialize")


def _charged(node, scale):
    """Cost the skeleton actually paid for a scan under LIMIT scaling."""
    return node.startup_cost + scale * (node.total_cost - node.startup_cost)


def _walk_scans(node, factor, scale, contributions, bq, order_by_alias):
    """Collect scan contributions.

    ``factor`` multiplies per-probe costs of parameterized inner scans;
    ``scale`` is the consumed fraction induced by a pipelined LIMIT above
    (blocking operators reset it to 1 for their inputs).
    """
    if node.node_type in _SCAN_TYPES:
        alias = node.alias
        table = bq.table_for(alias)
        if node.is_parameterized:
            slot = AccessSlot(
                alias=alias,
                table_name=table.name,
                required_order=None,
                param_columns=tuple(getattr(node, "param_columns", ())),
                probes=factor,
                scale=scale,
            )
            contributions[alias] = (_charged(node, scale) * factor, slot)
        else:
            slot = AccessSlot(
                alias=alias,
                table_name=table.name,
                required_order=order_by_alias.get(alias),
                probes=1.0,
                scale=scale,
            )
            contributions[alias] = (_charged(node, scale), slot)
        return
    if node.node_type == "Limit":
        child = node.children[0]
        run = child.total_cost - child.startup_cost
        fraction = 1.0
        if run > 0:
            fraction = (node.total_cost - node.startup_cost) / run
        scale *= min(1.0, max(0.0, fraction))
        _walk_scans(child, factor, scale, contributions, bq, order_by_alias)
        return
    if node.node_type in _BLOCKING_TYPES:
        for child in node.children:
            _walk_scans(child, factor, 1.0, contributions, bq, order_by_alias)
        return
    if node.node_type == "HashJoin" and len(node.children) == 2:
        outer, inner = node.children
        _walk_scans(outer, factor, scale, contributions, bq, order_by_alias)
        # The build side is consumed in full regardless of LIMIT.
        _walk_scans(inner, factor, 1.0, contributions, bq, order_by_alias)
        return
    if node.node_type == "NestLoop" and len(node.children) == 2:
        outer, inner = node.children
        _walk_scans(outer, factor, scale, contributions, bq, order_by_alias)
        inner_factor = factor * max(1.0, outer.rows) if _is_param_subtree(inner) else factor
        _walk_scans(inner, inner_factor, scale, contributions, bq, order_by_alias)
        return
    for child in node.children:
        _walk_scans(child, factor, scale, contributions, bq, order_by_alias)


def _is_param_subtree(node):
    return any(n.is_parameterized for n in node.walk())


# ----------------------------------------------------------------------
# Configuration evaluation.
# ----------------------------------------------------------------------


class _DesignView:
    """A catalog facade overlaying a Configuration without cloning.

    Exposes exactly the surface the path generator touches, and a cheap
    per-table design signature used to memoize slot access costs.
    """

    def __init__(self, base, config):
        self._base = base
        self._config = config
        self._by_table = {}
        # Canonical order, not frozenset iteration order: path
        # enumeration order decides cost ties, so equal designs must
        # offer their indexes identically regardless of how (or in
        # which process) the configuration's frozenset was built.
        for ix in sorted(
            config.indexes, key=lambda i: (i.name, i.columns, i.include)
        ):
            self._by_table.setdefault(ix.table_name, []).append(ix)
        self._layouts = {l.table_name: l for l in config.layouts}
        self._horizontals = {h.table_name: h for h in config.horizontals}

    def table(self, name):
        return self._base.table(name)

    def indexes_on(self, table_name):
        merged = list(self._base.indexes_on(table_name))
        seen = set(merged)
        for ix in self._by_table.get(table_name, ()):
            if ix not in seen:
                merged.append(ix)
        return merged

    def vertical_layout(self, table_name):
        return self._layouts.get(table_name) or self._base.vertical_layout(table_name)

    def horizontal_partitioning(self, table_name):
        return self._horizontals.get(table_name) or self._base.horizontal_partitioning(
            table_name
        )

    def design_signature(self, table_name):
        return (
            frozenset(self._by_table.get(table_name, ())),
            self._layouts.get(table_name),
            self._horizontals.get(table_name),
        )


def _consumed(path, slot):
    # A pipelined LIMIT above the skeleton only consumes slot.scale of
    # the run cost; the startup (btree descent) is always paid.
    return path.startup_cost + slot.scale * (
        path.total_cost - path.startup_cost
    )


def _best_param_access(slot, candidates, want_choice=False):
    """Winner logic for a parameterized (nested-loop inner) slot over an
    already-assembled list of parameterized paths."""

    def answer(cost, path):
        return (cost, _path_indexes(path)) if want_choice else cost

    usable = [
        p for p in candidates
        if set(slot.param_columns) <= set(p.param_columns)
    ] or candidates
    if not usable:
        return None
    winner = min(usable, key=lambda p: _consumed(p, slot))
    return answer(_consumed(winner, slot) * slot.probes, winner)


def _best_scan_access(slot, raw_paths, settings, want_choice=False):
    """Winner logic for a scan slot over an already-assembled list of
    non-parameterized paths (pre DISABLE_COST filtering)."""

    def consumed(path):
        return _consumed(path, slot)

    def answer(cost, path):
        return (cost, _path_indexes(path)) if want_choice else cost

    paths = [p for p in raw_paths if p.total_cost < DISABLE_COST / 2]
    if not paths:
        return None
    if slot.required_order is None:
        winner = min(paths, key=consumed)
        return answer(consumed(winner), winner)
    # Btrees read backward at equal cost, so either direction on the
    # required column satisfies an order-expecting skeleton slot.
    keys = ((slot.alias, slot.required_order, True),)
    satisfying = [
        p for p in paths
        if p.ordering and p.ordering[0][:2] == (slot.alias, slot.required_order)
    ]
    winner = min(satisfying, key=consumed, default=None)
    best = consumed(winner) if winner is not None else math.inf
    if slot.scale < 1.0:
        # Under a pipelined LIMIT a sort would be blocking, so an explicit
        # sort cannot substitute for a missing ordered path here.
        if winner is None:
            return None
        return answer(best, winner)
    cheapest = min(paths, key=lambda p: p.total_cost)
    sorted_cost = J.sort_path(cheapest, keys, settings).total_cost
    if sorted_cost < best:
        return answer(sorted_cost, cheapest)
    return answer(best, winner)


def _access_cost(slot, bq, catalog, settings, want_choice=False):
    """Cheapest access path satisfying *slot* under *catalog*; None if the
    slot cannot be satisfied (e.g. probe slot with no usable index).

    With ``want_choice`` the return value is ``(cost, winner_indexes)``
    where the tuple lists the indexes backing the winning path (empty for
    sequential scans, two entries for a BitmapAnd).
    """
    if slot.param_columns:
        candidates = P.parameterized_paths(
            bq, slot.alias, catalog, settings, slot.param_columns
        )
        return _best_param_access(slot, candidates, want_choice=want_choice)

    interesting = {slot.required_order} if slot.required_order else set()
    raw = P.scan_paths(bq, slot.alias, catalog, settings, interesting)
    return _best_scan_access(slot, raw, settings, want_choice=want_choice)


def _path_indexes(path):
    """Indexes backing a path (tuple; empty for plain scans)."""
    if path is None:
        return ()
    single = getattr(path, "index", None)
    if single is not None:
        return (single,)
    return tuple(getattr(path, "indexes", ()) or ())

