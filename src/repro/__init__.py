"""repro — an automated, yet interactive and portable DB designer.

Reproduction of Alagiannis et al., SIGMOD 2010 (demo).  See DESIGN.md for
the system inventory and EXPERIMENTS.md for the reproduced evaluation.

Quickstart::

    from repro import Designer, sdss_catalog, sdss_workload

    catalog = sdss_catalog(scale=0.1)
    workload = sdss_workload(n_queries=20)
    designer = Designer(catalog)
    result = designer.recommend(workload, storage_budget_pages=5000)
    print(result.to_text())
"""

from repro.catalog import (
    Catalog,
    Column,
    DataType,
    Distribution,
    HorizontalPartitioning,
    Index,
    Table,
    VerticalFragment,
    VerticalLayout,
)
from repro.optimizer import CostService, PlannerSettings
from repro.whatif import Configuration, WhatIfSession
from repro.inum import InumCostModel
from repro.evaluation import (
    InumCachePool,
    ProcessPoolBackplane,
    ShardedInumCachePool,
    WorkloadEvaluator,
)
from repro.cophy import CoPhyAdvisor
from repro.autopart import AutoPartAdvisor
from repro.colt import ColtSettings, ColtTuner
from repro.interaction import InteractionAnalyzer
from repro.designer import Designer
from repro.runtime import ProcessStepExecutor, Scheduler, StepExecutor
from repro.service import TenantSession, TuningService
from repro.workloads import (
    Workload,
    drifting_stream,
    sdss_catalog,
    sdss_workload,
    tpch_catalog,
    tpch_workload,
)

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Column",
    "DataType",
    "Distribution",
    "HorizontalPartitioning",
    "Index",
    "Table",
    "VerticalFragment",
    "VerticalLayout",
    "CostService",
    "PlannerSettings",
    "Configuration",
    "WhatIfSession",
    "InumCostModel",
    "InumCachePool",
    "ProcessPoolBackplane",
    "ShardedInumCachePool",
    "WorkloadEvaluator",
    "CoPhyAdvisor",
    "AutoPartAdvisor",
    "ColtSettings",
    "ColtTuner",
    "InteractionAnalyzer",
    "Designer",
    "ProcessStepExecutor",
    "Scheduler",
    "StepExecutor",
    "TenantSession",
    "TuningService",
    "Workload",
    "drifting_stream",
    "sdss_catalog",
    "sdss_workload",
    "tpch_catalog",
    "tpch_workload",
]
