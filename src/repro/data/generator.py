"""Seeded row generators matching :class:`~repro.catalog.stats.Distribution`.

The ``correlation`` knob is honored by rank blending: row *i*'s value rank
is a convex combination of the storage position and an independent uniform
draw, which yields a Spearman correlation close to the requested value —
the same quantity ``ANALYZE`` measures and the index cost model consumes.
"""

import bisect
import math
import random
from dataclasses import dataclass, field

from repro.catalog.stats import analyze_values
from repro.util import DesignError


@dataclass
class TableData:
    """Materialized rows of one table, column-major."""

    name: str
    columns: dict  # column name -> list of values
    row_count: int

    def row(self, i):
        return {col: values[i] for col, values in self.columns.items()}

    def iter_rows(self):
        cols = list(self.columns)
        for i in range(self.row_count):
            yield {c: self.columns[c][i] for c in cols}

    def analyze_into(self, table):
        """Replace *table*'s statistics with ones measured from this data."""
        for col in table.columns:
            col.stats = analyze_values(
                self.columns[col.name], avg_width=col.width
            )
        return table


@dataclass
class Database:
    """A set of materialized tables plus ready-to-probe btree indexes."""

    tables: dict = field(default_factory=dict)  # name -> TableData
    _btrees: dict = field(default_factory=dict)

    def table(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise DesignError("no data for table %r" % (name,)) from None

    def btree(self, table_name, key_columns):
        """A sorted ``(encoded_keys, row_id, raw_keys)`` list for index
        probes (cached).  NULL key values are indexed — btrees store NULLs
        — using an encoding that sorts them after every non-NULL value
        (PostgreSQL's NULLS LAST default)."""
        key = (table_name, tuple(key_columns))
        cached = self._btrees.get(key)
        if cached is None:
            data = self.table(table_name)
            entries = []
            for i in range(data.row_count):
                raw = tuple(data.columns[c][i] for c in key_columns)
                entries.append((encode_key(raw), i, raw))
            entries.sort(key=lambda e: e[0])
            cached = entries
            self._btrees[key] = cached
        return cached

    def probe_equal(self, table_name, key_columns, values):
        """Row ids whose key prefix equals *values* (NULLs never match)."""
        if any(v is None for v in values):
            return []
        tree = self.btree(table_name, key_columns)
        prefix = encode_key(tuple(values))
        k = len(prefix)
        lo = bisect.bisect_left(tree, (prefix,))
        out = []
        for enc, rid, __ in tree[lo:]:
            if enc[:k] != prefix:
                break
            out.append(rid)
        return out


def encode_key(values):
    """Encode a key tuple so mixed None/values compare totally:
    non-NULL v -> (0, v), NULL -> (1,)."""
    return tuple((1,) if v is None else (0, v) for v in values)


def generate_table(table, seed=0):
    """Generate rows for *table* from its column distributions."""
    columns = {}
    for position, col in enumerate(table.columns):
        rng = random.Random("%s/%s/%s/%d" % (seed, table.name, col.name, position))
        columns[col.name] = _generate_column(
            col.distribution, table.row_count, rng
        )
    return TableData(name=table.name, columns=columns, row_count=table.row_count)


def generate_database(catalog, seed=0, only_tables=None):
    db = Database()
    for table in catalog.tables:
        if only_tables is not None and table.name not in only_tables:
            continue
        db.tables[table.name] = generate_table(table, seed=seed)
    return db


# ----------------------------------------------------------------------


def _generate_column(dist, n, rng):
    if dist is None:
        return [rng.randint(0, max(1, n // 10)) for __ in range(n)]
    if dist.kind == "sequence":
        return list(range(n))
    raw = _draw_iid(dist, n, rng)
    values = _apply_correlation(raw, dist.correlation, rng)
    if dist.null_frac > 0:
        values = [
            None if rng.random() < dist.null_frac else v for v in values
        ]
    return values


def _draw_iid(dist, n, rng):
    if dist.kind == "uniform":
        return [rng.uniform(dist.low, dist.high) for __ in range(n)]
    if dist.kind == "uniform_int":
        lo, hi = int(dist.low), int(dist.high)
        return [rng.randint(lo, hi) for __ in range(n)]
    if dist.kind == "normal":
        return [rng.gauss(dist.mu, dist.sigma) for __ in range(n)]
    if dist.kind == "zipf":
        return [_zipf_draw(dist, rng) for __ in range(n)]
    if dist.kind == "categorical":
        return rng.choices(list(dist.values), weights=list(dist.probs), k=n)
    raise DesignError("cannot generate %r" % (dist.kind,))


def _zipf_draw(dist, rng):
    n_values = max(1, dist.n_values or 1000)
    # Inverse-CDF sampling over the (small) discrete support.
    weights = [1.0 / (rank ** dist.s) for rank in range(1, n_values + 1)]
    total = sum(weights)
    u = rng.random() * total
    acc = 0.0
    for rank, w in enumerate(weights, start=1):
        acc += w
        if u <= acc:
            return rank
    return n_values


def _apply_correlation(values, correlation, rng):
    """Rearrange iid *values* to target a physical-order correlation."""
    if abs(correlation) < 1e-9 or len(values) < 2:
        return values
    n = len(values)
    ordered = sorted(values, key=_sort_key)
    if correlation < 0:
        ordered.reverse()
    strength = min(0.999, abs(correlation))
    # Target a Spearman correlation of `strength`: position has standard
    # deviation n/sqrt(12); adding rank noise of std sigma yields a
    # correlation of 1/sqrt(1 + (sigma/sigma_pos)^2), so invert for sigma.
    sigma_pos = n / math.sqrt(12.0)
    noise_scale = sigma_pos * math.sqrt(1.0 / (strength * strength) - 1.0)
    keyed = sorted(
        range(n), key=lambda i: i + rng.gauss(0.0, noise_scale)
    )
    out = [None] * n
    for target_pos, source_rank in enumerate(keyed):
        out[target_pos] = ordered[source_rank]
    return out


def _sort_key(v):
    return (v is None, v)
