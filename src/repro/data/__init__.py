"""Row generation: materialize tables that honor catalog distributions.

Used by the executor-backed tests to check that (a) plans are semantically
correct — every plan shape returns the same rows — and (b) the synthetic
statistics track reality closely enough for the cost model to be trusted.
"""

from repro.data.generator import (
    Database,
    TableData,
    encode_key,
    generate_database,
    generate_table,
)

__all__ = ["Database", "TableData", "encode_key", "generate_database", "generate_table"]
