"""Recursive-descent parser for the SQL subset.

Grammar (keywords case-insensitive)::

    query     := SELECT select_list FROM table_list [WHERE conjuncts]
                 [GROUP BY colrefs] [ORDER BY order_items] [LIMIT int]
    select_list := '*' | item (',' item)*
    item      := colref [AS ident] | agg '(' [DISTINCT] (colref | '*') ')' [AS ident]
    table_list := table_ref (',' table_ref)*
    table_ref := ident [[AS] ident]
    conjuncts := predicate (AND predicate)*
    predicate := colref cmp (literal | colref)
               | colref BETWEEN literal AND literal
               | colref [NOT] IN '(' literal (',' literal)* ')'
               | colref IS [NOT] NULL

``OR`` and ``NOT IN`` are rejected with a clear error — the designer's
workloads are conjunctive, matching the candidate-generation assumptions
in CoPhy and COLT.
"""

from repro.sql.astnodes import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    DeleteStatement,
    FuncCall,
    InPredicate,
    InsertStatement,
    IsNullPredicate,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
    UpdateStatement,
)
from repro.sql.lexer import Lexer
from repro.util import ParseError

AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})
_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})


def parse(sql):
    """Parse a SELECT statement into a :class:`~repro.sql.astnodes.Query`."""
    return _Parser(Lexer(sql).tokens()).parse_query()


def parse_statement(sql):
    """Parse any supported statement: SELECT, UPDATE, INSERT, DELETE."""
    parser = _Parser(Lexer(sql).tokens())
    head = parser._cur
    if head.kind != "keyword":
        raise ParseError("expected a statement keyword", head.position)
    if head.value == "select":
        return parser.parse_query()
    if head.value == "update":
        return parser.parse_update()
    if head.value == "insert":
        return parser.parse_insert()
    if head.value == "delete":
        return parser.parse_delete()
    raise ParseError("unsupported statement %r" % (head.value,), head.position)


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._idx = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _cur(self):
        return self._tokens[self._idx]

    def _advance(self):
        tok = self._cur
        if tok.kind != "eof":
            self._idx += 1
        return tok

    def _accept(self, kind, value=None):
        tok = self._cur
        if tok.kind != kind:
            return None
        if value is not None and tok.value != value:
            return None
        return self._advance()

    def _expect(self, kind, value=None, what=None):
        tok = self._accept(kind, value)
        if tok is None:
            wanted = what or (value if value is not None else kind)
            raise ParseError(
                "expected %s but found %r" % (wanted, self._cur.value), self._cur.position
            )
        return tok

    # -- grammar --------------------------------------------------------

    def parse_update(self):
        self._expect("keyword", "update")
        table = TableRef(self._expect("ident", what="table name").value)
        self._expect("keyword", "set")
        assignments = [self._parse_assignment()]
        while self._accept("punct", ","):
            assignments.append(self._parse_assignment())
        predicates = ()
        if self._accept("keyword", "where"):
            predicates = self._parse_conjuncts()
        self._expect("eof", what="end of statement")
        return UpdateStatement(
            table=table, assignments=tuple(assignments), predicates=predicates
        )

    def _parse_assignment(self):
        column = self._expect("ident", what="column name").value
        self._expect("op", "=")
        return column, self._parse_literal()

    def parse_insert(self):
        self._expect("keyword", "insert")
        self._expect("keyword", "into")
        table = TableRef(self._expect("ident", what="table name").value)
        self._expect("keyword", "values")
        n_rows = 0
        while True:
            self._expect("punct", "(")
            self._parse_literal()
            while self._accept("punct", ","):
                self._parse_literal()
            self._expect("punct", ")")
            n_rows += 1
            if not self._accept("punct", ","):
                break
        self._expect("eof", what="end of statement")
        return InsertStatement(table=table, n_rows=n_rows)

    def parse_delete(self):
        self._expect("keyword", "delete")
        self._expect("keyword", "from")
        table = TableRef(self._expect("ident", what="table name").value)
        predicates = ()
        if self._accept("keyword", "where"):
            predicates = self._parse_conjuncts()
        self._expect("eof", what="end of statement")
        return DeleteStatement(table=table, predicates=predicates)

    def parse_query(self):
        self._expect("keyword", "select")
        select_items = self._parse_select_list()
        self._expect("keyword", "from")
        tables = self._parse_table_list()
        predicates = ()
        if self._accept("keyword", "where"):
            predicates = self._parse_conjuncts()
        group_by = ()
        order_by = ()
        limit = None
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = self._parse_column_list()
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by = self._parse_order_items()
        if self._accept("keyword", "limit"):
            tok = self._expect("number", what="integer LIMIT")
            if not isinstance(tok.value, int) or tok.value < 0:
                raise ParseError("LIMIT must be a non-negative integer", tok.position)
            limit = tok.value
        self._expect("eof", what="end of query")
        return Query(
            select_items=select_items,
            tables=tables,
            predicates=predicates,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self):
        if self._accept("punct", "*"):
            return (SelectItem(Star()),)
        items = [self._parse_select_item()]
        while self._accept("punct", ","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self):
        tok = self._cur
        if tok.kind == "ident" and tok.value in AGGREGATES and self._peek_punct("("):
            expr = self._parse_aggregate()
        else:
            expr = self._parse_column_ref()
        alias = ""
        if self._accept("keyword", "as"):
            alias = self._expect("ident", what="alias").value
        elif self._cur.kind == "ident" and not self._peek_punct("."):
            # bare alias: "SELECT a.x foo" — accept the common shorthand
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _peek_punct(self, punct):
        nxt = self._tokens[self._idx + 1] if self._idx + 1 < len(self._tokens) else None
        return nxt is not None and nxt.kind == "punct" and nxt.value == punct

    def _parse_aggregate(self):
        name = self._expect("ident").value
        self._expect("punct", "(")
        distinct = bool(self._accept("keyword", "distinct"))
        if self._accept("punct", "*"):
            if name != "count":
                raise ParseError("only COUNT accepts *", self._cur.position)
            arg = Star()
        else:
            arg = self._parse_column_ref()
        self._expect("punct", ")")
        return FuncCall(name, arg, distinct)

    def _parse_table_list(self):
        tables = [self._parse_table_ref()]
        while self._accept("punct", ","):
            tables.append(self._parse_table_ref())
        return tuple(tables)

    def _parse_table_ref(self):
        name = self._expect("ident", what="table name").value
        alias = ""
        if self._accept("keyword", "as"):
            alias = self._expect("ident", what="table alias").value
        elif self._cur.kind == "ident":
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_conjuncts(self):
        predicates = [self._parse_predicate()]
        while True:
            if self._accept("keyword", "and"):
                predicates.append(self._parse_predicate())
            elif self._cur.kind == "keyword" and self._cur.value == "or":
                raise ParseError(
                    "OR is not supported (conjunctive WHERE only)", self._cur.position
                )
            else:
                return tuple(predicates)

    def _parse_predicate(self):
        column = self._parse_column_ref()
        if self._accept("keyword", "between"):
            low = self._parse_literal()
            self._expect("keyword", "and")
            high = self._parse_literal()
            return BetweenPredicate(column, low, high)
        if self._accept("keyword", "in"):
            self._expect("punct", "(")
            values = [self._parse_literal().value]
            while self._accept("punct", ","):
                values.append(self._parse_literal().value)
            self._expect("punct", ")")
            return InPredicate(column, tuple(values))
        if self._accept("keyword", "is"):
            negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return IsNullPredicate(column, negated)
        op_tok = self._cur
        if op_tok.kind != "op" or op_tok.value not in _COMPARISON_OPS:
            raise ParseError(
                "expected comparison operator, found %r" % (op_tok.value,),
                op_tok.position,
            )
        self._advance()
        op = "<>" if op_tok.value == "!=" else op_tok.value
        cur = self._cur
        is_literal = (
            cur.kind in ("number", "string")
            or (cur.kind == "keyword" and cur.value == "null")
            or (cur.kind == "punct" and cur.value in "+-")
        )
        right = self._parse_literal() if is_literal else self._parse_column_ref()
        return Comparison(column, op, right)

    def _parse_literal(self):
        if self._accept("punct", "-"):
            tok = self._expect("number", what="number after unary minus")
            return Literal(-tok.value)
        self._accept("punct", "+")
        tok = self._cur
        if tok.kind in ("number", "string"):
            self._advance()
            return Literal(tok.value)
        if tok.kind == "keyword" and tok.value == "null":
            self._advance()
            return Literal(None)
        raise ParseError("expected a literal, found %r" % (tok.value,), tok.position)

    def _parse_column_ref(self):
        first = self._expect("ident", what="column reference").value
        if self._accept("punct", "."):
            second = self._expect("ident", what="column name").value
            return ColumnRef(first, second)
        return ColumnRef("", first)

    def _parse_column_list(self):
        cols = [self._parse_column_ref()]
        while self._accept("punct", ","):
            cols.append(self._parse_column_ref())
        return tuple(cols)

    def _parse_order_items(self):
        items = []
        while True:
            col = self._parse_column_ref()
            ascending = True
            if self._accept("keyword", "desc"):
                ascending = False
            else:
                self._accept("keyword", "asc")
            items.append(OrderItem(col, ascending))
            if not self._accept("punct", ","):
                return tuple(items)
