"""SQL frontend: lexer, parser, AST, and binder for the designer's dialect.

The dialect covers what the SDSS-style and TPC-H-style workloads need:
``SELECT`` lists with aggregates, multi-table ``FROM``, conjunctive
``WHERE`` clauses (comparisons, BETWEEN, IN, IS NULL, equality joins),
``GROUP BY``, ``ORDER BY`` and ``LIMIT``.
"""

from repro.sql.astnodes import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    FuncCall,
    InPredicate,
    IsNullPredicate,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Lexer, Token
from repro.sql.parser import parse, parse_statement
from repro.sql.binder import (
    BoundFilter,
    BoundJoin,
    BoundQuery,
    BoundWrite,
    bind,
    bind_sql,
    bind_statement,
)

__all__ = [
    "BetweenPredicate",
    "ColumnRef",
    "Comparison",
    "FuncCall",
    "InPredicate",
    "IsNullPredicate",
    "Literal",
    "Query",
    "SelectItem",
    "Star",
    "TableRef",
    "Lexer",
    "Token",
    "parse",
    "parse_statement",
    "BoundFilter",
    "BoundJoin",
    "BoundQuery",
    "BoundWrite",
    "bind",
    "bind_sql",
    "bind_statement",
]
