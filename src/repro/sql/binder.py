"""Semantic analysis: resolve a parsed query against a catalog.

The binder produces the normalized form every designer component consumes:

* per-table *filters* (sargable conjuncts, with BETWEEN and comparison
  chains normalized into ranges),
* equality *joins* between table aliases,
* the referenced-column sets that drive index-only-scan and vertical-
  fragment reasoning.
"""

from dataclasses import dataclass, field

from repro.sql.astnodes import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    DeleteStatement,
    FuncCall,
    InPredicate,
    InsertStatement,
    IsNullPredicate,
    Star,
    UpdateStatement,
)
from repro.sql.parser import parse, parse_statement
from repro.util import BindError


@dataclass(frozen=True)
class BoundFilter:
    """One sargable single-table conjunct.

    ``kind`` is ``eq``, ``ne``, ``range``, ``in``, ``isnull`` or
    ``notnull``.  Range filters carry ``low``/``high`` bounds (either may be
    None) with inclusivity flags.
    """

    alias: str
    table_name: str
    column: str
    kind: str
    value: object = None
    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    values: tuple = ()

    @property
    def is_equality(self):
        return self.kind == "eq"

    @property
    def is_range(self):
        return self.kind == "range"

    @property
    def sargable(self):
        """Usable as an index boundary condition (eq, range, in)."""
        return self.kind in ("eq", "range", "in")

    def describe(self):
        col = "%s.%s" % (self.alias, self.column)
        if self.kind == "eq":
            return "%s = %r" % (col, self.value)
        if self.kind == "ne":
            return "%s <> %r" % (col, self.value)
        if self.kind == "in":
            return "%s IN %r" % (col, tuple(self.values))
        if self.kind == "isnull":
            return "%s IS NULL" % col
        if self.kind == "notnull":
            return "%s IS NOT NULL" % col
        parts = []
        if self.low is not None:
            parts.append("%s %s %r" % (col, ">=" if self.low_inclusive else ">", self.low))
        if self.high is not None:
            parts.append("%s %s %r" % (col, "<=" if self.high_inclusive else "<", self.high))
        return " AND ".join(parts) if parts else "%s: true" % col


@dataclass(frozen=True)
class BoundJoin:
    """Equality join predicate ``left.column = right.column``."""

    left_alias: str
    left_table: str
    left_column: str
    right_alias: str
    right_table: str
    right_column: str

    def side_for(self, alias):
        """Return ``(column, other_alias, other_column)`` seen from *alias*."""
        if alias == self.left_alias:
            return self.left_column, self.right_alias, self.right_column
        if alias == self.right_alias:
            return self.right_column, self.left_alias, self.left_column
        raise BindError("join does not involve alias %r" % (alias,))

    def involves(self, alias):
        return alias in (self.left_alias, self.right_alias)

    def describe(self):
        return "%s.%s = %s.%s" % (
            self.left_alias,
            self.left_column,
            self.right_alias,
            self.right_column,
        )


@dataclass
class BoundQuery:
    """A fully resolved query, ready for the optimizer."""

    query: object
    tables: dict  # alias -> Table (insertion-ordered)
    filters: dict  # alias -> tuple[BoundFilter]
    joins: tuple
    select_columns: tuple  # ((alias, column), ...)
    aggregates: tuple  # (FuncCall with bound arg aliases, ...)
    group_by: tuple  # ((alias, column), ...)
    order_by: tuple  # ((alias, column, ascending), ...)
    limit: int = None
    has_star: bool = False
    _referenced: dict = field(default=None, repr=False)
    _sql: str = field(default=None, repr=False)

    @property
    def sql(self):
        if self._sql is None:
            self._sql = self.query.unparse()
        return self._sql

    @property
    def is_write(self):
        return False

    @property
    def aliases(self):
        return list(self.tables)

    @property
    def is_aggregate(self):
        return bool(self.aggregates)

    def table_for(self, alias):
        try:
            return self.tables[alias]
        except KeyError:
            raise BindError("unknown alias %r" % (alias,)) from None

    def filters_for(self, alias):
        return self.filters.get(alias, ())

    def joins_for(self, alias):
        return tuple(j for j in self.joins if j.involves(alias))

    def referenced_columns(self, alias):
        """Columns of *alias* the query touches (select, filters, joins,
        grouping, ordering).  Star queries reference every column."""
        if self._referenced is None:
            self._compute_referenced()
        return self._referenced[alias]

    def _compute_referenced(self):
        refs = {alias: set() for alias in self.tables}
        if self.has_star:
            for alias, table in self.tables.items():
                refs[alias].update(table.column_names)
        for alias, column in self.select_columns:
            refs[alias].add(column)
        for agg in self.aggregates:
            if isinstance(agg.arg, ColumnRef) and agg.arg.table:
                refs[agg.arg.table].add(agg.arg.column)
        for alias, flist in self.filters.items():
            for f in flist:
                refs[alias].add(f.column)
        for join in self.joins:
            refs[join.left_alias].add(join.left_column)
            refs[join.right_alias].add(join.right_column)
        for alias, column in self.group_by:
            refs[alias].add(column)
        for alias, column, __ in self.order_by:
            refs[alias].add(column)
        self._referenced = refs


@dataclass
class BoundWrite:
    """A resolved write statement (UPDATE / INSERT / DELETE).

    Writes matter to the designer because every index on the target table
    must be maintained: they are the *cost* side of index selection.
    """

    kind: str  # "update" | "insert" | "delete"
    table: object  # the Table
    filters: tuple = ()  # locate predicates (update/delete)
    set_columns: tuple = ()  # columns assigned (update)
    n_rows: int = 1  # rows inserted (insert)
    _sql: str = field(default=None, repr=False)

    @property
    def sql(self):
        return self._sql

    @property
    def is_write(self):
        return True

    def touches_index(self, index):
        """Whether maintaining *index* is required by this write."""
        if index.table_name != self.table.name:
            return False
        if self.kind == "update":
            return bool(set(index.all_columns) & set(self.set_columns))
        return True  # inserts and deletes touch every index on the table


def bind_sql(sql, catalog):
    """Parse and bind a SELECT in one step."""
    return bind(parse(sql), catalog)


def bind_statement(sql, catalog):
    """Parse and bind any statement: returns BoundQuery or BoundWrite."""
    node = parse_statement(sql)
    if isinstance(node, UpdateStatement):
        table = catalog.table(node.table.name)
        alias = node.table.effective_alias
        resolver = _Resolver({alias: table})
        set_columns = []
        for column, __ in node.assignments:
            if not table.has_column(column):
                raise BindError(
                    "no column %r in table %r" % (column, table.name)
                )
            set_columns.append(column)
        filters = []
        for pred in node.predicates:
            bound = _bind_predicate(pred, resolver)
            if isinstance(bound, BoundJoin):
                raise BindError("joins are not allowed in UPDATE")
            filters.append(bound)
        return BoundWrite(
            kind="update",
            table=table,
            filters=_merge_ranges(filters, alias),
            set_columns=tuple(set_columns),
            _sql=node.unparse(),
        )
    if isinstance(node, InsertStatement):
        table = catalog.table(node.table.name)
        return BoundWrite(
            kind="insert", table=table, n_rows=node.n_rows, _sql=node.unparse()
        )
    if isinstance(node, DeleteStatement):
        table = catalog.table(node.table.name)
        alias = node.table.effective_alias
        resolver = _Resolver({alias: table})
        filters = []
        for pred in node.predicates:
            bound = _bind_predicate(pred, resolver)
            if isinstance(bound, BoundJoin):
                raise BindError("joins are not allowed in DELETE")
            filters.append(bound)
        return BoundWrite(
            kind="delete",
            table=table,
            filters=_merge_ranges(filters, alias),
            _sql=node.unparse(),
        )
    return bind(node, catalog)


def bind(query, catalog):
    """Resolve *query* against *catalog*, returning a :class:`BoundQuery`."""
    tables = {}
    for tref in query.tables:
        alias = tref.effective_alias
        if alias in tables:
            raise BindError("duplicate table alias %r" % (alias,))
        tables[alias] = catalog.table(tref.name)

    resolver = _Resolver(tables)

    filters = {alias: [] for alias in tables}
    joins = []
    for pred in query.predicates:
        bound = _bind_predicate(pred, resolver)
        if isinstance(bound, BoundJoin):
            joins.append(bound)
        else:
            filters[bound.alias].append(bound)

    select_columns = []
    aggregates = []
    has_star = False
    for item in query.select_items:
        expr = item.expr
        if isinstance(expr, Star):
            has_star = True
        elif isinstance(expr, FuncCall):
            arg = expr.arg
            if isinstance(arg, ColumnRef):
                alias, column = resolver.resolve(arg)
                arg = ColumnRef(alias, column)
            aggregates.append(FuncCall(expr.name, arg, expr.distinct))
        elif isinstance(expr, ColumnRef):
            select_columns.append(resolver.resolve(expr))
        else:
            raise BindError("unsupported select expression %r" % (expr,))

    group_by = tuple(resolver.resolve(c) for c in query.group_by)
    if aggregates and select_columns:
        plain = set(select_columns) - set(group_by)
        if plain:
            raise BindError(
                "non-aggregated columns %s must appear in GROUP BY" % sorted(plain)
            )

    order_by = tuple(
        resolver.resolve(o.column) + (o.ascending,) for o in query.order_by
    )

    normalized = {
        alias: _merge_ranges(flist, alias) for alias, flist in filters.items()
    }
    return BoundQuery(
        query=query,
        tables=tables,
        filters=normalized,
        joins=tuple(joins),
        select_columns=tuple(select_columns),
        aggregates=tuple(aggregates),
        group_by=group_by,
        order_by=order_by,
        limit=query.limit,
        has_star=has_star,
    )


class _Resolver:
    def __init__(self, tables):
        self._tables = tables

    def resolve(self, colref):
        """Resolve a ColumnRef to ``(alias, column)``."""
        if colref.table:
            if colref.table not in self._tables:
                raise BindError("unknown table alias %r" % (colref.table,))
            table = self._tables[colref.table]
            if not table.has_column(colref.column):
                raise BindError(
                    "no column %r in %s (alias %r)"
                    % (colref.column, table.name, colref.table)
                )
            return colref.table, colref.column
        hits = [
            alias
            for alias, table in self._tables.items()
            if table.has_column(colref.column)
        ]
        if not hits:
            raise BindError("unknown column %r" % (colref.column,))
        if len(hits) > 1:
            raise BindError(
                "ambiguous column %r (in aliases %s)" % (colref.column, hits)
            )
        return hits[0], colref.column

    def table(self, alias):
        return self._tables[alias]


_RANGE_OPS = {"<": ("high", False), "<=": ("high", True), ">": ("low", False), ">=": ("low", True)}


def _bind_predicate(pred, resolver):
    if isinstance(pred, Comparison):
        left_alias, left_col = resolver.resolve(pred.left)
        left_table = resolver.table(left_alias)
        if isinstance(pred.right, ColumnRef):
            right_alias, right_col = resolver.resolve(pred.right)
            if right_alias == left_alias:
                raise BindError(
                    "column-to-column predicates within one table are not supported"
                )
            if pred.op != "=":
                raise BindError("only equality joins are supported, got %r" % (pred.op,))
            right_table = resolver.table(right_alias)
            return BoundJoin(
                left_alias, left_table.name, left_col,
                right_alias, right_table.name, right_col,
            )
        value = pred.right.value
        if value is None:
            raise BindError("comparisons with NULL are never true; use IS NULL")
        if pred.op == "=":
            return BoundFilter(left_alias, left_table.name, left_col, "eq", value=value)
        if pred.op == "<>":
            return BoundFilter(left_alias, left_table.name, left_col, "ne", value=value)
        side, inclusive = _RANGE_OPS[pred.op]
        kwargs = {"low": None, "high": None}
        kwargs[side] = value
        return BoundFilter(
            left_alias, left_table.name, left_col, "range",
            low=kwargs["low"], high=kwargs["high"],
            low_inclusive=inclusive if side == "low" else True,
            high_inclusive=inclusive if side == "high" else True,
        )
    if isinstance(pred, BetweenPredicate):
        alias, col = resolver.resolve(pred.column)
        table = resolver.table(alias)
        low, high = pred.low.value, pred.high.value
        return BoundFilter(alias, table.name, col, "range", low=low, high=high)
    if isinstance(pred, InPredicate):
        alias, col = resolver.resolve(pred.column)
        table = resolver.table(alias)
        if not pred.values:
            raise BindError("empty IN list")
        return BoundFilter(alias, table.name, col, "in", values=tuple(pred.values))
    if isinstance(pred, IsNullPredicate):
        alias, col = resolver.resolve(pred.column)
        table = resolver.table(alias)
        kind = "notnull" if pred.negated else "isnull"
        return BoundFilter(alias, table.name, col, kind)
    raise BindError("unsupported predicate %r" % (pred,))


def _merge_ranges(filters, alias):
    """Combine multiple range conjuncts on the same column into one filter,
    e.g. ``x > 5 AND x <= 9`` becomes a single [5, 9] range."""
    merged = {}
    out = []
    for f in filters:
        if f.kind != "range":
            out.append(f)
            continue
        key = f.column
        if key not in merged:
            merged[key] = f
            continue
        prev = merged[key]
        low, low_inc = prev.low, prev.low_inclusive
        high, high_inc = prev.high, prev.high_inclusive
        if f.low is not None and (low is None or f.low > low):
            low, low_inc = f.low, f.low_inclusive
        if f.high is not None and (high is None or f.high < high):
            high, high_inc = f.high, f.high_inclusive
        merged[key] = BoundFilter(
            prev.alias, prev.table_name, prev.column, "range",
            low=low, high=high, low_inclusive=low_inc, high_inclusive=high_inc,
        )
    # preserve original relative order: ranges appear at first occurrence
    seen = set()
    result = []
    for f in filters:
        if f.kind == "range":
            if f.column not in seen:
                seen.add(f.column)
                result.append(merged[f.column])
        else:
            result.append(f)
    return tuple(result)
