"""AST node types produced by the parser.

Nodes are frozen dataclasses with an :meth:`unparse` that round-trips to
SQL text — used by the query-rewriting component (AutoPart rewrites queries
onto fragment tables and the reports show the rewritten text).
"""

from dataclasses import dataclass


def _format_literal(value):
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    if isinstance(value, float) and value.is_integer():
        return "%.1f" % value
    return repr(value)


@dataclass(frozen=True)
class ColumnRef:
    """Possibly-qualified column reference (``table`` may be an alias)."""

    table: str
    column: str

    def unparse(self):
        return "%s.%s" % (self.table, self.column) if self.table else self.column


@dataclass(frozen=True)
class Literal:
    value: object

    def unparse(self):
        return _format_literal(self.value)


@dataclass(frozen=True)
class Star:
    def unparse(self):
        return "*"


@dataclass(frozen=True)
class FuncCall:
    """Aggregate call: COUNT/SUM/AVG/MIN/MAX over a column or ``*``."""

    name: str
    arg: object  # ColumnRef or Star
    distinct: bool = False

    def unparse(self):
        inner = ("DISTINCT " if self.distinct else "") + self.arg.unparse()
        return "%s(%s)" % (self.name.upper(), inner)


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: str = ""

    def unparse(self):
        text = self.expr.unparse()
        return "%s AS %s" % (text, self.alias) if self.alias else text


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str = ""

    @property
    def effective_alias(self):
        return self.alias or self.name

    def unparse(self):
        return "%s %s" % (self.name, self.alias) if self.alias else self.name


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where left is a ColumnRef and right is a Literal or
    another ColumnRef (the latter expresses a join predicate)."""

    left: ColumnRef
    op: str
    right: object

    def unparse(self):
        return "%s %s %s" % (self.left.unparse(), self.op, self.right.unparse())


@dataclass(frozen=True)
class BetweenPredicate:
    column: ColumnRef
    low: Literal
    high: Literal

    def unparse(self):
        return "%s BETWEEN %s AND %s" % (
            self.column.unparse(),
            self.low.unparse(),
            self.high.unparse(),
        )


@dataclass(frozen=True)
class InPredicate:
    column: ColumnRef
    values: tuple

    def unparse(self):
        return "%s IN (%s)" % (
            self.column.unparse(),
            ", ".join(_format_literal(v) for v in self.values),
        )


@dataclass(frozen=True)
class IsNullPredicate:
    column: ColumnRef
    negated: bool = False

    def unparse(self):
        return "%s IS %sNULL" % (self.column.unparse(), "NOT " if self.negated else "")


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    ascending: bool = True

    def unparse(self):
        return self.column.unparse() + ("" if self.ascending else " DESC")


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET col = lit [, ...] [WHERE conjuncts]``."""

    table: TableRef
    assignments: tuple  # ((column_name, Literal), ...)
    predicates: tuple = ()

    def unparse(self):
        text = "UPDATE %s SET %s" % (
            self.table.unparse(),
            ", ".join("%s = %s" % (c, v.unparse()) for c, v in self.assignments),
        )
        if self.predicates:
            text += " WHERE " + " AND ".join(p.unparse() for p in self.predicates)
        return text


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table VALUES (...), (...)`` — only the row count and
    target matter to the designer."""

    table: TableRef
    n_rows: int = 1

    def unparse(self):
        return "INSERT INTO %s VALUES %s" % (
            self.table.unparse(),
            ", ".join("(...)" for __ in range(self.n_rows)),
        )


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table [WHERE conjuncts]``."""

    table: TableRef
    predicates: tuple = ()

    def unparse(self):
        text = "DELETE FROM %s" % self.table.unparse()
        if self.predicates:
            text += " WHERE " + " AND ".join(p.unparse() for p in self.predicates)
        return text


@dataclass(frozen=True)
class Query:
    """A parsed SELECT statement (conjunctive WHERE only)."""

    select_items: tuple
    tables: tuple
    predicates: tuple = ()
    group_by: tuple = ()
    order_by: tuple = ()
    limit: int = None

    def unparse(self):
        parts = [
            "SELECT " + ", ".join(item.unparse() for item in self.select_items),
            "FROM " + ", ".join(t.unparse() for t in self.tables),
        ]
        if self.predicates:
            parts.append("WHERE " + " AND ".join(p.unparse() for p in self.predicates))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(c.unparse() for c in self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.unparse() for o in self.order_by))
        if self.limit is not None:
            parts.append("LIMIT %d" % self.limit)
        return " ".join(parts)
