"""Hand-written lexer for the SQL subset."""

from dataclasses import dataclass

from repro.util import ParseError

KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "or",
        "not",
        "group",
        "order",
        "by",
        "asc",
        "desc",
        "limit",
        "as",
        "between",
        "in",
        "is",
        "null",
        "distinct",
        "update",
        "set",
        "insert",
        "into",
        "values",
        "delete",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),.*+-"


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is ``keyword``, ``ident``, ``number``,
    ``string``, ``op``, ``punct`` or ``eof``."""

    kind: str
    value: object
    position: int


class Lexer:
    """Tokenizes an SQL string; iterate or call :meth:`tokens`."""

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def tokens(self):
        out = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind == "eof":
                return out

    def _next_token(self):
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.text):
            return Token("eof", None, self.pos)
        ch = self.text[self.pos]
        start = self.pos
        if ch.isalpha() or ch == "_":
            return self._lex_word(start)
        if ch.isdigit() or (ch == "." and self._peek_is_digit(1)):
            return self._lex_number(start)
        if ch == "'":
            return self._lex_string(start)
        for op in _OPERATORS:
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                return Token("op", op, start)
        if ch in _PUNCT:
            self.pos += 1
            return Token("punct", ch, start)
        raise ParseError("unexpected character %r" % (ch,), start)

    def _skip_whitespace_and_comments(self):
        text = self.text
        while self.pos < len(text):
            if text[self.pos].isspace():
                self.pos += 1
            elif text.startswith("--", self.pos):
                end = text.find("\n", self.pos)
                self.pos = len(text) if end < 0 else end + 1
            else:
                return

    def _peek_is_digit(self, offset):
        idx = self.pos + offset
        return idx < len(self.text) and self.text[idx].isdigit()

    def _lex_word(self, start):
        text = self.text
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self.pos += 1
        word = text[start:self.pos]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token("keyword", lowered, start)
        return Token("ident", lowered, start)

    def _lex_number(self, start):
        text = self.text
        seen_dot = False
        seen_exp = False
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self.pos += 1
            elif ch in "eE" and not seen_exp and self.pos > start:
                seen_exp = True
                self.pos += 1
                if self.pos < len(text) and text[self.pos] in "+-":
                    self.pos += 1
            else:
                break
        raw = text[start:self.pos]
        try:
            value = float(raw) if (seen_dot or seen_exp) else int(raw)
        except ValueError:
            raise ParseError("malformed number %r" % (raw,), start) from None
        return Token("number", value, start)

    def _lex_string(self, start):
        text = self.text
        self.pos += 1  # opening quote
        chunks = []
        while self.pos < len(text):
            ch = text[self.pos]
            if ch == "'":
                if text.startswith("''", self.pos):  # escaped quote
                    chunks.append("'")
                    self.pos += 2
                    continue
                self.pos += 1
                return Token("string", "".join(chunks), start)
            chunks.append(ch)
            self.pos += 1
        raise ParseError("unterminated string literal", start)
