"""The batched workload-evaluation subsystem: one costing backplane.

Every designer component (what-if session, CoPhy, AutoPart, COLT, the
interaction analyzer) obtains configuration costs through a
:class:`WorkloadEvaluator` instead of building private caches:

* :mod:`repro.evaluation.signature` — canonical, alias-invariant query
  signatures, the pool's cache keys;
* :mod:`repro.evaluation.pool` — the shared, LRU-bounded INUM cache pool
  with exact hit/miss/eviction/optimizer-call statistics and per-entry
  build single-flight;
* :mod:`repro.evaluation.sharded` — the same pool surface partitioned
  across N independently locked shards, for multi-tenant traffic;
* :mod:`repro.evaluation.evaluator` — the evaluator itself: batched
  (vectorized, optionally multi-threaded) configuration pricing, a
  concurrent cache warm-up, plus the exact per-configuration
  :class:`~repro.optimizer.CostService` cache.
"""

from repro.evaluation.evaluator import BatchEvaluation, WorkloadEvaluator
from repro.evaluation.pool import InumCachePool, PoolStats
from repro.evaluation.sharded import ShardedInumCachePool
from repro.evaluation.signature import query_signature, statement_key

__all__ = [
    "BatchEvaluation",
    "WorkloadEvaluator",
    "InumCachePool",
    "PoolStats",
    "ShardedInumCachePool",
    "query_signature",
    "statement_key",
]
