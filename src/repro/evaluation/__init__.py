"""The batched workload-evaluation subsystem: one costing backplane.

Every designer component (what-if session, CoPhy, AutoPart, COLT, the
interaction analyzer) obtains configuration costs through a
:class:`WorkloadEvaluator` instead of building private caches:

* :mod:`repro.evaluation.signature` — canonical, alias-invariant query
  signatures, the pool's cache keys;
* :mod:`repro.evaluation.pool` — the shared, LRU-bounded INUM cache pool
  with exact hit/miss/eviction/optimizer-call statistics and per-entry
  build single-flight;
* :mod:`repro.evaluation.sharded` — the same pool surface partitioned
  across N independently locked shards, for multi-tenant traffic;
* :mod:`repro.evaluation.evaluator` — the evaluator itself: batched
  (vectorized, optionally multi-threaded) configuration pricing, a
  concurrent cache warm-up, plus the exact per-configuration
  :class:`~repro.optimizer.CostService` cache;
* :mod:`repro.evaluation.kernel` — the columnar plan-term kernel:
  cache entries compiled to flat cost/slot arrays, whole workload ×
  configuration grids priced as numpy reductions (bit-identical to the
  scalar walks), plus CoPhy's BIP pricing surface in the same form;
  both support delta (seminaïve) evaluation off a captured parent
  state and argmin-witness extraction for usage-aware batches;
* :mod:`repro.evaluation.wire` — the versioned, JSON-compatible wire
  format for signatures, cache entries reduced to plan terms, and
  tenant/service snapshots (what makes the backplane portable);
  kernels are rebuilt from plan terms on load, never encoded;
* :mod:`repro.evaluation.process` — the process-pool backplane: cache
  builds and batch pricing fanned across ``multiprocessing`` workers
  exchanging wire entries instead of shared memory.
"""

from repro.evaluation.evaluator import BatchEvaluation, WorkloadEvaluator
from repro.evaluation.kernel import (
    BipDeltaState,
    BipKernel,
    StatementKernel,
    WorkloadDeltaState,
    WorkloadKernel,
    compile_statement,
)
from repro.evaluation.pool import InumCachePool, PoolStats
from repro.evaluation.process import ProcessPoolBackplane
from repro.evaluation.sharded import ShardedInumCachePool
from repro.evaluation.signature import query_signature, statement_key

__all__ = [
    "BatchEvaluation",
    "WorkloadEvaluator",
    "BipDeltaState",
    "BipKernel",
    "StatementKernel",
    "WorkloadDeltaState",
    "WorkloadKernel",
    "compile_statement",
    "InumCachePool",
    "PoolStats",
    "ProcessPoolBackplane",
    "ShardedInumCachePool",
    "query_signature",
    "statement_key",
]
