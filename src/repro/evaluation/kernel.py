"""The columnar plan-term kernel: the costing hot path as array passes.

INUM makes what-if costing cheap by *precomputing* plan terms; until
this module the backplane still *consumed* those terms with scalar
Python loops — per plan, per slot, per configuration — so batch pricing
paid interpreter overhead proportional to the whole workload ×
configuration grid.  The kernel compiles the terms once into flat
numpy arrays and prices the grid as vectorized reductions:

* :class:`StatementKernel` — one cache entry's plan terms in columnar
  form: a flat ``internal`` cost vector (one entry per cached plan) and
  a padded ``slot_idx`` matrix mapping every plan to its (deduplicated)
  access slots, in slot order;

* :class:`WorkloadKernel` — many statement kernels fused over one
  global slot table, evaluated by :meth:`~WorkloadKernel.evaluate_many`:
  a ``configurations × slots`` access-cost matrix is filled per distinct
  per-table design (the slot → (table, design) cost columns are
  memoized), then every statement's grid prices as
  ``internal + Σ slot columns`` followed by a min over plans;

* :class:`BipKernel` — CoPhy's pricing surface
  (:meth:`~repro.cophy.bip.BipProblem.config_costs`) in the same form:
  per-slot *min over applicable accesses* (default access plus the
  chosen candidate indexes), per-plan sums, per-query mins, computed
  for a whole batch of candidate sets at once.

Results are **bit-identical** to the scalar reference walks
(:func:`repro.inum.cache.evaluate_terms`,
:meth:`~repro.cophy.bip.BipProblem.config_costs_scalar`), not merely
close: every floating-point accumulation runs in exactly the scalar
order — plan costs accumulate slot by slot via gathered element-wise
adds (never a reassociating matmul), infeasible slots price as ``+inf``
(absorbing, like the scalar early-break), and minima are
order-independent.  ``tests/test_kernel.py`` pins the equality with
exact max/min witnesses over fuzzed catalogs, configurations, and
weights.

Compiled kernels are *derived* state: the
:class:`~repro.evaluation.pool.InumCachePool` owns their lifetime
(compiled on demand, dropped with the entry they derive from) and the
wire format rebuilds them from plan terms on load — they never cross
the wire themselves.
"""

import numpy as np

__all__ = [
    "StatementKernel",
    "WorkloadKernel",
    "BipKernel",
    "compile_statement",
]

# Safety valve for long-lived workload kernels sweeping ever-fresh
# designs: past this many memoized (table, design) cost columns the memo
# is dropped and rebuilt on demand (each rebuild is a handful of
# already-memoized slot-cost lookups, so the reset is cheap).
_MAX_DESIGN_COLUMNS = 4096


class StatementKernel:
    """One cache entry's plan terms as flat arrays.

    ``slots`` lists the entry's distinct access slots (first-appearance
    order); ``internal`` is the per-plan internal cost vector; and
    ``slot_idx[p, k]`` is the local id of plan ``p``'s ``k``-th slot in
    *plan order*, padded with the sentinel id ``len(slots)`` (which
    always prices as 0.0).  Keeping plan order — rather than, say, a
    plan × slot membership matrix — is what makes the evaluation
    bit-identical to the scalar walk: costs accumulate in exactly the
    order ``internal + slot₀ + slot₁ + …``.
    """

    __slots__ = ("bound_query", "slots", "internal", "slot_idx", "tables")

    def __init__(self, bound_query, slots, internal, slot_idx):
        self.bound_query = bound_query
        self.slots = slots
        self.internal = internal
        self.slot_idx = slot_idx
        self.tables = tuple(sorted({slot.table_name for slot in slots}))

    @property
    def n_plans(self):
        return self.internal.shape[0]

    @property
    def n_slots(self):
        return len(self.slots)


def compile_statement(cache):
    """Compile one :class:`~repro.inum.cache.QueryCache` to a
    :class:`StatementKernel`.  Pure function of the entry's plan terms;
    the pool memoizes the result per resident entry
    (:meth:`~repro.evaluation.pool.InumCachePool.kernel_for`)."""
    internal = []
    slots = []
    slot_ids = {}
    rows = []
    for internal_cost, plan_slots in cache.plan_terms():
        internal.append(internal_cost)
        ids = []
        for slot in plan_slots:
            sid = slot_ids.get(slot)
            if sid is None:
                sid = len(slots)
                slot_ids[slot] = sid
                slots.append(slot)
            ids.append(sid)
        rows.append(ids)
    width = max((len(row) for row in rows), default=0)
    sentinel = len(slots)
    slot_idx = np.full((len(rows), width), sentinel, dtype=np.intp)
    for p, ids in enumerate(rows):
        slot_idx[p, : len(ids)] = ids
    return StatementKernel(
        bound_query=cache.bound_query,
        slots=tuple(slots),
        internal=np.asarray(internal, dtype=np.float64),
        slot_idx=slot_idx,
    )


class WorkloadKernel:
    """Distinct statement kernels fused over one global slot table.

    The global access-cost matrix has one column per distinct
    ``(statement, slot)`` pair (two alias-renamed duplicates share one
    statement kernel and therefore one column block) plus a sentinel
    column 0 that always prices 0.0 — the padding target for plans with
    fewer slots than the widest plan.

    All statements' plans are flattened into *one* global plan arena at
    :meth:`seal` time, so an evaluate call is a fixed handful of array
    operations — one gathered add per slot position, one grouped min —
    regardless of how many statements the workload holds.
    """

    def __init__(self):
        self.kernels = []  # StatementKernel per distinct read statement
        self.slots = []  # global: (slot, bound_query)
        self.slot_tables = []  # table name per global slot
        self.table_columns = {}  # table -> np.intp matrix-column array
        self._read_by_sql = {}
        self._plan_rows = []  # per plan: global matrix columns, plan order
        self._plan_internal = []
        self._read_starts = []  # first plan index of each read statement
        self._columns = {}  # (table, design signature) -> cost column
        # Filled by seal():
        self.plan_internal = None  # np [n_plans_total]
        self.plan_idx = None  # np.intp [n_plans_total, max slots per plan]
        self.read_starts = None  # np.intp [n_reads]

    @property
    def tables(self):
        """Tables whose design any slot depends on (sorted)."""
        return tuple(sorted(self.table_columns))

    @property
    def n_reads(self):
        return len(self.kernels)

    def add_statement(self, kernel):
        """Register *kernel* (deduplicated by its bound query's SQL);
        returns the read index its cost row lives at."""
        sql = kernel.bound_query.sql
        read = self._read_by_sql.get(sql)
        if read is not None:
            return read
        base = len(self.slots)
        for slot in kernel.slots:
            self.slots.append((slot, kernel.bound_query))
            self.slot_tables.append(slot.table_name)
        # Matrix columns are 1-based (column 0 is the sentinel); the
        # local sentinel id len(slots) maps to global column 0.
        gmap = [base + 1 + j for j in range(kernel.n_slots)] + [0]
        read = len(self.kernels)
        self.kernels.append(kernel)
        self._read_starts.append(len(self._plan_internal))
        self._plan_internal.extend(kernel.internal.tolist())
        for row in kernel.slot_idx:
            self._plan_rows.append([gmap[local] for local in row])
        self._read_by_sql[sql] = read
        return read

    def seal(self):
        """Freeze the per-table column arrays and the global plan arena
        (call once, after the last :meth:`add_statement`)."""
        grouped = {}
        for j, table in enumerate(self.slot_tables):
            grouped.setdefault(table, []).append(j + 1)
        self.table_columns = {
            table: np.asarray(cols, dtype=np.intp)
            for table, cols in grouped.items()
        }
        width = max((len(row) for row in self._plan_rows), default=0)
        self.plan_idx = np.zeros(
            (len(self._plan_rows), width), dtype=np.intp
        )
        for p, row in enumerate(self._plan_rows):
            self.plan_idx[p, : len(row)] = row
        self.plan_internal = np.asarray(self._plan_internal, dtype=np.float64)
        self.read_starts = np.asarray(self._read_starts, dtype=np.intp)

    # ------------------------------------------------------------------

    def _design_column(self, table, signature, view, slot_cost):
        """Access costs of *table*'s slots under one per-table design —
        the kernel's slot → (table, candidate-access) cost column,
        memoized across configurations and across evaluate calls."""
        column = self._columns.get((table, signature))
        if column is None:
            values = []
            for g in self.table_columns[table]:
                slot, bq = self.slots[g - 1]
                cost = slot_cost(bq, slot, view, signature)
                values.append(np.inf if cost is None else cost)
            column = np.asarray(values, dtype=np.float64)
            if len(self._columns) >= _MAX_DESIGN_COLUMNS:
                self._columns.clear()
            self._columns[(table, signature)] = column
        return column

    def evaluate_many(self, views, table_sigs, slot_cost):
        """Price every read statement under every configuration.

        ``views`` are the per-configuration
        :class:`~repro.inum.cache._DesignView` facades, ``table_sigs``
        the per-configuration ``{table: design signature}`` dicts, and
        ``slot_cost(bq, slot, view, signature)`` the (memoized) scalar
        slot pricer — ``None`` meaning infeasible.  Returns an array of
        shape ``(n_reads, n_configurations)``.

        Work scales with *distinct designs*, not configurations: each
        table's designs are factorized across the batch, one cost
        column is resolved per distinct design, and the full matrix is
        a gather.  Statement pricing is then pure array arithmetic in
        scalar accumulation order.
        """
        n_configs = len(views)
        matrix = np.zeros((n_configs, len(self.slots) + 1), dtype=np.float64)
        for table, cols in self.table_columns.items():
            distinct = {}
            representatives = []
            inverse = np.empty(n_configs, dtype=np.intp)
            for c in range(n_configs):
                signature = table_sigs[c][table]
                u = distinct.get(signature)
                if u is None:
                    u = len(distinct)
                    distinct[signature] = u
                    representatives.append(c)
                inverse[c] = u
            block = np.empty((len(distinct), len(cols)), dtype=np.float64)
            for signature, u in distinct.items():
                block[u] = self._design_column(
                    table, signature, views[representatives[u]], slot_cost
                )
            matrix[:, cols] = block[inverse]

        if not self.kernels:
            return np.empty((0, n_configs), dtype=np.float64)
        acc = np.broadcast_to(
            self.plan_internal, (n_configs, self.plan_internal.shape[0])
        ).copy()
        for k in range(self.plan_idx.shape[1]):
            acc += matrix[:, self.plan_idx[:, k]]
        # Min over each statement's plan group: infeasible plans price
        # +inf (absorbed, like the scalar early-break); a statement with
        # no feasible plan at all surfaces as +inf and raises, exactly
        # like the scalar walk.
        best = np.minimum.reduceat(acc, self.read_starts, axis=1)
        if not np.isfinite(best).all():
            raise RuntimeError("INUM cache produced no feasible plan")
        return best.T.copy()


class BipKernel:
    """CoPhy's BIP pricing surface in columnar form.

    Compiled once per (immutable) :class:`~repro.cophy.bip.BipProblem`;
    :meth:`evaluate` prices a whole batch of candidate-position sets —
    the greedy frontier sweep, solver incumbents, base-cost probes —
    with per-slot minima over applicable accesses computed as one
    masked grouped reduction.
    """

    def __init__(self, problem):
        opt_cost = []
        opt_col = []  # candidate position, or n_candidates for default
        slot_starts = []
        plan_internal = []
        plan_rows = []  # per plan: global slot ids in slot order
        plan_starts = []
        weights = []
        n = problem.n_candidates
        for term in problem.queries:
            plan_starts.append(len(plan_internal))
            weights.append(term.weight)
            for plan in term.plans:
                plan_internal.append(plan.internal_cost)
                ids = []
                for slot in plan.slots:
                    sid = len(slot_starts)
                    slot_starts.append(len(opt_cost))
                    for pos, cost in slot.options:
                        opt_col.append(n if pos == -1 else pos)
                        opt_cost.append(cost)
                    ids.append(sid)
                plan_rows.append(ids)
        width = max((len(row) for row in plan_rows), default=0)
        sentinel = len(slot_starts)
        gidx = np.full((len(plan_rows), width), sentinel, dtype=np.intp)
        for p, ids in enumerate(plan_rows):
            gidx[p, : len(ids)] = ids
        self.n_candidates = n
        self.weights = weights
        self.write_base_cost = problem.write_base_cost
        self.index_penalties = problem.index_penalties
        self.opt_cost = np.asarray(opt_cost, dtype=np.float64)
        self.opt_col = np.asarray(opt_col, dtype=np.intp)
        self.slot_starts = np.asarray(slot_starts, dtype=np.intp)
        self.n_slots = len(slot_starts)
        self.plan_internal = np.asarray(plan_internal, dtype=np.float64)
        self.plan_idx = gidx
        self.plan_starts = np.asarray(plan_starts, dtype=np.intp)

    def evaluate(self, batch):
        """Objective values for *batch* (iterables of chosen candidate
        positions); equals the scalar
        :meth:`~repro.cophy.bip.BipProblem.config_costs_scalar` exactly
        — including the base/penalty accumulation, which runs through
        the very same Python expressions."""
        batch = [list(chosen) for chosen in batch]
        n_batch = len(batch)
        if not n_batch:
            return []
        chosen_cols = np.zeros(
            (n_batch, self.n_candidates + 1), dtype=bool
        )
        chosen_cols[:, self.n_candidates] = True  # the default access
        penalties = np.empty(n_batch, dtype=np.float64)
        for b, chosen_positions in enumerate(batch):
            chosen = set(chosen_positions)
            for pos in chosen:
                chosen_cols[b, pos] = True
            # Scalar-identical base: same expression, same set iteration.
            total = self.write_base_cost
            if self.index_penalties:
                total += sum(self.index_penalties[pos] for pos in chosen)
            penalties[b] = total

        if self.n_slots:
            masked = np.where(
                chosen_cols[:, self.opt_col], self.opt_cost, np.inf
            )
            winners = np.minimum.reduceat(masked, self.slot_starts, axis=1)
            winners = np.concatenate(
                [winners, np.zeros((n_batch, 1))], axis=1
            )
        else:
            winners = np.zeros((n_batch, 1), dtype=np.float64)

        acc = np.broadcast_to(
            self.plan_internal, (n_batch, self.plan_internal.shape[0])
        ).copy()
        for k in range(self.plan_idx.shape[1]):
            acc += winners[:, self.plan_idx[:, k]]
        if self.plan_starts.size:
            best = np.minimum.reduceat(acc, self.plan_starts, axis=1)
            if not np.isfinite(best).all():
                raise RuntimeError("BIP has an infeasible query term")
            totals = penalties
            for q in range(self.plan_starts.size):
                totals += self.weights[q] * best[:, q]
        else:
            totals = penalties
        return totals.tolist()
