"""The columnar plan-term kernel: the costing hot path as array passes.

INUM makes what-if costing cheap by *precomputing* plan terms; until
this module the backplane still *consumed* those terms with scalar
Python loops — per plan, per slot, per configuration — so batch pricing
paid interpreter overhead proportional to the whole workload ×
configuration grid.  The kernel compiles the terms once into flat
numpy arrays and prices the grid as vectorized reductions:

* :class:`StatementKernel` — one cache entry's plan terms in columnar
  form: a flat ``internal`` cost vector (one entry per cached plan) and
  a padded ``slot_idx`` matrix mapping every plan to its (deduplicated)
  access slots, in slot order;

* :class:`WorkloadKernel` — many statement kernels fused over one
  global slot table, evaluated by :meth:`~WorkloadKernel.evaluate_many`:
  a ``configurations × slots`` access-cost matrix is filled per distinct
  per-table design (the slot → (table, design) cost columns are
  memoized), then every statement's grid prices as
  ``internal + Σ slot columns`` followed by a min over plans;

* :class:`BipKernel` — CoPhy's pricing surface
  (:meth:`~repro.cophy.bip.BipProblem.config_costs`) in the same form:
  per-slot *min over applicable accesses* (default access plus the
  chosen candidate indexes), per-plan sums, per-query mins, computed
  for a whole batch of candidate sets at once.

Both workload and BIP kernels additionally support **delta
evaluation** — the seminaïve mode greedy/COLT/IBG chain sweeps price
through.  Those loops evaluate long chains of *near-identical*
configurations (``chosen + {one index}``); a full grid pass re-resolves
every slot and re-minimizes every statement anyway.  Delta mode
captures the parent configuration's resolved state once
(:class:`WorkloadDeltaState` / :class:`BipDeltaState`: slot cost row,
per-plan accumulations, per-statement minima) and prices each child by
re-resolving only the slots on *touched* tables and re-minimizing only
the statements whose plans reference them — O(delta) instead of
O(grid), with untouched statements answered straight from the parent
state.  The **argmin-with-witness** mode recovers, from the very same
reductions, the winning plan per statement and the winning access per
slot (payload columns memoized per (table, design) like the cost
columns), which is what turns
:meth:`~repro.evaluation.WorkloadEvaluator.workload_cost_with_usage_batch`
— the IBG frontier oracle — from a per-configuration serial walk into
one vectorized pass.

Results are **bit-identical** to the scalar reference walks
(:func:`repro.inum.cache.evaluate_terms`,
:meth:`~repro.cophy.bip.BipProblem.config_costs_scalar`), not merely
close: every floating-point accumulation runs in exactly the scalar
order — plan costs accumulate slot by slot via gathered element-wise
adds (never a reassociating matmul), infeasible slots price as ``+inf``
(absorbing, like the scalar early-break), and minima are
order-independent.  ``tests/test_kernel.py`` pins the equality with
exact max/min witnesses over fuzzed catalogs, configurations, and
weights.

Compiled kernels are *derived* state: the
:class:`~repro.evaluation.pool.InumCachePool` owns their lifetime
(compiled on demand, dropped with the entry they derive from) and the
wire format rebuilds them from plan terms on load — they never cross
the wire themselves.
"""

import numpy as np

__all__ = [
    "StatementKernel",
    "WorkloadKernel",
    "WorkloadDeltaState",
    "BipKernel",
    "BipDeltaState",
    "compile_statement",
]

# Safety valve for long-lived workload kernels sweeping ever-fresh
# designs: past this many memoized (table, design) cost columns the memo
# is dropped and rebuilt on demand (each rebuild is a handful of
# already-memoized slot-cost lookups, so the reset is cheap).
_MAX_DESIGN_COLUMNS = 4096

# Parent states a workload kernel keeps around for delta pricing; greedy
# and IBG sweeps revisit at most a couple of parents at a time.
_MAX_DELTA_STATES = 8

# Distinct changed-table sets whose touched read/plan groupings are
# memoized (greedy extensions cycle through the same few sets).
_MAX_TOUCH_GROUPS = 256

# The design signature every table carries under the empty configuration
# (no config indexes, no layout, no partitioning) — the shared base
# design that sparse evaluation resolves untouched tables through.
BASE_SIGNATURE = (frozenset(), None, None)


class StatementKernel:
    """One cache entry's plan terms as flat arrays.

    ``slots`` lists the entry's distinct access slots (first-appearance
    order); ``internal`` is the per-plan internal cost vector; and
    ``slot_idx[p, k]`` is the local id of plan ``p``'s ``k``-th slot in
    *plan order*, padded with the sentinel id ``len(slots)`` (which
    always prices as 0.0).  Keeping plan order — rather than, say, a
    plan × slot membership matrix — is what makes the evaluation
    bit-identical to the scalar walk: costs accumulate in exactly the
    order ``internal + slot₀ + slot₁ + …``.
    """

    __slots__ = ("bound_query", "slots", "internal", "slot_idx", "tables")

    def __init__(self, bound_query, slots, internal, slot_idx):
        self.bound_query = bound_query
        self.slots = slots
        self.internal = internal
        self.slot_idx = slot_idx
        self.tables = tuple(sorted({slot.table_name for slot in slots}))

    @property
    def n_plans(self):
        return self.internal.shape[0]

    @property
    def n_slots(self):
        return len(self.slots)


def compile_statement(cache):
    """Compile one :class:`~repro.inum.cache.QueryCache` to a
    :class:`StatementKernel`.  Pure function of the entry's plan terms;
    the pool memoizes the result per resident entry
    (:meth:`~repro.evaluation.pool.InumCachePool.kernel_for`)."""
    internal = []
    slots = []
    slot_ids = {}
    rows = []
    for internal_cost, plan_slots in cache.plan_terms():
        internal.append(internal_cost)
        ids = []
        for slot in plan_slots:
            sid = slot_ids.get(slot)
            if sid is None:
                sid = len(slots)
                slot_ids[slot] = sid
                slots.append(slot)
            ids.append(sid)
        rows.append(ids)
    width = max((len(row) for row in rows), default=0)
    sentinel = len(slots)
    slot_idx = np.full((len(rows), width), sentinel, dtype=np.intp)
    for p, ids in enumerate(rows):
        slot_idx[p, : len(ids)] = ids
    return StatementKernel(
        bound_query=cache.bound_query,
        slots=tuple(slots),
        internal=np.asarray(internal, dtype=np.float64),
        slot_idx=slot_idx,
    )


class WorkloadDeltaState:
    """One parent configuration's fully-resolved grid state.

    Captured once per parent by :meth:`WorkloadKernel.delta_state`:
    the resolved slot cost row, the per-read minima, and the winning
    plan per read (the argmin witness).  ``used`` caches each read's
    raw witness index set lazily — children that leave a read's tables
    untouched inherit both its minimum and its witness verbatim.

    The state is derived data owned by the kernel it was captured from;
    it dies with the kernel (and therefore with the pool entries the
    kernel compiles from — eviction drops delta state transitively).
    """

    __slots__ = ("table_sigs", "view", "row", "best", "argmin", "used")

    def __init__(self, table_sigs, view, row, best, argmin):
        self.table_sigs = table_sigs
        self.view = view
        self.row = row
        self.best = best
        self.argmin = argmin
        self.used = [None] * best.shape[0]


class WorkloadKernel:
    """Distinct statement kernels fused over one global slot table.

    The global access-cost matrix has one column per distinct
    ``(statement, slot)`` pair (two alias-renamed duplicates share one
    statement kernel and therefore one column block) plus a sentinel
    column 0 that always prices 0.0 — the padding target for plans with
    fewer slots than the widest plan.

    All statements' plans are flattened into *one* global plan arena at
    :meth:`seal` time, so an evaluate call is a fixed handful of array
    operations — one gathered add per slot position, one grouped min —
    regardless of how many statements the workload holds.
    """

    def __init__(self):
        self.kernels = []  # StatementKernel per distinct read statement
        self.slots = []  # global: (slot, bound_query)
        self.slot_tables = []  # table name per global slot
        self.table_columns = {}  # table -> np.intp matrix-column array
        self._read_by_sql = {}
        self._plan_rows = []  # per plan: global matrix columns, plan order
        self._plan_internal = []
        self._read_starts = []  # first plan index of each read statement
        self._columns = {}  # (table, design signature) -> cost column
        self._payloads = {}  # (table, design signature) -> payload column
        self._delta_states = {}  # sorted table-sig items -> delta state
        self._touch_groups = {}  # changed-table frozenset -> groupings
        self._sparse_groups = {}  # changed-table frozenset -> _SparseGroup
        # Monotonic work counters for the sparse path (read by the
        # evaluator's observability hooks): slot cells actually
        # materialized vs. what a dense pass would have resolved.
        self.sparse_cells = 0
        self.dense_equiv_cells = 0
        # Filled by seal():
        self.plan_internal = None  # np [n_plans_total]
        self.plan_idx = None  # np.intp [n_plans_total, max slots per plan]
        self.read_starts = None  # np.intp [n_reads]
        self.read_ends = None  # np.intp [n_reads]
        self._table_reads = {}  # table -> tuple of read indexes
        self._col_pos = None  # global column -> offset in its table block

    @property
    def tables(self):
        """Tables whose design any slot depends on (sorted)."""
        return tuple(sorted(self.table_columns))

    @property
    def n_reads(self):
        return len(self.kernels)

    def add_statement(self, kernel):
        """Register *kernel* (deduplicated by its bound query's SQL);
        returns the read index its cost row lives at."""
        sql = kernel.bound_query.sql
        read = self._read_by_sql.get(sql)
        if read is not None:
            return read
        base = len(self.slots)
        for slot in kernel.slots:
            self.slots.append((slot, kernel.bound_query))
            self.slot_tables.append(slot.table_name)
        # Matrix columns are 1-based (column 0 is the sentinel); the
        # local sentinel id len(slots) maps to global column 0.
        gmap = [base + 1 + j for j in range(kernel.n_slots)] + [0]
        read = len(self.kernels)
        self.kernels.append(kernel)
        self._read_starts.append(len(self._plan_internal))
        self._plan_internal.extend(kernel.internal.tolist())
        for row in kernel.slot_idx:
            self._plan_rows.append([gmap[local] for local in row])
        self._read_by_sql[sql] = read
        return read

    def seal(self):
        """Freeze the per-table column arrays and the global plan arena
        (call once, after the last :meth:`add_statement`)."""
        grouped = {}
        for j, table in enumerate(self.slot_tables):
            grouped.setdefault(table, []).append(j + 1)
        self.table_columns = {
            table: np.asarray(cols, dtype=np.intp)
            for table, cols in grouped.items()
        }
        width = max((len(row) for row in self._plan_rows), default=0)
        self.plan_idx = np.zeros(
            (len(self._plan_rows), width), dtype=np.intp
        )
        for p, row in enumerate(self._plan_rows):
            self.plan_idx[p, : len(row)] = row
        self.plan_internal = np.asarray(self._plan_internal, dtype=np.float64)
        self.read_starts = np.asarray(self._read_starts, dtype=np.intp)
        self.read_ends = np.append(
            self.read_starts[1:], len(self._plan_rows)
        ).astype(np.intp)
        table_reads = {}
        for r, kernel in enumerate(self.kernels):
            for table in kernel.tables:
                table_reads.setdefault(table, []).append(r)
        self._table_reads = {
            table: tuple(reads) for table, reads in table_reads.items()
        }
        self._col_pos = np.zeros(len(self.slots) + 1, dtype=np.intp)
        for cols in self.table_columns.values():
            self._col_pos[cols] = np.arange(len(cols), dtype=np.intp)

    # ------------------------------------------------------------------

    def _design_column(self, table, signature, view, slot_cost):
        """Access costs of *table*'s slots under one per-table design —
        the kernel's slot → (table, candidate-access) cost column,
        memoized across configurations and across evaluate calls."""
        column = self._columns.get((table, signature))
        if column is None:
            values = []
            for g in self.table_columns[table]:
                slot, bq = self.slots[g - 1]
                cost = slot_cost(bq, slot, view, signature)
                values.append(np.inf if cost is None else cost)
            column = np.asarray(values, dtype=np.float64)
            if len(self._columns) >= _MAX_DESIGN_COLUMNS:
                self._columns.clear()
            self._columns[(table, signature)] = column
        return column

    def base_state(self, base_view, slot_cost):
        """The resolved state of the empty configuration — the shared
        base design sparse evaluation diffs against.  *base_view* must
        be the design view of the empty configuration over the kernel's
        own catalog (every table then carries :data:`BASE_SIGNATURE`).
        Memoized with the other delta states."""
        sigs = {table: BASE_SIGNATURE for table in self.table_columns}
        return self.delta_state(base_view, sigs, slot_cost)

    def evaluate_many(self, views, table_sigs, slot_cost, sparse=False,
                      base_view=None):
        """Price every read statement under every configuration.

        ``views`` are the per-configuration
        :class:`~repro.inum.cache._DesignView` facades, ``table_sigs``
        the per-configuration ``{table: design signature}`` dicts, and
        ``slot_cost(bq, slot, view, signature)`` the (memoized) scalar
        slot pricer — ``None`` meaning infeasible.  Returns an array of
        shape ``(n_reads, n_configurations)``.

        Work scales with *distinct designs*, not configurations: each
        table's designs are factorized across the batch, one cost
        column is resolved per distinct design, and the full matrix is
        a gather.  Statement pricing is then pure array arithmetic in
        scalar accumulation order.

        With ``sparse=True`` (requires *base_view*) no dense
        configs × slots matrix is allocated at all: each configuration
        is priced as a diff against the shared base-design state
        (:meth:`base_state`) through per-table column blocks, touching
        only the slots of tables its indexes change — bit-identical to
        the dense pass, because touched plans re-accumulate through the
        very same gathered adds and untouched reads inherit base values
        whose every input is unchanged.
        """
        if sparse and self.kernels:
            state = self.base_state(base_view, slot_cost)
            return self.evaluate_deltas(
                state, views, table_sigs, slot_cost, sparse=True
            )
        best, __ = self._evaluate_full(views, table_sigs, slot_cost)
        return best

    def evaluate_many_with_usage(self, views, table_sigs, slot_cost,
                                 slot_choice, sparse=False, base_view=None):
        """:meth:`evaluate_many` plus argmin witnesses.

        Returns ``(grid, used)`` where ``used[r][c]`` is the *raw*
        witness set of read ``r`` under configuration ``c``: the union
        of the winning access path's indexes over the winning plan's
        slots, **unfiltered** (callers intersect with the
        configuration's own indexes, like the scalar walk does).
        ``slot_choice(bq, slot, view, signature)`` returns the winning
        ``(cost, payload indexes)`` pair for one slot, or ``None`` if
        infeasible — the same pure function the serial reference calls.

        ``sparse=True`` diffs against the base-design state like
        :meth:`evaluate_many`.
        """
        if sparse and self.kernels:
            state = self.base_state(base_view, slot_cost)
            return self.evaluate_deltas_with_usage(
                state, views, table_sigs, slot_cost, slot_choice,
                sparse=True,
            )
        n_configs = len(views)
        best, acc = self._evaluate_full(views, table_sigs, slot_cost)
        used = []
        for r in range(self.n_reads):
            s, e = int(self.read_starts[r]), int(self.read_ends[r])
            # First minimum == the scalar walk's first-strict-less win.
            args = s + np.argmin(acc[:, s:e], axis=1)
            used.append([
                self._witness(
                    int(args[c]), table_sigs[c], views[c], slot_choice
                )
                for c in range(n_configs)
            ])
        return best, used

    def _evaluate_full(self, views, table_sigs, slot_cost):
        n_configs = len(views)
        matrix = np.zeros((n_configs, len(self.slots) + 1), dtype=np.float64)
        for table, cols in self.table_columns.items():
            distinct = {}
            representatives = []
            inverse = np.empty(n_configs, dtype=np.intp)
            for c in range(n_configs):
                signature = table_sigs[c][table]
                u = distinct.get(signature)
                if u is None:
                    u = len(distinct)
                    distinct[signature] = u
                    representatives.append(c)
                inverse[c] = u
            block = np.empty((len(distinct), len(cols)), dtype=np.float64)
            for signature, u in distinct.items():
                block[u] = self._design_column(
                    table, signature, views[representatives[u]], slot_cost
                )
            matrix[:, cols] = block[inverse]

        if not self.kernels:
            return np.empty((0, n_configs), dtype=np.float64), None
        acc = np.broadcast_to(
            self.plan_internal, (n_configs, self.plan_internal.shape[0])
        ).copy()
        for k in range(self.plan_idx.shape[1]):
            acc += matrix[:, self.plan_idx[:, k]]
        # Min over each statement's plan group: infeasible plans price
        # +inf (absorbed, like the scalar early-break); a statement with
        # no feasible plan at all surfaces as +inf and raises, exactly
        # like the scalar walk.
        best = np.minimum.reduceat(acc, self.read_starts, axis=1)
        if not np.isfinite(best).all():
            raise RuntimeError("INUM cache produced no feasible plan")
        return best.T.copy(), acc

    # -- delta (seminaïve) evaluation ----------------------------------

    def delta_state(self, view, table_sigs, slot_cost):
        """Capture (or fetch the memoized) parent state for *view*.

        The parent's slot cost row and per-read minima are computed by
        exactly the element-wise operations one column of
        :meth:`evaluate_many` would run, so a captured state is
        bit-identical source material for delta pricing.
        """
        key = tuple(sorted(table_sigs.items()))
        state = self._delta_states.get(key)
        if state is not None:
            return state
        row = np.zeros(len(self.slots) + 1, dtype=np.float64)
        for table, cols in self.table_columns.items():
            row[cols] = self._design_column(
                table, table_sigs[table], view, slot_cost
            )
        if self.kernels:
            acc = self.plan_internal.copy()
            for k in range(self.plan_idx.shape[1]):
                acc += row[self.plan_idx[:, k]]
            best = np.minimum.reduceat(acc, self.read_starts)
            if not np.isfinite(best).all():
                raise RuntimeError("INUM cache produced no feasible plan")
            argmin = np.empty(self.n_reads, dtype=np.intp)
            for r in range(self.n_reads):
                s, e = int(self.read_starts[r]), int(self.read_ends[r])
                argmin[r] = s + int(np.argmin(acc[s:e]))
        else:
            best = np.empty(0, dtype=np.float64)
            argmin = np.empty(0, dtype=np.intp)
        state = WorkloadDeltaState(dict(table_sigs), view, row, best, argmin)
        if len(self._delta_states) >= _MAX_DELTA_STATES:
            self._delta_states.clear()
        self._delta_states[key] = state
        return state

    def evaluate_deltas(self, state, views, table_sigs, slot_cost,
                        sparse=False):
        """Delta counterpart of :meth:`evaluate_many`: price each
        configuration as a diff against *state*'s parent, re-resolving
        only slots on tables whose design changed and re-minimizing
        only the reads whose plans reference them.  Untouched reads
        inherit the parent minimum verbatim — bit-identical, because
        every input to their plan sums is unchanged.

        With ``sparse=True`` each diff gathers the parent row into a
        compact per-changed-table-set block instead of copying the full
        slot row, so resolve work scales with the configuration's
        active footprint rather than the global slot table."""
        n_configs = len(views)
        if not self.kernels:
            return np.empty((0, n_configs), dtype=np.float64)
        out = np.empty((self.n_reads, n_configs), dtype=np.float64)
        for c in range(n_configs):
            best, __, ___ = self._delta_column(
                state, views[c], table_sigs[c], slot_cost, compact=sparse
            )
            out[:, c] = best
        return out

    def evaluate_deltas_with_usage(self, state, views, table_sigs,
                                   slot_cost, slot_choice, sparse=False):
        """:meth:`evaluate_deltas` plus argmin witnesses (see
        :meth:`evaluate_many_with_usage`).  Witnesses of untouched
        reads are resolved once against the parent and cached on the
        state; touched reads resolve under the child's designs."""
        n_configs = len(views)
        if not self.kernels:
            return np.empty((0, n_configs), dtype=np.float64), []
        out = np.empty((self.n_reads, n_configs), dtype=np.float64)
        used = [[None] * n_configs for __ in range(self.n_reads)]
        for c in range(n_configs):
            best, argmin, touched = self._delta_column(
                state, views[c], table_sigs[c], slot_cost,
                want_argmin=True, compact=sparse,
            )
            out[:, c] = best
            for r in range(self.n_reads):
                if r in touched:
                    used[r][c] = self._witness(
                        int(argmin[r]), table_sigs[c], views[c], slot_choice
                    )
                else:
                    witness = state.used[r]
                    if witness is None:
                        witness = self._witness(
                            int(state.argmin[r]), state.table_sigs,
                            state.view, slot_choice,
                        )
                        state.used[r] = witness
                    used[r][c] = witness
        return out, used

    def _delta_column(self, state, view, sigs, slot_cost, want_argmin=False,
                      compact=False):
        """Price one child configuration against the parent *state*.
        Returns ``(best, argmin, touched reads)``; ``argmin`` is only
        computed when requested, and untouched entries of both vectors
        are the parent's own (their plan sums are bit-identical).

        ``compact`` switches the slot-row representation: instead of
        copying the parent's full slot row, only the columns the
        touched plans reference are gathered into a local block and the
        changed tables' design columns scattered into it.  The plan
        sums gather the very same values in the very same order, so
        the result is bit-identical either way."""
        changed = [
            table for table in self.table_columns
            if sigs[table] != state.table_sigs[table]
        ]
        if not changed:
            return state.best, state.argmin, ()
        reads, plans, starts = self._touched(frozenset(changed))
        if not plans.size:
            return state.best, state.argmin, ()
        if compact:
            group = self._sparse_group(frozenset(changed))
            local_row = state.row[group.ucols]
            for table in changed:
                local_row[group.table_pos[table]] = self._design_column(
                    table, sigs[table], view, slot_cost
                )
            self.sparse_cells += group.ucols.size
            self.dense_equiv_cells += len(self.slots) + 1
            sub_idx = group.local_idx
            acc = self.plan_internal[plans].copy()
            for k in range(sub_idx.shape[1]):
                acc += local_row[sub_idx[:, k]]
        else:
            row = state.row.copy()
            for table in changed:
                row[self.table_columns[table]] = self._design_column(
                    table, sigs[table], view, slot_cost
                )
            sub_idx = self.plan_idx[plans]
            acc = self.plan_internal[plans].copy()
            for k in range(sub_idx.shape[1]):
                acc += row[sub_idx[:, k]]
        best_touched = np.minimum.reduceat(acc, starts)
        if not np.isfinite(best_touched).all():
            raise RuntimeError("INUM cache produced no feasible plan")
        best = state.best.copy()
        best[reads] = best_touched
        if not want_argmin:
            return best, None, reads
        argmin = state.argmin.copy()
        bounds = np.append(starts, len(plans))
        for i, r in enumerate(reads):
            s, e = int(bounds[i]), int(bounds[i + 1])
            argmin[r] = int(plans[s + int(np.argmin(acc[s:e]))])
        return best, argmin, set(reads.tolist())

    def _sparse_group(self, changed):
        """Compact gather maps for one changed-table set (memoized like
        :meth:`_touched`): the distinct global columns the touched
        plans reference (``ucols``), the touched plans' slot-index
        matrix remapped into that local coordinate space, and each
        changed table's scatter positions.  Every column of a changed
        table appears in ``ucols`` — its slots all occur in plans of
        statements referencing the table, and those plans are by
        definition touched."""
        group = self._sparse_groups.get(changed)
        if group is None:
            __, plans, ___ = self._touched(changed)
            sub_idx = self.plan_idx[plans]
            ucols = np.unique(sub_idx)
            local_idx = np.searchsorted(ucols, sub_idx)
            table_pos = {
                table: np.searchsorted(ucols, self.table_columns[table])
                for table in changed
            }
            if len(self._sparse_groups) >= _MAX_TOUCH_GROUPS:
                self._sparse_groups.clear()
            group = _SparseGroup(ucols, local_idx, table_pos)
            self._sparse_groups[changed] = group
        return group

    def _touched(self, changed):
        """Reads whose plans reference any table in *changed*, their
        concatenated plan ids, and the per-read group starts (memoized
        per changed-table set — greedy sweeps cycle through few)."""
        cached = self._touch_groups.get(changed)
        if cached is None:
            read_set = set()
            for table in changed:
                read_set.update(self._table_reads.get(table, ()))
            reads = np.asarray(sorted(read_set), dtype=np.intp)
            spans = [
                np.arange(self.read_starts[r], self.read_ends[r])
                for r in reads
            ]
            if spans:
                plans = np.concatenate(spans)
                starts = np.cumsum(
                    [0] + [span.size for span in spans[:-1]], dtype=np.intp
                )
            else:
                plans = np.empty(0, dtype=np.intp)
                starts = np.empty(0, dtype=np.intp)
            if len(self._touch_groups) >= _MAX_TOUCH_GROUPS:
                self._touch_groups.clear()
            cached = (reads, plans, starts)
            self._touch_groups[changed] = cached
        return cached

    # -- argmin witnesses ----------------------------------------------

    def _payload_column(self, table, signature, view, slot_choice):
        """Winning access payloads of *table*'s slots under one design
        — the witness twin of :meth:`_design_column`, memoized the same
        way.  Infeasible slots store an empty payload (their plans
        price +inf and never win, so the entry is never read)."""
        column = self._payloads.get((table, signature))
        if column is None:
            column = []
            for g in self.table_columns[table]:
                slot, bq = self.slots[g - 1]
                priced = slot_choice(bq, slot, view, signature)
                column.append(() if priced is None else tuple(priced[1]))
            if len(self._payloads) >= _MAX_DESIGN_COLUMNS:
                self._payloads.clear()
            self._payloads[(table, signature)] = column
        return column

    def _witness(self, plan, table_sigs, view, slot_choice):
        """Raw witness set of one winning *plan*: the union of winning
        access payloads over its slots, exactly the winner list the
        scalar walk unions (callers filter by the configuration)."""
        out = set()
        for g in self._plan_rows[plan]:
            if g == 0:  # sentinel padding
                continue
            table = self.slot_tables[g - 1]
            column = self._payload_column(
                table, table_sigs[table], view, slot_choice
            )
            out.update(column[self._col_pos[g]])
        return frozenset(out)


class _SparseGroup:
    """Compact gather maps for one changed-table set (see
    :meth:`WorkloadKernel._sparse_group`)."""

    __slots__ = ("ucols", "local_idx", "table_pos")

    def __init__(self, ucols, local_idx, table_pos):
        self.ucols = ucols
        self.local_idx = local_idx
        self.table_pos = table_pos


class BipKernel:
    """CoPhy's BIP pricing surface in columnar form.

    Compiled once per (immutable) :class:`~repro.cophy.bip.BipProblem`;
    :meth:`evaluate` prices a whole batch of candidate-position sets —
    the greedy frontier sweep, solver incumbents, base-cost probes —
    with per-slot minima over applicable accesses computed as one
    masked grouped reduction.
    """

    def __init__(self, problem):
        opt_cost = []
        opt_col = []  # candidate position, or n_candidates for default
        slot_starts = []
        plan_internal = []
        plan_rows = []  # per plan: global slot ids in slot order
        plan_starts = []
        weights = []
        n = problem.n_candidates
        for term in problem.queries:
            plan_starts.append(len(plan_internal))
            weights.append(term.weight)
            for plan in term.plans:
                plan_internal.append(plan.internal_cost)
                ids = []
                for slot in plan.slots:
                    sid = len(slot_starts)
                    slot_starts.append(len(opt_cost))
                    for pos, cost in slot.options:
                        opt_col.append(n if pos == -1 else pos)
                        opt_cost.append(cost)
                    ids.append(sid)
                plan_rows.append(ids)
        width = max((len(row) for row in plan_rows), default=0)
        sentinel = len(slot_starts)
        gidx = np.full((len(plan_rows), width), sentinel, dtype=np.intp)
        for p, ids in enumerate(plan_rows):
            gidx[p, : len(ids)] = ids
        self.n_candidates = n
        self.weights = weights
        self.write_base_cost = problem.write_base_cost
        self.index_penalties = problem.index_penalties
        self.opt_cost = np.asarray(opt_cost, dtype=np.float64)
        self.opt_col = np.asarray(opt_col, dtype=np.intp)
        self.slot_starts = np.asarray(slot_starts, dtype=np.intp)
        self.n_slots = len(slot_starts)
        self.plan_internal = np.asarray(plan_internal, dtype=np.float64)
        self.plan_idx = gidx
        self.plan_starts = np.asarray(plan_starts, dtype=np.intp)
        n_plans = len(plan_internal)
        self.plan_ends = np.append(self.plan_starts[1:], n_plans).astype(
            np.intp
        )
        self.query_of_plan = np.empty(n_plans, dtype=np.intp)
        for q in range(self.plan_starts.size):
            self.query_of_plan[self.plan_starts[q]:self.plan_ends[q]] = q
        slot_plans = {}
        for p, ids in enumerate(plan_rows):
            for sid in ids:
                slot_plans.setdefault(sid, set()).add(p)
        self._slot_plans = {
            sid: sorted(ps) for sid, ps in slot_plans.items()
        }
        counts = np.diff(np.append(self.slot_starts, len(opt_cost)))
        self.opt_slot = np.repeat(
            np.arange(self.n_slots, dtype=np.intp), counts
        )
        self._weights_row = np.asarray(weights, dtype=np.float64)
        self._pos_deltas = {}  # candidate position -> _BipPosDelta/None
        self._opt_groups = None  # lazy: position -> its option indices
        self._fp = None  # lazily flattened _BipFootprint over all positions
        self._qplan_pad = None  # lazy (n_queries, width) padded plan ids
        self._batch_fps = {}  # positions tuple -> _BipBatchFootprint/None
        self._delta_state = None  # (chosen tuple, BipDeltaState)
        self._base = None  # lazy (winners, acc) of the empty set
        # Monotonic work counters for the sparse path (option cells
        # touched vs. the dense masked-matrix equivalent).
        self.sparse_cells = 0
        self.dense_equiv_cells = 0

    def evaluate(self, batch, sparse=False):
        """Objective values for *batch* (iterables of chosen candidate
        positions); equals the scalar
        :meth:`~repro.cophy.bip.BipProblem.config_costs_scalar` exactly
        — including the base/penalty accumulation, which runs through
        the very same Python expressions.

        With ``sparse=True`` the dense batch × options masked matrix is
        never allocated: every member is priced as a footprint scatter
        against the shared empty-set base state, touching only the
        slots and plans its candidates offer options on.  Bit-identical
        to the dense pass — slot winners decompose exactly under min
        (``min(default options, candidate options)``), touched plans
        re-accumulate through the same gathered adds, and untouched
        plans keep base values whose every input is unchanged."""
        batch = [list(chosen) for chosen in batch]
        n_batch = len(batch)
        if not n_batch:
            return []
        if sparse and self.n_slots and self.plan_starts.size:
            return self._evaluate_sparse(batch)
        chosen_cols = np.zeros(
            (n_batch, self.n_candidates + 1), dtype=bool
        )
        chosen_cols[:, self.n_candidates] = True  # the default access
        penalties = np.empty(n_batch, dtype=np.float64)
        for b, chosen_positions in enumerate(batch):
            chosen = set(chosen_positions)
            for pos in chosen:
                chosen_cols[b, pos] = True
            # Scalar-identical base: same expression, same set iteration.
            total = self.write_base_cost
            if self.index_penalties:
                total += sum(self.index_penalties[pos] for pos in chosen)
            penalties[b] = total

        if self.n_slots:
            masked = np.where(
                chosen_cols[:, self.opt_col], self.opt_cost, np.inf
            )
            winners = np.minimum.reduceat(masked, self.slot_starts, axis=1)
            winners = np.concatenate(
                [winners, np.zeros((n_batch, 1))], axis=1
            )
        else:
            winners = np.zeros((n_batch, 1), dtype=np.float64)

        acc = np.broadcast_to(
            self.plan_internal, (n_batch, self.plan_internal.shape[0])
        ).copy()
        for k in range(self.plan_idx.shape[1]):
            acc += winners[:, self.plan_idx[:, k]]
        if self.plan_starts.size:
            best = np.minimum.reduceat(acc, self.plan_starts, axis=1)
            if not np.isfinite(best).all():
                raise RuntimeError("BIP has an infeasible query term")
            totals = penalties
            for q in range(self.plan_starts.size):
                totals += self.weights[q] * best[:, q]
        else:
            totals = penalties
        return totals.tolist()

    def _base_sparse(self):
        """The resolved ``(winners, acc)`` of the empty candidate set —
        default accesses only.  Kept separate from the single delta
        state memo so sparse batches don't thrash its chain extension.
        No feasibility check here: a query feasible only through
        candidate options prices ``+inf`` at base and is checked on the
        final per-member minima, exactly like the dense pass."""
        base = self._base
        if base is None:
            masked = np.where(
                self.opt_col == self.n_candidates, self.opt_cost, np.inf
            )
            winners = np.minimum.reduceat(masked, self.slot_starts)
            winners = np.append(winners, 0.0)
            acc = self.plan_internal.copy()
            for k in range(self.plan_idx.shape[1]):
                acc += winners[self.plan_idx[:, k]]
            base = (winners, acc)
            self._base = base
        return base

    def _evaluate_sparse(self, batch):
        n_batch = len(batch)
        penalties = np.empty(n_batch, dtype=np.float64)
        counts = np.empty(n_batch, dtype=np.intp)
        flat = []
        for b, chosen_positions in enumerate(batch):
            chosen = set(chosen_positions)
            # Scalar-identical base: same expression, same set iteration.
            total = self.write_base_cost
            if self.index_penalties:
                total += sum(self.index_penalties[pos] for pos in chosen)
            penalties[b] = total
            flat.extend(chosen_positions)
            counts[b] = len(chosen_positions)
        base_winners, base_acc = self._base_sparse()
        winners = np.broadcast_to(
            base_winners, (n_batch, base_winners.size)
        ).copy()
        acc = np.broadcast_to(base_acc, (n_batch, base_acc.size)).copy()
        fp = self._footprint()
        pos_arr = np.asarray(flat, dtype=np.intp)
        member = np.repeat(np.arange(n_batch, dtype=np.intp), counts)
        rows0, idx = _span_gather(fp.slot_offsets, fp.slot_sizes, pos_arr)
        if idx.size:
            # Child slot winners = min(base winner, each chosen
            # position's static option minima); minimum.at is unbuffered,
            # so duplicate (member, slot) hits — one member choosing two
            # candidates on the same slot — fold exactly.
            rows = member[rows0]
            cols = fp.flat_slots[idx]
            np.minimum.at(winners, (rows, cols), fp.flat_static[idx])
            prow0, pidx = _span_gather(
                fp.plan_offsets, fp.plan_sizes, pos_arr
            )
            prow = member[prow0]
            pcol = fp.flat_plans[pidx]
            # Touched plans re-sum with the same gathered-add order as
            # the dense pass; duplicate (member, plan) scatter targets
            # write identical values.
            vals = self.plan_internal[pcol].copy()
            for k in range(self.plan_idx.shape[1]):
                vals += winners[prow, self.plan_idx[pcol, k]]
            acc[prow, pcol] = vals
        self.sparse_cells += int(idx.size)
        self.dense_equiv_cells += n_batch * int(self.opt_cost.size)
        best = acc[:, self._query_plan_pad()].min(axis=2)
        if not np.isfinite(best).all():
            raise RuntimeError("BIP has an infeasible query term")
        totals = penalties
        for q in range(self.plan_starts.size):
            totals += self.weights[q] * best[:, q]
        return totals.tolist()

    # -- delta (seminaïve) evaluation ----------------------------------

    def delta_state(self, chosen):
        """Capture (or fetch the memoized) parent state for the chosen
        position list.  ``chosen`` must be the *same list, in the same
        order,* the full path would prepend to each extension — the
        penalty accumulation below replays ``set(chosen + [pos])``
        iteration, which depends on insertion history."""
        chosen = list(chosen)
        key = tuple(chosen)
        if self._delta_state is not None:
            prev_key, prev = self._delta_state
            if prev_key == key:
                return prev
            if key[:-1] == prev_key:
                # The sweep shape: this parent extends the previous one
                # by exactly its chosen winner, so the capture itself is
                # a delta — the scatter/re-sum below reproduces the full
                # capture bit-for-bit (min decomposes exactly, untouched
                # plans re-sum the very same values).
                state = self._extend_state(prev, chosen)
                self._delta_state = (key, state)
                return state
        if self.n_slots:
            mask = np.zeros(self.n_candidates + 1, dtype=bool)
            mask[self.n_candidates] = True
            for pos in set(chosen):
                mask[pos] = True
            masked = np.where(mask[self.opt_col], self.opt_cost, np.inf)
            winners = np.minimum.reduceat(masked, self.slot_starts)
            winners = np.append(winners, 0.0)
        else:
            winners = np.zeros(1, dtype=np.float64)
        acc = self.plan_internal.copy()
        for k in range(self.plan_idx.shape[1]):
            acc += winners[self.plan_idx[:, k]]
        if self.plan_starts.size:
            best = np.minimum.reduceat(acc, self.plan_starts)
            if not np.isfinite(best).all():
                raise RuntimeError("BIP has an infeasible query term")
        else:
            best = np.empty(0, dtype=np.float64)
        state = BipDeltaState(chosen, winners, acc, best)
        self._delta_state = (key, state)
        return state

    def _extend_state(self, parent, chosen):
        """The capture for ``parent.chosen + [pos]`` derived from the
        parent's arrays: winner scatter on the position's slots, re-sum
        of its touched plans, full-row re-min (identical values on
        untouched segments)."""
        info = self._pos_delta(chosen[-1])
        if info is None:
            return BipDeltaState(
                chosen, parent.winners, parent.acc, parent.best
            )
        winners = parent.winners.copy()
        winners[info.slots] = np.minimum(
            winners[info.slots], info.static_min
        )
        acc = parent.acc.copy()
        vals = self.plan_internal[info.touched].copy()
        for k in range(self.plan_idx.shape[1]):
            vals += winners[self.plan_idx[info.touched, k]]
        acc[info.touched] = vals
        if self.plan_starts.size:
            best = np.minimum.reduceat(acc, self.plan_starts)
            if not np.isfinite(best).all():
                raise RuntimeError("BIP has an infeasible query term")
        else:
            best = parent.best
        return BipDeltaState(chosen, winners, acc, best)

    def evaluate_delta(self, state, positions):
        """Objectives of ``state.chosen + [pos]`` for each extension
        position, equal bit-for-bit to
        ``evaluate([state.chosen + [pos] for pos in positions])``: the
        child's slot winners are ``min(parent winner, the position's
        own option minima)`` (min is exact, so decomposing it is free),
        only plans referencing improved slots are re-summed, and only
        their queries re-minimized over the parent's accumulations."""
        positions = list(positions)
        n_batch = len(positions)
        if not n_batch:
            return []
        n_queries = self.plan_starts.size
        penalties = np.empty(n_batch, dtype=np.float64)
        if self.index_penalties:
            for b, pos in enumerate(positions):
                chosen = set(state.chosen)
                chosen.add(pos)
                # Scalar-identical base: same expression, same set
                # iteration (the insertion history of
                # ``set(state.chosen + [pos])``).
                penalties[b] = self.write_base_cost + sum(
                    self.index_penalties[p] for p in chosen
                )
        else:
            penalties.fill(self.write_base_cost)
        if not n_queries:
            return penalties.tolist()
        bfp = self._batch_footprint(tuple(positions))
        if bfp is not None:
            # Child slot winners = min(parent winner, the position's own
            # static option minima) — min decomposes exactly, so one
            # scatter onto the tiled parent row prices every child.
            winners = np.broadcast_to(
                state.winners, (n_batch, state.winners.size)
            ).copy()
            winners[bfp.rows, bfp.cols] = np.minimum(
                state.winners[bfp.cols], bfp.svals
            )
            # Only the footprint plans re-sum (same gathered-add order as
            # the capture); every other plan keeps the parent value, so a
            # full-row min reproduces state.best bit-for-bit there.
            acc = np.broadcast_to(state.acc, (n_batch, state.acc.size)).copy()
            vals = bfp.internal.copy()
            for gathered in bfp.pidx_k:
                vals += winners[bfp.prow, gathered]
            acc[bfp.prow, bfp.pcol] = vals
            # Per-query minima via one padded gather + min: the pad
            # repeats each query's first plan, and min(x, x) = x, so
            # this equals the segmented reduceat value for value.
            best = acc[:, self._query_plan_pad()].min(axis=2)
            if not np.isfinite(best).all():
                raise RuntimeError("BIP has an infeasible query term")
        else:
            best = np.broadcast_to(state.best, (n_batch, n_queries))
        # The scalar walk's accumulation, batched: products first (each
        # elementwise, exact), then a strictly sequential running sum —
        # ufunc.accumulate has no pairwise regrouping, so every row adds
        # penalty + w0*b0 + w1*b1 + ... in the scalar order.
        running = np.empty((n_batch, n_queries + 1), dtype=np.float64)
        running[:, 0] = penalties
        running[:, 1:] = best * self._weights_row
        return np.add.accumulate(running, axis=1)[:, -1].tolist()

    def _pos_delta(self, pos):
        """Static delta footprint of candidate *pos* (memoized): the
        slots it offers options on with its per-slot option minima
        (option costs are compile-time constants) and the plans
        touching those slots."""
        if pos in self._pos_deltas:
            return self._pos_deltas[pos]
        if self._opt_groups is None:
            # One stable grouping pass instead of a full opt_col scan
            # per position (matters once candidate vectors reach column
            # generation scale); stable argsort keeps each group in
            # ascending option order, exactly what the scan produced.
            order = np.argsort(self.opt_col, kind="stable")
            cols = self.opt_col[order]
            starts = np.nonzero(np.r_[True, cols[1:] != cols[:-1]])[0]
            ends = np.append(starts[1:], cols.size)
            self._opt_groups = {
                int(cols[s]): order[s:e] for s, e in zip(starts, ends)
            }
        info = None
        sel = self._opt_groups.get(pos)
        if sel is None:
            sel = np.empty(0, dtype=np.intp)
        if sel.size:
            slot_of = self.opt_slot[sel]
            firsts = np.nonzero(
                np.r_[True, slot_of[1:] != slot_of[:-1]]
            )[0]
            slots = slot_of[firsts]
            static_min = np.minimum.reduceat(self.opt_cost[sel], firsts)
            touched_set = set()
            for sid in slots.tolist():
                touched_set.update(self._slot_plans.get(sid, ()))
            if touched_set:
                touched = np.asarray(sorted(touched_set), dtype=np.intp)
                info = _BipPosDelta(
                    slots=slots, static_min=static_min, touched=touched
                )
        self._pos_deltas[pos] = info
        return info

    def _batch_footprint(self, key):
        """The batch's concatenated footprint gathers, memoized per
        positions tuple (sweeps re-price the same feasible sets round
        after round): slot scatter targets with their static minima,
        plan scatter targets with pre-gathered slot ids and internal
        costs.  ``None`` when no position in the batch has options."""
        bfp = self._batch_fps.get(key)
        if bfp is None and key not in self._batch_fps:
            if len(self._batch_fps) >= _MAX_TOUCH_GROUPS:
                self._batch_fps.clear()
            fp = self._footprint()
            pos_arr = np.asarray(key, dtype=np.intp)
            rows, idx = _span_gather(
                fp.slot_offsets, fp.slot_sizes, pos_arr
            )
            if idx.size:
                prow, pidx = _span_gather(
                    fp.plan_offsets, fp.plan_sizes, pos_arr
                )
                pcol = fp.flat_plans[pidx]
                bfp = _BipBatchFootprint(
                    rows=rows,
                    cols=fp.flat_slots[idx],
                    svals=fp.flat_static[idx],
                    prow=prow,
                    pcol=pcol,
                    pidx_k=[
                        self.plan_idx[pcol, k]
                        for k in range(self.plan_idx.shape[1])
                    ],
                    internal=self.plan_internal[pcol],
                )
            self._batch_fps[key] = bfp
        return bfp

    def _query_plan_pad(self):
        """(n_queries, max plans per query) plan indices, each query's
        row padded with its own first plan — a rectangular gather whose
        row-min equals the ragged segment min exactly (built once)."""
        pad = self._qplan_pad
        if pad is None:
            counts = self.plan_ends - self.plan_starts
            width = max(int(counts.max()), 1) if counts.size else 1
            pad = np.repeat(
                self.plan_starts[:, None], width, axis=1
            )
            for q in range(self.plan_starts.size):
                span = np.arange(self.plan_starts[q], self.plan_ends[q])
                pad[q, : span.size] = span
            self._qplan_pad = pad
        return pad

    def _footprint(self):
        """Every candidate's static footprint flattened into shared
        arrays (built once): slot ids, option minima, and touched plans
        in candidate order, with per-candidate offset/size vectors so a
        whole batch gathers its footprints without any per-position
        Python."""
        fp = self._fp
        if fp is None:
            slots_l, static_l, plans_l = [], [], []
            slot_sizes = np.zeros(self.n_candidates, dtype=np.intp)
            plan_sizes = np.zeros(self.n_candidates, dtype=np.intp)
            slot_offsets = np.zeros(self.n_candidates, dtype=np.intp)
            plan_offsets = np.zeros(self.n_candidates, dtype=np.intp)
            so = po = 0
            for pos in range(self.n_candidates):
                info = self._pos_delta(pos)
                slot_offsets[pos] = so
                plan_offsets[pos] = po
                if info is None:
                    continue
                slots_l.append(info.slots)
                static_l.append(info.static_min)
                plans_l.append(info.touched)
                slot_sizes[pos] = info.slots.size
                plan_sizes[pos] = info.touched.size
                so += info.slots.size
                po += info.touched.size
            empty_i = np.empty(0, dtype=np.intp)
            fp = _BipFootprint(
                flat_slots=(
                    np.concatenate(slots_l) if slots_l else empty_i
                ),
                flat_static=(
                    np.concatenate(static_l)
                    if static_l else np.empty(0, dtype=np.float64)
                ),
                flat_plans=(
                    np.concatenate(plans_l) if plans_l else empty_i
                ),
                slot_sizes=slot_sizes,
                slot_offsets=slot_offsets,
                plan_sizes=plan_sizes,
                plan_offsets=plan_offsets,
            )
            self._fp = fp
        return fp


class BipDeltaState:
    """One parent candidate set's fully-priced BIP state: the chosen
    position list (order matters — see :meth:`BipKernel.delta_state`),
    the per-slot winner row (sentinel 0.0 last), the per-plan
    accumulations, and the per-query minima."""

    __slots__ = ("chosen", "winners", "acc", "best")

    def __init__(self, chosen, winners, acc, best):
        self.chosen = chosen
        self.winners = winners
        self.acc = acc
        self.best = best


class _BipPosDelta:
    """Per-candidate static footprint for :meth:`BipKernel.evaluate_delta`."""

    __slots__ = ("slots", "static_min", "touched")

    def __init__(self, slots, static_min, touched):
        self.slots = slots
        self.static_min = static_min
        self.touched = touched


class _BipBatchFootprint:
    """One batch's concatenated footprint gathers (static per positions
    tuple) for :meth:`BipKernel.evaluate_delta`."""

    __slots__ = ("rows", "cols", "svals", "prow", "pcol", "pidx_k",
                 "internal")

    def __init__(self, rows, cols, svals, prow, pcol, pidx_k, internal):
        self.rows = rows
        self.cols = cols
        self.svals = svals
        self.prow = prow
        self.pcol = pcol
        self.pidx_k = pidx_k
        self.internal = internal


class _BipFootprint:
    """All candidates' footprints flattened for batched span gathers."""

    __slots__ = (
        "flat_slots", "flat_static", "flat_plans",
        "slot_sizes", "slot_offsets", "plan_sizes", "plan_offsets",
    )

    def __init__(self, flat_slots, flat_static, flat_plans, slot_sizes,
                 slot_offsets, plan_sizes, plan_offsets):
        self.flat_slots = flat_slots
        self.flat_static = flat_static
        self.flat_plans = flat_plans
        self.slot_sizes = slot_sizes
        self.slot_offsets = slot_offsets
        self.plan_sizes = plan_sizes
        self.plan_offsets = plan_offsets


def _span_gather(offsets, sizes, pos_arr):
    """(rows, flat indices) covering each position's span in flattened
    footprint arrays: row b repeats ``sizes[pos_arr[b]]`` times, the
    indices walk ``offsets[pos_arr[b]] + 0..size-1`` — the whole batch
    in three vector ops."""
    counts = sizes[pos_arr]
    total = int(counts.sum())
    if not total:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    rows = np.repeat(np.arange(pos_arr.size, dtype=np.intp), counts)
    out_starts = np.cumsum(counts) - counts
    idx = np.repeat(offsets[pos_arr] - out_starts, counts)
    idx += np.arange(total, dtype=np.intp)
    return rows, idx
