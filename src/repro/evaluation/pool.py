"""The shared INUM cache pool: one build, many consumers.

Every designer component (CoPhy, AutoPart, COLT, the interaction
analyzer, the what-if session) prices configurations against per-query
INUM plan caches.  In the seed each component built its own caches;
the pool makes them a shared, bounded resource keyed by the canonical
query signature, so alias-renamed duplicates and cross-component reuse
hit instead of rebuilding — and so cache memory is bounded under
long-running multi-workload traffic (LRU eviction).

Compiled statement kernels are derived state owned alongside the
entries they derive from, and everything the sparse evaluation mode
hangs off a fused workload kernel — the shared base-design state,
per-changed-table-set gather groups, per-(table, design) column memos —
is derived state one level further down: evicting an entry invalidates
the fused kernels compiled from it, which transitively drops their
sparse state.  A later evaluate call recompiles and re-resolves from
scratch, bit-identically (the lifetime tests pin this across
evictions).
"""

import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs


@dataclass
class PoolStats:
    """Exact counters for cache-pool behavior (tested to the unit)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    optimizer_calls: int = 0  # cumulative build calls, survives eviction

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "optimizer_calls": self.optimizer_calls,
        }

    @property
    def hit_rate(self):
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def copy(self):
        """A detached value copy (merge inputs must not mutate mid-sum)."""
        return PoolStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            optimizer_calls=self.optimizer_calls,
        )

    @classmethod
    def merged(cls, parts):
        """One snapshot summing *parts* — how a sharded pool reports the
        whole: counters add, rates derive from the merged counters."""
        total = cls()
        for part in parts:
            total.hits += part.hits
            total.misses += part.misses
            total.evictions += part.evictions
            total.optimizer_calls += part.optimizer_calls
        return total


class _BuildFlight:
    """One in-progress cache construction: the leader publishes here,
    losers of the build race wait on ``done``."""

    __slots__ = ("done", "cache", "error")

    def __init__(self):
        self.done = threading.Event()
        self.cache = None
        self.error = None


@dataclass
class InumCachePool:
    """LRU-bounded map from canonical query signature to QueryCache.

    ``capacity=None`` means unbounded (the seed's behavior); a positive
    capacity evicts the least-recently-used entry past the limit.

    ``get``/``put`` are internally synchronized, so one pool may be
    shared across evaluators on different threads.  Build single-flight
    is the *pool's* job: :meth:`get_or_build` guarantees one cache
    construction per missing entry even when concurrent evaluators (or
    warm-up threads) probe the same signature — the first prober builds,
    the rest wait for its result instead of duplicating the work.
    """

    capacity: int = None
    stats: PoolStats = field(default_factory=PoolStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    _owner: tuple = field(default=None, repr=False)  # (catalog, settings)
    _listeners: list = field(default_factory=list, repr=False)  # weak refs
    _flights: dict = field(default_factory=dict, repr=False)  # sig -> _BuildFlight
    _kernels: dict = field(default_factory=dict, repr=False)  # sig -> StatementKernel

    def __post_init__(self):
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("pool capacity must be positive or None")

    def attach(self, catalog, settings):
        """Bind the pool to one (catalog, settings) pair on first attach;
        reject evaluators over a different catalog — signatures carry no
        catalog identity, so a mismatch would silently serve wrong costs."""
        with self._lock:
            if self._owner is None:
                self._owner = (catalog, settings)
                return
            owner_catalog, owner_settings = self._owner
            if owner_catalog is not catalog or owner_settings != settings:
                raise ValueError(
                    "cache pool is already bound to a different catalog or "
                    "settings; use one pool per (catalog, settings) pair"
                )

    def subscribe(self, callback):
        """Register an eviction listener (``callback(signature, cache)``).

        Every attached evaluator subscribes its memo pruning, so an
        eviction triggered by one evaluator also bounds the memos of
        every other evaluator sharing the pool.  Held weakly: a garbage
        collected subscriber just drops off the list.
        """
        with self._lock:
            self._listeners = [r for r in self._listeners if r() is not None]
            self._listeners.append(weakref.WeakMethod(callback))

    def _notify(self, dropped):
        """Broadcast dropped ``(signature, cache)`` pairs to live
        listeners (callers hold the lock)."""
        if not dropped or not self._listeners:
            return
        live = []
        for ref in self._listeners:
            callback = ref()
            if callback is None:
                continue
            live.append(ref)
            for signature, cache in dropped:
                callback(signature, cache)
        self._listeners = live

    def __len__(self):
        return len(self._entries)

    def __contains__(self, signature):
        return signature in self._entries

    def signatures(self):
        """Signatures in LRU order (least recently used first)."""
        return list(self._entries)

    def get(self, signature):
        with self._lock:
            cache = self._entries.get(signature)
            if cache is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(signature)
            self.stats.hits += 1
            return cache

    def put(self, signature, cache):
        """Insert a cache; returns the ``(signature, cache)`` pairs evicted
        to make room, so the owner can drop memo entries derived from
        them (bounding *total* memory, not just resident caches).

        Compiled kernels are invalidated alongside: overwriting an
        entry drops its (now stale) kernel, and every eviction takes
        the evicted entry's kernel with it — compiled arrays never
        outlive the plan terms they were derived from."""
        with self._lock:
            self._kernels.pop(signature, None)
            self._entries[signature] = cache
            self._entries.move_to_end(signature)
            self.stats.optimizer_calls += cache.build_optimizer_calls
            evicted = []
            while self.capacity is not None \
                    and len(self._entries) > self.capacity:
                dropped = self._entries.popitem(last=False)
                self._kernels.pop(dropped[0], None)
                evicted.append(dropped)
                self.stats.evictions += 1
            self._notify(evicted)
            return evicted

    def kernel_for(self, signature):
        """The compiled columnar kernel for a *resident* entry, built
        on first request and owned by the pool: ``None`` when the
        signature is not resident — a kernel never outlives its entry.

        Compilation is a pure function of the entry's plan terms (see
        :func:`repro.evaluation.kernel.compile_statement`), cheap
        enough to run under the pool lock; every evaluator sharing the
        pool then shares one compiled form per entry, exactly like the
        entries themselves."""
        with self._lock:
            cache = self._entries.get(signature)
            if cache is None:
                return None
            kernel = self._kernels.get(signature)
            if kernel is None:
                from repro.evaluation.kernel import compile_statement

                with obs.tracer().span("kernel.compile",
                                       plans=len(cache.plans)):
                    t0 = time.perf_counter()
                    kernel = compile_statement(cache)
                    elapsed = time.perf_counter() - t0
                self._kernels[signature] = kernel
                registry = obs.metrics()
                registry.counter(
                    "repro_kernel_compiles_total",
                    "Columnar statement kernels compiled",
                ).inc()
                registry.histogram(
                    "repro_kernel_compile_seconds",
                    "Kernel compilation latency",
                ).observe(elapsed)
            return kernel

    @property
    def kernel_count(self):
        """How many resident entries currently have a compiled kernel."""
        with self._lock:
            return len(self._kernels)

    def get_or_build(self, signature, builder):
        """The cache for *signature*, built (via ``builder()``) at most
        once across concurrent probers.

        The first prober to miss becomes the flight's leader and runs the
        (expensive) build outside the pool lock; concurrent probers of
        the same signature wait for the leader's result instead of
        constructing a duplicate.  Statistics stay exact: every prober
        that finds no resident entry records one miss, leader and waiters
        alike, and nobody double-counts a hit on the flight's result.  A
        failed build raises the leader's exception in every waiter, and
        the next prober retries fresh.
        """
        with self._lock:
            cache = self._entries.get(signature)
            if cache is not None:
                self._entries.move_to_end(signature)
                self.stats.hits += 1
                return cache
            self.stats.misses += 1
            flight = self._flights.get(signature)
            leader = flight is None
            if leader:
                flight = _BuildFlight()
                self._flights[signature] = flight
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.cache
        try:
            with obs.tracer().span("pool.build"):
                t0 = time.perf_counter()
                cache = builder()
                obs.metrics().histogram(
                    "repro_pool_build_seconds",
                    "INUM cache build latency (single-flight leaders only)",
                ).observe(time.perf_counter() - t0)
            flight.cache = cache
            # Publish before retiring the flight: a prober arriving after
            # the flight is gone must find the entry resident.
            self.put(signature, cache)
            return cache
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(signature, None)
            flight.done.set()

    def stats_snapshot(self):
        """A consistent point-in-time copy of the counters, taken under
        the pool lock — no torn reads while builders and evictors run on
        other threads.  Sharded pools merge these (in fixed shard order)
        so stats-based assertions never depend on thread timing."""
        with self._lock:
            return self.stats.copy()

    def clear(self):
        """Drop every entry; broadcasts the drops to subscribed
        evaluators (so *their* derived memos are pruned too) and returns
        them as ``(signature, cache)`` pairs.  Not counted as evictions."""
        with self._lock:
            dropped = list(self._entries.items())
            self._entries.clear()
            self._kernels.clear()
            self._notify(dropped)
            return dropped
