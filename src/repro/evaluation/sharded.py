"""A sharded INUM cache pool for multi-tenant traffic.

One :class:`~repro.evaluation.pool.InumCachePool` serializes every probe
behind a single lock — fine for one advisor, a bottleneck when a tuning
service hosts many tenant sessions hammering one costing backplane.
:class:`ShardedInumCachePool` partitions entries across N independent
shards by a hash of the canonical query signature, so probes of
different shards never contend: each shard keeps its own lock, its own
LRU order, and its own build flights (single-flight per entry is
inherited from the shard).  A global memory budget is split across the
shards, and statistics merge into one exact
:class:`~repro.evaluation.pool.PoolStats` snapshot.

The surface mirrors ``InumCachePool`` exactly, so a
:class:`~repro.evaluation.WorkloadEvaluator` (and anything else written
against the pool seam) takes either interchangeably.
"""

from repro.evaluation.pool import InumCachePool, PoolStats


class ShardedInumCachePool:
    """N ``InumCachePool`` shards behind the one-pool surface.

    ``capacity`` is the *global* entry budget, split as evenly as
    possible across the shards (each shard holds at least one entry, so
    a bounded pool needs ``capacity >= shards``).  Partitioning uses the
    builtin signature hash: stable within a process, which is all
    correctness needs — an entry always routes to the same shard.

    ``stats`` is a merged snapshot (recomputed per read); per-shard
    counters are available via :meth:`shard_stats`.
    """

    def __init__(self, shards=4, capacity=None):
        if shards <= 0:
            raise ValueError("shard count must be positive")
        if capacity is not None:
            if capacity <= 0:
                raise ValueError("pool capacity must be positive or None")
            if capacity < shards:
                raise ValueError(
                    "global capacity %d cannot give each of %d shards an "
                    "entry; lower the shard count" % (capacity, shards)
                )
        self.capacity = capacity
        self._shards = [
            InumCachePool(capacity=self._shard_capacity(i, shards, capacity))
            for i in range(shards)
        ]

    @staticmethod
    def _shard_capacity(position, shards, capacity):
        if capacity is None:
            return None
        base, extra = divmod(capacity, shards)
        return base + (1 if position < extra else 0)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    @property
    def n_shards(self):
        return len(self._shards)

    def shard_index(self, signature):
        """Which shard holds *signature* (stable within the process)."""
        return hash(signature) % len(self._shards)

    def shard_for(self, signature):
        return self._shards[self.shard_index(signature)]

    # ------------------------------------------------------------------
    # The InumCachePool surface, routed or fanned out.
    # ------------------------------------------------------------------

    def attach(self, catalog, settings):
        """Bind to one (catalog, settings) pair; same contract as the
        flat pool — signatures carry no catalog identity, so a mismatch
        would silently serve wrong costs.  Every shard enforces the
        check, so a mismatched attach raises before any shard serves."""
        for shard in self._shards:
            shard.attach(catalog, settings)

    def subscribe(self, callback):
        """Eviction listeners subscribe to every shard: an eviction on
        any shard must prune the subscriber's derived memos."""
        for shard in self._shards:
            shard.subscribe(callback)

    def get(self, signature):
        return self.shard_for(signature).get(signature)

    def put(self, signature, cache):
        return self.shard_for(signature).put(signature, cache)

    def get_or_build(self, signature, builder):
        return self.shard_for(signature).get_or_build(signature, builder)

    def kernel_for(self, signature):
        """Compiled columnar kernel for a resident entry (built, owned
        and invalidated by the owning shard; ``None`` when absent)."""
        return self.shard_for(signature).kernel_for(signature)

    @property
    def kernel_count(self):
        """Resident compiled kernels across all shards."""
        return sum(shard.kernel_count for shard in self._shards)

    def __len__(self):
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, signature):
        return signature in self.shard_for(signature)

    def signatures(self):
        """All resident signatures; LRU order holds *within* a shard
        (global recency across shards is deliberately untracked — that
        independence is what removes the cross-tenant lock)."""
        out = []
        for shard in self._shards:
            out.extend(shard.signatures())
        return out

    def clear(self):
        """Drop every entry on every shard; returns the concatenated
        ``(signature, cache)`` pairs, broadcasting to subscribers as
        each shard clears."""
        dropped = []
        for shard in self._shards:
            dropped.extend(shard.clear())
        return dropped

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Merged :class:`PoolStats` snapshot over all shards.  Unlike
        the flat pool's live object this is recomputed per read; treat it
        as a point-in-time view.

        Deterministic under concurrency: each shard's counters are
        copied under that shard's lock (no torn reads mid-eviction) and
        the copies merge in fixed shard order, so two reads of a quiet
        pool — and stats-based test assertions — never depend on thread
        timing."""
        return PoolStats.merged(
            shard.stats_snapshot() for shard in self._shards
        )

    def shard_stats(self):
        """Per-shard ``(size, stats-dict)`` pairs in fixed shard order,
        for status panels and balance checks; counters are lock-consistent
        copies, like :attr:`stats`."""
        return [
            (len(shard), shard.stats_snapshot().as_dict())
            for shard in self._shards
        ]
