"""The process-pool costing backplane: real CPU scaling for warm-up.

Thread fan-out (``WorkloadEvaluator.warm_up(threads=…)``) shares one
interpreter, so cache builds — pure-Python optimizer planning — stay
GIL-bound.  :class:`ProcessPoolBackplane` fans the same work across
``multiprocessing`` workers instead, following the stale-synchronous
idea of exchanging compact deltas rather than shared memory:

* each worker receives the **catalog dictionary** once (via
  :mod:`repro.catalog.serialize`, in the pool initializer) and rebuilds
  its own catalog + private :class:`WorkloadEvaluator`; statistics
  rebuild deterministically, so worker-built plan terms are
  bit-identical to parent-built ones;

* tasks carry **SQL texts**, results come back as **wire-format cache
  entries** (:mod:`repro.evaluation.wire`: signature + plan terms, no
  live plan trees, no catalogs) which the parent re-binds against its
  own catalog and installs into the shared pool — typically a
  :class:`~repro.evaluation.ShardedInumCachePool`;

* :meth:`evaluate_configurations` partitions the workload's statements
  across workers, each pricing its chunk against every configuration;
  the parent reassembles the same
  :class:`~repro.evaluation.BatchEvaluation` the in-process path
  returns, entry for entry.

Results are pinned bit-identical to the single-process path; the pool
only changes wall-clock time.  With ``processes <= 1`` every call
degrades to the in-process evaluator and no worker pool is spawned —
the explicit opt-out for platforms where ``multiprocessing`` is
unavailable or too expensive.
"""

import multiprocessing
import os

from repro import obs
from repro.catalog.serialize import (
    catalog_from_dict,
    catalog_to_dict,
    configuration_from_dict,
    configuration_to_dict,
)
from repro.evaluation import wire
from repro.util import DesignError, workload_pairs

__all__ = ["ProcessPoolBackplane", "perform_warm", "perform_evaluate"]

# Per-worker-process state, installed once by _init_worker.
_WORKER_EVALUATOR = None


# ----------------------------------------------------------------------
# The task-execution seam: what one offloaded task *does*, independent
# of how it arrived.  Both worker surfaces — the multiprocessing pool
# below and the network runner (:mod:`repro.net.runner`) — execute
# tasks through these two functions, so the local and remote backplanes
# cannot drift in what a warm or evaluate task means.
# ----------------------------------------------------------------------


def perform_warm(evaluator, sql, locate, ctx=None):
    """Build one statement's INUM cache on *evaluator*.

    ``locate`` marks a shipped write statement whose locate query (the
    synthetic SELECT pricing UPDATE/DELETE row location) must be
    re-derived on this side, mirroring ``wire.entry_from_wire``.
    ``ctx`` is the dispatching span's ``(trace_id, span_id)``, so this
    worker's spans stitch into the parent's trace.  Returns the built
    ``(signature, cache)`` pair."""
    from repro.optimizer.writecost import locate_query

    with obs.tracer().span("worker.warm_up", remote_parent=ctx,
                           locate=locate):
        bq = evaluator.bound(sql)
        if locate:
            bq = locate_query(bq)
        cache = evaluator.cache_for(bq)
        signature = evaluator.signature(bq)
    return signature, cache


def perform_evaluate(evaluator, sqls, configurations, ctx=None):
    """Price *sqls* against every configuration on *evaluator*.

    Returns ``(columns, built)``: one cost column (cost under each
    configuration, in configuration order) per statement, plus the
    signatures of every cache entry this evaluation built — the entries
    a backplane ships home so the parent's pool is warmed as a side
    effect, exactly like the in-process path."""
    with obs.tracer().span("worker.evaluate", remote_parent=ctx,
                           statements=len(sqls)):
        before = set(evaluator.pool.signatures())
        batch = evaluator.evaluate_configurations(sqls, configurations)
        built = [
            signature for signature in evaluator.pool.signatures()
            if signature not in before
        ]
        columns = [
            [batch.matrix[c][s] for c in range(len(configurations))]
            for s in range(len(sqls))
        ]
    return columns, built


def _init_worker(catalog_payload, settings, pool_capacity):
    """Pool initializer: rebuild the catalog from its serialized form
    (fresh deterministic statistics) and stand up a private evaluator.
    ``pool_capacity`` mirrors the parent pool's bound, so a memory-capped
    host stays capped in its long-lived workers too."""
    global _WORKER_EVALUATOR
    from repro.evaluation.evaluator import WorkloadEvaluator
    from repro.evaluation.pool import InumCachePool

    # Fork inherits the parent's telemetry state; start this worker's
    # accounting from zero so shipped deltas never double-count.
    obs.reset()
    catalog = catalog_from_dict(catalog_payload)
    _WORKER_EVALUATOR = WorkloadEvaluator(
        catalog, settings, pool=InumCachePool(capacity=pool_capacity)
    )


def _entries_for(signatures):
    """Wire-encode the worker-pool entries behind *signatures*."""
    evaluator = _WORKER_EVALUATOR
    out = []
    for signature in signatures:
        cache = evaluator.pool.get(signature)
        if cache is not None:
            out.append(wire.dumps(wire.entry_to_wire(signature, cache)))
    return out


def _obs_shipment():
    """This worker's telemetry movement since the last task, as wire
    text — counters, histogram deltas, and finished spans."""
    return wire.dumps(wire.obs_to_wire(obs.drain_deltas()))


def _warm_task(task):
    """Build one query's INUM cache (via the shared seam); return it as
    a wire entry plus the worker's telemetry shipment.

    ``task`` is ``(sql, locate, ctx)`` — see :func:`perform_warm`."""
    sql, locate, ctx = task
    signature, cache = perform_warm(_WORKER_EVALUATOR, sql, locate, ctx)
    return wire.dumps(wire.entry_to_wire(signature, cache)), _obs_shipment()


def _evaluate_task(task):
    """Price a chunk of statements against every configuration (via the
    shared seam).

    Returns ``(start, columns, entries, obs_text)``: the chunk's offset
    in the statement order, the per-statement cost columns, the wire
    entries for every cache the chunk built, and the worker's telemetry
    shipment."""
    start, sqls, config_payloads, ctx = task
    configurations = [
        configuration_from_dict(payload) for payload in config_payloads
    ]
    columns, built = perform_evaluate(
        _WORKER_EVALUATOR, sqls, configurations, ctx
    )
    return start, columns, _entries_for(built), _obs_shipment()


class ProcessPoolBackplane:
    """Fan INUM cache builds and batch pricing across worker processes.

    ``evaluator`` is the parent-side :class:`WorkloadEvaluator` whose
    pool receives the shipped entries.  ``processes`` defaults to
    ``min(4, os.cpu_count())``; ``start_method`` picks the
    ``multiprocessing`` context (default: ``fork`` where available —
    cheapest worker start — else the platform default).

    The worker pool is created lazily on first use and reused across
    calls; use the context-manager form (or :meth:`close`) to reap it.
    """

    def __init__(self, evaluator, processes=None, start_method=None):
        if processes is None:
            processes = min(4, os.cpu_count() or 1)
        self.evaluator = evaluator
        self.processes = processes
        self.start_method = start_method
        self._pool = None
        self._closed = False

    # ------------------------------------------------------------------
    # Pool lifecycle.
    # ------------------------------------------------------------------

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context()

    def _worker_pool(self):
        self._check_open()
        if self._pool is None:
            payload = catalog_to_dict(self.evaluator.catalog)
            capacity = getattr(self.evaluator.pool, "capacity", None)
            self._pool = self._context().Pool(
                processes=self.processes,
                initializer=_init_worker,
                initargs=(payload, self.evaluator.settings, capacity),
            )
        return self._pool

    def _check_open(self):
        if self._closed:
            raise DesignError(
                "ProcessPoolBackplane is closed (its workers have been "
                "joined); create a new backplane to fan out more work"
            )

    @property
    def closed(self):
        return self._closed

    def close(self):
        """Join the workers gracefully and retire the backplane.

        Every dispatched task has completed by the time a public method
        returns (results are consumed synchronously), so a graceful
        ``close`` + ``join`` — rather than ``terminate`` — lets workers
        exit cleanly without risking corruption of in-flight state.
        Idempotent; any later use raises a clear :class:`DesignError`
        instead of failing opaquely inside :mod:`multiprocessing`.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Warm-up.
    # ------------------------------------------------------------------

    def _warm_targets(self, workload):
        """Build targets not already resident in the parent pool, as
        ``(bq, task)`` pairs: the parent's bound statement plus the
        ``(sql, locate)`` task shipped to workers.  Target collection
        itself (write filtering, locate rewriting, dedup) is the
        evaluator's :meth:`~WorkloadEvaluator.warm_targets`, shared
        with the in-process warm-up so the two paths cannot drift."""
        evaluator = self.evaluator
        return [
            (bq, (source, locate))
            for bq, source, locate in evaluator.warm_targets(workload)
            if evaluator.signature(bq) not in evaluator.pool
        ]

    def warm_up(self, workload):
        """Pre-build every workload statement's cache across the worker
        processes and install the results into the parent pool.

        Returns the optimizer calls spent, like
        :meth:`WorkloadEvaluator.warm_up`; the installed entries are
        bit-identical to a single-process warm-up (pinned in the claim
        benchmark and the wire test suite)."""
        self._check_open()
        evaluator = self.evaluator
        before = evaluator.precompute_calls
        targets = self._warm_targets(workload)
        if not targets:
            return 0
        if self.processes <= 1:
            for bq, __ in targets:
                evaluator.cache_for(bq)
                evaluator.pool.kernel_for(evaluator.signature(bq))
            return evaluator.precompute_calls - before
        pool = self._worker_pool()
        with obs.tracer().span("process.warm_up", targets=len(targets),
                               processes=self.processes):
            ctx = obs.tracer().current_context()
            tasks = [(sql, locate, ctx) for __, (sql, locate) in targets]
            for text, obs_text in pool.imap_unordered(
                _warm_task, tasks, chunksize=1
            ):
                # pool= installs the entry *and* rebuilds its columnar
                # kernel from the shipped plan terms, so offloaded warm-up
                # prewarms compiled kernels, not just raw caches.
                wire.loads(text, evaluator.catalog, pool=evaluator.pool)
                obs.ingest_deltas(wire.loads(obs_text))
        return evaluator.precompute_calls - before

    # ------------------------------------------------------------------
    # Batched evaluation.
    # ------------------------------------------------------------------

    def evaluate_configurations(self, workload, configurations):
        """Price all *configurations* against all of *workload*, with the
        statements partitioned across worker processes.

        Returns the same :class:`BatchEvaluation` the in-process
        evaluator produces (same configuration order, same weights,
        bit-identical matrix); caches built by workers are shipped back
        and installed into the parent pool."""
        from repro.evaluation.evaluator import BatchEvaluation
        from repro.whatif import Configuration

        self._check_open()
        evaluator = self.evaluator
        pairs = [
            (evaluator.bound(q).sql, w) for q, w in workload_pairs(workload)
        ]
        configurations = [c or Configuration.empty() for c in configurations]
        if self.processes <= 1 or len(pairs) < 2:
            return evaluator.evaluate_configurations(pairs, configurations)
        config_payloads = [
            configuration_to_dict(config) for config in configurations
        ]
        chunk = max(1, (len(pairs) + self.processes - 1) // self.processes)
        columns = [None] * len(pairs)
        pool = self._worker_pool()
        with obs.tracer().span("process.evaluate", statements=len(pairs),
                               configurations=len(configurations),
                               processes=self.processes):
            ctx = obs.tracer().current_context()
            tasks = [
                (
                    start,
                    [sql for sql, __ in pairs[start:start + chunk]],
                    config_payloads,
                    ctx,
                )
                for start in range(0, len(pairs), chunk)
            ]
            for start, chunk_columns, entries, obs_text in \
                    pool.imap_unordered(_evaluate_task, tasks):
                for offset, column in enumerate(chunk_columns):
                    columns[start + offset] = column
                for text in entries:
                    wire.loads(text, evaluator.catalog, pool=evaluator.pool)
                obs.ingest_deltas(wire.loads(obs_text))
        matrix = [
            [columns[s][c] for s in range(len(pairs))]
            for c in range(len(configurations))
        ]
        return BatchEvaluation(
            configurations=list(configurations),
            weights=[w for __, w in pairs],
            matrix=matrix,
        )
