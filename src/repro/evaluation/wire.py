"""The portable wire format: plan terms, signatures, and session state.

The paper's designer is explicitly *portable* — tuning sessions move
between machines and survive restarts, and the INUM cache is the unit
that makes re-costing cheap.  This module gives the backplane's derived
state a canonical, versioned, JSON-compatible form:

* **query signatures** — the cache pool's keys — encoded losslessly
  (they are nested tuples of primitives; the codec freezes JSON arrays
  back into tuples so equality and hashing survive the round trip);

* **INUM cache entries** reduced to *plan terms*: per-plan internal
  cost plus :class:`~repro.inum.cache.AccessSlot` records and the
  interesting-order vector.  No live :class:`~repro.optimizer.plan.Plan`
  nodes cross the wire — a deserialized entry re-binds its SQL against
  the receiving catalog and evaluates with bit-identical costs, because
  slot pricing is a pure function of the slot fields, the bound query,
  and the catalog statistics (which rebuild deterministically from the
  serialized distributions, exactly as a fresh ANALYZE would);

* **tuner / tenant-session state** (epoch counters, COLT candidate
  EWMAs, the sliding window, the drift phase) — the payloads behind
  :meth:`TenantSession.snapshot` and :meth:`TuningService.snapshot`,
  so a service restart resumes tenants mid-stream;

* **scheduler state** (wire version 2): the cooperative scheduler's
  per-tenant buffers of pulled-but-not-ingested stream events, encoded
  by :func:`event_to_wire` inside the service snapshot — what makes a
  pause-point snapshot complete even for push-mode events no replay can
  re-derive.

Every payload is stamped with :data:`WIRE_VERSION`; :func:`loads`
rejects a mismatch with :class:`~repro.util.WireFormatError` instead of
guessing.  Consumers: the :class:`~repro.evaluation.process.ProcessPoolBackplane`
ships entries from worker processes to the parent pool (``loads`` with
``pool=`` installs each entry *and* rebuilds its columnar kernel from
the just-decoded plan terms — compiled arrays are derived state and
never encoded, so the format does not move), and
``python -m repro serve --state-dir`` persists whole-service snapshots
(periodically, with ``--snapshot-interval``, at scheduler pause points).
"""

import json

from repro.inum.cache import AccessSlot, CachedPlan, QueryCache
from repro.sql.binder import bind_statement
from repro.util import WireFormatError

__all__ = [
    "WIRE_VERSION",
    "KIND_ENTRY",
    "KIND_TENANT",
    "KIND_SERVICE",
    "KIND_OBS",
    "KIND_HELLO",
    "KIND_CATALOG",
    "KIND_TASK",
    "KIND_RESULT",
    "KIND_ERROR",
    "obs_to_wire",
    "obs_from_wire",
    "signature_to_wire",
    "signature_from_wire",
    "slot_to_wire",
    "slot_from_wire",
    "plan_to_wire",
    "plan_from_wire",
    "entry_to_wire",
    "entry_from_wire",
    "event_to_wire",
    "event_from_wire",
    "dumps",
    "loads",
    "check_version",
]

# Version 4: the network transport's frame kinds (handshake hello,
# catalog shipment, task, result, error — see :mod:`repro.net.frames`)
# join the format, so a runner fleet negotiates compatibility at the
# handshake: every frame is version-stamped and a mismatched peer is
# rejected with :class:`WireFormatError` before any task is exchanged.
# Version 3 made telemetry deltas (counter/histogram movement plus
# finished spans from worker processes) a first-class payload kind, so
# traces stitch across the process backplane.  Version 2 added scheduler
# state (per-tenant pending event buffers) to service snapshots;
# version-1 payloads predate the cooperative runtime.
WIRE_VERSION = 4

KIND_ENTRY = "inum-cache-entry"
KIND_TENANT = "tenant-session"
KIND_SERVICE = "tuning-service"
KIND_OBS = "obs-delta"

# Network-transport frame kinds (:mod:`repro.net`).  These never appear
# inside files — they are connection-scoped messages — but they share
# the envelope (and therefore the version negotiation) with every other
# payload, so one WIRE_VERSION governs the whole distributed surface.
KIND_HELLO = "net-hello"
KIND_CATALOG = "net-catalog"
KIND_TASK = "net-task"
KIND_RESULT = "net-result"
KIND_ERROR = "net-error"


# ----------------------------------------------------------------------
# Signatures: nested tuples of primitives <-> nested JSON arrays.
# ----------------------------------------------------------------------

_PRIMITIVES = (str, int, float, bool, type(None))


def signature_to_wire(signature):
    """Encode a canonical query signature (nested tuples of primitives)
    as nested JSON arrays.  Signatures contain no native lists, so the
    tuple<->array mapping is bijective."""
    if isinstance(signature, tuple):
        return [signature_to_wire(part) for part in signature]
    if isinstance(signature, frozenset):
        raise WireFormatError("signatures never contain sets")
    if not isinstance(signature, _PRIMITIVES):
        raise WireFormatError(
            "non-primitive %r in signature" % (type(signature).__name__,)
        )
    return signature


def signature_from_wire(payload):
    """Freeze nested JSON arrays back into the original tuple shape."""
    if isinstance(payload, list):
        return tuple(signature_from_wire(part) for part in payload)
    return payload


# ----------------------------------------------------------------------
# Plan terms: AccessSlot / CachedPlan / whole cache entries.
# ----------------------------------------------------------------------


def slot_to_wire(slot):
    return {
        "alias": slot.alias,
        "table": slot.table_name,
        "required_order": slot.required_order,
        "param_columns": list(slot.param_columns),
        "probes": slot.probes,
        "scale": slot.scale,
    }


def slot_from_wire(payload):
    return AccessSlot(
        alias=payload["alias"],
        table_name=payload["table"],
        required_order=payload.get("required_order"),
        param_columns=tuple(payload.get("param_columns", ())),
        probes=payload.get("probes", 1.0),
        scale=payload.get("scale", 1.0),
    )


def plan_to_wire(cached):
    return {
        "internal_cost": cached.internal_cost,
        "slots": [slot_to_wire(slot) for slot in cached.slots],
        "order_vector": [list(pair) for pair in cached.order_vector],
    }


def plan_from_wire(payload):
    return CachedPlan(
        internal_cost=payload["internal_cost"],
        slots=tuple(slot_from_wire(d) for d in payload["slots"]),
        order_vector=tuple(
            tuple(pair) for pair in payload.get("order_vector", ())
        ),
    )


def entry_to_wire(signature, cache):
    """One pool entry — ``(signature, QueryCache)`` — as plan terms.

    The bound query travels as SQL text: the receiver re-binds it
    against its own catalog, which is what makes entries portable
    across processes and machines (catalogs move independently through
    :mod:`repro.catalog.serialize`).  Locate queries (the synthetic
    SELECTs pricing UPDATE/DELETE row location) have no parseable text,
    so the entry ships the originating write statement with a marker
    and the receiver re-derives the locate query."""
    from repro.optimizer.writecost import LOCATE_PREFIX

    sql = cache.bound_query.sql
    locate = sql.startswith(LOCATE_PREFIX)
    if locate:
        sql = sql[len(LOCATE_PREFIX):]
    return {
        "kind": KIND_ENTRY,
        "signature": signature_to_wire(signature),
        "sql": sql,
        "locate": locate,
        "build_optimizer_calls": cache.build_optimizer_calls,
        "plans": [plan_to_wire(cached) for cached in cache.plans],
    }


def entry_from_wire(payload, catalog):
    """Rebuild ``(signature, QueryCache)`` from a wire payload.

    Costs are bit-identical to the originating entry: the plan terms are
    carried verbatim (JSON round-trips finite floats exactly), and slot
    re-pricing depends only on those terms plus the re-bound query."""
    if payload.get("kind") != KIND_ENTRY:
        raise WireFormatError(
            "expected %r payload, got %r" % (KIND_ENTRY, payload.get("kind"))
        )
    bq = bind_statement(payload["sql"], catalog)
    if payload.get("locate"):
        from repro.optimizer.writecost import locate_query

        bq = locate_query(bq)
    cache = QueryCache.from_plan_terms(
        bq,
        (plan_from_wire(d) for d in payload["plans"]),
        build_optimizer_calls=payload.get("build_optimizer_calls", 0),
    )
    return signature_from_wire(payload["signature"]), cache


# ----------------------------------------------------------------------
# Stream events (scheduler pending buffers).
# ----------------------------------------------------------------------


def event_to_wire(event):
    """One tenant stream event — ``(phase, sql)`` or plain SQL — as a
    two-element array.  Plain SQL becomes a null phase, which ingests
    identically (a ``None`` phase never triggers drift handling)."""
    if isinstance(event, tuple):
        phase, sql = event
    else:
        phase, sql = None, event
    return [phase, sql]


def event_from_wire(payload):
    """Rebuild a stream event from its wire form (always the tuple
    shape; ``(None, sql)`` is ingest-equivalent to bare SQL)."""
    phase, sql = payload
    return (phase, sql)


# ----------------------------------------------------------------------
# Telemetry deltas (worker-process metrics + spans).
# ----------------------------------------------------------------------


def obs_to_wire(delta):
    """One :func:`repro.obs.drain_deltas` payload as a wire section.

    The delta is already JSON-safe (counter/histogram samples as plain
    lists, finished spans as dicts); this stamps the payload kind so
    :func:`loads` can route it, and the envelope version so a receiver
    speaking an older telemetry schema rejects it loudly instead of
    merging garbage into its registry."""
    return {
        "kind": KIND_OBS,
        "counters": list(delta.get("counters", ())),
        "histograms": list(delta.get("histograms", ())),
        "spans": list(delta.get("spans", ())),
    }


def obs_from_wire(payload):
    """Validate and return a telemetry-delta payload — feed the result
    to :func:`repro.obs.ingest_deltas`."""
    if payload.get("kind") != KIND_OBS:
        raise WireFormatError(
            "expected %r payload, got %r" % (KIND_OBS, payload.get("kind"))
        )
    return payload


# ----------------------------------------------------------------------
# Envelope: version stamping and checked parsing.
# ----------------------------------------------------------------------


def dumps(payload, indent=None):
    """Serialize a wire payload (entry/tenant/service dict) to JSON with
    the version stamped into the envelope."""
    body = dict(payload)
    body["wire_version"] = WIRE_VERSION
    return json.dumps(body, sort_keys=True, indent=indent)


def check_version(payload):
    """Validate the envelope; raises :class:`WireFormatError` on any
    version mismatch (no silent best-effort parsing of foreign data)."""
    if not isinstance(payload, dict):
        raise WireFormatError("wire payload must be a JSON object")
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireFormatError(
            "unsupported wire version %r (this build speaks %d)"
            % (version, WIRE_VERSION)
        )
    return payload


def loads(text, catalog=None, pool=None):
    """Parse a wire-format JSON string.

    Cache-entry payloads need *catalog* and return ``(signature,
    QueryCache)``; tenant/service payloads return the validated dict —
    they are materialized by :meth:`TenantSession.from_snapshot` /
    :meth:`TuningService.restore`, which own the live objects.

    With *pool* (an :class:`~repro.evaluation.InumCachePool` or its
    sharded twin) a cache entry is additionally *installed*: put into
    the pool if its signature is not already resident, and its columnar
    kernel rebuilt from the just-loaded plan terms
    (:meth:`~repro.evaluation.pool.InumCachePool.kernel_for`).  Kernels
    never cross the wire — they are derived state, recompiled on the
    receiving side from the plan terms that do — so the encoding is
    unchanged and the wire version does not move."""
    payload = check_version(json.loads(text))
    kind = payload.get("kind")
    if kind == KIND_ENTRY:
        if catalog is None:
            raise WireFormatError(
                "deserializing a cache entry requires a catalog"
            )
        signature, cache = entry_from_wire(payload, catalog)
        if pool is not None:
            if signature not in pool:
                pool.put(signature, cache)
            pool.kernel_for(signature)
        return signature, cache
    if kind == KIND_OBS:
        return obs_from_wire(payload)
    if kind in (KIND_TENANT, KIND_SERVICE):
        return payload
    raise WireFormatError("unknown wire payload kind %r" % (kind,))
